# Build-time feature detection for the SIMD dot kernel (src/embed/kernel.cc).
#
# Sets:
#   GRED_KERNEL_DEFS  - list of compile definitions for gred_embed
#                       (GRED_KERNEL_AVX2, GRED_KERNEL_NEON)
#   GRED_KERNEL_OPTS  - list of compile options for gred_embed
#                       (-fopenmp-simd when supported)
#   GRED_KERNEL_SUMMARY - human-readable target list, printed at configure
#
# AVX2 is compiled via a per-function `__attribute__((target("avx2,fma")))`
# so the rest of the translation unit — and the whole build — keeps the
# default architecture; the binary stays runnable on non-AVX2 machines
# because kernel.cc checks __builtin_cpu_supports before dispatching.

include(CheckCXXSourceCompiles)
include(CheckCXXCompilerFlag)

set(GRED_KERNEL_DEFS "")
set(GRED_KERNEL_OPTS "")
set(_gred_kernel_targets "scalar, portable")

check_cxx_source_compiles("
#include <immintrin.h>
__attribute__((target(\"avx2,fma\")))
double probe(const float* a, const float* b) {
  __m256d acc = _mm256_setzero_pd();
  acc = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a)),
                        _mm256_cvtps_pd(_mm_loadu_ps(b)), acc);
  __m256i iacc = _mm256_madd_epi16(_mm256_set1_epi16(1),
                                   _mm256_set1_epi16(2));
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  return lane[0] + static_cast<double>(_mm256_extract_epi32(iacc, 0));
}
int main() { return __builtin_cpu_supports(\"avx2\") ? 0 : 1; }
" GRED_TOOLCHAIN_HAS_AVX2_TARGET)

if(GRED_TOOLCHAIN_HAS_AVX2_TARGET)
  list(APPEND GRED_KERNEL_DEFS GRED_KERNEL_AVX2)
  string(APPEND _gred_kernel_targets ", avx2 (runtime-dispatched)")
endif()

check_cxx_source_compiles("
#if !defined(__aarch64__)
#error \"NEON f64 kernel needs aarch64\"
#endif
#include <arm_neon.h>
double probe(const float* a, const float* b) {
  float64x2_t acc = vdupq_n_f64(0.0);
  float32x4_t va = vld1q_f32(a);
  acc = vfmaq_f64(acc, vcvt_f64_f32(vget_low_f32(va)),
                  vcvt_f64_f32(vget_low_f32(vld1q_f32(b))));
  return vgetq_lane_f64(acc, 0);
}
int main() { return 0; }
" GRED_TOOLCHAIN_HAS_NEON)

if(GRED_TOOLCHAIN_HAS_NEON)
  list(APPEND GRED_KERNEL_DEFS GRED_KERNEL_NEON)
  string(APPEND _gred_kernel_targets ", neon")
endif()

check_cxx_compiler_flag(-fopenmp-simd GRED_TOOLCHAIN_HAS_OPENMP_SIMD)
if(GRED_TOOLCHAIN_HAS_OPENMP_SIMD)
  # -fopenmp-simd honours `#pragma omp simd` without pulling in the
  # OpenMP runtime; without it the pragma is inert and the portable
  # kernel is plain scalar code (still bit-identical by construction).
  list(APPEND GRED_KERNEL_OPTS -fopenmp-simd)
  string(APPEND _gred_kernel_targets " [portable uses -fopenmp-simd]")
endif()

set(GRED_KERNEL_SUMMARY "${_gred_kernel_targets}")
message(STATUS "gredvis: SIMD dot kernel targets: ${GRED_KERNEL_SUMMARY}")
