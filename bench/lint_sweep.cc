// Static-analysis sweep: what the dvqlint gate (DESIGN.md §12) buys the
// pipeline before any query runs.
//
// Part 1 — pre-emption. Each target DVQ of nvBench-Rob_nlq is turned
// into a deterministic "always false" mutant (a contradictory predicate
// pair appended to its WHERE clause). Executing such a mutant still
// scans its whole input, so under a tight tick deadline it trips the
// executor's budget — while the analyzer proves it broken (error-level
// DVQ010) without touching a row. The table counts, per deadline, how
// many executor-budget trips the static gate pre-empts; the run FAILS
// (nonzero exit) unless at least one trip is pre-empted.
//
// Part 2 — pipeline effect. GRED is evaluated with the lint gate off
// and on (same suite, same LLM); the lint-on run tallies per-code
// diagnostics over the predictions (eval::EvalOptions::lint) and
// reports how many stage candidates the gate rejected.
//
// All tables go to stdout; this binary is new with the lint gate, so it
// has no pre-lint baseline to stay byte-identical to.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "bench/common.h"
#include "exec/executor.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using namespace gred;

/// Appends `col = "…" AND col != "…"` to the query's WHERE clause: a
/// contradiction on whatever column the query already selects, so the
/// mutant stays schema-valid (only DVQ010 — and possibly a type-mismatch
/// note — fires) yet can never produce a row.
dvq::DVQ MakeAlwaysFalseMutant(const dvq::DVQ& original) {
  dvq::DVQ mutant = original;
  dvq::ColumnRef col;
  for (const dvq::SelectExpr& e : original.query.select) {
    if (e.col.column != "*") {
      col = e.col;
      break;
    }
  }
  if (col.column.empty()) return mutant;  // nothing to contradict on
  dvq::Predicate eq;
  eq.col = col;
  eq.op = dvq::CompareOp::kEq;
  eq.literal = dvq::Literal::Str("__lint_sweep__");
  dvq::Predicate ne = eq;
  ne.op = dvq::CompareOp::kNe;
  if (!mutant.query.where.has_value()) {
    mutant.query.where.emplace();
  } else {
    mutant.query.where->connectors.push_back(dvq::LogicalOp::kAnd);
  }
  mutant.query.where->predicates.push_back(eq);
  mutant.query.where->connectors.push_back(dvq::LogicalOp::kAnd);
  mutant.query.where->predicates.push_back(ne);
  return mutant;
}

const dataset::GeneratedDatabase* FindDb(
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& name) {
  for (const dataset::GeneratedDatabase& db : databases) {
    if (strings::EqualsIgnoreCase(db.data.name(), name)) return &db;
  }
  return nullptr;
}

}  // namespace

int main() {
  bench::BenchContext context;
  const std::vector<dataset::Example>& test = context.suite().test_nlq;
  const std::vector<dataset::GeneratedDatabase>& databases =
      context.suite().databases;

  // --- Part 1: budget trips pre-empted by the static gate ---------------
  const std::vector<std::uint64_t> deadlines = {200, 1'000, 5'000};
  TablePrinter preempt_table({"Deadline (ticks)", "Mutants", "Lint errors",
                              "Budget trips", "Pre-empted"});
  std::size_t total_preempted = 0;
  for (std::uint64_t deadline : deadlines) {
    std::size_t mutants = 0, lint_errors = 0, trips = 0, preempted = 0;
    for (const dataset::Example& example : test) {
      const dataset::GeneratedDatabase* db = FindDb(databases, example.db_name);
      if (db == nullptr) continue;
      dvq::DVQ mutant = MakeAlwaysFalseMutant(example.dvq);
      if (!mutant.query.where.has_value()) continue;
      ++mutants;
      analysis::DvqAnalyzer analyzer(&db->data.db_schema());
      bool flagged = analysis::HasErrors(analyzer.Analyze(mutant));
      if (flagged) ++lint_errors;
      GuardLimits limits;
      limits.deadline_ticks = deadline;
      ExecContext guard(limits);
      exec::ExecOptions exec_options;
      exec_options.context = &guard;
      Result<exec::ResultSet> run = exec::Execute(mutant, db->data,
                                                  exec_options);
      bool tripped = !run.ok() && run.status().IsResourceExhausted();
      if (tripped) ++trips;
      // A pre-empted trip: the executor would burn its whole budget on
      // this query, but the analyzer rejects it before a single row.
      if (tripped && flagged) ++preempted;
    }
    total_preempted += preempted;
    preempt_table.AddRow({std::to_string(deadline), std::to_string(mutants),
                          std::to_string(lint_errors), std::to_string(trips),
                          std::to_string(preempted)});
  }
  std::printf("\nLint sweep: executor-budget trips pre-empted by the static "
              "gate (%zu examples)\n",
              test.size());
  std::printf("%s", preempt_table.ToString().c_str());

  // --- Part 2: GRED with the gate off vs on ------------------------------
  // The off variant is built directly (not via MakeGred): BenchContext
  // force-enables the gate on every variant when GRED_BENCH_LINT=1 is
  // in the environment, and this comparison needs a genuinely-off side.
  core::GredConfig off_config;
  off_config.stage_limits = context.guard_limits();
  auto gred_off = std::make_unique<core::Gred>(
      context.corpus(), context.chat_model(), std::move(off_config));
  core::GredConfig lint_config;
  lint_config.enable_lint = true;
  lint_config.name_suffix = " +lint";
  std::unique_ptr<core::Gred> gred_on = context.MakeGred(lint_config);
  (void)gred_off->PrepareAnnotations(databases);
  (void)gred_on->PrepareAnnotations(databases);

  TablePrinter gred_table({"Pipeline", "Acc.", "Exec. Acc.", "Errors",
                           "Lint rejections", "Wall (s)"});
  eval::EvalResult lint_on_result;
  for (const core::Gred* gred : {gred_off.get(), gred_on.get()}) {
    const bool lint = gred->config().enable_lint;
    eval::EvalOptions options;
    options.lint = lint;
    core::Gred::StageStats before = gred->stage_stats();
    auto start = std::chrono::steady_clock::now();
    eval::EvalResult result = eval::Evaluate(*gred, test, databases,
                                             "nvBench-Rob_nlq", nullptr,
                                             options);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    core::Gred::StageStats after = gred->stage_stats();
    std::uint64_t rejections =
        (after.retune_lint_trips - before.retune_lint_trips) +
        (after.debug_lint_trips - before.debug_lint_trips);
    gred_table.AddRow({gred->name(), FormatPercent(result.counts.OverallAcc()),
                       FormatPercent(result.counts.ExecutionAcc()),
                       std::to_string(result.counts.errors),
                       std::to_string(rejections),
                       strings::Format("%.2f", wall)});
    if (lint) lint_on_result = result;
  }
  std::printf("\nGRED with the static analysis gate off vs on\n");
  std::printf("%s", gred_table.ToString().c_str());

  if (!lint_on_result.counts.diagnostics.empty()) {
    TablePrinter diag_table({"Code", "Findings"});
    for (const auto& [code, count] : lint_on_result.counts.diagnostics) {
      diag_table.AddRow({code, std::to_string(count)});
    }
    std::printf("\nPer-code diagnostics over GRED +lint predictions\n");
    std::printf("%s", diag_table.ToString().c_str());
  }

  std::printf("\nexecutor-budget trips pre-empted by error-level "
              "diagnostics: %zu (%s)\n",
              total_preempted, total_preempted > 0 ? "ok" : "FAILED");
  return total_preempted > 0 ? 0 : 1;
}
