// Reproduces Table 2: results on nvBench-Rob_schema (schema variants
// only). The NLQ stays in the clean register, but the databases the
// models see — and the target DVQs — use the renamed schemas.

#include "bench/common.h"

int main() {
  gred::bench::BenchContext context;
  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());
  std::vector<gred::eval::EvalResult> results = gred::bench::RunModels(
      models, context.suite().test_schema, context.suite().databases_rob,
      "nvBench-Rob_schema");
  gred::bench::PrintResultsTable(
      "Table 2: Results in nvBench-Rob_schema", results);
  return 0;
}
