// Reproduces Figure 3: accuracy of every model on the original nvBench
// test set versus the dual-variant nvBench-Rob test set, showing the
// robustness cliff of the baselines.

#include <cstdio>

#include "bench/common.h"
#include "util/table_printer.h"

int main() {
  gred::bench::BenchContext context;
  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());

  std::vector<gred::eval::EvalResult> clean = gred::bench::RunModels(
      models, context.suite().test_clean, context.suite().databases,
      "nvBench");
  std::vector<gred::eval::EvalResult> rob = gred::bench::RunModels(
      models, context.suite().test_both, context.suite().databases_rob,
      "nvBench-Rob_(nlq,schema)");

  std::printf("\nFigure 3: overall accuracy, nvBench vs nvBench-Rob\n");
  gred::TablePrinter table(
      {"Model", "nvBench", "nvBench-Rob_(nlq,schema)", "Drop"});
  for (std::size_t i = 0; i < clean.size(); ++i) {
    double a = clean[i].counts.OverallAcc();
    double b = rob[i].counts.OverallAcc();
    table.AddRow({clean[i].model_name, gred::FormatPercent(a),
                  gred::FormatPercent(b), gred::FormatPercent(a - b)});
  }
  std::printf("%s", table.ToString().c_str());

  // ASCII rendition of the grouped bar figure.
  std::printf("\n");
  for (std::size_t i = 0; i < clean.size(); ++i) {
    double a = clean[i].counts.OverallAcc();
    double b = rob[i].counts.OverallAcc();
    std::printf("%-12s nvBench     |%s %5.2f%%\n",
                clean[i].model_name.c_str(),
                std::string(static_cast<std::size_t>(a * 50), '#').c_str(),
                a * 100);
    std::printf("%-12s nvBench-Rob |%s %5.2f%%\n", "",
                std::string(static_cast<std::size_t>(b * 50), '=').c_str(),
                b * 100);
  }
  return 0;
}
