// Executor engine sweep: the vectorized columnar engine vs the
// row-at-a-time reference engine on large synthetic tables, with
// resource guards armed (generous budgets — the point is that per-chunk
// charging is on the hot path, not that anything trips).
//
// Workloads cover the operators the columnar rebuild touches: full-table
// scan + projection, selective filters (including the dense-int fast
// path), hash GROUP BY aggregation, and a hash join feeding an
// aggregate. Every workload runs through both engines; the results must
// be bit-identical (cell kinds and payloads, reals by bit pattern) —
// asserted here, not printed. Reported per workload: best-of-reps wall
// time per engine and the speedup ratio.
//
// Environment: GRED_EXEC_ROWS (synthetic fact-table rows, default
// 1000000), GRED_EXEC_REPS (timed repetitions per engine, best-of,
// default 5). GRED_EXEC_JSON=<path> additionally writes the
// machine-readable report that scripts/bench_report --exec wraps into
// BENCH_exec.json.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.h"
#include "exec/executor.h"
#include "schema/schema.h"
#include "storage/table.h"
#include "util/json.h"
#include "util/resource_guard.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using gred::Rng;
using gred::storage::Value;

/// Type-exact fingerprint (kind tag + payload, reals by bit pattern):
/// any engine divergence changes it. Mirrors the differential test's.
std::string Fingerprint(const gred::exec::ResultSet& rs) {
  std::string out;
  for (const std::string& name : rs.column_names) {
    out += name;
    out += '\x1f';
  }
  out += '\n';
  for (const auto& row : rs.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        out += 'N';
      } else if (v.is_int()) {
        out += 'I';
        out += std::to_string(v.int_value());
      } else if (v.is_real()) {
        std::uint64_t bits = 0;
        const double d = v.real_value();
        static_assert(sizeof(bits) == sizeof(d));
        std::memcpy(&bits, &d, sizeof(bits));
        out += 'R';
        out += std::to_string(bits);
      } else {
        out += 'T';
        out += v.text_value();
      }
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

gred::dvq::ColumnRef Col(const std::string& table,
                         const std::string& column) {
  gred::dvq::ColumnRef ref;
  ref.table = table;
  ref.column = column;
  return ref;
}

gred::dvq::SelectExpr Sel(gred::dvq::AggFunc agg,
                          gred::dvq::ColumnRef col) {
  gred::dvq::SelectExpr e;
  e.agg = agg;
  e.col = std::move(col);
  return e;
}

gred::dvq::Predicate Cmp(const std::string& column,
                         gred::dvq::CompareOp op, std::int64_t k) {
  gred::dvq::Predicate p;
  p.col = Col("", column);
  p.op = op;
  p.literal = gred::dvq::Literal::Int(k);
  return p;
}

}  // namespace

int main() {
  using namespace gred;

  const std::size_t num_rows = bench::EnvSizeOrDie("GRED_EXEC_ROWS", 1000000);
  const std::size_t reps = bench::EnvSizeOrDie("GRED_EXEC_REPS", 5);

  // Synthetic star pair: fact table t (dense NULL-free ints g/x/v plus
  // a low-cardinality text s) and a unique-key dimension u, so the hash
  // join has fan-out 1 and the fact scan dominates.
  Rng rng(0x9ebd1e5);
  schema::Database db_schema("exec_sweep");
  {
    schema::TableDef t("t", {});
    t.AddColumn({"g", schema::ColumnType::kInt, false});
    t.AddColumn({"x", schema::ColumnType::kInt, false});
    t.AddColumn({"v", schema::ColumnType::kInt, false});
    t.AddColumn({"s", schema::ColumnType::kText, false});
    db_schema.AddTable(std::move(t));
    schema::TableDef u("u", {});
    u.AddColumn({"k", schema::ColumnType::kInt, false});
    u.AddColumn({"w", schema::ColumnType::kInt, false});
    db_schema.AddTable(std::move(u));
  }
  storage::DatabaseData db(std::move(db_schema));
  const std::int64_t kDim = 1000;
  {
    storage::DataTable* t = db.FindTable("t");
    const std::vector<std::string> labels = {"alpha", "beta", "gamma",
                                             "delta", "epsilon"};
    for (std::size_t r = 0; r < num_rows; ++r) {
      (void)t->AppendRow({Value::Int(rng.NextInt(0, kDim - 1)),
                          Value::Int(rng.NextInt(0, 99)),
                          Value::Int(rng.NextInt(-1000, 1000)),
                          Value::Text(labels[rng.NextIndex(labels.size())])});
    }
    storage::DataTable* u = db.FindTable("u");
    for (std::int64_t k = 0; k < kDim; ++k) {
      (void)u->AppendRow({Value::Int(k), Value::Int(rng.NextInt(0, 500))});
    }
  }

  // Workloads: one per rebuilt operator family.
  struct Workload {
    std::string name;
    dvq::Query query;
  };
  std::vector<Workload> workloads;
  {
    // Full scan + projection, result capped so timing measures the
    // scan/projection pipeline rather than ResultSet copying.
    dvq::Query q;
    q.from_table = "t";
    q.select = {Sel(dvq::AggFunc::kNone, Col("", "x")),
                Sel(dvq::AggFunc::kNone, Col("", "s"))};
    q.limit = 16;
    workloads.push_back({"scan_project", std::move(q)});
  }
  {
    // Selective dense-int filter (~10% pass), plain projection out.
    dvq::Query q;
    q.from_table = "t";
    q.select = {Sel(dvq::AggFunc::kNone, Col("", "x")),
                Sel(dvq::AggFunc::kNone, Col("", "v"))};
    dvq::Condition where;
    where.predicates = {Cmp("x", dvq::CompareOp::kGe, 90)};
    q.where = std::move(where);
    workloads.push_back({"filter_select", std::move(q)});
  }
  {
    // Filter + GROUP BY: bitmap filter into hash aggregation.
    dvq::Query q;
    q.from_table = "t";
    q.select = {Sel(dvq::AggFunc::kNone, Col("", "s")),
                Sel(dvq::AggFunc::kCount, Col("", "*"))};
    dvq::Condition where;
    where.predicates = {Cmp("x", dvq::CompareOp::kGt, 50)};
    q.where = std::move(where);
    workloads.push_back({"filter_group", std::move(q)});
  }
  {
    // Pure hash aggregation over the full table, 1000 groups.
    dvq::Query q;
    q.from_table = "t";
    q.select = {Sel(dvq::AggFunc::kNone, Col("", "g")),
                Sel(dvq::AggFunc::kAvg, Col("", "v"))};
    q.order_by = dvq::OrderByClause{
        Sel(dvq::AggFunc::kNone, Col("", "g")), false};
    workloads.push_back({"aggregate", std::move(q)});
  }
  {
    // Hash join (fan-out 1) feeding an aggregate.
    dvq::Query q;
    q.from_table = "t";
    dvq::JoinClause join;
    join.table = "u";
    join.left = Col("t", "g");
    join.right = Col("u", "k");
    q.joins.push_back(std::move(join));
    q.select = {Sel(dvq::AggFunc::kNone, Col("", "s")),
                Sel(dvq::AggFunc::kSum, Col("", "w"))};
    workloads.push_back({"join_group", std::move(q)});
  }

  // Guards armed with budgets far above what any workload charges:
  // every charge goes through the budget checks, nothing trips.
  GuardLimits limits;
  limits.deadline_ticks = 1ull << 60;
  limits.row_budget = 1ull << 60;
  limits.memory_budget = 1ull << 60;
  limits.join_budget = 1ull << 60;

  struct Point {
    std::string name;
    double row_ms = 0.0;
    double columnar_ms = 0.0;
    double speedup = 0.0;
    std::size_t result_rows = 0;
    bool identical = false;
  };
  std::vector<Point> points;
  bool all_identical = true;

  for (const Workload& workload : workloads) {
    auto time_engine = [&](exec::Engine engine) {
      double best_s = 0.0;
      std::string fingerprint;
      std::size_t result_rows = 0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        ExecContext context(limits);
        exec::ExecOptions options;
        options.engine = engine;
        options.context = &context;
        const auto start = std::chrono::steady_clock::now();
        Result<exec::ResultSet> result =
            exec::Execute(workload.query, db, options);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        if (!result.ok()) {
          std::fprintf(stderr, "[bench] FAIL: %s: %s\n",
                       workload.name.c_str(),
                       result.status().ToString().c_str());
          std::exit(1);
        }
        if (rep == 0 || wall < best_s) best_s = wall;
        if (rep == 0) {
          fingerprint = Fingerprint(result.value());
          result_rows = result.value().rows.size();
        }
      }
      return std::make_tuple(best_s, fingerprint, result_rows);
    };

    auto [row_s, row_fp, row_rows] = time_engine(exec::Engine::kRowAtATime);
    auto [col_s, col_fp, col_rows] = time_engine(exec::Engine::kColumnar);

    Point point;
    point.name = workload.name;
    point.row_ms = row_s * 1e3;
    point.columnar_ms = col_s * 1e3;
    point.speedup = col_s > 0 ? row_s / col_s : 0.0;
    point.result_rows = col_rows;
    point.identical = row_fp == col_fp;
    if (!point.identical) {
      std::fprintf(stderr,
                   "[bench] FAIL: %s: engines diverged (%zu vs %zu rows)\n",
                   workload.name.c_str(), row_rows, col_rows);
    }
    all_identical = all_identical && point.identical;
    points.push_back(std::move(point));
  }

  TablePrinter table(
      {"Workload", "Row (ms)", "Columnar (ms)", "Speedup", "Rows", "Result"});
  for (const Point& point : points) {
    table.AddRow({point.name, strings::Format("%.1f", point.row_ms),
                  strings::Format("%.1f", point.columnar_ms),
                  strings::Format("%.2fx", point.speedup),
                  std::to_string(point.result_rows),
                  point.identical ? "identical" : "DIVERGED"});
  }
  std::printf("Executor sweep: %zu-row fact table, %zu-row dimension, "
              "best of %zu reps, guards armed\n",
              num_rows, static_cast<std::size_t>(kDim), reps);
  std::printf("%s", table.ToString().c_str());
  std::printf("columnar results identical to row engine: %s\n",
              all_identical ? "ok" : "FAILED");

  if (const char* out_path = std::getenv("GRED_EXEC_JSON")) {
    json::Value report = json::Value::Object();
    report.Set("schema", json::Value::Str("gredvis-bench-exec/1"));
    report.Set("rows", json::Value::Int(static_cast<std::int64_t>(num_rows)));
    report.Set("reps", json::Value::Int(static_cast<std::int64_t>(reps)));
    report.Set("guards_enabled", json::Value::Bool(true));
    json::Value sweep = json::Value::Array();
    for (const Point& point : points) {
      json::Value entry = json::Value::Object();
      entry.Set("workload", json::Value::Str(point.name));
      entry.Set("row_ms", json::Value::Number(point.row_ms));
      entry.Set("columnar_ms", json::Value::Number(point.columnar_ms));
      entry.Set("speedup", json::Value::Number(point.speedup));
      entry.Set("result_rows",
                json::Value::Int(static_cast<std::int64_t>(point.result_rows)));
      entry.Set("identical", json::Value::Bool(point.identical));
      sweep.Append(std::move(entry));
    }
    report.Set("workloads", std::move(sweep));
    std::ofstream out(out_path);
    out << report.Dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "[bench] FAIL: could not write %s\n", out_path);
      return 1;
    }
    std::printf("wrote %s\n", out_path);
  }

  return all_identical ? 0 : 1;
}
