// Design-choice ablations not tabulated in the paper but called out in
// its method section:
//  * the retrieval depth K (the paper fixes K=10),
//  * prompt example order (Section 4.2 argues for ascending similarity,
//    i.e. the most similar example adjacent to the question).

#include <cstdio>

#include "bench/common.h"
#include "util/table_printer.h"

int main() {
  gred::bench::BenchContext context;
  const gred::dataset::BenchmarkSuite& suite = context.suite();

  std::printf("\nAblation A: retrieval depth K (nvBench-Rob_(nlq,schema))\n");
  gred::TablePrinter k_table({"K", "Vis Acc.", "Data Acc.", "Axis Acc.",
                              "Acc."});
  for (std::size_t k : {1, 3, 5, 10, 20}) {
    gred::core::GredConfig config;
    config.k = k;
    std::unique_ptr<gred::core::Gred> model = context.MakeGred(config);
    auto results = gred::bench::RunModels({model.get()}, suite.test_both,
                                          suite.databases_rob, "rob_both");
    k_table.AddRow({std::to_string(k),
                    gred::FormatPercent(results[0].counts.VisAcc()),
                    gred::FormatPercent(results[0].counts.DataAcc()),
                    gred::FormatPercent(results[0].counts.AxisAcc()),
                    gred::FormatPercent(results[0].counts.OverallAcc())});
  }
  std::printf("%s\n", k_table.ToString().c_str());

  std::printf("Ablation B: prompt example order (K=10)\n");
  gred::TablePrinter order_table({"Order", "rob_nlq Acc.", "rob_both Acc."});
  for (bool ascending : {true, false}) {
    gred::core::GredConfig config;
    config.ascending_prompt_order = ascending;
    std::unique_ptr<gred::core::Gred> model = context.MakeGred(config);
    auto nlq = gred::bench::RunModels({model.get()}, suite.test_nlq,
                                      suite.databases, "rob_nlq");
    auto both = gred::bench::RunModels({model.get()}, suite.test_both,
                                       suite.databases_rob, "rob_both");
    order_table.AddRow(
        {ascending ? "ascending (paper)" : "descending",
         gred::FormatPercent(nlq[0].counts.OverallAcc()),
         gred::FormatPercent(both[0].counts.OverallAcc())});
  }
  std::printf("%s\n", order_table.ToString().c_str());

  std::printf("Ablation C: annotation grounding of the Debugger\n");
  gred::TablePrinter ann_table(
      {"Debugger prompt", "rob_schema Acc.", "rob_both Acc."});
  for (bool with_annotations : {true, false}) {
    gred::core::GredConfig config;
    config.debugger_uses_annotations = with_annotations;
    std::unique_ptr<gred::core::Gred> model = context.MakeGred(config);
    auto schema = gred::bench::RunModels({model.get()}, suite.test_schema,
                                         suite.databases_rob, "rob_schema");
    auto both = gred::bench::RunModels({model.get()}, suite.test_both,
                                       suite.databases_rob, "rob_both");
    ann_table.AddRow(
        {with_annotations ? "schema + annotations (paper)" : "schema only",
         gred::FormatPercent(schema[0].counts.OverallAcc()),
         gred::FormatPercent(both[0].counts.OverallAcc())});
  }
  std::printf("%s", ann_table.ToString().c_str());
  return 0;
}
