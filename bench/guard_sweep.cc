// Resource-guard sweep: GRED accuracy and latency as a function of the
// per-example execution budget.
//
// Each sweep point arms the evaluation watchdog (and GRED's per-stage
// parse budgets) with one limit — a deadline in accounted ticks or a
// materialized-row budget — and evaluates a fresh GRED instance on
// nvBench-Rob_nlq. The table shows the degradation curve: how accuracy
// decays and how many examples hit the budget as the limits tighten,
// next to the wall-clock cost of each point.
//
// Two properties are asserted, not just printed:
//   * every example terminates — with a scored result or a typed
//     kResourceExhausted — at every sweep point (no hangs, no lost
//     examples);
//   * a guard with effectively infinite limits is bit-identical to the
//     unguarded baseline (same EvalResult, counts included).
//
// GRED_BENCH_DEADLINE / GRED_BENCH_ROW_BUDGET (when set) narrow the
// sweep to that single configuration.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"
#include "util/strings.h"
#include "util/table_printer.h"

int main() {
  using namespace gred;

  bench::BenchContext context;

  struct SweepPoint {
    const char* axis;  // which budget this point exercises
    GuardLimits limits;
  };
  // An "infinite" budget: large enough that no example can reach it, but
  // nonzero so the guarded ScoreExample path actually runs.
  constexpr std::uint64_t kEffectivelyInfinite = 1'000'000'000'000ull;
  std::vector<SweepPoint> points = {
      {"deadline", {.deadline_ticks = kEffectivelyInfinite}},
      {"deadline", {.deadline_ticks = 100'000}},
      {"deadline", {.deadline_ticks = 20'000}},
      {"deadline", {.deadline_ticks = 5'000}},
      {"deadline", {.deadline_ticks = 1'000}},
      {"deadline", {.deadline_ticks = 200}},
      {"rows", {.row_budget = kEffectivelyInfinite}},
      {"rows", {.row_budget = 50'000}},
      {"rows", {.row_budget = 5'000}},
      {"rows", {.row_budget = 1'000}},
      {"rows", {.row_budget = 200}},
  };
  if (!context.guard_limits().Unlimited()) {
    points = {{"env", context.guard_limits()}};
  }

  const std::vector<dataset::Example>& test = context.suite().test_nlq;

  // Unguarded baseline: the reference both for the table's top rows and
  // for the infinite-budget identity check.
  std::unique_ptr<core::Gred> baseline_gred = context.MakeGred({});
  (void)baseline_gred->PrepareAnnotations(context.suite().databases);
  eval::EvalResult baseline =
      eval::Evaluate(*baseline_gred, test, context.suite().databases,
                     "nvBench-Rob_nlq");

  auto label = [](const GuardLimits& limits) {
    std::string parts;
    auto add = [&parts](const char* name, std::uint64_t v) {
      if (v == 0) return;
      if (!parts.empty()) parts += ", ";
      parts += name;
      parts += v >= kEffectivelyInfinite
                   ? std::string(" inf")
                   : " " + std::to_string(v);
    };
    add("deadline", limits.deadline_ticks);
    add("rows", limits.row_budget);
    add("mem", limits.memory_budget);
    add("join", limits.join_budget);
    return parts.empty() ? std::string("off") : parts;
  };

  bool infinite_identity_ok = true;
  TablePrinter table(
      {"Budget", "Acc.", "Exec. Acc.", "Exhausted", "Errors", "Wall (s)"});
  table.AddRow({"unguarded", FormatPercent(baseline.counts.OverallAcc()),
                FormatPercent(baseline.counts.ExecutionAcc()),
                std::to_string(baseline.counts.resource_exhausted),
                std::to_string(baseline.counts.errors), "-"});
  for (const SweepPoint& point : points) {
    core::GredConfig config;
    config.stage_limits = point.limits;
    std::unique_ptr<core::Gred> gred = context.MakeGred(std::move(config));
    // Annotations resolve serially up front so the parallel evaluation
    // is deterministic (same convention as fault_sweep).
    (void)gred->PrepareAnnotations(context.suite().databases);
    eval::EvalOptions options;
    options.guard = point.limits;
    std::size_t observed = 0;
    auto start = std::chrono::steady_clock::now();
    eval::EvalResult result = eval::Evaluate(
        *gred, test, context.suite().databases, "nvBench-Rob_nlq",
        [&observed](const eval::ExampleOutcome&) { ++observed; }, options);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    // Termination check: every example produced an outcome and was
    // counted — scored or typed kResourceExhausted, never dropped.
    if (observed != test.size() || result.counts.total != test.size()) {
      std::fprintf(stderr,
                   "[bench] FAIL: %s terminated %zu/%zu examples\n",
                   label(point.limits).c_str(), observed, test.size());
      return 1;
    }
    if (point.limits.deadline_ticks >= kEffectivelyInfinite ||
        point.limits.row_budget >= kEffectivelyInfinite) {
      if (result != baseline) {
        std::fprintf(stderr,
                     "[bench] FAIL: guarded run with infinite %s budget "
                     "differs from the unguarded baseline\n",
                     point.axis);
        infinite_identity_ok = false;
      }
    }
    table.AddRow({label(point.limits),
                  FormatPercent(result.counts.OverallAcc()),
                  FormatPercent(result.counts.ExecutionAcc()),
                  std::to_string(result.counts.resource_exhausted),
                  std::to_string(result.counts.errors),
                  strings::Format("%.2f", wall)});
  }

  std::printf("\nResource-guard sweep: GRED on nvBench-Rob_nlq "
              "(%zu examples)\n",
              test.size());
  std::printf("%s", table.ToString().c_str());
  std::printf("infinite-budget identity with unguarded baseline: %s\n",
              infinite_identity_ok ? "ok" : "FAILED");
  return infinite_identity_ok ? 0 : 1;
}
