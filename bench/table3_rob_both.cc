// Reproduces Table 3: results on nvBench-Rob_(nlq,schema) — the dual
// variant test set combining paraphrased NLQs with renamed schemas.

#include "bench/common.h"

int main() {
  gred::bench::BenchContext context;
  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());
  std::vector<gred::eval::EvalResult> results = gred::bench::RunModels(
      models, context.suite().test_both, context.suite().databases_rob,
      "nvBench-Rob_(nlq,schema)");
  gred::bench::PrintResultsTable(
      "Table 3: Results in nvBench-Rob_(nlq,schema)", results);
  return 0;
}
