// Deterministic chaos harness for the hardened serving layer
// (DESIGN.md §16): drives `serve::Server` through a scripted fault
// schedule — admission bursts, a wedged worker, injected LLM faults,
// per-session rate limiting, brownout watermarks and a mid-run hot
// reload — and asserts the invariants that make overload behavior
// trustworthy rather than merely survivable:
//
//   * exactly-once: every submitted line is answered exactly once,
//     whether served, degraded or rejected;
//   * balance: after the drain, received == completed + failed +
//     rejected_{overload,invalid,ratelimit,shutdown} + stats +
//     reload requests (ServerStats::Balanced);
//   * drain terminates: Shutdown returns with the queue empty;
//   * economics: against a 100% faulty backend, the circuit breaker
//     reaches the backend >= 5x less often than the retry stack alone;
//   * identity: with every resilience knob off, concurrent responses
//     are byte-identical per id to a serial Handle() replay.
//
// The schedule is a pure function of request indices — no wall clock,
// no RNG beyond the fault injector's seeded per-prompt streams — so a
// failure reproduces bit-for-bit.
//
// Environment: GRED_BENCH_TRAIN_SIZE / GRED_BENCH_TEST_SIZE /
// GRED_BENCH_SEED (suite shape), GRED_CHAOS_REQUESTS (chaos trace
// length, default 200), GRED_SERVE_WORKERS (chaos worker count, default
// 2), GRED_BENCH_FAULT_RATE (chaos-phase LLM fault rate, default 0.2),
// GRED_BENCH_RETRIES (default 3), GRED_SERVE_BREAKER_FAILURES /
// GRED_SERVE_BREAKER_COOLDOWN (breaker knobs, defaults 5 / 8),
// GRED_CHAOS_JSON=<path> (machine-readable report for
// scripts/bench_report --chaos).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "llm/circuit_breaker.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using gred::json::Parse;
using gred::json::ParseResult;
using gred::json::Value;

/// The typed rejection taxonomy, keyed by the response's error string
/// (all three share code "Unavailable" — the string is the contract).
struct Taxonomy {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;  // served, ok=false (trips, translate errors)
  std::uint64_t overloaded = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t brownout = 0;  // served in degraded mode (subset of ok/failed)
};

void Classify(const std::string& response, Taxonomy* out) {
  ParseResult parsed = Parse(response);
  if (!parsed.ok()) return;
  const Value& obj = parsed.value();
  const Value* error = obj.Find("error");
  const std::string message =
      error != nullptr ? error->string_value() : std::string();
  if (message == "overloaded") {
    ++out->overloaded;
  } else if (message == "rate_limited") {
    ++out->rate_limited;
  } else if (message == "shutting_down") {
    ++out->shutting_down;
  } else {
    const Value* ok = obj.Find("ok");
    if (ok != nullptr && ok->bool_value()) {
      ++out->ok;
    } else {
      ++out->failed;
    }
  }
  const Value* degraded = obj.Find("degraded");
  if (degraded != nullptr && degraded->Find("brownout") != nullptr) {
    ++out->brownout;
  }
}

gred::llm::Prompt OneLinePrompt(std::size_t i) {
  return {{gred::llm::ChatMessage::Role::kUser,
           "chaos request " + std::to_string(i)}};
}

}  // namespace

int main() {
  using namespace gred;

  bool all_ok = true;
  auto check = [&all_ok](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "[bench] FAIL: %s\n", what);
      all_ok = false;
    }
    return condition;
  };

  dataset::BenchmarkOptions suite_options;
  suite_options.seed =
      bench::EnvSizeOrDie("GRED_BENCH_SEED", suite_options.seed);
  suite_options.train_size =
      bench::EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", suite_options.train_size);
  suite_options.test_size =
      bench::EnvSizeOrDie("GRED_BENCH_TEST_SIZE", suite_options.test_size);
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(suite_options);

  llm::SimulatedChatModel llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;

  const std::size_t num_requests =
      bench::EnvSizeOrDie("GRED_CHAOS_REQUESTS", 200);
  const std::size_t workers = bench::EnvSizeOrDie("GRED_SERVE_WORKERS", 2);
  const double fault_rate =
      bench::EnvRateOrDie("GRED_BENCH_FAULT_RATE", 0.2);
  const std::size_t retries = bench::EnvSizeOrDie("GRED_BENCH_RETRIES", 3);
  const std::size_t breaker_failures =
      bench::EnvSizeOrDie("GRED_SERVE_BREAKER_FAILURES", 5);
  const std::size_t breaker_cooldown =
      bench::EnvSizeOrDie("GRED_SERVE_BREAKER_COOLDOWN", 8);

  // -------------------------------------------------------------------
  // Phase A — dead-backend economics. Identical demand against a 100%
  // transiently-failing backend, once through the retry stack alone and
  // once with the breaker in front. The breaker must cut backend call
  // attempts by >= 5x: that is the whole argument for carrying it.
  std::uint64_t retry_only_attempts = 0;
  std::uint64_t breaker_attempts = 0;
  std::uint64_t breaker_fast_failures = 0;
  {
    llm::RetryConfig retry_config;
    retry_config.max_attempts = retries;

    bench::ResilientStack dead_a =
        bench::MakeResilientStack(&llm, 1.0, retries);
    bench::ResilientStack dead_b =
        bench::MakeResilientStack(&llm, 1.0, retries);
    llm::BreakerConfig breaker_config;
    breaker_config.failure_threshold = breaker_failures;
    breaker_config.open_cooldown = breaker_cooldown;
    llm::CircuitBreakerChatModel breaker(dead_b.active, breaker_config);

    for (std::size_t i = 0; i < num_requests; ++i) {
      (void)dead_a.active->Complete(OneLinePrompt(i), {});
      (void)breaker.Complete(OneLinePrompt(i), {});
    }
    retry_only_attempts = dead_a.injector->stats().calls;
    breaker_attempts = dead_b.injector->stats().calls;
    breaker_fast_failures = breaker.stats().fast_failures;
    check(breaker_attempts > 0, "breaker admitted no probes at all");
    check(retry_only_attempts >=
              5 * (breaker_attempts > 0 ? breaker_attempts : 1),
          "breaker saved < 5x backend attempts at 100% fault rate");
    // Shed demand is counted, never silently dropped.
    check(breaker.stats().admitted + breaker_fast_failures ==
              breaker.stats().calls,
          "breaker accounting does not balance");
  }

  // -------------------------------------------------------------------
  // Phase B — the chaos run. Every resilience knob armed at once:
  // injected LLM faults behind retry + breaker, sessioned rate
  // limiting, brownout watermarks over a small queue, a wedged worker,
  // bursty admission, and a hot reload halfway through the schedule.
  Taxonomy taxonomy;
  serve::ServerStats chaos_stats;
  bool exactly_once = true;
  bool balanced = false;
  std::uint64_t chaos_submitted = 0;
  {
    bench::ResilientStack stack =
        bench::MakeResilientStack(&llm, fault_rate, retries);
    llm::BreakerConfig breaker_config;
    breaker_config.failure_threshold = breaker_failures;
    breaker_config.open_cooldown = breaker_cooldown;
    llm::CircuitBreakerChatModel breaker(stack.active, breaker_config);

    core::Gred gred(corpus, &breaker);
    (void)gred.PrepareAnnotations(suite.databases);

    serve::ServerOptions options;
    options.num_workers = workers;
    options.queue_capacity = 8;
    options.include_timings = false;
    options.brownout_high_watermark = 4;
    options.brownout_low_watermark = 1;
    options.brownout_limits.row_budget = 64;
    // Refill below 1/num_sessions: each session's own admissions tick
    // the shared clock ~4x per own request, so 0.1/tick leaves a real
    // deficit and the buckets drain — the limiter genuinely fires.
    options.rate_burst = 4.0;
    options.rate_refill_per_request = 0.1;
    options.breaker = &breaker;
    // The reload epoch is a genuinely fresh build: a copied suite and a
    // new pipeline (annotated against the healthy backend) — in-flight
    // requests keep the epoch they snapshotted.
    options.reload_handler = [&suite, &llm]() -> Result<serve::EpochPayload> {
      auto new_suite = std::make_shared<dataset::BenchmarkSuite>(suite);
      models::TrainingCorpus new_corpus;
      new_corpus.train = &new_suite->train;
      new_corpus.databases = &new_suite->databases;
      auto new_gred = std::make_shared<core::Gred>(new_corpus, &llm);
      Result<std::size_t> prepared =
          new_gred->PrepareAnnotations(new_suite->databases);
      if (!prepared.ok()) return prepared.status();
      serve::EpochPayload payload;
      payload.suite = std::move(new_suite);
      payload.gred = std::move(new_gred);
      return payload;
    };
    serve::Server server(&suite, &gred, options);

    // One slot per scheduled line; ids are slot indices. Slot layout:
    // [0] the wedge, [1..num_requests] the trace, [num_requests+1] the
    // mid-run reload, [num_requests+2] a stats probe under load.
    const std::size_t slots = num_requests + 3;
    std::vector<std::atomic<int>> answered(slots);
    std::vector<std::string> responses(slots);
    std::mutex response_mu;
    auto record = [&](std::size_t slot) {
      return [&, slot](const std::string& response) {
        answered[slot].fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(response_mu);
        responses[slot] = response;
      };
    };
    auto translate_line = [&](std::size_t slot, std::size_t example,
                              const std::string& session) {
      const dataset::Example& ex =
          suite.test_clean[example % suite.test_clean.size()];
      Value request = Value::Object();
      request.Set("id", Value::Int(static_cast<std::int64_t>(slot)));
      request.Set("nlq", Value::Str(ex.nlq));
      request.Set("db", Value::Str(ex.db_name));
      request.Set("session", Value::Str(session));
      request.Set("chart", Value::Bool(false));
      return request.Dump();
    };

    // The wedge: submitted first (empty queue, fresh session, so its
    // admission is certain), its completion callback blocks one worker
    // until the schedule releases it — a stand-in for a stuck client or
    // a pathologically slow request.
    std::promise<void> wedge_started;
    std::promise<void> wedge_release;
    std::shared_future<void> wedge_future = wedge_release.get_future().share();
    server.Submit(translate_line(0, 0, "wedge"),
                  [&](const std::string& response) {
                    answered[0].fetch_add(1, std::memory_order_relaxed);
                    {
                      std::lock_guard<std::mutex> lock(response_mu);
                      responses[0] = response;
                    }
                    wedge_started.set_value();
                    wedge_future.wait();
                  });
    ++chaos_submitted;
    wedge_started.get_future().wait();  // one worker is now wedged

    // The burst schedule: requests land in bursts of 16 across four
    // sessions, with the queue deliberately smaller than a burst.
    for (std::size_t i = 0; i < num_requests; ++i) {
      const std::size_t slot = i + 1;
      server.Submit(
          translate_line(slot, i, "s" + std::to_string(i % 4)),
          record(slot));
      ++chaos_submitted;
      if (i == num_requests / 2) {
        Value reload = Value::Object();
        reload.Set("id",
                   Value::Int(static_cast<std::int64_t>(num_requests + 1)));
        reload.Set("type", Value::Str("reload"));
        server.Submit(reload.Dump(), record(num_requests + 1));
        ++chaos_submitted;
      }
      if (i == (3 * num_requests) / 4) {
        Value stats_req = Value::Object();
        stats_req.Set("id",
                      Value::Int(static_cast<std::int64_t>(num_requests + 2)));
        stats_req.Set("type", Value::Str("stats"));
        server.Submit(stats_req.Dump(), record(num_requests + 2));
        ++chaos_submitted;
      }
      if ((i + 1) % 16 == 0) {
        // End of burst: give workers one scheduling quantum, so bursts
        // hit a partially drained queue instead of pure lockstep.
        std::this_thread::yield();
      }
    }

    wedge_release.set_value();
    server.Shutdown();  // must terminate: this IS the drain invariant

    chaos_stats = server.stats();
    balanced = chaos_stats.Balanced();
    check(balanced, "chaos counters do not balance after drain");
    check(chaos_stats.queue_depth == 0, "jobs lingered after drain");
    check(chaos_stats.received == chaos_submitted,
          "received != submitted lines");
    for (std::size_t slot = 0; slot < slots; ++slot) {
      const int count = answered[slot].load(std::memory_order_relaxed);
      if (count != 1) {
        std::fprintf(stderr,
                     "[bench] FAIL: slot %zu answered %d times "
                     "(expected 1)\n",
                     slot, count);
        exactly_once = false;
      }
    }
    all_ok = all_ok && exactly_once;
    for (const std::string& response : responses) {
      if (!response.empty()) Classify(response, &taxonomy);
    }
    check(chaos_stats.reloads_ok == 1, "mid-run reload did not land");
    check(chaos_stats.epoch == 2, "epoch did not advance after reload");
    // Limiter outcomes depend only on the (serial) submission order, so
    // this is deterministic; tiny smoke schedules drain no bucket.
    check(num_requests < 48 || taxonomy.rate_limited > 0,
          "rate limiter never fired over a draining schedule");
  }

  // -------------------------------------------------------------------
  // Phase C — knobs-off identity. Same server code, every resilience
  // knob off, no faults: the concurrent transcript must be
  // byte-identical per id to the serial Handle() replay.
  bool identity_ok = true;
  const std::size_t identity_requests = std::min<std::size_t>(
      num_requests, suite.test_clean.size());
  {
    core::Gred gred(corpus, &llm);
    (void)gred.PrepareAnnotations(suite.databases);

    serve::ServerOptions options;
    options.num_workers = workers;
    // The queue covers the whole trace: nothing sheds, so the
    // concurrent transcript and the serial replay see identical work.
    options.queue_capacity = std::max<std::size_t>(identity_requests, 1);
    options.include_timings = false;

    std::vector<std::string> trace;
    for (std::size_t i = 0; i < identity_requests; ++i) {
      const dataset::Example& ex = suite.test_clean[i];
      Value request = Value::Object();
      request.Set("id", Value::Int(static_cast<std::int64_t>(i)));
      request.Set("nlq", Value::Str(ex.nlq));
      request.Set("db", Value::Str(ex.db_name));
      trace.push_back(request.Dump());
    }

    std::vector<std::string> serial(identity_requests);
    {
      serve::Server reference(&suite, &gred, options);
      for (std::size_t i = 0; i < identity_requests; ++i) {
        serial[i] = reference.Handle(trace[i]);
      }
    }
    std::vector<std::string> concurrent(identity_requests);
    {
      serve::Server server(&suite, &gred, options);
      for (std::size_t i = 0; i < identity_requests; ++i) {
        server.Submit(trace[i], [&concurrent, i](const std::string& r) {
          concurrent[i] = r;
        });
      }
      server.Shutdown();
      check(server.stats().Balanced(), "identity-phase counters unbalanced");
    }
    for (std::size_t i = 0; i < identity_requests; ++i) {
      if (serial[i] != concurrent[i]) {
        std::fprintf(stderr,
                     "[bench] FAIL: knobs-off response %zu diverged from "
                     "serial replay\n",
                     i);
        identity_ok = false;
      }
    }
    all_ok = all_ok && identity_ok;
  }

  // -------------------------------------------------------------------
  // Report
  const double attempt_ratio =
      breaker_attempts > 0 ? static_cast<double>(retry_only_attempts) /
                                 static_cast<double>(breaker_attempts)
                           : 0.0;
  std::printf("\nChaos sweep: %zu chaos requests, %zu workers, fault rate "
              "%.2f, breaker %zu/%zu\n",
              num_requests, workers, fault_rate, breaker_failures,
              breaker_cooldown);
  std::printf("economics: retry-only %llu backend attempts vs breaker %llu "
              "(%.1fx saved, %llu fast-failed)\n",
              static_cast<unsigned long long>(retry_only_attempts),
              static_cast<unsigned long long>(breaker_attempts),
              attempt_ratio,
              static_cast<unsigned long long>(breaker_fast_failures));
  std::printf("chaos: %llu submitted -> %llu ok, %llu failed, %llu "
              "overloaded, %llu rate-limited, %llu shutting-down, %llu "
              "browned-out; exactly-once %s, balanced %s\n",
              static_cast<unsigned long long>(chaos_submitted),
              static_cast<unsigned long long>(taxonomy.ok),
              static_cast<unsigned long long>(taxonomy.failed),
              static_cast<unsigned long long>(taxonomy.overloaded),
              static_cast<unsigned long long>(taxonomy.rate_limited),
              static_cast<unsigned long long>(taxonomy.shutting_down),
              static_cast<unsigned long long>(taxonomy.brownout),
              exactly_once ? "ok" : "FAILED", balanced ? "ok" : "FAILED");
  std::printf("identity: %zu knobs-off requests %s the serial replay\n",
              identity_requests,
              identity_ok ? "byte-identical to" : "DIVERGED from");

  if (const char* out_path = std::getenv("GRED_CHAOS_JSON")) {
    Value report = Value::Object();
    report.Set("schema", Value::Str("gredvis-bench-chaos/1"));
    Value economics = Value::Object();
    economics.Set("requests",
                  Value::Int(static_cast<std::int64_t>(num_requests)));
    economics.Set("retry_only_attempts",
                  Value::Int(static_cast<std::int64_t>(retry_only_attempts)));
    economics.Set("breaker_attempts",
                  Value::Int(static_cast<std::int64_t>(breaker_attempts)));
    economics.Set("attempts_saved_ratio", Value::Number(attempt_ratio));
    economics.Set("breaker_fast_failures",
                  Value::Int(static_cast<std::int64_t>(breaker_fast_failures)));
    economics.Set("failure_threshold",
                  Value::Int(static_cast<std::int64_t>(breaker_failures)));
    economics.Set("open_cooldown",
                  Value::Int(static_cast<std::int64_t>(breaker_cooldown)));
    report.Set("economics", std::move(economics));

    Value chaos = Value::Object();
    chaos.Set("submitted",
              Value::Int(static_cast<std::int64_t>(chaos_submitted)));
    chaos.Set("workers", Value::Int(static_cast<std::int64_t>(workers)));
    chaos.Set("fault_rate", Value::Number(fault_rate));
    chaos.Set("ok", Value::Int(static_cast<std::int64_t>(taxonomy.ok)));
    chaos.Set("failed",
              Value::Int(static_cast<std::int64_t>(taxonomy.failed)));
    chaos.Set("rejected_overload",
              Value::Int(static_cast<std::int64_t>(taxonomy.overloaded)));
    chaos.Set("rejected_ratelimit",
              Value::Int(static_cast<std::int64_t>(taxonomy.rate_limited)));
    chaos.Set("rejected_shutdown",
              Value::Int(static_cast<std::int64_t>(taxonomy.shutting_down)));
    chaos.Set("degraded_brownout",
              Value::Int(static_cast<std::int64_t>(
                  chaos_stats.degraded_brownout)));
    chaos.Set("reloads_ok",
              Value::Int(static_cast<std::int64_t>(chaos_stats.reloads_ok)));
    chaos.Set("epoch",
              Value::Int(static_cast<std::int64_t>(chaos_stats.epoch)));
    chaos.Set("exactly_once", Value::Bool(exactly_once));
    chaos.Set("balanced", Value::Bool(balanced));
    report.Set("chaos", std::move(chaos));

    Value identity = Value::Object();
    identity.Set("requests",
                 Value::Int(static_cast<std::int64_t>(identity_requests)));
    identity.Set("replay_identical", Value::Bool(identity_ok));
    report.Set("identity", std::move(identity));

    std::ofstream out(out_path);
    out << report.Dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "[bench] FAIL: could not write %s\n", out_path);
      return 1;
    }
    std::printf("wrote %s\n", out_path);
  }

  return all_ok ? 0 : 1;
}
