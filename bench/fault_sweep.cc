// Fault-tolerance sweep: GRED accuracy as a function of the injected
// transient-fault rate.
//
// For each rate a fresh fault-injecting + retrying decorator stack wraps
// the simulated LLM (transient errors at the rate, truncated and
// garbage-prefixed completions at half the rate each) and a fresh GRED
// instance is evaluated on nvBench-Rob_nlq. The table reports accuracy
// next to how often the retuner/debugger stages degraded (fell back to
// the previous stage's DVQ), how many calls the retrier saved, and the
// simulated backoff the retries would have cost.
//
// Fault draws are a pure function of (seed, prompt, attempt) and the
// annotation cache is prewarmed serially, so the whole table is
// deterministic across repeats and GRED_BENCH_THREADS settings.
//
// GRED_BENCH_FAULT_RATE (when set) narrows the sweep to that single
// rate; GRED_BENCH_RETRIES (default 3) sets attempts per LLM call.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/common.h"
#include "util/strings.h"
#include "util/table_printer.h"

int main() {
  using namespace gred;

  bench::BenchContext context;
  std::vector<double> rates = {0.0, 0.05, 0.10, 0.20, 0.30};
  if (std::getenv("GRED_BENCH_FAULT_RATE") != nullptr) {
    rates = {context.fault_rate()};
  }
  std::size_t retries = context.retries();

  TablePrinter table({"Fault rate", "Acc.", "Errors", "Deg. RTN", "Deg. DBG",
                      "Retries", "Exhausted", "Backoff (s)"});
  for (double rate : rates) {
    bench::ResilientStack stack =
        bench::MakeResilientStack(&context.llm(), rate, retries);
    std::unique_ptr<core::Gred> gred = context.MakeGred({}, stack.active);
    // Resolve every annotation serially before the parallel evaluation:
    // each schema's annotation outcome (success or cached failure) is
    // then fixed independently of eval thread interleaving.
    Result<std::size_t> prepared =
        gred->PrepareAnnotations(context.suite().databases);
    std::fprintf(stderr,
                 "[bench] fault rate %.2f: %zu/%zu databases annotated\n",
                 rate, prepared.value_or(0),
                 context.suite().databases.size());
    eval::EvalResult result =
        eval::Evaluate(*gred, context.suite().test_nlq,
                       context.suite().databases, "nvBench-Rob_nlq");
    core::Gred::StageStats stages = gred->stage_stats();
    llm::RetryingChatModel::Stats retry_stats;
    double backoff_seconds = 0.0;
    if (stack.retrier != nullptr) {
      retry_stats = stack.retrier->stats();
      backoff_seconds = stack.retrier->simulated_backoff().seconds();
    }
    table.AddRow({strings::Format("%.2f", rate),
                  FormatPercent(result.counts.OverallAcc()),
                  std::to_string(result.counts.errors),
                  std::to_string(stages.retune_degraded),
                  std::to_string(stages.debug_degraded),
                  std::to_string(retry_stats.retries),
                  std::to_string(retry_stats.exhausted),
                  strings::Format("%.2f", backoff_seconds)});
  }
  std::printf("\nFault sweep: GRED on nvBench-Rob_nlq (%zu attempts/call)\n",
              retries);
  std::printf("%s", table.ToString().c_str());
  return 0;
}
