// Split-regime experiment: the paper's numbers are reported on the
// no-cross-domain split (test databases also appear in training, which
// is what lets memorization-heavy baselines look strong — Section 3).
// This bench contrasts that with a cross-domain split where test
// databases are held out of training entirely: the baselines' clean-set
// accuracy collapses even *without* any robustness perturbation, while
// GRED's retrieval-augmented design degrades far more gently.

#include <cstdio>

#include "bench/common.h"
#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "util/table_printer.h"

namespace {

using namespace gred;

struct Row {
  std::string model;
  double clean = 0.0;
  double rob_both = 0.0;
};

std::vector<Row> RunRegime(bool cross_domain) {
  dataset::BenchmarkOptions options;
  options.cross_domain = cross_domain;
  options.train_size =
      bench::EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", options.train_size);
  options.test_size =
      bench::EnvSizeOrDie("GRED_BENCH_TEST_SIZE", options.test_size);
  std::fprintf(stderr, "[bench] building %s-domain suite...\n",
               cross_domain ? "cross" : "no-cross");
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  llm::SimulatedChatModel llm;
  models::Seq2Vis seq2vis(corpus);
  models::TransformerModel transformer(corpus);
  models::RGVisNet rgvisnet(corpus);
  core::Gred gred(corpus, &llm);

  std::vector<Row> rows;
  for (const models::TextToVisModel* model :
       {static_cast<const models::TextToVisModel*>(&seq2vis),
        static_cast<const models::TextToVisModel*>(&transformer),
        static_cast<const models::TextToVisModel*>(&rgvisnet),
        static_cast<const models::TextToVisModel*>(&gred)}) {
    std::fprintf(stderr, "[bench] %s (%s-domain)...\n",
                 model->name().c_str(), cross_domain ? "cross" : "no-cross");
    Row row;
    row.model = model->name();
    row.clean = eval::Evaluate(*model, suite.test_clean, suite.databases,
                               "clean")
                    .counts.OverallAcc();
    row.rob_both = eval::Evaluate(*model, suite.test_both,
                                  suite.databases_rob, "rob_both")
                       .counts.OverallAcc();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main() {
  std::vector<Row> in_domain = RunRegime(false);
  std::vector<Row> cross = RunRegime(true);
  std::printf(
      "\nSplit-regime experiment: overall accuracy, no-cross-domain "
      "(paper's setting) vs cross-domain (held-out databases)\n");
  gred::TablePrinter table({"Model", "clean (no-cross)", "clean (cross)",
                            "rob_both (no-cross)", "rob_both (cross)"});
  for (std::size_t i = 0; i < in_domain.size(); ++i) {
    table.AddRow({in_domain[i].model,
                  gred::FormatPercent(in_domain[i].clean),
                  gred::FormatPercent(cross[i].clean),
                  gred::FormatPercent(in_domain[i].rob_both),
                  gred::FormatPercent(cross[i].rob_both)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
