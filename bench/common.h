#ifndef GREDVIS_BENCH_COMMON_H_
#define GREDVIS_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/resilient.h"
#include "llm/sim_llm.h"
#include "models/model.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"

namespace gred::bench {

/// Reads a positive-integer environment override. Unset returns
/// `fallback`; anything that does not parse as a strictly positive
/// integer (garbage, sign, zero, overflow) prints a clear message to
/// stderr and exits(2) — a mistyped override must not silently fall
/// back and burn a long benchmark run on the wrong configuration.
std::size_t EnvSizeOrDie(const char* name, std::size_t fallback);

/// Reads a probability environment override in [0, 1]. Same strictness
/// as EnvSizeOrDie: unset returns `fallback`, anything else that does
/// not parse as a number in range exits(2).
double EnvRateOrDie(const char* name, double fallback);

/// Reads a boolean environment override: unset returns `fallback`, "0"
/// is false, "1" is true, anything else prints a message and exits(2).
/// (EnvSizeOrDie cannot express "0 = off", hence the separate helper.)
bool EnvFlagOrDie(const char* name, bool fallback);

/// Builds the fault/retry decorator stack around `base` from the given
/// knobs. With `fault_rate == 0` the stack is empty and `base` itself is
/// the active model (so fault-free runs are bit-identical to a run with
/// no decorators at all). With a nonzero rate the injector fires
/// transient faults at `fault_rate` and corrupts completions (truncation
/// and garbage prefixes) at half that rate each, and the retrier makes
/// up to `retries` attempts per call.
struct ResilientStack {
  std::unique_ptr<llm::FaultInjectingChatModel> injector;
  std::unique_ptr<llm::RetryingChatModel> retrier;
  const llm::ChatModel* active = nullptr;  // top of the stack (or `base`)
};
ResilientStack MakeResilientStack(const llm::ChatModel* base,
                                  double fault_rate, std::size_t retries);

/// Shared experiment context: the benchmark suite, the simulated LLM and
/// all four systems, built once per binary.
///
/// Environment overrides (for quick local runs):
///   GRED_BENCH_TRAIN_SIZE, GRED_BENCH_TEST_SIZE, GRED_BENCH_SEED
///   (suite shape) and GRED_BENCH_THREADS (eval worker count; default
///   hardware concurrency), all validated up front via EnvSizeOrDie;
///   GRED_BENCH_FAULT_RATE (probability of an injected transient LLM
///   fault per call, default 0 = no fault layer, validated via
///   EnvRateOrDie) and GRED_BENCH_RETRIES (LLM attempts per call when
///   the fault layer is active, default 3);
///   GRED_BENCH_DEADLINE (per-example accounted-tick deadline) and
///   GRED_BENCH_ROW_BUDGET (per-example materialized-row budget), both
///   default unset = unguarded — when set they arm the eval watchdog
///   and GRED's per-stage budgets (util/resource_guard.h);
///   GRED_BENCH_LINT=1 turns on the static analysis gate (DESIGN.md
///   §12): GRED rejects stage candidates carrying error-level
///   diagnostics, and eval tallies per-code diagnostics over every
///   parsed prediction (reported on stderr; stdout tables unchanged).
class BenchContext {
 public:
  BenchContext();

  const dataset::BenchmarkSuite& suite() const { return suite_; }
  const llm::SimulatedChatModel& llm() const { return llm_; }
  const models::TrainingCorpus& corpus() const { return corpus_; }

  /// The chat model GRED talks to: the bare simulated LLM, or the
  /// fault-injecting + retrying stack when GRED_BENCH_FAULT_RATE > 0.
  const llm::ChatModel* chat_model() const { return stack_.active; }
  double fault_rate() const { return fault_rate_; }
  std::size_t retries() const { return retries_; }

  /// Per-example resource limits from GRED_BENCH_DEADLINE /
  /// GRED_BENCH_ROW_BUDGET (all-zero when neither is set).
  const GuardLimits& guard_limits() const { return guard_limits_; }

  /// Whether GRED_BENCH_LINT armed the static analysis gate.
  bool lint() const { return lint_; }

  /// The three baselines, in paper order.
  std::vector<const models::TextToVisModel*> Baselines() const;

  const core::Gred& gred() const { return *gred_; }

  /// Builds a GRED variant for the ablation table (same chat model /
  /// fault stack as `gred()`).
  std::unique_ptr<core::Gred> MakeGred(core::GredConfig config) const;

  /// Builds a GRED variant against an explicit chat model (for fault
  /// sweeps that need a fresh decorator stack per configuration).
  std::unique_ptr<core::Gred> MakeGred(core::GredConfig config,
                                       const llm::ChatModel* chat) const;

 private:
  dataset::BenchmarkSuite suite_;
  llm::SimulatedChatModel llm_;
  double fault_rate_ = 0.0;
  std::size_t retries_ = 3;
  bool lint_ = false;
  GuardLimits guard_limits_;
  ResilientStack stack_;
  models::TrainingCorpus corpus_;
  std::unique_ptr<models::Seq2Vis> seq2vis_;
  std::unique_ptr<models::TransformerModel> transformer_;
  std::unique_ptr<models::RGVisNet> rgvisnet_;
  std::unique_ptr<core::Gred> gred_;
};

/// Prints one paper-style results table (Vis/Data/Axis/Overall columns).
void PrintResultsTable(const std::string& title,
                       const std::vector<eval::EvalResult>& results);

/// Runs every given model over a test set. `databases` must be the corpus
/// the test set's DVQs are written against.
///
/// Evaluation is parallel by default (GRED_BENCH_THREADS workers, else
/// hardware concurrency) and reports per-model wall clock plus a stage
/// breakdown (translate / execute, and for GRED the retrieval / retune /
/// debug pipeline stages) on stderr.
std::vector<eval::EvalResult> RunModels(
    const std::vector<const models::TextToVisModel*>& models,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name);

}  // namespace gred::bench

#endif  // GREDVIS_BENCH_COMMON_H_
