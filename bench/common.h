#ifndef GREDVIS_BENCH_COMMON_H_
#define GREDVIS_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "models/model.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"

namespace gred::bench {

/// Reads a positive-integer environment override. Unset returns
/// `fallback`; anything that does not parse as a strictly positive
/// integer (garbage, sign, zero, overflow) prints a clear message to
/// stderr and exits(2) — a mistyped override must not silently fall
/// back and burn a long benchmark run on the wrong configuration.
std::size_t EnvSizeOrDie(const char* name, std::size_t fallback);

/// Shared experiment context: the benchmark suite, the simulated LLM and
/// all four systems, built once per binary.
///
/// Environment overrides (for quick local runs):
///   GRED_BENCH_TRAIN_SIZE, GRED_BENCH_TEST_SIZE, GRED_BENCH_SEED
///   (suite shape) and GRED_BENCH_THREADS (eval worker count; default
///   hardware concurrency). All are validated up front via EnvSizeOrDie.
class BenchContext {
 public:
  BenchContext();

  const dataset::BenchmarkSuite& suite() const { return suite_; }
  const llm::SimulatedChatModel& llm() const { return llm_; }
  const models::TrainingCorpus& corpus() const { return corpus_; }

  /// The three baselines, in paper order.
  std::vector<const models::TextToVisModel*> Baselines() const;

  const core::Gred& gred() const { return *gred_; }

  /// Builds a GRED variant for the ablation table.
  std::unique_ptr<core::Gred> MakeGred(core::GredConfig config) const;

 private:
  dataset::BenchmarkSuite suite_;
  llm::SimulatedChatModel llm_;
  models::TrainingCorpus corpus_;
  std::unique_ptr<models::Seq2Vis> seq2vis_;
  std::unique_ptr<models::TransformerModel> transformer_;
  std::unique_ptr<models::RGVisNet> rgvisnet_;
  std::unique_ptr<core::Gred> gred_;
};

/// Prints one paper-style results table (Vis/Data/Axis/Overall columns).
void PrintResultsTable(const std::string& title,
                       const std::vector<eval::EvalResult>& results);

/// Runs every given model over a test set. `databases` must be the corpus
/// the test set's DVQs are written against.
///
/// Evaluation is parallel by default (GRED_BENCH_THREADS workers, else
/// hardware concurrency) and reports per-model wall clock plus a stage
/// breakdown (translate / execute, and for GRED the retrieval / retune /
/// debug pipeline stages) on stderr.
std::vector<eval::EvalResult> RunModels(
    const std::vector<const models::TextToVisModel*>& models,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name);

}  // namespace gred::bench

#endif  // GREDVIS_BENCH_COMMON_H_
