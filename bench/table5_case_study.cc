// Reproduces Table 5 / Figure 5 (and the Appendix B analysis): a case
// study on an employees-domain question. Every model's DVQ is printed
// together with the chart it produces against the perturbed database —
// or the "no chart" failure when the DVQ references hallucinated schema.
// The same plan is first shown on the clean test set (Appendix B's
// "correct case"), then on the dual-variant robustness set.

#include <cstdio>

#include "bench/common.h"
#include "dvq/components.h"
#include "viz/chart.h"
#include "viz/svg.h"

#include <fstream>

namespace {

void ShowCase(const gred::bench::BenchContext& context,
              const gred::dataset::Example& example,
              const std::vector<gred::dataset::GeneratedDatabase>& dbs,
              const char* title) {
  const gred::dataset::GeneratedDatabase* db = nullptr;
  for (const auto& candidate : dbs) {
    if (candidate.data.name() == example.db_name) db = &candidate;
  }
  std::printf("==== %s ====\n", title);
  std::printf("NLQ:        %s\n", example.nlq.c_str());
  std::printf("Target DVQ: %s\n\n", example.DvqText().c_str());

  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());
  for (const auto* model : models) {
    gred::Result<gred::dvq::DVQ> pred = model->Translate(example.nlq,
                                                         db->data);
    std::printf("--- %s ---\n", model->name().c_str());
    if (!pred.ok()) {
      std::printf("(no DVQ generated: %s)\n\n",
                  pred.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", pred.value().ToString().c_str());
    gred::Result<gred::viz::Chart> chart =
        gred::viz::BuildChart(pred.value(), db->data);
    if (!chart.ok()) {
      std::printf("=> no chart produced (%s)\n\n",
                  chart.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", gred::viz::RenderAscii(chart.value(), 48, 8).c_str());
  }
  // The target chart, for reference, plus a Figure-5-style SVG on disk.
  gred::Result<gred::viz::Chart> target =
      gred::viz::BuildChart(example.dvq, db->data);
  if (target.ok()) {
    std::printf("--- Target chart ---\n%s\n",
                gred::viz::RenderAscii(target.value(), 48, 8).c_str());
    std::printf("--- Target Vega-Lite spec ---\n%s\n\n",
                gred::viz::ToVegaLite(target.value()).Dump(2).c_str());
    std::string svg_path =
        std::string("fig5_") + example.id + "_target.svg";
    std::ofstream svg(svg_path);
    svg << gred::viz::RenderSvg(target.value());
    std::printf("(SVG written to %s)\n\n", svg_path.c_str());
  }
}

}  // namespace

int main() {
  gred::bench::BenchContext context;
  const gred::dataset::BenchmarkSuite& suite = context.suite();

  // Pick a case shaped like the paper's: a sorted bar chart where the
  // previous SOTA (RGVisNet) fails on the dual-variant input but GRED
  // recovers the exact target.
  std::size_t pick = 0;
  bool found = false;
  for (std::size_t i = 0; i < suite.test_both.size() && !found; ++i) {
    const gred::dataset::Example& ex = suite.test_both[i];
    if (ex.dvq.chart != gred::dvq::ChartType::kBar ||
        !ex.dvq.query.order_by.has_value() ||
        ex.dvq.query.select.size() != 2) {
      continue;
    }
    const gred::dataset::GeneratedDatabase* db =
        suite.FindRobDb(ex.db_name);
    if (db == nullptr) continue;
    gred::Result<gred::dvq::DVQ> sota =
        context.Baselines()[2]->Translate(ex.nlq, db->data);
    gred::Result<gred::dvq::DVQ> ours =
        context.gred().Translate(ex.nlq, db->data);
    bool sota_ok = sota.ok() && gred::dvq::OverallMatch(sota.value(), ex.dvq);
    bool ours_ok = ours.ok() && gred::dvq::OverallMatch(ours.value(), ex.dvq);
    if (!sota_ok && ours_ok) {
      pick = i;
      found = true;
    }
  }

  ShowCase(context, suite.test_clean[pick], suite.databases,
           "Appendix B (a): original nvBench test case");
  ShowCase(context, suite.test_both[pick], suite.databases_rob,
           "Table 5: the same case under nvBench-Rob_(nlq,schema)");
  return 0;
}
