// Repair + cost-analysis sweep (DESIGN.md §17): what the static repair
// engine buys over the lint gate alone, and how the abstract cost
// estimator calibrates against real executor charges.
//
// Part 1 — repair vs lint under candidate corruption. A deterministic
// corrupting decorator sits between GRED and the simulated LLM: at rate
// p it misspells one column name in any completion carrying a DVQ (the
// generator / retuner / debugger answers), modelling a model that gets
// the query shape right but fumbles an identifier. Three pipelines run
// over nvBench-Rob_nlq at each rate — gate off, lint gate, lint +
// repair. The run FAILS (nonzero exit) unless, at every rate > 0, the
// repair gate strictly reduces lint rejections and its accuracy is at
// least the lint-only pipeline's.
//
// Part 2 — cost-gate calibration. Every subquery-free target DVQ of the
// test split is priced by analysis::CostEstimator and then executed
// unguarded to measure its real ExecContext charges. With every budget
// set to the corpus-wide maximum estimate the gate must reject nothing
// (zero false rejections — the estimate is an upper bound and the guard
// trips strictly above the limit) and no execution may trip. At tighter
// budgets (fractions of that maximum) the sweep counts gated vs
// actually-tripping queries; soundness demands zero "missed" trips (a
// query that trips at runtime but was not gated would disprove the
// upper bound).
//
// GRED_ANALYSIS_JSON=<path> additionally writes the machine-readable
// report consumed by scripts/bench_report --analysis.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analysis/cost_estimator.h"
#include "bench/common.h"
#include "dvq/parser.h"
#include "exec/executor.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using namespace gred;
using json::Value;

/// Decorator that misspells one select-column name in DVQ-bearing
/// completions. The corruption decision hashes the completion text, so
/// it is deterministic, thread-safe without state, and identical across
/// the pipelines being compared (every variant sees the same faults).
class CorruptingChatModel final : public llm::ChatModel {
 public:
  CorruptingChatModel(const llm::ChatModel* inner, double rate)
      : inner_(inner),
        threshold_(static_cast<std::size_t>(rate * 1000.0)) {}

  Result<std::string> Complete(const llm::Prompt& prompt,
                               const llm::ChatOptions& options) const override {
    Result<std::string> result = inner_->Complete(prompt, options);
    if (!result.ok()) return result;
    return Corrupt(std::move(result.value()));
  }

  std::size_t corrupted() const {
    return corrupted_.load(std::memory_order_relaxed);
  }

 private:
  std::string Corrupt(std::string completion) const {
    const std::size_t at = completion.find("Visualize ");
    if (at == std::string::npos) return completion;
    const std::size_t end = completion.find('\n', at);
    const std::string text =
        completion.substr(at, end == std::string::npos ? end : end - at);
    if (std::hash<std::string>{}(text) % 1000 >= threshold_) return completion;
    Result<dvq::DVQ> parsed = dvq::Parse(text);
    if (!parsed.ok()) return completion;
    dvq::DVQ mutant = parsed.value();
    dvq::ColumnRef* victim = nullptr;
    for (dvq::SelectExpr& e : mutant.query.select) {
      if (e.col.column != "*") {
        victim = &e.col;
        break;
      }
    }
    if (victim == nullptr) return completion;
    victim->column.push_back(victim->column.back());  // "city" -> "cityy"
    corrupted_.fetch_add(1, std::memory_order_relaxed);
    std::string tail =
        end == std::string::npos ? std::string() : completion.substr(end);
    return completion.substr(0, at) + mutant.ToString() + tail;
  }

  const llm::ChatModel* inner_;
  std::size_t threshold_;  // corrupt when hash(text) % 1000 < threshold_
  mutable std::atomic<std::size_t> corrupted_{0};
};

const dataset::GeneratedDatabase* FindDb(
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& name) {
  for (const dataset::GeneratedDatabase& db : databases) {
    if (strings::EqualsIgnoreCase(db.data.name(), name)) return &db;
  }
  return nullptr;
}

bool HasSubquery(const dvq::Query& q) {
  if (!q.where.has_value()) return false;
  for (const dvq::Predicate& p : q.where->predicates) {
    if (p.subquery != nullptr) return true;
  }
  return false;
}

Value U64(std::uint64_t v) {
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return Value::Int(static_cast<std::int64_t>(std::min(v, kMax)));
}

struct PipelineRow {
  std::string name;
  bool lint = false;
  bool repair = false;
  double overall_acc = 0.0;
  double exec_acc = 0.0;
  std::size_t errors = 0;
  std::uint64_t lint_rejections = 0;
  std::uint64_t repairs = 0;
};

struct FractionRow {
  double fraction = 0.0;
  std::size_t gated = 0;
  std::size_t tripped = 0;
  std::size_t preempted = 0;  // tripped && gated
  std::size_t missed = 0;     // tripped && !gated — must be 0
};

}  // namespace

int main() {
  bench::BenchContext context;
  const std::vector<dataset::Example>& test = context.suite().test_nlq;
  const std::vector<dataset::GeneratedDatabase>& databases =
      context.suite().databases;

  // --- Part 1: repair vs lint under candidate corruption ----------------
  const std::vector<double> rates = {0.0, 0.15, 0.35, 0.6};
  TablePrinter sweep_table({"Rate", "Pipeline", "Acc.", "Exec. Acc.",
                            "Errors", "Lint rejections", "Repairs"});
  Value sweep_json = Value::Array();
  bool repair_vs_lint_ok = true;
  std::uint64_t total_repairs = 0;
  for (double rate : rates) {
    CorruptingChatModel corrupter(context.chat_model(), rate);
    std::vector<core::GredConfig> configs(3);
    configs[0].name_suffix = "";
    configs[1].enable_lint = true;
    configs[1].name_suffix = " +lint";
    configs[2].enable_lint = true;
    configs[2].enable_repair = true;
    configs[2].name_suffix = " +lint+repair";
    std::vector<PipelineRow> rows;
    for (core::GredConfig config : configs) {
      config.stage_limits = context.guard_limits();
      const bool lint = config.enable_lint;
      const bool repair = config.enable_repair;
      core::Gred gred(context.corpus(), &corrupter, std::move(config));
      (void)gred.PrepareAnnotations(databases);
      eval::EvalOptions options;
      options.lint = lint;
      core::Gred::StageStats before = gred.stage_stats();
      eval::EvalResult result = eval::Evaluate(gred, test, databases,
                                               "nvBench-Rob_nlq", nullptr,
                                               options);
      core::Gred::StageStats after = gred.stage_stats();
      PipelineRow row;
      row.name = gred.name();
      row.lint = lint;
      row.repair = repair;
      row.overall_acc = result.counts.OverallAcc();
      row.exec_acc = result.counts.ExecutionAcc();
      row.errors = result.counts.errors;
      row.lint_rejections =
          (after.retune_lint_trips - before.retune_lint_trips) +
          (after.debug_lint_trips - before.debug_lint_trips);
      row.repairs = (after.retune_repairs - before.retune_repairs) +
                    (after.debug_repairs - before.debug_repairs);
      total_repairs += row.repairs;
      rows.push_back(row);
      sweep_table.AddRow({strings::Format("%.2f", rate), row.name,
                          FormatPercent(row.overall_acc),
                          FormatPercent(row.exec_acc),
                          std::to_string(row.errors),
                          std::to_string(row.lint_rejections),
                          std::to_string(row.repairs)});
    }
    // The repair gate must beat lint-only wherever there is anything to
    // repair: strictly fewer rejections, no accuracy loss. Even at rate
    // 0 the uncorrupted pipeline can produce rejectable candidates (the
    // simulated LLM hallucinates names at corpus scale), so the rule is
    // uniform: any lint-only rejections demand a strict reduction, and
    // a rejection-free lint run demands the repair side stay at zero.
    const PipelineRow& lint_row = rows[1];
    const PipelineRow& repair_row = rows[2];
    if (lint_row.lint_rejections > 0) {
      if (repair_row.lint_rejections >= lint_row.lint_rejections) {
        repair_vs_lint_ok = false;
        std::fprintf(stderr,
                     "[bench] FAIL: rate %.2f: repair rejections %llu not "
                     "strictly below lint-only %llu\n",
                     rate,
                     static_cast<unsigned long long>(repair_row.lint_rejections),
                     static_cast<unsigned long long>(lint_row.lint_rejections));
      }
    } else if (repair_row.lint_rejections != 0) {
      repair_vs_lint_ok = false;
      std::fprintf(stderr,
                   "[bench] FAIL: rate %.2f: repair rejections %llu with a "
                   "rejection-free lint run\n",
                   rate,
                   static_cast<unsigned long long>(repair_row.lint_rejections));
    }
    if (repair_row.overall_acc < lint_row.overall_acc ||
        repair_row.exec_acc < lint_row.exec_acc) {
      repair_vs_lint_ok = false;
      std::fprintf(stderr,
                   "[bench] FAIL: rate %.2f: repair accuracy below "
                   "lint-only\n",
                   rate);
    }
    Value point = Value::Object();
    point.Set("rate", Value::Number(rate));
    point.Set("corrupted_completions",
              U64(static_cast<std::uint64_t>(corrupter.corrupted())));
    Value pipelines = Value::Array();
    for (const PipelineRow& row : rows) {
      Value p = Value::Object();
      p.Set("name", Value::Str(row.name));
      p.Set("lint", Value::Bool(row.lint));
      p.Set("repair", Value::Bool(row.repair));
      p.Set("overall_acc", Value::Number(row.overall_acc));
      p.Set("exec_acc", Value::Number(row.exec_acc));
      p.Set("errors", U64(static_cast<std::uint64_t>(row.errors)));
      p.Set("lint_rejections", U64(row.lint_rejections));
      p.Set("repairs", U64(row.repairs));
      pipelines.Append(std::move(p));
    }
    point.Set("pipelines", std::move(pipelines));
    sweep_json.Append(std::move(point));
  }
  if (total_repairs == 0) {
    repair_vs_lint_ok = false;
    std::fprintf(stderr, "[bench] FAIL: no repairs fired across the sweep\n");
  }
  std::printf("\nRepair sweep: GRED under completion corruption "
              "(%zu examples per cell)\n",
              test.size());
  std::printf("%s", sweep_table.ToString().c_str());

  // --- Part 2: cost-gate calibration over the corpus --------------------
  struct Priced {
    const dataset::Example* example;
    const dataset::GeneratedDatabase* db;
    analysis::CostEstimate estimate;
  };
  std::vector<Priced> priced;
  analysis::CostEstimate max_estimate;
  double headroom_sum = 0.0;
  std::size_t headroom_count = 0;
  for (const dataset::Example& example : test) {
    if (HasSubquery(example.dvq.query)) continue;
    const dataset::GeneratedDatabase* db = FindDb(databases, example.db_name);
    if (db == nullptr) continue;
    analysis::CostEstimator estimator(&db->data);
    Result<analysis::CostEstimate> estimate = estimator.Estimate(example.dvq);
    if (!estimate.ok()) {
      std::fprintf(stderr, "[bench] FAIL: %s priced with error: %s\n",
                   example.id.c_str(), estimate.status().ToString().c_str());
      return 1;
    }
    priced.push_back({&example, db, estimate.value()});
    max_estimate.ticks = std::max(max_estimate.ticks, estimate.value().ticks);
    max_estimate.rows = std::max(max_estimate.rows, estimate.value().rows);
    max_estimate.bytes = std::max(max_estimate.bytes, estimate.value().bytes);
    max_estimate.join_rows =
        std::max(max_estimate.join_rows, estimate.value().join_rows);
    ExecContext guard;  // unlimited: measure real charges, never trip
    exec::ExecOptions options;
    options.context = &guard;
    Result<exec::ResultSet> run =
        exec::Execute(example.dvq, db->data, options);
    if (run.ok() && guard.usage().ticks > 0) {
      headroom_sum += static_cast<double>(estimate.value().ticks) /
                      static_cast<double>(guard.usage().ticks);
      ++headroom_count;
    }
  }

  auto run_with = [](const Priced& p, const GuardLimits& limits) {
    ExecContext guard(limits);
    exec::ExecOptions options;
    options.context = &guard;
    Result<exec::ResultSet> run = exec::Execute(p.example->dvq, p.db->data,
                                                options);
    return !run.ok() && run.status().IsResourceExhausted();
  };

  // At budget == the corpus-wide maximum estimate nothing may be gated
  // (the guard trips strictly above the limit) and nothing may trip.
  GuardLimits max_limits;
  max_limits.deadline_ticks = max_estimate.ticks;
  max_limits.row_budget = max_estimate.rows;
  max_limits.memory_budget = max_estimate.bytes;
  max_limits.join_budget = max_estimate.join_rows;
  std::size_t false_rejections = 0;
  std::size_t trips_at_max = 0;
  for (const Priced& p : priced) {
    if (p.estimate.Exceeds(max_limits)) ++false_rejections;
    if (run_with(p, max_limits)) ++trips_at_max;
  }

  // Tighter budgets: every runtime trip must have been predicted.
  const std::vector<double> fractions = {0.5, 0.25, 0.1};
  std::vector<FractionRow> fraction_rows;
  TablePrinter cost_table({"Budget (xmax)", "Gated", "Trips", "Pre-empted",
                           "Missed"});
  for (double fraction : fractions) {
    GuardLimits limits;
    limits.deadline_ticks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(max_estimate.ticks) * fraction));
    FractionRow row;
    row.fraction = fraction;
    for (const Priced& p : priced) {
      const bool gated = p.estimate.Exceeds(limits);
      const bool tripped = run_with(p, limits);
      if (gated) ++row.gated;
      if (tripped) ++row.tripped;
      if (tripped && gated) ++row.preempted;
      if (tripped && !gated) ++row.missed;
    }
    fraction_rows.push_back(row);
    cost_table.AddRow({strings::Format("%.2f", fraction),
                       std::to_string(row.gated), std::to_string(row.tripped),
                       std::to_string(row.preempted),
                       std::to_string(row.missed)});
  }
  const bool cost_sound =
      false_rejections == 0 && trips_at_max == 0 &&
      std::all_of(fraction_rows.begin(), fraction_rows.end(),
                  [](const FractionRow& r) { return r.missed == 0; });

  std::printf("\nCost-gate calibration over %zu subquery-free corpus "
              "queries (tick budgets as fractions of the max estimate)\n",
              priced.size());
  std::printf("%s", cost_table.ToString().c_str());
  std::printf("\nfalse rejections at budget = max estimate: %zu (%s)\n",
              false_rejections, false_rejections == 0 ? "ok" : "FAILED");
  std::printf("runtime trips at budget = max estimate: %zu (%s)\n",
              trips_at_max, trips_at_max == 0 ? "ok" : "FAILED");
  std::printf("mean estimate/measured tick headroom: %.2fx over %zu runs\n",
              headroom_count > 0 ? headroom_sum /
                                       static_cast<double>(headroom_count)
                                 : 0.0,
              headroom_count);
  std::printf("repair strictly beats lint-only at every rate: %s\n",
              repair_vs_lint_ok ? "ok" : "FAILED");

  if (const char* out_path = std::getenv("GRED_ANALYSIS_JSON")) {
    Value report = Value::Object();
    report.Set("schema", Value::Str("gredvis-bench-analysis/1"));
    report.Set("examples", U64(static_cast<std::uint64_t>(test.size())));
    report.Set("corruption_sweep", std::move(sweep_json));
    report.Set("repair_vs_lint_ok", Value::Bool(repair_vs_lint_ok));
    Value cost = Value::Object();
    cost.Set("queries", U64(static_cast<std::uint64_t>(priced.size())));
    Value max_v = Value::Object();
    max_v.Set("ticks", U64(max_estimate.ticks));
    max_v.Set("rows", U64(max_estimate.rows));
    max_v.Set("bytes", U64(max_estimate.bytes));
    max_v.Set("join_rows", U64(max_estimate.join_rows));
    cost.Set("max_estimate", std::move(max_v));
    cost.Set("false_rejections_at_max",
             U64(static_cast<std::uint64_t>(false_rejections)));
    cost.Set("runtime_trips_at_max",
             U64(static_cast<std::uint64_t>(trips_at_max)));
    cost.Set("mean_tick_headroom",
             Value::Number(headroom_count > 0
                               ? headroom_sum /
                                     static_cast<double>(headroom_count)
                               : 0.0));
    Value points = Value::Array();
    for (const FractionRow& row : fraction_rows) {
      Value point = Value::Object();
      point.Set("fraction", Value::Number(row.fraction));
      point.Set("gated", U64(static_cast<std::uint64_t>(row.gated)));
      point.Set("tripped", U64(static_cast<std::uint64_t>(row.tripped)));
      point.Set("pre_empted", U64(static_cast<std::uint64_t>(row.preempted)));
      point.Set("missed", U64(static_cast<std::uint64_t>(row.missed)));
      points.Append(std::move(point));
    }
    cost.Set("fractions", std::move(points));
    cost.Set("sound", Value::Bool(cost_sound));
    report.Set("cost", std::move(cost));

    std::ofstream out(out_path);
    out << report.Dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "[bench] FAIL: could not write %s\n", out_path);
      return 1;
    }
    std::printf("wrote %s\n", out_path);
  }

  return repair_vs_lint_ok && cost_sound ? 0 : 1;
}
