// Retrieval-at-scale sweep: the recall@k-vs-latency frontier of the
// three retrieval backends (exact float scan, int8 quantized scan with
// exact re-rank, IVF multi-probe) over a procedurally grown NLQ library.
//
// The library is generated with the benchmark's own NLQ machinery
// (dataset::GrowNlqLibrary over the standard 104-database corpus), so
// its phrasing distribution matches what the retrieval layer actually
// serves — nvBench-register and nvBench-Rob-register questions — just
// at 10^5-10^6 scale instead of nvBench's few thousand.
//
// Per sweep point: recall@k against the exact scan's ground truth,
// per-query latency (mean/p50/p95) and speedup over exact. The IVF
// frontier is walked by probe count over one build (lists are
// probe-count independent), so the sweep isolates search cost from
// training cost. Build costs (embedding, IVF training) are reported
// separately.
//
// Environment (validated via EnvSizeOrDie; mistyped knobs exit(2)):
//   GRED_SWEEP_LIBRARY   library size            (default 100000)
//   GRED_SWEEP_QUERIES   query count             (default 200)
//   GRED_SWEEP_K         k of recall@k           (default 10)
//   GRED_SWEEP_DIM       embedder dimension      (default 256)
//   GRED_SWEEP_PROBES    narrow the IVF probe sweep to one count
//   GRED_RETRIEVAL_JSON  write the machine-readable report here
//                        (scripts/bench_report wraps it into
//                        BENCH_retrieval.json)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "dataset/db_generator.h"
#include "dataset/entity_bank.h"
#include "dataset/library_growth.h"
#include "embed/ann_index.h"
#include "embed/embedder.h"
#include "embed/kernel.h"
#include "embed/vector_store.h"
#include "nl/lexicon.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using gred::json::Value;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

/// One point on the frontier.
struct SweepPoint {
  std::string backend;      // "exact" | "quantized" | "ivf"
  std::size_t probes = 0;   // ivf only
  double recall_at_k = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double speedup_vs_exact = 0.0;
};

/// Fraction of `truth` indexes present in `got` (recall@k for one query).
double Recall(const std::vector<gred::embed::Hit>& truth,
              const std::vector<gred::embed::Hit>& got) {
  if (truth.empty()) return 1.0;
  std::size_t hits = 0;
  for (const gred::embed::Hit& t : truth) {
    for (const gred::embed::Hit& g : got) {
      if (g.index == t.index) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace

int main() {
  using namespace gred;

  const std::size_t library_size =
      bench::EnvSizeOrDie("GRED_SWEEP_LIBRARY", 100000);
  const std::size_t num_queries =
      bench::EnvSizeOrDie("GRED_SWEEP_QUERIES", 200);
  const std::size_t k = bench::EnvSizeOrDie("GRED_SWEEP_K", 10);
  const std::size_t dim = bench::EnvSizeOrDie("GRED_SWEEP_DIM", 256);

  std::printf("dot kernel target: %s\n",
              embed::DotTargetName(embed::ActiveDotTarget()));

  // --- Library growth ----------------------------------------------------
  const auto corpus_start = std::chrono::steady_clock::now();
  dataset::DbGeneratorOptions db_options;
  std::vector<dataset::GeneratedDatabase> databases =
      dataset::GenerateDatabases(dataset::EntityBank::Default(), db_options);
  const nl::Lexicon& lexicon = nl::Lexicon::Default();
  std::vector<std::string> library =
      dataset::GrowNlqLibrary(databases, lexicon, library_size);
  dataset::LibraryGrowthOptions query_options;
  query_options.seed = 0xfeedbeef;  // disjoint sample from the library's
  std::vector<std::string> query_texts =
      dataset::GrowNlqLibrary(databases, lexicon, num_queries, query_options);
  const double corpus_s = Seconds(corpus_start);

  // --- Embedding ---------------------------------------------------------
  embed::EmbedderOptions embed_options;
  embed_options.dimension = dim;
  embed::SemanticHashEmbedder embedder(&nl::Lexicon::Default(),
                                       embed_options);
  const auto embed_start = std::chrono::steady_clock::now();
  std::vector<embed::Vector> vectors;
  vectors.reserve(library.size());
  for (const std::string& nlq : library) {
    vectors.push_back(embedder.Embed(nlq));
  }
  std::vector<embed::Vector> queries;
  queries.reserve(query_texts.size());
  for (const std::string& nlq : query_texts) {
    queries.push_back(embedder.Embed(nlq));
  }
  const double embed_s = Seconds(embed_start);

  // --- Index builds ------------------------------------------------------
  embed::VectorStore exact;
  for (const embed::Vector& v : vectors) exact.Add(v);

  const auto quantize_start = std::chrono::steady_clock::now();
  exact.EnsureQuantized();
  const double quantize_s = Seconds(quantize_start);

  embed::IvfIndex::Options ivf_options;
  ivf_options.num_clusters = 0;  // auto ~sqrt(n)
  ivf_options.quantized_scan = true;
  embed::IvfIndex ivf(ivf_options);
  for (const embed::Vector& v : vectors) ivf.Add(v);
  const auto ivf_start = std::chrono::steady_clock::now();
  ivf.Build();
  const double ivf_build_s = Seconds(ivf_start);

  // --- Sweep -------------------------------------------------------------
  const std::size_t rerank_shortlist = embed::ShortlistSize(
      k, exact.size(), /*factor=*/4, /*slack=*/32);

  std::vector<std::vector<embed::Hit>> truth(queries.size());
  std::vector<SweepPoint> frontier;

  auto run_point = [&](const std::string& backend, std::size_t probes,
                       auto&& top_k) {
    SweepPoint point;
    point.backend = backend;
    point.probes = probes;
    std::vector<double> latencies;
    latencies.reserve(queries.size());
    double recall_sum = 0.0;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto start = std::chrono::steady_clock::now();
      std::vector<embed::Hit> hits = top_k(queries[qi]);
      latencies.push_back(Seconds(start) * 1e6);
      if (backend == "exact") {
        truth[qi] = hits;  // ground truth for every later point
      }
      recall_sum += Recall(truth[qi], hits);
    }
    point.recall_at_k =
        queries.empty() ? 1.0
                        : recall_sum / static_cast<double>(queries.size());
    double sum = 0.0;
    for (double us : latencies) sum += us;
    point.mean_us =
        latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    point.p50_us = Percentile(latencies, 0.50);
    point.p95_us = Percentile(latencies, 0.95);
    frontier.push_back(point);
  };

  run_point("exact", 0, [&](const embed::Vector& q) {
    return exact.TopK(q, k);
  });
  run_point("quantized", 0, [&](const embed::Vector& q) {
    return exact.TopKQuantized(q, k, rerank_shortlist);
  });

  std::vector<std::size_t> probe_sweep = {1, 2, 4, 8, 16};
  if (std::getenv("GRED_SWEEP_PROBES") != nullptr) {
    probe_sweep = {bench::EnvSizeOrDie("GRED_SWEEP_PROBES", 1)};
  }
  for (std::size_t probes : probe_sweep) {
    ivf.set_num_probes(probes);
    run_point("ivf", probes, [&](const embed::Vector& q) {
      return ivf.TopK(q, k);
    });
  }

  const double exact_mean = frontier.front().mean_us;
  for (SweepPoint& point : frontier) {
    point.speedup_vs_exact =
        point.mean_us > 0.0 ? exact_mean / point.mean_us : 0.0;
  }

  // --- Report ------------------------------------------------------------
  TablePrinter table({"Backend", "Probes", "Recall@k", "Mean (us)",
                      "p50 (us)", "p95 (us)", "Speedup"});
  for (const SweepPoint& point : frontier) {
    table.AddRow({point.backend,
                  point.backend == "ivf" ? std::to_string(point.probes) : "-",
                  strings::Format("%.4f", point.recall_at_k),
                  strings::Format("%.1f", point.mean_us),
                  strings::Format("%.1f", point.p50_us),
                  strings::Format("%.1f", point.p95_us),
                  strings::Format("%.2fx", point.speedup_vs_exact)});
  }

  std::printf("\nRetrieval sweep: library %zu, %zu queries, k=%zu, dim=%zu\n",
              library.size(), queries.size(), k, dim);
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "build: corpus %.2f s, embed %.2f s, quantize %.3f s, "
      "ivf train %.2f s (%zu clusters)\n",
      corpus_s, embed_s, quantize_s, ivf_build_s, ivf.num_clusters());

  if (const char* out_path = std::getenv("GRED_RETRIEVAL_JSON")) {
    Value report = Value::Object();
    report.Set("schema", Value::Str("gredvis-bench-retrieval-sweep/1"));
    report.Set("library_size",
               Value::Int(static_cast<std::int64_t>(library.size())));
    report.Set("queries", Value::Int(static_cast<std::int64_t>(queries.size())));
    report.Set("k", Value::Int(static_cast<std::int64_t>(k)));
    report.Set("dim", Value::Int(static_cast<std::int64_t>(dim)));
    report.Set("dot_target",
               Value::Str(embed::DotTargetName(embed::ActiveDotTarget())));
    Value build = Value::Object();
    build.Set("corpus_s", Value::Number(corpus_s));
    build.Set("embed_s", Value::Number(embed_s));
    build.Set("quantize_s", Value::Number(quantize_s));
    build.Set("ivf_train_s", Value::Number(ivf_build_s));
    build.Set("ivf_clusters",
              Value::Int(static_cast<std::int64_t>(ivf.num_clusters())));
    report.Set("build", std::move(build));
    Value points = Value::Array();
    for (const SweepPoint& point : frontier) {
      Value entry = Value::Object();
      entry.Set("backend", Value::Str(point.backend));
      if (point.backend == "ivf") {
        entry.Set("probes", Value::Int(static_cast<std::int64_t>(point.probes)));
      }
      entry.Set("recall_at_k", Value::Number(point.recall_at_k));
      entry.Set("mean_us", Value::Number(point.mean_us));
      entry.Set("p50_us", Value::Number(point.p50_us));
      entry.Set("p95_us", Value::Number(point.p95_us));
      entry.Set("speedup_vs_exact", Value::Number(point.speedup_vs_exact));
      points.Append(std::move(entry));
    }
    report.Set("frontier", std::move(points));

    std::ofstream out(out_path);
    out << report.Dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "[bench] FAIL: could not write %s\n", out_path);
      return 1;
    }
    std::printf("wrote %s\n", out_path);
  }
  return 0;
}
