#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/env.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace gred::bench {

// The strict readers moved to util/env.{h,cc} so the CLI and the
// serving layer validate their knobs through the same code path; the
// bench-namespace wrappers stay for every existing call site.

std::size_t EnvSizeOrDie(const char* name, std::size_t fallback) {
  return gred::EnvSizeOrDie(name, fallback);
}

double EnvRateOrDie(const char* name, double fallback) {
  return gred::EnvRateOrDie(name, fallback);
}

bool EnvFlagOrDie(const char* name, bool fallback) {
  return gred::EnvFlagOrDie(name, fallback);
}

ResilientStack MakeResilientStack(const llm::ChatModel* base,
                                  double fault_rate, std::size_t retries) {
  ResilientStack stack;
  if (fault_rate <= 0.0) {
    stack.active = base;
    return stack;
  }
  llm::FaultConfig faults;
  faults.transient_rate = fault_rate;
  faults.truncate_rate = fault_rate / 2;
  faults.garbage_rate = fault_rate / 2;
  stack.injector =
      std::make_unique<llm::FaultInjectingChatModel>(base, faults);
  llm::RetryConfig retry;
  retry.max_attempts = retries;
  stack.retrier = std::make_unique<llm::RetryingChatModel>(
      stack.injector.get(), retry);
  stack.active = stack.retrier.get();
  return stack;
}

BenchContext::BenchContext() {
  dataset::BenchmarkOptions options;
  options.train_size =
      EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", options.train_size);
  options.test_size = EnvSizeOrDie("GRED_BENCH_TEST_SIZE", options.test_size);
  options.seed = EnvSizeOrDie("GRED_BENCH_SEED", options.seed);
  // Validate every override up front so a typo aborts before the
  // (expensive) suite build instead of mid-run inside eval::Evaluate.
  std::size_t threads = EnvSizeOrDie("GRED_BENCH_THREADS", HardwareThreads());
  fault_rate_ = EnvRateOrDie("GRED_BENCH_FAULT_RATE", 0.0);
  retries_ = EnvSizeOrDie("GRED_BENCH_RETRIES", 3);
  guard_limits_.deadline_ticks = EnvSizeOrDie("GRED_BENCH_DEADLINE", 0);
  guard_limits_.row_budget = EnvSizeOrDie("GRED_BENCH_ROW_BUDGET", 0);
  lint_ = EnvFlagOrDie("GRED_BENCH_LINT", false);
  stack_ = MakeResilientStack(&llm_, fault_rate_, retries_);
  std::fprintf(stderr,
               "[bench] building suite: %zu databases, %zu train, %zu test "
               "(%zu eval threads)\n",
               options.num_databases, options.train_size, options.test_size,
               threads);
  if (fault_rate_ > 0.0) {
    std::fprintf(stderr,
                 "[bench] fault injection on: rate %.3f, %zu attempts/call\n",
                 fault_rate_, retries_);
  }
  if (!guard_limits_.Unlimited()) {
    std::fprintf(stderr,
                 "[bench] resource guard on: deadline %llu ticks, "
                 "row budget %llu (0 = unlimited)\n",
                 static_cast<unsigned long long>(guard_limits_.deadline_ticks),
                 static_cast<unsigned long long>(guard_limits_.row_budget));
  }
  if (lint_) {
    std::fprintf(stderr,
                 "[bench] static analysis gate on: GRED rejects error-level "
                 "candidates; eval tallies diagnostics\n");
  }
  suite_ = dataset::BuildBenchmarkSuite(options);
  corpus_.train = &suite_.train;
  corpus_.databases = &suite_.databases;
  std::fprintf(stderr, "[bench] training baselines...\n");
  seq2vis_ = std::make_unique<models::Seq2Vis>(corpus_);
  transformer_ = std::make_unique<models::TransformerModel>(corpus_);
  rgvisnet_ = std::make_unique<models::RGVisNet>(corpus_);
  core::GredConfig gred_config;
  gred_config.stage_limits = guard_limits_;
  gred_config.enable_lint = lint_;
  gred_ = std::make_unique<core::Gred>(corpus_, stack_.active,
                                       std::move(gred_config));
  std::fprintf(stderr, "[bench] ready\n");
}

std::vector<const models::TextToVisModel*> BenchContext::Baselines() const {
  return {seq2vis_.get(), transformer_.get(), rgvisnet_.get()};
}

std::unique_ptr<core::Gred> BenchContext::MakeGred(
    core::GredConfig config) const {
  return MakeGred(std::move(config), stack_.active);
}

std::unique_ptr<core::Gred> BenchContext::MakeGred(
    core::GredConfig config, const llm::ChatModel* chat) const {
  // Variants inherit the context-wide guard unless the caller set an
  // explicit per-stage budget; with the env knobs unset this is a no-op.
  if (config.stage_limits.Unlimited()) config.stage_limits = guard_limits_;
  if (lint_) config.enable_lint = true;
  return std::make_unique<core::Gred>(corpus_, chat, std::move(config));
}

void PrintResultsTable(const std::string& title,
                       const std::vector<eval::EvalResult>& results) {
  std::printf("\n%s\n", title.c_str());
  TablePrinter table({"Model", "Vis Acc.", "Data Acc.", "Axis Acc.", "Acc."});
  for (const eval::EvalResult& r : results) {
    table.AddRow({r.model_name, FormatPercent(r.counts.VisAcc()),
                  FormatPercent(r.counts.DataAcc()),
                  FormatPercent(r.counts.AxisAcc()),
                  FormatPercent(r.counts.OverallAcc())});
  }
  std::printf("%s", table.ToString().c_str());
  std::fflush(stdout);
}

std::vector<eval::EvalResult> RunModels(
    const std::vector<const models::TextToVisModel*>& models,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name) {
  std::vector<eval::EvalResult> results;
  for (const models::TextToVisModel* model : models) {
    std::fprintf(stderr, "[bench] evaluating %s on %s (%zu examples)...\n",
                 model->name().c_str(), test_set_name.c_str(), test.size());
    const auto* gred = dynamic_cast<const core::Gred*>(model);
    core::Gred::StageStats before;
    if (gred != nullptr) before = gred->stage_stats();
    eval::EvalTiming timing;
    eval::EvalOptions options;
    options.timing = &timing;
    // Arm the per-example watchdog from the env knobs (no-op when unset;
    // re-read here so RunModels works without a BenchContext too).
    options.guard.deadline_ticks = EnvSizeOrDie("GRED_BENCH_DEADLINE", 0);
    options.guard.row_budget = EnvSizeOrDie("GRED_BENCH_ROW_BUDGET", 0);
    options.lint = EnvFlagOrDie("GRED_BENCH_LINT", false);
    auto start = std::chrono::steady_clock::now();
    results.push_back(eval::Evaluate(*model, test, databases, test_set_name,
                                     nullptr, options));
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    std::fprintf(stderr,
                 "[bench]   %.2fs wall | translate %.2fs, execute %.2fs "
                 "(summed over threads)\n",
                 wall, timing.translate.seconds(), timing.execute.seconds());
    if (results.back().counts.resource_exhausted != 0) {
      std::fprintf(stderr,
                   "[bench]   resource guard tripped on %zu examples\n",
                   results.back().counts.resource_exhausted);
    }
    if (options.lint && !results.back().counts.diagnostics.empty()) {
      std::string per_code;
      for (const auto& [code, count] : results.back().counts.diagnostics) {
        if (!per_code.empty()) per_code += ", ";
        per_code += code + " x" + std::to_string(count);
      }
      std::fprintf(stderr, "[bench]   lint diagnostics: %s\n",
                   per_code.c_str());
    }
    if (gred != nullptr) {
      core::Gred::StageStats after = gred->stage_stats();
      std::fprintf(stderr,
                   "[bench]   GRED stages: retrieval %.2fs, retune %.2fs, "
                   "debug %.2fs over %llu calls\n",
                   after.retrieval_seconds - before.retrieval_seconds,
                   after.retune_seconds - before.retune_seconds,
                   after.debug_seconds - before.debug_seconds,
                   static_cast<unsigned long long>(after.translate_calls -
                                                   before.translate_calls));
      std::uint64_t rtn_deg = after.retune_degraded - before.retune_degraded;
      std::uint64_t dbg_deg = after.debug_degraded - before.debug_degraded;
      if (rtn_deg != 0 || dbg_deg != 0) {
        std::fprintf(stderr,
                     "[bench]   GRED degraded stages: retuner %llu, "
                     "debugger %llu\n",
                     static_cast<unsigned long long>(rtn_deg),
                     static_cast<unsigned long long>(dbg_deg));
      }
      std::uint64_t rtn_budget =
          after.retune_budget_trips - before.retune_budget_trips;
      std::uint64_t dbg_budget =
          after.debug_budget_trips - before.debug_budget_trips;
      if (rtn_budget != 0 || dbg_budget != 0) {
        std::fprintf(stderr,
                     "[bench]   GRED stage-budget trips: retuner %llu, "
                     "debugger %llu\n",
                     static_cast<unsigned long long>(rtn_budget),
                     static_cast<unsigned long long>(dbg_budget));
      }
      std::uint64_t rtn_lint = after.retune_lint_trips - before.retune_lint_trips;
      std::uint64_t dbg_lint = after.debug_lint_trips - before.debug_lint_trips;
      if (rtn_lint != 0 || dbg_lint != 0) {
        std::fprintf(stderr,
                     "[bench]   GRED lint rejections: retuner %llu, "
                     "debugger %llu\n",
                     static_cast<unsigned long long>(rtn_lint),
                     static_cast<unsigned long long>(dbg_lint));
      }
    }
  }
  return results;
}

}  // namespace gred::bench
