#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "util/table_printer.h"

namespace gred::bench {

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

BenchContext::BenchContext() {
  dataset::BenchmarkOptions options;
  options.train_size = EnvSize("GRED_BENCH_TRAIN_SIZE", options.train_size);
  options.test_size = EnvSize("GRED_BENCH_TEST_SIZE", options.test_size);
  options.seed = EnvSize("GRED_BENCH_SEED", options.seed);
  std::fprintf(stderr,
               "[bench] building suite: %zu databases, %zu train, %zu test\n",
               options.num_databases, options.train_size, options.test_size);
  suite_ = dataset::BuildBenchmarkSuite(options);
  corpus_.train = &suite_.train;
  corpus_.databases = &suite_.databases;
  std::fprintf(stderr, "[bench] training baselines...\n");
  seq2vis_ = std::make_unique<models::Seq2Vis>(corpus_);
  transformer_ = std::make_unique<models::TransformerModel>(corpus_);
  rgvisnet_ = std::make_unique<models::RGVisNet>(corpus_);
  gred_ = std::make_unique<core::Gred>(corpus_, &llm_);
  std::fprintf(stderr, "[bench] ready\n");
}

std::vector<const models::TextToVisModel*> BenchContext::Baselines() const {
  return {seq2vis_.get(), transformer_.get(), rgvisnet_.get()};
}

std::unique_ptr<core::Gred> BenchContext::MakeGred(
    core::GredConfig config) const {
  return std::make_unique<core::Gred>(corpus_, &llm_, std::move(config));
}

void PrintResultsTable(const std::string& title,
                       const std::vector<eval::EvalResult>& results) {
  std::printf("\n%s\n", title.c_str());
  TablePrinter table({"Model", "Vis Acc.", "Data Acc.", "Axis Acc.", "Acc."});
  for (const eval::EvalResult& r : results) {
    table.AddRow({r.model_name, FormatPercent(r.counts.VisAcc()),
                  FormatPercent(r.counts.DataAcc()),
                  FormatPercent(r.counts.AxisAcc()),
                  FormatPercent(r.counts.OverallAcc())});
  }
  std::printf("%s", table.ToString().c_str());
  std::fflush(stdout);
}

std::vector<eval::EvalResult> RunModels(
    const std::vector<const models::TextToVisModel*>& models,
    const std::vector<dataset::Example>& test,
    const std::vector<dataset::GeneratedDatabase>& databases,
    const std::string& test_set_name) {
  std::vector<eval::EvalResult> results;
  for (const models::TextToVisModel* model : models) {
    std::fprintf(stderr, "[bench] evaluating %s on %s (%zu examples)...\n",
                 model->name().c_str(), test_set_name.c_str(), test.size());
    results.push_back(
        eval::Evaluate(*model, test, databases, test_set_name));
  }
  return results;
}

}  // namespace gred::bench
