// Reproduction hygiene: the benchmark is synthetic, so the headline
// comparison must not hinge on one lucky seed. This bench regenerates
// the whole suite under several seeds and reports overall accuracy on
// the dual-variant set (the paper's hardest setting) per model, with
// mean and spread.
//
// Scale: runs at a reduced size by default (3 seeds x 4 models); set
// GRED_BENCH_TRAIN_SIZE / GRED_BENCH_TEST_SIZE to resize.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "util/strings.h"
#include "util/table_printer.h"

using namespace gred;

int main() {
  const std::vector<std::uint64_t> seeds = {20240501, 7, 424242};
  const char* names[] = {"Seq2Vis", "Transformer", "RGVisNet", "GRED"};
  std::vector<std::vector<double>> acc(4);

  for (std::uint64_t seed : seeds) {
    dataset::BenchmarkOptions options;
    options.seed = seed;
    options.train_size = bench::EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", 2000);
    options.test_size = bench::EnvSizeOrDie("GRED_BENCH_TEST_SIZE", 300);
    std::fprintf(stderr, "[bench] seed %llu...\n",
                 static_cast<unsigned long long>(seed));
    dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
    models::TrainingCorpus corpus;
    corpus.train = &suite.train;
    corpus.databases = &suite.databases;
    llm::SimulatedChatModel llm;
    models::Seq2Vis seq2vis(corpus);
    models::TransformerModel transformer(corpus);
    models::RGVisNet rgvisnet(corpus);
    core::Gred gred(corpus, &llm);
    const models::TextToVisModel* models[] = {&seq2vis, &transformer,
                                              &rgvisnet, &gred};
    for (int m = 0; m < 4; ++m) {
      acc[static_cast<std::size_t>(m)].push_back(
          eval::Evaluate(*models[m], suite.test_both, suite.databases_rob,
                         "rob_both")
              .counts.OverallAcc());
    }
  }

  std::printf("\nSeed stability: overall accuracy on "
              "nvBench-Rob_(nlq,schema) across %zu regenerated corpora\n",
              seeds.size());
  TablePrinter table({"Model", "mean", "min", "max", "spread"});
  for (int m = 0; m < 4; ++m) {
    const std::vector<double>& values = acc[static_cast<std::size_t>(m)];
    double sum = 0.0;
    for (double v : values) sum += v;
    double mean = sum / static_cast<double>(values.size());
    double lo = *std::min_element(values.begin(), values.end());
    double hi = *std::max_element(values.begin(), values.end());
    table.AddRow({names[m], FormatPercent(mean), FormatPercent(lo),
                  FormatPercent(hi), FormatPercent(hi - lo)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nThe model ordering must hold under every seed for the "
              "reproduction to count; spreads are reported so readers "
              "can judge the margins.\n");
  return 0;
}
