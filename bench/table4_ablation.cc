// Reproduces Table 4: ablation of GRED's three components across the
// three robustness test sets. Configurations follow Section 5.3:
//   GRED           full pipeline
//   w/o RTN&DBG    NLQ-Retrieval Generator only
//   w/o RTN        Generator + Debugger
//   w/o DBG        Generator + Retuner

#include <cstdio>

#include "bench/common.h"
#include "util/table_printer.h"

int main() {
  gred::bench::BenchContext context;

  struct Config {
    const char* label;
    bool retuner;
    bool debugger;
  };
  const Config kConfigs[] = {
      {"GRED (Ours)", true, true},
      {"- w/o RTN&DBG", false, false},
      {"- w/o RTN", false, true},
      {"- w/o DBG", true, false},
  };

  gred::TablePrinter table({"Model", "nvBench-Rob_nlq", "nvBench-Rob_schema",
                            "nvBench-Rob_(nlq,schema)"});
  // Reference row: the strongest baseline, as in the paper's Table 4.
  {
    const auto* rgvisnet = context.Baselines()[2];
    auto nlq = gred::bench::RunModels({rgvisnet}, context.suite().test_nlq,
                                      context.suite().databases, "rob_nlq");
    auto schema =
        gred::bench::RunModels({rgvisnet}, context.suite().test_schema,
                               context.suite().databases_rob, "rob_schema");
    auto both =
        gred::bench::RunModels({rgvisnet}, context.suite().test_both,
                               context.suite().databases_rob, "rob_both");
    table.AddRow({"RGVisNet (SOTA)",
                  gred::FormatPercent(nlq[0].counts.OverallAcc()),
                  gred::FormatPercent(schema[0].counts.OverallAcc()),
                  gred::FormatPercent(both[0].counts.OverallAcc())});
  }
  for (const Config& config : kConfigs) {
    gred::core::GredConfig gc;
    gc.enable_retuner = config.retuner;
    gc.enable_debugger = config.debugger;
    std::unique_ptr<gred::core::Gred> model = context.MakeGred(gc);
    auto nlq = gred::bench::RunModels({model.get()}, context.suite().test_nlq,
                                      context.suite().databases, "rob_nlq");
    auto schema =
        gred::bench::RunModels({model.get()}, context.suite().test_schema,
                               context.suite().databases_rob, "rob_schema");
    auto both =
        gred::bench::RunModels({model.get()}, context.suite().test_both,
                               context.suite().databases_rob, "rob_both");
    table.AddRow({config.label,
                  gred::FormatPercent(nlq[0].counts.OverallAcc()),
                  gred::FormatPercent(schema[0].counts.OverallAcc()),
                  gred::FormatPercent(both[0].counts.OverallAcc())});
  }
  std::printf("\nTable 4: Ablation Study Result on nvBench-Rob\n%s",
              table.ToString().c_str());
  return 0;
}
