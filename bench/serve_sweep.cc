// Serving-layer load generator: deterministic trace replay against the
// `gredvis serve` engine (src/serve) at a sweep of worker counts.
//
// The trace is the clean test split rendered as wire requests (cycled
// when GRED_SERVE_REQUESTS exceeds the split), replayed two ways:
//
//   * serial baseline — every request through Server::Handle on one
//     thread; this is the reference transcript;
//   * concurrent sweep — the same trace through Server::Submit with
//     1/2/4/8 workers (timings off). The load loop retries shed
//     requests until admitted, so the full trace completes and the
//     transcript must be byte-identical to the serial baseline — the
//     serving layer's determinism contract, asserted here, not printed.
//
// A final burst point (one worker, queue capacity one, no retries)
// measures the admission-control path itself: over-capacity requests
// must be rejected immediately, never queued, and every submission must
// still get exactly one response.
//
// Reported per sweep point: wall clock, QPS, p50/p95/p99 latency and
// the rejection/retry counts. GRED_SERVE_JSON=<path> additionally
// writes the machine-readable report that scripts/bench_report --serve
// wraps into BENCH_serve.json.
//
// Environment: GRED_BENCH_TRAIN_SIZE / GRED_BENCH_TEST_SIZE /
// GRED_BENCH_SEED shape the suite (as in every bench);
// GRED_SERVE_REQUESTS (trace length, default 96), GRED_SERVE_QUEUE
// (sweep queue capacity, default 64), GRED_SERVE_THREADS (narrow the
// sweep to one worker count).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

using gred::json::Parse;
using gred::json::ParseResult;
using gred::json::Value;

/// True iff `response` is the admission-control rejection (and not a
/// translate result that merely failed).
bool IsOverloaded(const std::string& response) {
  ParseResult parsed = Parse(response);
  if (!parsed.ok()) return false;
  const Value* code = parsed.value().Find("code");
  return code != nullptr && code->string_value() == "Unavailable";
}

/// Nearest-rank percentile of an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

}  // namespace

int main() {
  using namespace gred;

  dataset::BenchmarkOptions suite_options;
  suite_options.seed =
      bench::EnvSizeOrDie("GRED_BENCH_SEED", suite_options.seed);
  suite_options.train_size =
      bench::EnvSizeOrDie("GRED_BENCH_TRAIN_SIZE", suite_options.train_size);
  suite_options.test_size =
      bench::EnvSizeOrDie("GRED_BENCH_TEST_SIZE", suite_options.test_size);
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(suite_options);

  llm::SimulatedChatModel llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &llm);
  // Annotations resolve serially up front so every sweep point sees the
  // same warm cache (the sweep measures serving, not annotation).
  (void)gred.PrepareAnnotations(suite.databases);

  const std::size_t num_requests =
      bench::EnvSizeOrDie("GRED_SERVE_REQUESTS", 96);
  const std::size_t queue_capacity =
      bench::EnvSizeOrDie("GRED_SERVE_QUEUE", 64);

  // The wire trace: the clean test split, cycled to the target length.
  std::vector<std::string> trace;
  trace.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const dataset::Example& example =
        suite.test_clean[i % suite.test_clean.size()];
    Value request = Value::Object();
    request.Set("id", Value::Int(static_cast<std::int64_t>(i)));
    request.Set("nlq", Value::Str(example.nlq));
    request.Set("db", Value::Str(example.db_name));
    trace.push_back(request.Dump());
  }

  serve::ServerOptions base_options;
  base_options.queue_capacity = queue_capacity;
  base_options.include_timings = false;  // the determinism switch

  // Serial baseline: the reference transcript, one request at a time.
  std::vector<std::string> expected(num_requests);
  double serial_wall = 0.0;
  {
    serve::ServerOptions options = base_options;
    options.num_workers = 1;
    serve::Server server(&suite, &gred, options);
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < num_requests; ++i) {
      expected[i] = server.Handle(trace[i]);
    }
    serial_wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  }

  std::vector<std::size_t> worker_sweep = {1, 2, 4, 8};
  if (std::getenv("GRED_SERVE_THREADS") != nullptr) {
    worker_sweep = {bench::EnvSizeOrDie("GRED_SERVE_THREADS", 1)};
  }

  struct SweepResult {
    std::size_t workers = 0;
    double wall_s = 0.0;
    double qps = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    std::uint64_t rejected = 0;  // sheds absorbed by the retry loop
    bool identical = true;
  };
  std::vector<SweepResult> sweep;
  bool all_identical = true;

  for (std::size_t workers : worker_sweep) {
    serve::ServerOptions options = base_options;
    options.num_workers = workers;
    serve::Server server(&suite, &gred, options);

    // Per-request completion slots. A worker writes a slot exactly once
    // (the retry loop resubmits only overload rejections, which answer
    // inline and never reach a slot); Shutdown's join publishes them.
    struct Outcome {
      std::string response;
      double latency_us = 0.0;
    };
    std::vector<Outcome> outcomes(num_requests);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < num_requests; ++i) {
      const auto first_attempt = std::chrono::steady_clock::now();
      bool admitted = false;
      while (!admitted) {
        // The overload response is delivered inline on this thread
        // before Submit returns, so the flag is readable right after.
        auto shed = std::make_shared<std::atomic<bool>>(false);
        server.Submit(trace[i],
                      [&outcomes, i, first_attempt, shed](
                          const std::string& response) {
                        if (IsOverloaded(response)) {
                          shed->store(true);
                          return;
                        }
                        outcomes[i].latency_us =
                            std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                first_attempt)
                                .count();
                        outcomes[i].response = response;
                      });
        admitted = !shed->load();
        if (!admitted) std::this_thread::yield();
      }
    }
    server.Shutdown();  // drain: every admitted request has answered
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    SweepResult result;
    result.workers = workers;
    result.wall_s = wall;
    result.qps = wall > 0 ? static_cast<double>(num_requests) / wall : 0.0;
    result.rejected = server.stats().rejected_overload;

    std::vector<double> latencies;
    latencies.reserve(num_requests);
    for (std::size_t i = 0; i < num_requests; ++i) {
      latencies.push_back(outcomes[i].latency_us);
      if (outcomes[i].response != expected[i]) {
        result.identical = false;
        std::fprintf(stderr,
                     "[bench] FAIL: request %zu with %zu workers diverged "
                     "from the serial transcript\n",
                     i, workers);
      }
    }
    std::sort(latencies.begin(), latencies.end());
    result.p50_us = Percentile(latencies, 0.50);
    result.p95_us = Percentile(latencies, 0.95);
    result.p99_us = Percentile(latencies, 0.99);
    all_identical = all_identical && result.identical;
    sweep.push_back(result);
  }

  // Overload burst: capacity one, one worker, no retries. Admission
  // control must shed immediately and still answer every submission.
  std::uint64_t burst_rejected = 0;
  std::uint64_t burst_responses = 0;
  bool burst_accounted = true;
  {
    serve::ServerOptions options = base_options;
    options.num_workers = 1;
    options.queue_capacity = 1;
    serve::Server server(&suite, &gred, options);
    std::atomic<std::uint64_t> responses{0};
    for (const std::string& line : trace) {
      server.Submit(line, [&responses](const std::string&) {
        responses.fetch_add(1, std::memory_order_relaxed);
      });
    }
    server.Shutdown();
    serve::ServerStats stats = server.stats();
    burst_rejected = stats.rejected_overload;
    burst_responses = responses.load();
    // Exactly one response per submission, shed or served; nothing may
    // linger in the queue after shutdown.
    burst_accounted = burst_responses == num_requests &&
                      stats.received == num_requests &&
                      stats.queue_depth == 0;
    if (!burst_accounted) {
      std::fprintf(stderr,
                   "[bench] FAIL: burst accounted %llu responses for %zu "
                   "submissions (%llu rejected)\n",
                   static_cast<unsigned long long>(burst_responses),
                   num_requests,
                   static_cast<unsigned long long>(burst_rejected));
    }
  }

  TablePrinter table({"Workers", "Wall (s)", "QPS", "p50 (us)", "p95 (us)",
                      "p99 (us)", "Shed", "Replay"});
  for (const SweepResult& result : sweep) {
    table.AddRow({std::to_string(result.workers),
                  strings::Format("%.3f", result.wall_s),
                  strings::Format("%.1f", result.qps),
                  strings::Format("%.0f", result.p50_us),
                  strings::Format("%.0f", result.p95_us),
                  strings::Format("%.0f", result.p99_us),
                  std::to_string(result.rejected),
                  result.identical ? "identical" : "DIVERGED"});
  }

  std::printf("\nServe sweep: %zu requests over %zu test examples "
              "(queue capacity %zu)\n",
              num_requests, suite.test_clean.size(), queue_capacity);
  std::printf("%s", table.ToString().c_str());
  std::printf("serial baseline: %.3f s (%.1f QPS)\n", serial_wall,
              serial_wall > 0 ? static_cast<double>(num_requests) / serial_wall
                              : 0.0);
  std::printf("overload burst (queue=1): %llu/%zu shed, accounting %s\n",
              static_cast<unsigned long long>(burst_rejected), num_requests,
              burst_accounted ? "ok" : "FAILED");
  std::printf("concurrent replay identical to serial transcript: %s\n",
              all_identical ? "ok" : "FAILED");

  if (const char* out_path = std::getenv("GRED_SERVE_JSON")) {
    Value report = Value::Object();
    report.Set("schema", Value::Str("gredvis-bench-serve/1"));
    report.Set("requests", Value::Int(static_cast<std::int64_t>(num_requests)));
    report.Set("queue_capacity",
               Value::Int(static_cast<std::int64_t>(queue_capacity)));
    Value serial = Value::Object();
    serial.Set("wall_s", Value::Number(serial_wall));
    serial.Set("qps", Value::Number(
                          serial_wall > 0
                              ? static_cast<double>(num_requests) / serial_wall
                              : 0.0));
    report.Set("serial", std::move(serial));
    Value points = Value::Array();
    for (const SweepResult& result : sweep) {
      Value point = Value::Object();
      point.Set("workers", Value::Int(static_cast<std::int64_t>(result.workers)));
      point.Set("wall_s", Value::Number(result.wall_s));
      point.Set("qps", Value::Number(result.qps));
      point.Set("p50_us", Value::Number(result.p50_us));
      point.Set("p95_us", Value::Number(result.p95_us));
      point.Set("p99_us", Value::Number(result.p99_us));
      point.Set("rejected_overload",
                Value::Int(static_cast<std::int64_t>(result.rejected)));
      point.Set("replay_identical", Value::Bool(result.identical));
      points.Append(std::move(point));
    }
    report.Set("sweep", std::move(points));
    Value burst = Value::Object();
    burst.Set("submitted", Value::Int(static_cast<std::int64_t>(num_requests)));
    burst.Set("rejected_overload",
              Value::Int(static_cast<std::int64_t>(burst_rejected)));
    burst.Set("rejection_rate",
              Value::Number(num_requests > 0
                                ? static_cast<double>(burst_rejected) /
                                      static_cast<double>(num_requests)
                                : 0.0));
    burst.Set("accounting_ok", Value::Bool(burst_accounted));
    report.Set("overload_burst", std::move(burst));

    std::ofstream out(out_path);
    out << report.Dump(2) << '\n';
    if (!out) {
      std::fprintf(stderr, "[bench] FAIL: could not write %s\n", out_path);
      return 1;
    }
    std::printf("wrote %s\n", out_path);
  }

  return all_identical && burst_accounted ? 0 : 1;
}
