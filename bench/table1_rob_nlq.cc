// Reproduces Table 1: results on nvBench-Rob_nlq (NLQ variants only).
//
// Four models (Seq2Vis, Transformer, RGVisNet, GRED) are evaluated on the
// paraphrased-NLQ test set against the clean databases; the paper reports
// Vis/Data/Axis/Overall accuracy for each.

#include "bench/common.h"

int main() {
  gred::bench::BenchContext context;
  std::vector<const gred::models::TextToVisModel*> models =
      context.Baselines();
  models.push_back(&context.gred());
  std::vector<gred::eval::EvalResult> results = gred::bench::RunModels(
      models, context.suite().test_nlq, context.suite().databases,
      "nvBench-Rob_nlq");
  gred::bench::PrintResultsTable(
      "Table 1: Results in nvBench-Rob_nlq", results);
  return 0;
}
