// Reproduces Figure 2: statistics of the nvBench-Rob development split —
// chart-type distribution, hardness distribution, and database /table/
// column counts with averages.

#include <cstdio>

#include "bench/common.h"
#include "util/strings.h"
#include "util/table_printer.h"

int main() {
  gred::bench::BenchContext context;
  const gred::dataset::BenchmarkSuite& suite = context.suite();
  gred::dataset::DatasetStats stats =
      gred::dataset::ComputeStats(suite.test_clean, suite.databases);

  std::printf("\nFigure 2: Statistics of the nvBench-Rob Dataset\n");
  gred::TablePrinter vis({"VIS Types", "No. of (NL, Vis)"});
  const char* kChartOrder[] = {"BAR",         "PIE",
                               "LINE",        "SCATTER",
                               "STACKED BAR", "GROUPING LINE",
                               "GROUPING SCATTER"};
  for (const char* chart : kChartOrder) {
    auto it = stats.by_chart.find(chart);
    std::size_t count = it == stats.by_chart.end() ? 0 : it->second;
    vis.AddRow({chart, std::to_string(count)});
  }
  vis.AddRow({"All Types", std::to_string(stats.total)});
  std::printf("%s\n", vis.ToString().c_str());

  gred::TablePrinter hardness({"Hardness", "No. of (NL, Vis)"});
  for (const char* level : {"Easy", "Medium", "Hard", "Extra Hard"}) {
    auto it = stats.by_hardness.find(level);
    std::size_t count = it == stats.by_hardness.end() ? 0 : it->second;
    hardness.AddRow({level, std::to_string(count)});
  }
  hardness.AddRow({"Total", std::to_string(stats.total)});
  std::printf("%s\n", hardness.ToString().c_str());

  gred::TablePrinter corpus({"Database", "Table", "Column",
                             "Avg tables/DB", "Avg columns/table"});
  corpus.AddRow({std::to_string(stats.num_databases),
                 std::to_string(stats.num_tables),
                 std::to_string(stats.num_columns),
                 gred::strings::Format("%.2f", stats.avg_tables_per_db),
                 gred::strings::Format("%.2f", stats.avg_columns_per_table)});
  std::printf("%s", corpus.ToString().c_str());
  return 0;
}
