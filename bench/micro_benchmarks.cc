// Engineering micro-benchmarks (google-benchmark): throughput of the
// subsystems the GRED pipeline is built from. Not part of the paper's
// evaluation; used to track the cost of the retrieval-augmented loop.

#include <benchmark/benchmark.h>

#include "dataset/benchmark.h"
#include "embed/ann_index.h"
#include "dvq/parser.h"
#include "embed/caching_embedder.h"
#include "embed/embedder.h"
#include "embed/vector_store.h"
#include "exec/executor.h"
#include "llm/sim_llm.h"
#include "gred/gred.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"

namespace {

using gred::dataset::BenchmarkOptions;
using gred::dataset::BenchmarkSuite;

const BenchmarkSuite& Suite() {
  static const BenchmarkSuite* const kSuite = [] {
    BenchmarkOptions options;
    options.train_size = 1200;
    options.test_size = 200;
    return new BenchmarkSuite(gred::dataset::BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

void BM_Embed(benchmark::State& state) {
  gred::embed::SemanticHashEmbedder embedder;
  const std::string& nlq = Suite().test_clean[0].nlq;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Embed(nlq));
  }
}
BENCHMARK(BM_Embed);

void BM_VectorStoreTopK(benchmark::State& state) {
  gred::embed::SemanticHashEmbedder embedder;
  gred::embed::VectorStore store;
  for (const auto& ex : Suite().train) store.Add(embedder.Embed(ex.nlq));
  gred::embed::Vector query = embedder.Embed(Suite().test_clean[0].nlq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.TopK(query, state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(store.size()));
}
BENCHMARK(BM_VectorStoreTopK)->Arg(1)->Arg(10)->Arg(50);

// Batched scan: `range(0)` queries share one pass over the store, so a
// stored block is scored against every query while hot in cache.
// items_per_second counts (stored vector, query) pairs, directly
// comparable with BM_VectorStoreTopK's items_per_second.
void BM_VectorStoreTopKBatch(benchmark::State& state) {
  gred::embed::SemanticHashEmbedder embedder;
  gred::embed::VectorStore store;
  for (const auto& ex : Suite().train) store.Add(embedder.Embed(ex.nlq));
  std::vector<gred::embed::Vector> queries;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < batch; ++i) {
    queries.push_back(embedder.Embed(Suite().test_clean[i].nlq));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.TopKBatch(queries, 10));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(store.size() * batch));
}
BENCHMARK(BM_VectorStoreTopKBatch)->Arg(4)->Arg(16)->Arg(64);

// Cache-hit path of the shared embedding cache: every eval thread embeds
// repeated NLQs during fault sweeps and k-sweeps.
void BM_CachingEmbedderHit(benchmark::State& state) {
  gred::embed::CachingEmbedder embedder(
      std::make_unique<gred::embed::SemanticHashEmbedder>());
  const std::string& nlq = Suite().test_clean[0].nlq;
  benchmark::DoNotOptimize(embedder.Embed(nlq));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Embed(nlq));
  }
}
BENCHMARK(BM_CachingEmbedderHit);

void BM_IvfIndexTopK(benchmark::State& state) {
  gred::embed::SemanticHashEmbedder embedder;
  gred::embed::IvfIndex::Options options;
  options.num_probes = static_cast<std::size_t>(state.range(0));
  gred::embed::IvfIndex index(options);
  for (const auto& ex : Suite().train) index.Add(embedder.Embed(ex.nlq));
  index.Build();
  gred::embed::Vector query = embedder.Embed(Suite().test_clean[0].nlq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopK(query, 10));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(index.size()));
}
BENCHMARK(BM_IvfIndexTopK)->Arg(1)->Arg(4)->Arg(16);

void BM_ParseDvq(benchmark::State& state) {
  const std::string text = Suite().train[0].DvqText();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gred::dvq::Parse(text));
  }
}
BENCHMARK(BM_ParseDvq);

void BM_ExecuteDvq(benchmark::State& state) {
  const auto& suite = Suite();
  const auto& ex = suite.test_clean[0];
  const gred::dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
  gred::exec::ExecOptions options;
  options.join_strategy = state.range(0) == 0
                              ? gred::exec::JoinStrategy::kHashJoin
                              : gred::exec::JoinStrategy::kNestedLoop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gred::exec::Execute(ex.dvq, db->data, options));
  }
}
BENCHMARK(BM_ExecuteDvq)->Arg(0)->Arg(1);

void BM_GredTranslate(benchmark::State& state) {
  const auto& suite = Suite();
  gred::models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  static gred::llm::SimulatedChatModel llm;
  gred::core::Gred model(corpus, &llm);
  const auto& ex = suite.test_both[0];
  const gred::dataset::GeneratedDatabase* db = suite.FindRobDb(ex.db_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Translate(ex.nlq, db->data));
  }
}
BENCHMARK(BM_GredTranslate);

void BM_RgvisnetTranslate(benchmark::State& state) {
  const auto& suite = Suite();
  gred::models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  gred::models::RGVisNet model(corpus);
  const auto& ex = suite.test_both[0];
  const gred::dataset::GeneratedDatabase* db = suite.FindRobDb(ex.db_name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Translate(ex.nlq, db->data));
  }
}
BENCHMARK(BM_RgvisnetTranslate);

}  // namespace

BENCHMARK_MAIN();
