// Tests for the DVQ -> SQL translator.

#include <gtest/gtest.h>

#include "dvq/parser.h"
#include "dvq/sql.h"

namespace gred::dvq {
namespace {

DVQ D(const std::string& text) {
  Result<DVQ> q = Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value_or(DVQ{});
}

TEST(Sql, PlainProjection) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT name , salary FROM employees")),
            "SELECT name, salary FROM employees");
}

TEST(Sql, QuotesAndEscapesStrings) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , b FROM t WHERE n = "
                    "\"O'Hara\"")),
            "SELECT a, b FROM t WHERE n = 'O''Hara'");
}

TEST(Sql, ExplicitAndImplicitGrouping) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a")),
            "SELECT a, COUNT(a) FROM t GROUP BY a");
  // Implicit Vega-Zero grouping becomes explicit SQL.
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , SUM(b) FROM t")),
            "SELECT a, SUM(b) FROM t GROUP BY a");
}

TEST(Sql, BinBecomesStrftimeOnSqlite) {
  EXPECT_EQ(
      ToSql(D("Visualize LINE SELECT d , COUNT(d) FROM t BIN d BY MONTH")),
      "SELECT strftime('%Y-%m', d), COUNT(strftime('%Y-%m', d)) FROM t "
      "GROUP BY strftime('%Y-%m', d)");
}

TEST(Sql, BinBecomesExtractOnStandard) {
  std::string sql =
      ToSql(D("Visualize LINE SELECT d , COUNT(d) FROM t BIN d BY YEAR"),
            SqlDialect::kStandard);
  EXPECT_NE(sql.find("EXTRACT(YEAR FROM d)"), std::string::npos);
}

TEST(Sql, JoinAliasesAndQualifiers) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT T1.a , T2.b FROM emp AS T1 JOIN "
                    "dept AS T2 ON T1.k = T2.k")),
            "SELECT T1.a, T2.b FROM emp AS T1 JOIN dept AS T2 ON T1.k = "
            "T2.k");
}

TEST(Sql, WhereOperatorsAndNullTests) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , b FROM t WHERE x >= 3 AND y "
                    "IS NOT NULL OR z IN (1 , 2)")),
            "SELECT a, b FROM t WHERE x >= 3 AND y IS NOT NULL OR z IN "
            "(1, 2)");
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , b FROM t WHERE n LIKE "
                    "\"%x%\"")),
            "SELECT a, b FROM t WHERE n LIKE '%x%'");
}

TEST(Sql, ScalarSubquery) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , b FROM t WHERE fk = (SELECT "
                    "id FROM p WHERE n = \"v\")")),
            "SELECT a, b FROM t WHERE fk = (SELECT id FROM p WHERE n = "
            "'v')");
}

TEST(Sql, OrderLimitCountStar) {
  EXPECT_EQ(ToSql(D("Visualize BAR SELECT a , COUNT(*) FROM t GROUP BY a "
                    "ORDER BY COUNT(*) DESC LIMIT 5")),
            "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY COUNT(*) DESC "
            "LIMIT 5");
}

}  // namespace
}  // namespace gred::dvq
