// Tests for the circuit-breaking ChatModel decorator (DESIGN.md §16):
// the closed -> open -> half-open state machine, its deterministic
// call-counted cooldown, probe exclusivity under contention, and the
// economics that justify it — an open breaker spends no retry budget on
// a dead backend.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "llm/circuit_breaker.h"
#include "llm/resilient.h"

namespace gred::llm {
namespace {

/// Inner model whose outcomes follow a script: call i returns
/// 'T' -> transient failure, 'P' -> permanent failure, 'S' -> success.
/// Calls beyond the script return `fallback`.
class ScriptedModel : public ChatModel {
 public:
  explicit ScriptedModel(std::string script, char fallback = 'S')
      : script_(std::move(script)), fallback_(fallback) {}

  Result<std::string> Complete(const Prompt&,
                               const ChatOptions&) const override {
    const std::size_t i = calls_.fetch_add(1, std::memory_order_relaxed);
    const char c = i < script_.size() ? script_[i] : fallback_;
    if (c == 'T') return Status::Unavailable("injected transient");
    if (c == 'P') return Status::InvalidArgument("injected permanent");
    return std::string("ok");
  }

  std::uint64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  const std::string script_;
  const char fallback_;
  mutable std::atomic<std::size_t> calls_{0};
};

Prompt OneLinePrompt() {
  return {{ChatMessage::Role::kUser, "plot a bar chart"}};
}

TEST(CircuitBreaker, TripsCoolsDownProbesAndRecovers) {
  // Probe 1 still finds the backend down ('T' at script[3]); probe 2
  // finds it healed.
  ScriptedModel inner("TTTTS");
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown = 2;
  CircuitBreakerChatModel breaker(&inner, config);
  const Prompt prompt = OneLinePrompt();

  // Three consecutive transient failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    Result<std::string> r = breaker.Complete(prompt, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().message(), "injected transient");
  }
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kOpen);
  EXPECT_EQ(inner.calls(), 3u);

  // Open: the cooldown's worth of calls fast-fail without touching the
  // inner model.
  for (int i = 0; i < 2; ++i) {
    Result<std::string> r = breaker.Complete(prompt, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().message(), "circuit breaker open");
  }
  EXPECT_EQ(inner.calls(), 3u);

  // Cooldown served: the next call is the half-open probe. It fails
  // transiently -> back to open for another full cooldown.
  ASSERT_FALSE(breaker.Complete(prompt, {}).ok());
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kOpen);
  EXPECT_EQ(inner.calls(), 4u);
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(breaker.Complete(prompt, {}).ok());
  }
  EXPECT_EQ(inner.calls(), 4u);

  // Second probe succeeds -> closed, and traffic flows again.
  ASSERT_TRUE(breaker.Complete(prompt, {}).ok());
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kClosed);
  ASSERT_TRUE(breaker.Complete(prompt, {}).ok());

  CircuitBreakerChatModel::Stats stats = breaker.stats();
  EXPECT_EQ(stats.calls, 10u);
  EXPECT_EQ(stats.admitted, 6u);  // 3 trips + 2 probes + 1 after reset
  EXPECT_EQ(stats.fast_failures, 4u);
  EXPECT_EQ(stats.probes, 2u);
  EXPECT_EQ(stats.trips, 1u);
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_EQ(stats.admitted, inner.calls());
  EXPECT_EQ(stats.admitted + stats.fast_failures, stats.calls);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  ScriptedModel inner("TSTT");
  BreakerConfig config;
  config.failure_threshold = 2;
  CircuitBreakerChatModel breaker(&inner, config);
  const Prompt prompt = OneLinePrompt();

  ASSERT_FALSE(breaker.Complete(prompt, {}).ok());  // 1 consecutive
  ASSERT_TRUE(breaker.Complete(prompt, {}).ok());   // reset to 0
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kClosed);
  ASSERT_FALSE(breaker.Complete(prompt, {}).ok());  // 1
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kClosed);
  ASSERT_FALSE(breaker.Complete(prompt, {}).ok());  // 2 -> trip
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
}

TEST(CircuitBreaker, PermanentErrorsNeverTrip) {
  // The breaker tracks backend health, not request validity: a model
  // that keeps rejecting bad requests is reachable.
  ScriptedModel inner("PPPPPP");
  BreakerConfig config;
  config.failure_threshold = 2;
  CircuitBreakerChatModel breaker(&inner, config);
  const Prompt prompt = OneLinePrompt();
  for (int i = 0; i < 6; ++i) {
    Result<std::string> r = breaker.Complete(prompt, {});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
  EXPECT_EQ(inner.calls(), 6u);
}

TEST(CircuitBreaker, ProbePermanentErrorClosesTheBreaker) {
  // Open cooldown of zero: the call right after the trip is the probe.
  // A permanent probe error means the backend answered -> reset.
  ScriptedModel inner("TP");
  BreakerConfig config;
  config.failure_threshold = 1;
  config.open_cooldown = 0;
  CircuitBreakerChatModel breaker(&inner, config);
  const Prompt prompt = OneLinePrompt();

  ASSERT_FALSE(breaker.Complete(prompt, {}).ok());  // trip
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kOpen);
  Result<std::string> probe = breaker.Complete(prompt, {});
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(breaker.state(), CircuitBreakerChatModel::State::kClosed);
  EXPECT_EQ(breaker.stats().resets, 1u);
}

TEST(CircuitBreaker, OpenBreakerBurnsNoRetryBudgetOnADeadBackend) {
  // The acceptance-economics check, in unit form: against a backend
  // that is 100% down, breaker(retrier(model)) must reach the backend
  // >= 5x less often than retrier(model) alone over the same demand.
  constexpr int kRequests = 96;
  RetryConfig retry;
  retry.max_attempts = 3;

  ScriptedModel dead_retry_only("", 'T');
  RetryingChatModel retry_only(&dead_retry_only, retry);

  ScriptedModel dead_with_breaker("", 'T');
  RetryingChatModel retrier(&dead_with_breaker, retry);
  BreakerConfig config;  // threshold 5, cooldown 8
  CircuitBreakerChatModel breaker(&retrier, config);

  const Prompt prompt = OneLinePrompt();
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_FALSE(retry_only.Complete(prompt, {}).ok());
    ASSERT_FALSE(breaker.Complete(prompt, {}).ok());
  }

  // Retry-only: every request burns its full attempt budget.
  EXPECT_EQ(dead_retry_only.calls(),
            static_cast<std::uint64_t>(kRequests) * retry.max_attempts);
  // Breaker: 5 calls to trip, then one probe per (cooldown + 1) cycle.
  // 96 requests, threshold 5, cooldown 8 -> 15 attempts tripping + 10
  // probes x 3 attempts = 45.
  EXPECT_EQ(dead_with_breaker.calls(), 45u);
  EXPECT_GE(static_cast<double>(dead_retry_only.calls()) /
                static_cast<double>(dead_with_breaker.calls()),
            5.0);
  // Every rejection is counted, not silently dropped.
  CircuitBreakerChatModel::Stats stats = breaker.stats();
  EXPECT_EQ(stats.calls, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.admitted + stats.fast_failures, stats.calls);
}

// Contention invariants (run under TSan in tier1.sh): many threads
// hammering a breaker over a dead backend. Exactly-once accounting must
// hold — every call either reached the inner model or was fast-failed —
// and at most one probe is ever in flight (implied by admitted ==
// inner.calls() with no data race reported).
TEST(CircuitBreaker, HammerAccountsEveryCallUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 200;
  ScriptedModel dead("", 'T');
  BreakerConfig config;
  config.failure_threshold = 3;
  config.open_cooldown = 4;
  CircuitBreakerChatModel breaker(&dead, config);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const Prompt prompt = OneLinePrompt();
      for (int i = 0; i < kCallsPerThread; ++i) {
        if (!breaker.Complete(prompt, {}).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // A dead backend never yields a success.
  EXPECT_EQ(failures.load(), kThreads * kCallsPerThread);
  CircuitBreakerChatModel::Stats stats = breaker.stats();
  EXPECT_EQ(stats.calls,
            static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_EQ(stats.admitted + stats.fast_failures, stats.calls);
  EXPECT_EQ(stats.admitted, dead.calls());
  EXPECT_GE(stats.trips, 1u);
  // The breaker sheds the large majority of demand on a dead backend
  // even under contention (steady state: ~1 admission per cooldown+1
  // calls, plus the trip prefix).
  EXPECT_LT(stats.admitted, stats.calls / 4);
}

}  // namespace
}  // namespace gred::llm
