// Unit and property tests for the DVQ executor and scalar functions.

#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "dvq/parser.h"
#include "exec/executor.h"
#include "exec/scalar.h"
#include "util/rng.h"

namespace gred::exec {
namespace {

using storage::DatabaseData;
using storage::Value;

dvq::Query Q(const std::string& text) {
  Result<dvq::Query> q = dvq::ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
  return q.value_or(dvq::Query{});
}

/// Fixture database: employees + departments with known rows.
DatabaseData MakeDb() {
  schema::Database db_schema("hr");
  schema::TableDef departments("departments", {});
  departments.AddColumn({"department_id", schema::ColumnType::kInt, true});
  departments.AddColumn({"department_name", schema::ColumnType::kText,
                         false});
  db_schema.AddTable(std::move(departments));
  schema::TableDef employees("employees", {});
  employees.AddColumn({"employee_id", schema::ColumnType::kInt, true});
  employees.AddColumn({"name", schema::ColumnType::kText, false});
  employees.AddColumn({"salary", schema::ColumnType::kInt, false});
  employees.AddColumn({"hire_date", schema::ColumnType::kDate, false});
  employees.AddColumn({"department_id", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(employees));

  DatabaseData db(std::move(db_schema));
  storage::DataTable* dep = db.FindTable("departments");
  EXPECT_TRUE(dep->AppendRow({Value::Int(1), Value::Text("Sales")}).ok());
  EXPECT_TRUE(dep->AppendRow({Value::Int(2), Value::Text("Finance")}).ok());
  storage::DataTable* emp = db.FindTable("employees");
  auto add = [&](int id, const char* name, int salary, const char* date,
                 int dept) {
    EXPECT_TRUE(emp->AppendRow({Value::Int(id), Value::Text(name),
                                Value::Int(salary), Value::Text(date),
                                Value::Int(dept)})
                    .ok());
  };
  add(1, "ann", 1000, "2020-01-15", 1);
  add(2, "bob", 2000, "2020-02-20", 1);
  add(3, "cho", 3000, "2021-01-05", 2);
  add(4, "dee", 4000, "2021-07-04", 2);
  add(5, "eve", 5000, "2021-07-20", 3);  // dangling department
  return db;
}

TEST(Executor, Projection) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(Q("SELECT name , salary FROM employees"),
                                 db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 5u);
  EXPECT_EQ(rs.value().column_names,
            (std::vector<std::string>{"name", "salary"}));
  EXPECT_EQ(rs.value().rows[0][0].text_value(), "ann");
}

TEST(Executor, UnknownTableFails) {
  DatabaseData db = MakeDb();
  EXPECT_FALSE(Execute(Q("SELECT a , b FROM nothere"), db).ok());
}

TEST(Executor, UnknownColumnFails) {
  DatabaseData db = MakeDb();
  // This is the paper's failure mode: a hallucinated column name means
  // no chart can be produced.
  EXPECT_FALSE(Execute(Q("SELECT wage , name FROM employees"), db).ok());
}

TEST(Executor, FilterComparisons) {
  DatabaseData db = MakeDb();
  auto count = [&](const std::string& where) {
    Result<ResultSet> rs =
        Execute(Q("SELECT name , salary FROM employees WHERE " + where), db);
    EXPECT_TRUE(rs.ok()) << where;
    return rs.ok() ? rs.value().num_rows() : 0u;
  };
  EXPECT_EQ(count("salary > 3000"), 2u);
  EXPECT_EQ(count("salary >= 3000"), 3u);
  EXPECT_EQ(count("salary < 2000"), 1u);
  EXPECT_EQ(count("salary <= 2000"), 2u);
  EXPECT_EQ(count("salary != 3000"), 4u);
  EXPECT_EQ(count("name = \"bob\""), 1u);
}

TEST(Executor, FilterPrecedenceAndBeforeOr) {
  DatabaseData db = MakeDb();
  // a OR b AND c  ==  a OR (b AND c)
  Result<ResultSet> rs = Execute(
      Q("SELECT name , salary FROM employees WHERE name = \"ann\" OR "
        "salary > 2500 AND salary < 3500"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 2u);  // ann + cho
}

TEST(Executor, LikeAndIn) {
  DatabaseData db = MakeDb();
  Result<ResultSet> like = Execute(
      Q("SELECT name , salary FROM employees WHERE name LIKE \"%o%\""), db);
  ASSERT_TRUE(like.ok());
  EXPECT_EQ(like.value().num_rows(), 2u);  // bob, cho
  Result<ResultSet> in = Execute(
      Q("SELECT name , salary FROM employees WHERE salary IN (1000 , "
        "4000)"),
      db);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in.value().num_rows(), 2u);
  Result<ResultSet> not_in = Execute(
      Q("SELECT name , salary FROM employees WHERE name NOT IN (\"ann\")"),
      db);
  ASSERT_TRUE(not_in.ok());
  EXPECT_EQ(not_in.value().num_rows(), 4u);
}

TEST(Executor, GroupByWithAggregates) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT department_id , COUNT(department_id) FROM employees GROUP "
        "BY department_id"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 3u);
  // Groups appear in first-seen order: dept 1 first with count 2.
  EXPECT_EQ(rs.value().rows[0][1].int_value(), 2);
}

TEST(Executor, AggregateFunctions) {
  DatabaseData db = MakeDb();
  auto single = [&](const std::string& expr) {
    Result<ResultSet> rs = Execute(
        Q("SELECT department_id , " + expr +
          " FROM employees WHERE department_id = 1 GROUP BY department_id"),
        db);
    EXPECT_TRUE(rs.ok());
    return rs.value().rows[0][1];
  };
  EXPECT_DOUBLE_EQ(single("SUM(salary)").AsDouble(), 3000.0);
  EXPECT_DOUBLE_EQ(single("AVG(salary)").AsDouble(), 1500.0);
  EXPECT_EQ(single("MIN(salary)").int_value(), 1000);
  EXPECT_EQ(single("MAX(salary)").int_value(), 2000);
  EXPECT_EQ(single("COUNT(*)").int_value(), 2);
}

TEST(Executor, CountDistinct) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT department_id , COUNT(DISTINCT department_id) FROM "
        "employees GROUP BY department_id"),
      db);
  ASSERT_TRUE(rs.ok());
  for (const auto& row : rs.value().rows) {
    EXPECT_EQ(row[1].int_value(), 1);
  }
}

TEST(Executor, ImplicitGroupingFromAggregate) {
  DatabaseData db = MakeDb();
  // Vega-Zero style: no GROUP BY, but an aggregate implies grouping by
  // the non-aggregated select column.
  Result<ResultSet> rs = Execute(
      Q("SELECT department_id , SUM(salary) FROM employees"), db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 3u);
}

TEST(Executor, OrderByColumnAndDirection) {
  DatabaseData db = MakeDb();
  Result<ResultSet> asc = Execute(
      Q("SELECT name , salary FROM employees ORDER BY salary ASC"), db);
  ASSERT_TRUE(asc.ok());
  EXPECT_EQ(asc.value().rows.front()[1].int_value(), 1000);
  Result<ResultSet> desc = Execute(
      Q("SELECT name , salary FROM employees ORDER BY salary DESC"), db);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc.value().rows.front()[1].int_value(), 5000);
}

TEST(Executor, OrderByHiddenAggregate) {
  DatabaseData db = MakeDb();
  // ORDER BY references an aggregate not in the select list.
  Result<ResultSet> rs = Execute(
      Q("SELECT department_id , MIN(salary) FROM employees GROUP BY "
        "department_id ORDER BY MAX(salary) DESC"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_columns(), 2u);  // hidden column stripped
  EXPECT_EQ(rs.value().rows.front()[0].int_value(), 3);  // dept of eve
}

TEST(Executor, Limit) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT name , salary FROM employees ORDER BY salary DESC LIMIT 2"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 2u);
}

TEST(Executor, BinByYearAndMonth) {
  DatabaseData db = MakeDb();
  Result<ResultSet> year = Execute(
      Q("SELECT hire_date , COUNT(hire_date) FROM employees BIN hire_date "
        "BY YEAR"),
      db);
  ASSERT_TRUE(year.ok());
  EXPECT_EQ(year.value().num_rows(), 2u);  // 2020, 2021
  Result<ResultSet> month = Execute(
      Q("SELECT hire_date , COUNT(hire_date) FROM employees BIN hire_date "
        "BY MONTH"),
      db);
  ASSERT_TRUE(month.ok());
  EXPECT_EQ(month.value().num_rows(), 4u);  // 2020-01/02, 2021-01/07
}

TEST(Executor, BinByWeekday) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT hire_date , COUNT(hire_date) FROM employees BIN hire_date "
        "BY WEEKDAY"),
      db);
  ASSERT_TRUE(rs.ok());
  for (const auto& row : rs.value().rows) {
    Date d;
    EXPECT_FALSE(ParseDate(row[0].text_value(), &d));  // weekday names
  }
}

TEST(Executor, JoinProducesMatchedRowsOnly) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT department_name , salary FROM employees JOIN departments "
        "ON employees.department_id = departments.department_id"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 4u);  // eve's department dangles
}

TEST(Executor, JoinWithAliasesAndAggregation) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT T2.department_name , AVG(T1.salary) FROM employees AS T1 "
        "JOIN departments AS T2 ON T1.department_id = T2.department_id "
        "GROUP BY T2.department_name"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(rs.value().rows[0][1].AsDouble(), 1500.0);  // Sales
}

TEST(Executor, ScalarSubquery) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT name , salary FROM employees WHERE department_id = "
        "(SELECT department_id FROM departments WHERE department_name = "
        "\"Finance\")"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 2u);
}

TEST(Executor, EmptySubqueryYieldsNoRows) {
  DatabaseData db = MakeDb();
  Result<ResultSet> rs = Execute(
      Q("SELECT name , salary FROM employees WHERE department_id = "
        "(SELECT department_id FROM departments WHERE department_name = "
        "\"Nowhere\")"),
      db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().num_rows(), 0u);
}

TEST(Executor, NullSemanticsInPredicates) {
  schema::Database db_schema("d");
  schema::TableDef t("t", {});
  t.AddColumn({"x", schema::ColumnType::kInt, false});
  t.AddColumn({"y", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(t));
  DatabaseData db(std::move(db_schema));
  storage::DataTable* table = db.FindTable("t");
  ASSERT_TRUE(table->AppendRow({Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(table->AppendRow({Value::Int(2), Value::Int(5)}).ok());
  Result<ResultSet> not_null =
      Execute(Q("SELECT x , y FROM t WHERE y IS NOT NULL"), db);
  ASSERT_TRUE(not_null.ok());
  EXPECT_EQ(not_null.value().num_rows(), 1u);
  // NULL never satisfies a comparison (three-valued logic).
  Result<ResultSet> cmp = Execute(Q("SELECT x , y FROM t WHERE y != 99"),
                                  db);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.value().num_rows(), 1u);
}

/// Exact ResultSet equality: same columns, same rows, same order, and
/// cell-for-cell identical values (kind included).
void ExpectSameResult(const ResultSet& a, const ResultSet& b,
                      const std::string& label) {
  ASSERT_EQ(a.column_names, b.column_names) << label;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << label;
  for (std::size_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << label;
    for (std::size_t c = 0; c < a.rows[r].size(); ++c) {
      const Value& x = a.rows[r][c];
      const Value& y = b.rows[r][c];
      EXPECT_TRUE(x.is_null() == y.is_null() && x.is_int() == y.is_int() &&
                  x.is_real() == y.is_real() && x.is_text() == y.is_text() &&
                  x.Compare(y) == 0)
          << label << " row " << r << " col " << c << ": " << x.ToString()
          << " vs " << y.ToString();
    }
  }
}

/// Degenerate hash: every value collides with every other value. Any
/// query that stays correct under this must be re-checking actual key
/// values after each hash match.
std::uint64_t ConstantHash(const storage::Value&) { return 42; }

TEST(Executor, HashCollisionsNeverJoinUnrelatedRows) {
  DatabaseData db = MakeDb();
  const dvq::Query join = Q(
      "SELECT department_name , salary FROM employees JOIN departments "
      "ON employees.department_id = departments.department_id");
  for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
    for (JoinStrategy strategy :
         {JoinStrategy::kHashJoin, JoinStrategy::kNestedLoop}) {
      ExecOptions baseline;
      baseline.engine = engine;
      baseline.join_strategy = strategy;
      ExecOptions colliding = baseline;
      colliding.value_hash = &ConstantHash;
      Result<ResultSet> want = Execute(join, db, baseline);
      Result<ResultSet> got = Execute(join, db, colliding);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value().num_rows(), 4u);  // eve's department dangles
      ExpectSameResult(want.value(), got.value(), "colliding join");
    }
  }
}

TEST(Executor, HashCollisionsNeverMergeUnrelatedGroups) {
  DatabaseData db = MakeDb();
  const dvq::Query group = Q(
      "SELECT department_id , COUNT(*) FROM employees GROUP BY "
      "department_id");
  for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
    ExecOptions baseline;
    baseline.engine = engine;
    ExecOptions colliding = baseline;
    colliding.value_hash = &ConstantHash;
    Result<ResultSet> want = Execute(group, db, baseline);
    Result<ResultSet> got = Execute(group, db, colliding);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().num_rows(), 3u);
    ExpectSameResult(want.value(), got.value(), "colliding group-by");
  }
}

/// Two-table fixture where both tables have a column `v` with different
/// values, so binding ORDER BY to the wrong table's `v` changes the row
/// order.
DatabaseData MakeAmbiguousDb() {
  schema::Database db_schema("d");
  schema::TableDef a("a", {});
  a.AddColumn({"k", schema::ColumnType::kInt, true});
  a.AddColumn({"v", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(a));
  schema::TableDef b("b", {});
  b.AddColumn({"k", schema::ColumnType::kInt, true});
  b.AddColumn({"v", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(b));
  DatabaseData db(std::move(db_schema));
  storage::DataTable* ta = db.FindTable("a");
  EXPECT_TRUE(ta->AppendRow({Value::Int(1), Value::Int(100)}).ok());
  EXPECT_TRUE(ta->AppendRow({Value::Int(2), Value::Int(200)}).ok());
  storage::DataTable* tb = db.FindTable("b");
  EXPECT_TRUE(tb->AppendRow({Value::Int(1), Value::Int(7)}).ok());
  EXPECT_TRUE(tb->AppendRow({Value::Int(2), Value::Int(3)}).ok());
  return db;
}

TEST(Executor, OrderByBareNameBindsToSelectedColumn) {
  // Regression: `ORDER BY v` must bind to the *selected* b.v (SQL's
  // output-column rule), not re-resolve to the first same-named slot
  // (a.v). Sorting by a.v instead yields k order 1,2; by b.v it is 2,1.
  DatabaseData db = MakeAmbiguousDb();
  const dvq::Query q = Q(
      "SELECT a.k , b.v FROM a JOIN b ON a.k = b.k ORDER BY v ASC");
  for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
    ExecOptions options;
    options.engine = engine;
    Result<ResultSet> rs = Execute(q, db, options);
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs.value().num_rows(), 2u);
    EXPECT_EQ(rs.value().num_columns(), 2u);
    EXPECT_EQ(rs.value().rows[0][0].int_value(), 2);  // b.v = 3
    EXPECT_EQ(rs.value().rows[1][0].int_value(), 1);  // b.v = 7
  }
}

TEST(Executor, OrderByQualifiedSpellingUnifiesWithSelect) {
  // `ORDER BY SUM(employees.salary)` and `ORDER BY SUM(salary)` denote
  // the same selected aggregate; neither may append a hidden duplicate
  // column. With unlimited guards, identical charges prove it: a hidden
  // column would widen every charged group row.
  DatabaseData db = MakeDb();
  const std::string base =
      "SELECT department_id , SUM(salary) FROM employees GROUP BY "
      "department_id ORDER BY ";
  for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
    ExecContext plain_ctx;
    ExecContext qualified_ctx;
    ExecOptions plain;
    plain.engine = engine;
    plain.context = &plain_ctx;
    ExecOptions qualified = plain;
    qualified.context = &qualified_ctx;
    Result<ResultSet> a = Execute(Q(base + "SUM(salary) DESC"), db, plain);
    Result<ResultSet> b =
        Execute(Q(base + "SUM(employees.salary) DESC"), db, qualified);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameResult(a.value(), b.value(), "qualified order spelling");
    EXPECT_EQ(plain_ctx.usage().ticks, qualified_ctx.usage().ticks);
    EXPECT_EQ(plain_ctx.usage().rows, qualified_ctx.usage().rows);
    EXPECT_EQ(plain_ctx.usage().bytes, qualified_ctx.usage().bytes);
  }
}

TEST(Executor, OrderByTiesKeepInputOrder) {
  // std::stable_sort contract, pinned across engines and standard
  // libraries: rows with equal keys stay in working-set order.
  DatabaseData db = MakeDb();
  const dvq::Query asc =
      Q("SELECT name , department_id FROM employees ORDER BY department_id "
        "ASC");
  const dvq::Query desc =
      Q("SELECT name , department_id FROM employees ORDER BY department_id "
        "DESC");
  const std::vector<std::string> want_asc = {"ann", "bob", "cho", "dee",
                                             "eve"};
  const std::vector<std::string> want_desc = {"eve", "cho", "dee", "ann",
                                              "bob"};
  for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
    ExecOptions options;
    options.engine = engine;
    for (const auto& [query, want] :
         {std::pair{&asc, &want_asc}, std::pair{&desc, &want_desc}}) {
      Result<ResultSet> rs = Execute(*query, db, options);
      ASSERT_TRUE(rs.ok());
      ASSERT_EQ(rs.value().num_rows(), want->size());
      for (std::size_t i = 0; i < want->size(); ++i) {
        EXPECT_EQ(rs.value().rows[i][0].text_value(), (*want)[i]);
      }
    }
  }
}

// Property: hash join and nested-loop join agree on random join queries.
class JoinEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalence, StrategiesAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  schema::Database db_schema("d");
  schema::TableDef parent("parent", {});
  parent.AddColumn({"id", schema::ColumnType::kInt, true});
  parent.AddColumn({"label", schema::ColumnType::kText, false});
  db_schema.AddTable(std::move(parent));
  schema::TableDef child("child", {});
  child.AddColumn({"cid", schema::ColumnType::kInt, true});
  child.AddColumn({"pid", schema::ColumnType::kInt, false});
  child.AddColumn({"v", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(child));
  DatabaseData db(std::move(db_schema));
  storage::DataTable* p = db.FindTable("parent");
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(
        p->AppendRow({Value::Int(i),
                      Value::Text(std::string(1, static_cast<char>('a' + i)))})
            .ok());
  }
  storage::DataTable* c = db.FindTable("child");
  for (int i = 1; i <= 60; ++i) {
    ASSERT_TRUE(c->AppendRow({Value::Int(i), Value::Int(rng.NextInt(0, 10)),
                              Value::Int(rng.NextInt(0, 100))})
                    .ok());
  }
  const std::vector<std::string> queries = {
      "SELECT label , v FROM child JOIN parent ON child.pid = parent.id",
      "SELECT label , SUM(v) FROM child JOIN parent ON child.pid = "
      "parent.id GROUP BY label",
      "SELECT label , COUNT(label) FROM child JOIN parent ON parent.id = "
      "child.pid GROUP BY label ORDER BY COUNT(label) DESC",
  };
  for (const std::string& text : queries) {
    // Every engine x strategy combination must agree bit for bit.
    std::optional<ResultSet> want;
    for (Engine engine : {Engine::kColumnar, Engine::kRowAtATime}) {
      for (JoinStrategy strategy :
           {JoinStrategy::kHashJoin, JoinStrategy::kNestedLoop}) {
        ExecOptions options;
        options.engine = engine;
        options.join_strategy = strategy;
        Result<ResultSet> rs = Execute(Q(text), db, options);
        ASSERT_TRUE(rs.ok()) << text;
        if (!want.has_value()) {
          want = std::move(rs).value();
          continue;
        }
        ExpectSameResult(*want, rs.value(), text);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalence, ::testing::Range(1, 7));

TEST(Scalar, LikeMatch) {
  EXPECT_TRUE(LikeMatch("%ab%", "drab day"));
  EXPECT_TRUE(LikeMatch("a_c", "abc"));
  EXPECT_FALSE(LikeMatch("a_c", "abbc"));
  EXPECT_TRUE(LikeMatch("%", ""));
  EXPECT_TRUE(LikeMatch("ABC", "abc"));  // case-insensitive
  EXPECT_FALSE(LikeMatch("abc%", "xabc"));
  EXPECT_TRUE(LikeMatch("%end", "the end"));
}

TEST(Scalar, LikeMatchPercentUnderscoreCombinations) {
  EXPECT_TRUE(LikeMatch("%_", "x"));
  EXPECT_FALSE(LikeMatch("%_", ""));
  EXPECT_TRUE(LikeMatch("_%", "xyz"));
  EXPECT_TRUE(LikeMatch("a%_c", "abc"));
  EXPECT_FALSE(LikeMatch("a%_c", "ac"));
  EXPECT_TRUE(LikeMatch("_%_", "ab"));
  EXPECT_FALSE(LikeMatch("_%_", "a"));
  EXPECT_TRUE(LikeMatch("%a_b%", "xxaybzz"));
  EXPECT_TRUE(LikeMatch("%%", "anything"));
  EXPECT_TRUE(LikeMatch("%%", ""));
}

TEST(Scalar, LikeMatchBacktracking) {
  // The first '%' must re-expand past the first "ab" to reach the last.
  EXPECT_TRUE(LikeMatch("%ab%ab", "abxab"));
  EXPECT_TRUE(LikeMatch("%ab%ab", "ababab"));
  EXPECT_FALSE(LikeMatch("%ab%ab", "abab x"));
  EXPECT_TRUE(LikeMatch("%ab%ab%", "xxabyyabzz"));
  EXPECT_FALSE(LikeMatch("%ab%ab%", "xxabyy"));
  EXPECT_TRUE(LikeMatch("a%a%a", "aaa"));
  EXPECT_FALSE(LikeMatch("a%a%a", "aa"));
}

TEST(Scalar, LikeMatchCaseInsensitivity) {
  EXPECT_TRUE(LikeMatch("%AbC%", "xxabcyy"));
  EXPECT_TRUE(LikeMatch("heLLo", "HEllO"));
  EXPECT_TRUE(LikeMatch("_BC", "abc"));
}

TEST(Scalar, LikeMatchEmptyPatternAndText) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_FALSE(LikeMatch("", "x"));
  EXPECT_FALSE(LikeMatch("a", ""));
  EXPECT_FALSE(LikeMatch("_", ""));
  EXPECT_TRUE(LikeMatch("%", "anything"));
}

TEST(Scalar, ParseDate) {
  Date d;
  ASSERT_TRUE(ParseDate("2020-03-15", &d));
  EXPECT_EQ(d.year, 2020);
  EXPECT_EQ(d.month, 3);
  EXPECT_EQ(d.day, 15);
  ASSERT_TRUE(ParseDate("1999", &d));
  EXPECT_EQ(d.year, 1999);
  EXPECT_FALSE(ParseDate("2020-13-01", &d));
  EXPECT_FALSE(ParseDate("not a date", &d));
}

TEST(Scalar, ParseDateRejectsTrailingGarbage) {
  Date d;
  EXPECT_FALSE(ParseDate("2020-01-02xyz", &d));
  EXPECT_FALSE(ParseDate("2020-01-02 12:00:00", &d));
  EXPECT_FALSE(ParseDate("2020-01-023", &d));
  EXPECT_FALSE(ParseDate("1999x", &d));
  EXPECT_FALSE(ParseDate("19999", &d));
  EXPECT_FALSE(ParseDate("2020-01-0", &d));
  // Exact-length forms still parse.
  EXPECT_TRUE(ParseDate("2020-01-02", &d));
  EXPECT_TRUE(ParseDate("1999", &d));
}

TEST(Scalar, WeekdayComputation) {
  Date d;
  ASSERT_TRUE(ParseDate("2024-01-01", &d));
  EXPECT_STREQ(WeekdayName(d.Weekday()), "Monday");
  ASSERT_TRUE(ParseDate("2000-01-01", &d));
  EXPECT_STREQ(WeekdayName(d.Weekday()), "Saturday");
}

TEST(Scalar, BinValueUnits) {
  Value date = Value::Text("2021-07-04");
  EXPECT_EQ(BinValue(date, dvq::BinUnit::kYear).text_value(), "2021");
  EXPECT_EQ(BinValue(date, dvq::BinUnit::kMonth).text_value(), "2021-07");
  EXPECT_EQ(BinValue(date, dvq::BinUnit::kDay).text_value(), "2021-07-04");
  EXPECT_EQ(BinValue(date, dvq::BinUnit::kWeekday).text_value(), "Sunday");
  // Non-dates pass through.
  EXPECT_EQ(BinValue(Value::Int(1999), dvq::BinUnit::kYear).int_value(),
            1999);
  EXPECT_EQ(BinValue(Value::Text("x"), dvq::BinUnit::kMonth).text_value(),
            "x");
  EXPECT_TRUE(BinValue(Value::Null(), dvq::BinUnit::kYear).is_null());
}

}  // namespace
}  // namespace gred::exec
