// Unit and property tests for the benchmark generator: databases, plans,
// NLQ rendering, perturbations and the assembled suite.

#include <gtest/gtest.h>

#include <set>

#include "dataset/benchmark.h"
#include "dataset/db_generator.h"
#include "dataset/nlq_render.h"
#include "dataset/perturb.h"
#include "dataset/query_generator.h"
#include "dvq/components.h"
#include "dvq/parser.h"
#include "exec/executor.h"
#include "util/strings.h"

namespace gred::dataset {
namespace {

/// A small shared suite built once (tests only read from it).
const BenchmarkSuite& SmallSuite() {
  static const BenchmarkSuite* const kSuite = [] {
    BenchmarkOptions options;
    options.train_size = 300;
    options.test_size = 90;
    return new BenchmarkSuite(BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

TEST(DbGenerator, GeneratesRequestedCount) {
  DbGeneratorOptions options;
  options.num_databases = 12;
  std::vector<GeneratedDatabase> dbs =
      GenerateDatabases(EntityBank::Default(), options);
  EXPECT_EQ(dbs.size(), 12u);
}

TEST(DbGenerator, EverySchemaValidates) {
  for (const GeneratedDatabase& db : SmallSuite().databases) {
    EXPECT_TRUE(db.data.db_schema().Validate().ok()) << db.data.name();
  }
  for (const GeneratedDatabase& db : SmallSuite().databases_rob) {
    EXPECT_TRUE(db.data.db_schema().Validate().ok()) << db.data.name();
  }
}

TEST(DbGenerator, MetadataAlignedWithSchema) {
  for (const GeneratedDatabase& db : SmallSuite().databases) {
    EXPECT_EQ(db.tables.size(), db.data.tables().size());
    for (const GeneratedTable& gt : db.tables) {
      const schema::TableDef* def = db.data.db_schema().FindTable(gt.name);
      ASSERT_NE(def, nullptr) << gt.name;
      EXPECT_EQ(def->columns().size(), gt.columns.size());
    }
  }
}

TEST(DbGenerator, TablesArePopulated) {
  for (const GeneratedDatabase& db : SmallSuite().databases) {
    for (const storage::DataTable& table : db.data.tables()) {
      EXPECT_GT(table.num_rows(), 0u) << table.name();
    }
  }
}

TEST(DbGenerator, ForeignKeysReferenceExistingParents) {
  const GeneratedDatabase& db = SmallSuite().databases[0];
  for (const schema::ForeignKey& fk : db.data.db_schema().foreign_keys()) {
    const storage::DataTable* child = db.data.FindTable(fk.from_table);
    const storage::DataTable* parent = db.data.FindTable(fk.to_table);
    ASSERT_NE(child, nullptr);
    ASSERT_NE(parent, nullptr);
    auto parent_col = parent->def().ColumnIndex(fk.to_column);
    ASSERT_TRUE(parent_col.has_value());
    std::set<std::string> parent_keys;
    for (std::size_t r = 0; r < parent->num_rows(); ++r) {
      parent_keys.insert(parent->at(r, *parent_col).ToString());
    }
    EXPECT_FALSE(parent_keys.empty());
  }
}

TEST(DbGenerator, DeterministicForSameSeed) {
  DbGeneratorOptions options;
  options.num_databases = 5;
  std::vector<GeneratedDatabase> a =
      GenerateDatabases(EntityBank::Default(), options);
  std::vector<GeneratedDatabase> b =
      GenerateDatabases(EntityBank::Default(), options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].data.db_schema().RenderSchemaPrompt(),
              b[i].data.db_schema().RenderSchemaPrompt());
    EXPECT_EQ(a[i].data.tables()[0].num_rows(),
              b[i].data.tables()[0].num_rows());
  }
}

TEST(Naming, PluralTableName) {
  EXPECT_EQ(PluralTableName({"employee"}), "employees");
  EXPECT_EQ(PluralTableName({"match"}), "matches");
  EXPECT_EQ(PluralTableName({"weather", "record"}), "weather_records");
  EXPECT_EQ(PluralTableName({"city"}), "cities");
}

TEST(QueryGenerator, PlansRenderToParseableDvqs) {
  for (const Example& ex : SmallSuite().test_clean) {
    Result<dvq::DVQ> parsed = dvq::Parse(ex.DvqText());
    ASSERT_TRUE(parsed.ok()) << ex.DvqText();
    EXPECT_TRUE(dvq::OverallMatch(parsed.value(), ex.dvq));
  }
}

TEST(QueryGenerator, EveryTargetExecutesOnItsCleanDatabase) {
  const BenchmarkSuite& suite = SmallSuite();
  for (const Example& ex : suite.test_clean) {
    const GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    ASSERT_NE(db, nullptr) << ex.db_name;
    Result<exec::ResultSet> rs = exec::Execute(ex.dvq, db->data);
    EXPECT_TRUE(rs.ok()) << ex.id << ": " << ex.DvqText() << " -> "
                         << rs.status().ToString();
  }
}

TEST(QueryGenerator, RenamedTargetsExecuteOnPerturbedDatabases) {
  const BenchmarkSuite& suite = SmallSuite();
  for (const Example& ex : suite.test_schema) {
    const GeneratedDatabase* db = suite.FindRobDb(ex.db_name);
    ASSERT_NE(db, nullptr);
    Result<exec::ResultSet> rs = exec::Execute(ex.dvq, db->data);
    EXPECT_TRUE(rs.ok()) << ex.id << ": " << ex.DvqText() << " -> "
                         << rs.status().ToString();
  }
}

TEST(QueryGenerator, NlqVariantsShareThePlan) {
  const BenchmarkSuite& suite = SmallSuite();
  for (std::size_t i = 0; i < suite.test_clean.size(); ++i) {
    EXPECT_EQ(suite.test_clean[i].DvqText(), suite.test_nlq[i].DvqText());
    EXPECT_EQ(suite.test_nlq[i].nlq, suite.test_clean[i].nlq_rob);
    EXPECT_NE(suite.test_nlq[i].nlq, suite.test_clean[i].nlq);
  }
}

TEST(QueryGenerator, BothVariantCombinesNlqAndSchema) {
  const BenchmarkSuite& suite = SmallSuite();
  for (std::size_t i = 0; i < suite.test_both.size(); ++i) {
    EXPECT_EQ(suite.test_both[i].nlq, suite.test_nlq[i].nlq);
    EXPECT_EQ(suite.test_both[i].DvqText(), suite.test_schema[i].DvqText());
  }
}

TEST(QueryGenerator, HardnessDistributionCoversAllTiers) {
  DatasetStats stats =
      ComputeStats(SmallSuite().test_clean, SmallSuite().databases);
  EXPECT_EQ(stats.total, SmallSuite().test_clean.size());
  EXPECT_GT(stats.by_hardness["Easy"], 0u);
  EXPECT_GT(stats.by_hardness["Medium"], 0u);
  EXPECT_GT(stats.by_hardness["Hard"], 0u);
  EXPECT_GT(stats.by_hardness["Extra Hard"], 0u);
  EXPECT_GT(stats.by_chart["BAR"], stats.by_chart["PIE"]);
}

TEST(QueryGenerator, StatsAveragesMatchFigure2Shape) {
  DatasetStats stats =
      ComputeStats(SmallSuite().test_clean, SmallSuite().databases);
  EXPECT_GT(stats.avg_tables_per_db, 3.5);
  EXPECT_LT(stats.avg_tables_per_db, 7.5);
  EXPECT_GT(stats.avg_columns_per_table, 4.0);
  EXPECT_LT(stats.avg_columns_per_table, 7.0);
}

TEST(NlqRender, ExplicitStyleMentionsSchemaOrWords) {
  const BenchmarkSuite& suite = SmallSuite();
  for (std::size_t i = 0; i < 20 && i < suite.test_clean.size(); ++i) {
    const Example& ex = suite.test_clean[i];
    EXPECT_FALSE(ex.nlq.empty());
    EXPECT_FALSE(ex.nlq_rob.empty());
    EXPECT_NE(ex.nlq.back(), ' ');
  }
}

TEST(Perturb, RenameMapMatchesPerturbedSchema) {
  const BenchmarkSuite& suite = SmallSuite();
  for (const auto& [db_name, renames] : suite.renames) {
    const GeneratedDatabase* clean = suite.FindCleanDb(db_name);
    const GeneratedDatabase* rob = suite.FindRobDb(db_name);
    ASSERT_NE(clean, nullptr);
    ASSERT_NE(rob, nullptr);
    for (const auto& [old_table, new_table] : renames.tables) {
      EXPECT_NE(clean->data.db_schema().FindTable(old_table), nullptr);
      EXPECT_NE(rob->data.db_schema().FindTable(new_table), nullptr);
    }
    for (const auto& [key, new_column] : renames.columns) {
      const auto& [old_table, old_column] = key;
      std::string rob_table = renames.TableName(old_table);
      const schema::TableDef* def =
          rob->data.db_schema().FindTable(rob_table);
      ASSERT_NE(def, nullptr) << rob_table;
      EXPECT_NE(def->FindColumn(new_column), nullptr)
          << old_table << "." << old_column << " -> " << new_column;
      EXPECT_EQ(def->FindColumn(old_column), nullptr)
          << "old name still present: " << old_column;
    }
  }
}

TEST(Perturb, RowDataSurvivesRenaming) {
  const BenchmarkSuite& suite = SmallSuite();
  const GeneratedDatabase& clean = suite.databases[0];
  const GeneratedDatabase& rob = suite.databases_rob[0];
  ASSERT_EQ(clean.data.tables().size(), rob.data.tables().size());
  for (std::size_t t = 0; t < clean.data.tables().size(); ++t) {
    EXPECT_EQ(clean.data.tables()[t].num_rows(),
              rob.data.tables()[t].num_rows());
  }
}

TEST(Perturb, RewriteDvqTargetsResolveInRenamedSchema) {
  const BenchmarkSuite& suite = SmallSuite();
  for (const Example& ex : suite.test_schema) {
    const GeneratedDatabase* rob = suite.FindRobDb(ex.db_name);
    for (const dvq::ColumnRef& ref :
         dvq::CollectColumnRefs(ex.dvq.query)) {
      if (ref.column == "*") continue;
      EXPECT_TRUE(rob->data.db_schema().HasColumn(ref.column))
          << ex.id << " references missing column " << ref.column;
    }
  }
}

// Property: schema perturbation renames names, never data — executing
// the rewritten target on the perturbed database returns exactly the
// rows of the clean target on the clean database.
TEST(Perturb, RenamedTargetsPreserveExecutionSemantics) {
  const BenchmarkSuite& suite = SmallSuite();
  for (std::size_t i = 0; i < suite.test_clean.size(); ++i) {
    const Example& clean = suite.test_clean[i];
    const Example& renamed = suite.test_schema[i];
    const GeneratedDatabase* clean_db = suite.FindCleanDb(clean.db_name);
    const GeneratedDatabase* rob_db = suite.FindRobDb(renamed.db_name);
    Result<exec::ResultSet> a = exec::Execute(clean.dvq, clean_db->data);
    Result<exec::ResultSet> b = exec::Execute(renamed.dvq, rob_db->data);
    ASSERT_TRUE(a.ok()) << clean.id;
    ASSERT_TRUE(b.ok()) << renamed.id << ": " << renamed.DvqText();
    ASSERT_EQ(a.value().num_rows(), b.value().num_rows()) << clean.id;
    for (std::size_t r = 0; r < a.value().num_rows(); ++r) {
      for (std::size_t c = 0; c < a.value().num_columns(); ++c) {
        EXPECT_EQ(a.value().rows[r][c].Compare(b.value().rows[r][c]), 0)
            << clean.id << " row " << r << " col " << c;
      }
    }
  }
}

TEST(Perturb, SchemaRenameLookupFallsBackToOriginal) {
  SchemaRename renames;
  renames.tables["employees"] = "staffers";
  renames.columns[{"employees", "salary"}] = "wage";
  EXPECT_EQ(renames.TableName("EMPLOYEES"), "staffers");
  EXPECT_EQ(renames.TableName("departments"), "departments");
  EXPECT_EQ(renames.ColumnName("employees", "SALARY"), "wage");
  EXPECT_EQ(renames.ColumnName("employees", "name"), "name");
}

TEST(Suite, DeterministicAcrossBuilds) {
  BenchmarkOptions options;
  options.train_size = 60;
  options.test_size = 20;
  BenchmarkSuite a = BuildBenchmarkSuite(options);
  BenchmarkSuite b = BuildBenchmarkSuite(options);
  ASSERT_EQ(a.test_clean.size(), b.test_clean.size());
  for (std::size_t i = 0; i < a.test_clean.size(); ++i) {
    EXPECT_EQ(a.test_clean[i].nlq, b.test_clean[i].nlq);
    EXPECT_EQ(a.test_clean[i].DvqText(), b.test_clean[i].DvqText());
  }
}

TEST(Suite, CrossDomainHoldsOutDatabases) {
  BenchmarkOptions options;
  options.train_size = 200;
  options.test_size = 60;
  options.cross_domain = true;
  BenchmarkSuite suite = BuildBenchmarkSuite(options);
  EXPECT_FALSE(suite.test_clean.empty());
  EXPECT_FALSE(suite.train.empty());
  std::set<std::string> train_dbs;
  for (const Example& ex : suite.train) {
    train_dbs.insert(strings::ToLower(ex.db_name));
  }
  for (const Example& ex : suite.test_clean) {
    EXPECT_EQ(train_dbs.count(strings::ToLower(ex.db_name)), 0u)
        << ex.db_name << " appears in both splits";
  }
}

TEST(Suite, TrainAndTestDisjointIds) {
  const BenchmarkSuite& suite = SmallSuite();
  std::set<std::string> train_ids;
  for (const Example& ex : suite.train) train_ids.insert(ex.id);
  for (const Example& ex : suite.test_clean) {
    EXPECT_EQ(train_ids.count(ex.id), 0u);
  }
}

TEST(OpPhrases, BothRegistersAreDisjointPerOperator) {
  for (dvq::CompareOp op :
       {dvq::CompareOp::kEq, dvq::CompareOp::kNe, dvq::CompareOp::kGt,
        dvq::CompareOp::kLt, dvq::CompareOp::kGe, dvq::CompareOp::kLe,
        dvq::CompareOp::kLike}) {
    const auto& explicit_phrases = ExplicitOpPhrases(op);
    const auto& paraphrased = ParaphrasedOpPhrases(op);
    EXPECT_FALSE(explicit_phrases.empty());
    EXPECT_FALSE(paraphrased.empty());
    for (const std::string& p : paraphrased) {
      for (const std::string& e : explicit_phrases) {
        EXPECT_NE(p, e);
      }
    }
  }
}

TEST(ChartPhrases, ChartFamilyWordSurvivesBothStyles) {
  // Vis accuracy stays high in the paper because the chart family is
  // recognizable in both registers.
  struct Case {
    dvq::ChartType chart;
    const char* word;
  };
  const Case kCases[] = {
      {dvq::ChartType::kBar, "bar"},      {dvq::ChartType::kPie, "pie"},
      {dvq::ChartType::kLine, "line"},    {dvq::ChartType::kScatter,
                                           "scatter"},
      {dvq::ChartType::kStackedBar, "stacked"},
  };
  for (const Case& c : kCases) {
    for (NlqStyle style : {NlqStyle::kExplicit, NlqStyle::kParaphrased}) {
      for (const std::string& phrase : ChartPhrases(c.chart, style)) {
        bool ok = phrase.find(c.word) != std::string::npos ||
                  phrase.find("histogram") != std::string::npos;
        EXPECT_TRUE(ok) << phrase;
      }
    }
  }
}

}  // namespace
}  // namespace gred::dataset
