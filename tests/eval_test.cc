// Tests for the evaluation metrics and harness (Appendix A).

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/benchmark.h"
#include "dvq/parser.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"

namespace gred::eval {
namespace {

/// Model that always answers with the target (oracle).
class OracleModel : public models::TextToVisModel {
 public:
  explicit OracleModel(const std::vector<dataset::Example>* test)
      : test_(test) {}
  std::string name() const override { return "Oracle"; }
  Result<dvq::DVQ> Translate(const std::string& nlq,
                             const storage::DatabaseData& db) const override {
    (void)db;
    for (const dataset::Example& ex : *test_) {
      if (ex.nlq == nlq) return ex.dvq;
    }
    return Status::NotFound("no such nlq");
  }

 private:
  const std::vector<dataset::Example>* test_;
};

/// Model that always errors.
class BrokenModel : public models::TextToVisModel {
 public:
  std::string name() const override { return "Broken"; }
  Result<dvq::DVQ> Translate(const std::string&,
                             const storage::DatabaseData&) const override {
    return Status::ExecutionError("down for maintenance");
  }
};

const dataset::BenchmarkSuite& SmallSuite() {
  static const dataset::BenchmarkSuite* const kSuite = [] {
    dataset::BenchmarkOptions options;
    options.train_size = 120;
    options.test_size = 30;
    return new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

TEST(Metrics, CountsAndRatios) {
  MetricCounts counts;
  counts.total = 4;
  counts.vis = 4;
  counts.axis = 3;
  counts.data = 2;
  counts.overall = 2;
  EXPECT_DOUBLE_EQ(counts.VisAcc(), 1.0);
  EXPECT_DOUBLE_EQ(counts.AxisAcc(), 0.75);
  EXPECT_DOUBLE_EQ(counts.DataAcc(), 0.5);
  EXPECT_DOUBLE_EQ(counts.OverallAcc(), 0.5);
  MetricCounts empty;
  EXPECT_DOUBLE_EQ(empty.OverallAcc(), 0.0);
}

TEST(Metrics, EmptyCountsNeverProduceNaN) {
  // total == 0 (e.g. an empty per-hardness or per-chart bucket) must
  // report 0.0 from every accessor, not NaN leaking into bench tables.
  MetricCounts empty;
  EXPECT_DOUBLE_EQ(empty.VisAcc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AxisAcc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.DataAcc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.OverallAcc(), 0.0);
  EXPECT_DOUBLE_EQ(empty.ExecutionAcc(), 0.0);
  EXPECT_FALSE(std::isnan(empty.VisAcc()));

  // The same holds for a bucket that recorded only errors.
  MetricCounts errors_only;
  errors_only.errors = 3;
  EXPECT_DOUBLE_EQ(errors_only.OverallAcc(), 0.0);

  // An empty evaluation (no test examples) renders clean tables too.
  EvalResult result;
  EXPECT_DOUBLE_EQ(result.counts.OverallAcc(), 0.0);
  EXPECT_DOUBLE_EQ(result.by_hardness["Easy"].OverallAcc(), 0.0);
}

TEST(Metrics, Merge) {
  MetricCounts a;
  a.total = 2;
  a.vis = 1;
  MetricCounts b;
  b.total = 3;
  b.vis = 3;
  b.errors = 1;
  a.Merge(b);
  EXPECT_EQ(a.total, 5u);
  EXPECT_EQ(a.vis, 4u);
  EXPECT_EQ(a.errors, 1u);
}

TEST(Metrics, ScorePredictionComponents) {
  dataset::Example ex;
  ex.dvq = dvq::Parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a")
               .value();
  Result<dvq::DVQ> same =
      dvq::Parse("Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a");
  ExampleOutcome outcome = ScorePrediction(ex, same);
  EXPECT_TRUE(outcome.vis);
  EXPECT_TRUE(outcome.axis);
  EXPECT_TRUE(outcome.data);
  EXPECT_TRUE(outcome.overall);

  Result<dvq::DVQ> wrong_chart =
      dvq::Parse("Visualize PIE SELECT a , COUNT(a) FROM t GROUP BY a");
  outcome = ScorePrediction(ex, wrong_chart);
  EXPECT_FALSE(outcome.vis);
  EXPECT_TRUE(outcome.axis);
  EXPECT_FALSE(outcome.overall);

  Result<dvq::DVQ> error(Status::Internal("x"));
  outcome = ScorePrediction(ex, error);
  EXPECT_FALSE(outcome.vis);
  EXPECT_TRUE(outcome.predicted.empty());
}

TEST(ExecutionMatch, StyleInsensitive) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  // Find a counting example; COUNT(x) vs COUNT(*) differ in exact match
  // but execute identically when the column has no NULLs.
  for (const dataset::Example& ex : suite.test_clean) {
    if (ex.dvq.query.select.size() < 2 ||
        ex.dvq.query.select[1].agg != dvq::AggFunc::kCount ||
        ex.dvq.query.select[1].col.column == "*") {
      continue;
    }
    const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    dvq::DVQ star = ex.dvq;
    star.query.select[1].col.column = "*";
    star.query.select[1].col.table.clear();
    EXPECT_FALSE(dvq::Parse(star.ToString()).value().Canonical() ==
                 ex.dvq.Canonical());
    EXPECT_TRUE(ExecutionMatch(star, ex.dvq, db->data));
    return;
  }
  GTEST_SKIP() << "no counting example in the small suite";
}

TEST(ExecutionMatch, DetectsDifferentResults) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  const dataset::Example& ex = suite.test_clean[0];
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
  EXPECT_TRUE(ExecutionMatch(ex.dvq, ex.dvq, db->data));
  dvq::DVQ wrong_chart = ex.dvq;
  wrong_chart.chart = ex.dvq.chart == dvq::ChartType::kPie
                          ? dvq::ChartType::kBar
                          : dvq::ChartType::kPie;
  EXPECT_FALSE(ExecutionMatch(wrong_chart, ex.dvq, db->data));
  dvq::DVQ broken = ex.dvq;
  broken.query.from_table = "no_such_table";
  EXPECT_FALSE(ExecutionMatch(broken, ex.dvq, db->data));
}

TEST(ExecutionMatch, CountedInHarness) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  EvalResult result = Evaluate(oracle, suite.test_clean, suite.databases,
                               "clean");
  EXPECT_EQ(result.counts.execution, result.counts.total);
  EXPECT_DOUBLE_EQ(result.counts.ExecutionAcc(), 1.0);
}

TEST(Harness, OracleScoresPerfect) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  EvalResult result = Evaluate(oracle, suite.test_clean, suite.databases,
                               "clean");
  EXPECT_EQ(result.counts.total, suite.test_clean.size());
  EXPECT_DOUBLE_EQ(result.counts.OverallAcc(), 1.0);
  EXPECT_EQ(result.counts.errors, 0u);
  EXPECT_EQ(result.model_name, "Oracle");
}

TEST(Harness, BrokenModelCountsErrors) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  BrokenModel broken;
  EvalResult result = Evaluate(broken, suite.test_clean, suite.databases,
                               "clean");
  EXPECT_EQ(result.counts.errors, suite.test_clean.size());
  EXPECT_DOUBLE_EQ(result.counts.OverallAcc(), 0.0);
}

TEST(Harness, BreakdownsPartitionTotals) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  EvalResult result = Evaluate(oracle, suite.test_clean, suite.databases,
                               "clean");
  std::size_t by_hardness = 0;
  for (const auto& [name, counts] : result.by_hardness) {
    by_hardness += counts.total;
  }
  std::size_t by_chart = 0;
  for (const auto& [name, counts] : result.by_chart) {
    by_chart += counts.total;
  }
  EXPECT_EQ(by_hardness, result.counts.total);
  EXPECT_EQ(by_chart, result.counts.total);
}

TEST(Harness, ObserverSeesEveryExample) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  std::size_t seen = 0;
  Evaluate(oracle, suite.test_clean, suite.databases, "clean",
           [&](const ExampleOutcome& outcome) {
             ++seen;
             EXPECT_NE(outcome.example, nullptr);
           });
  EXPECT_EQ(seen, suite.test_clean.size());
}

/// Runs `model` serially and with `threads` workers, collecting the
/// observer stream both times, and asserts bit-identical results.
void ExpectParallelMatchesSerial(const models::TextToVisModel& model,
                                 const std::vector<dataset::Example>& test,
                                 const std::vector<dataset::GeneratedDatabase>&
                                     databases,
                                 std::size_t threads) {
  auto run = [&](std::size_t num_threads,
                 std::vector<ExampleOutcome>* outcomes) {
    EvalOptions options;
    options.num_threads = num_threads;
    return Evaluate(model, test, databases, "suite",
                    [outcomes](const ExampleOutcome& o) {
                      outcomes->push_back(o);
                    },
                    options);
  };
  std::vector<ExampleOutcome> serial_outcomes;
  std::vector<ExampleOutcome> parallel_outcomes;
  EvalResult serial = run(1, &serial_outcomes);
  EvalResult parallel = run(threads, &parallel_outcomes);
  EXPECT_TRUE(serial == parallel) << "EvalResult differs across thread counts";
  ASSERT_EQ(serial_outcomes.size(), parallel_outcomes.size());
  for (std::size_t i = 0; i < serial_outcomes.size(); ++i) {
    EXPECT_EQ(serial_outcomes[i].example, parallel_outcomes[i].example);
    EXPECT_EQ(serial_outcomes[i].predicted, parallel_outcomes[i].predicted);
    EXPECT_EQ(serial_outcomes[i].overall, parallel_outcomes[i].overall);
    EXPECT_EQ(serial_outcomes[i].execution, parallel_outcomes[i].execution);
  }
}

TEST(ParallelHarness, OracleDeterministicAcrossThreadCounts) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  ExpectParallelMatchesSerial(oracle, suite.test_clean, suite.databases, 4);
}

TEST(ParallelHarness, BrokenModelDeterministicAcrossThreadCounts) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  BrokenModel broken;
  ExpectParallelMatchesSerial(broken, suite.test_clean, suite.databases, 3);
}

// The full GRED pipeline under concurrency: exercises the mutex-guarded
// annotation cache (concurrent misses on the perturbed schemas), the
// shared embedding libraries, and the per-stage timing atomics. Run
// under -DGRED_SANITIZE=thread this is the harness's data-race canary.
TEST(ParallelHarness, GredDeterministicAcrossThreadCounts) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  llm::SimulatedChatModel llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &llm);
  ExpectParallelMatchesSerial(gred, suite.test_both, suite.databases_rob, 4);
  EXPECT_GE(gred.stage_stats().translate_calls, suite.test_both.size());
}

TEST(ParallelHarness, TimingSinkCountsEveryExample) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  OracleModel oracle(&suite.test_clean);
  EvalTiming timing;
  EvalOptions options;
  options.num_threads = 4;
  options.timing = &timing;
  Evaluate(oracle, suite.test_clean, suite.databases, "clean", nullptr,
           options);
  EXPECT_EQ(timing.translate.count(), suite.test_clean.size());
  EXPECT_EQ(timing.execute.count(), suite.test_clean.size());
  EXPECT_GE(timing.translate.nanos(), 0);
}

}  // namespace
}  // namespace gred::eval
