// Tests for the serving layer (DESIGN.md §13, hardened in §16):
// wire-protocol parsing and validation, bounded-queue admission control
// (including the overload / rate-limit / shutting-down rejection
// taxonomy), the concurrent worker pool's byte-identity with the serial
// reference path, typed budget trips, brownout degradation, hot-reload
// epoch semantics, the counter-balance invariant, the stats endpoint
// and the stream loop.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"

namespace gred::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, ParsesFullTranslateRequest) {
  Result<Request> req = ParseRequest(
      "{\"id\": 7, \"nlq\": \"plot a bar chart\", \"db\": \"hr_1\","
      " \"deadline_ms\": 5, \"budget_rows\": 100, \"chart\": false}");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().type, RequestType::kTranslate);
  EXPECT_EQ(req.value().nlq, "plot a bar chart");
  EXPECT_EQ(req.value().db, "hr_1");
  EXPECT_EQ(req.value().limits.deadline_ticks, 5 * kAccountedTicksPerMs);
  EXPECT_EQ(req.value().limits.row_budget, 100u);
  EXPECT_FALSE(req.value().want_chart);
  EXPECT_EQ(req.value().id.number_value(), 7.0);
}

TEST(ServeProtocol, SchemaIsAnAliasForDb) {
  Result<Request> req =
      ParseRequest("{\"nlq\": \"q\", \"schema\": \"library_1\"}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().db, "library_1");
  // Defaults: no SLO of its own, chart wanted, null id.
  EXPECT_EQ(req.value().limits.deadline_ticks, 0u);
  EXPECT_EQ(req.value().limits.row_budget, 0u);
  EXPECT_TRUE(req.value().want_chart);
  EXPECT_TRUE(req.value().id.is_null());
}

TEST(ServeProtocol, ParsesStatsRequest) {
  Result<Request> req = ParseRequest("{\"id\": \"s1\", \"type\": \"stats\"}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().type, RequestType::kStats);
  EXPECT_EQ(req.value().id.string_value(), "s1");
}

TEST(ServeProtocol, AbsurdDeadlineSaturatesInsteadOfOverflowing) {
  Result<Request> req = ParseRequest(
      "{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": 1e18}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().limits.deadline_ticks, ~std::uint64_t{0});
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  struct Case {
    const char* line;
    StatusCode code;
  };
  const Case cases[] = {
      {"{oops", StatusCode::kParseError},
      {"[1, 2]", StatusCode::kInvalidArgument},       // not an object
      {"{\"db\": \"d\"}", StatusCode::kInvalidArgument},  // missing nlq
      {"{\"nlq\": \"q\"}", StatusCode::kInvalidArgument},  // missing db
      {"{\"nlq\": \"\", \"db\": \"d\"}", StatusCode::kInvalidArgument},
      {"{\"nlq\": 3, \"db\": \"d\"}", StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"type\": \"delete\"}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": \"fast\"}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"budget_rows\": -1}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": 1e19}",
       StatusCode::kInvalidArgument},  // out of range
      {"{\"nlq\": \"q\", \"db\": \"d\", \"chart\": \"yes\"}",
       StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    Result<Request> req = ParseRequest(c.line);
    ASSERT_FALSE(req.ok()) << c.line;
    EXPECT_EQ(req.status().code(), c.code) << c.line;
  }
}

TEST(ServeProtocol, RejectsOversizedLineBeforeParsing) {
  std::string huge(kMaxRequestBytes + 1, 'x');
  Result<Request> req = ParseRequest(huge);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(req.status().message().find("too large"), std::string::npos);
}

TEST(ServeProtocol, ErrorResponsesAreWellFormedJson) {
  json::Value id = json::Value::Int(42);
  std::string line = ErrorResponse(&id, Status::NotFound("no such db"));
  json::ParseResult parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().Find("id")->number_value(), 42.0);
  EXPECT_FALSE(parsed.value().Find("ok")->bool_value());
  EXPECT_EQ(parsed.value().Find("error")->string_value(), "no such db");
  EXPECT_EQ(parsed.value().Find("code")->string_value(), "NotFound");

  std::string overloaded = OverloadedResponse(nullptr);
  json::ParseResult shed = json::Parse(overloaded);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().Find("id"), nullptr);
  EXPECT_EQ(shed.value().Find("error")->string_value(), "overloaded");
  EXPECT_EQ(shed.value().Find("code")->string_value(), "Unavailable");
}

// ---------------------------------------------------------------------------
// RequestQueue / Session units

Job MakeJob(const std::string& nlq) {
  Job job;
  job.request.nlq = nlq;
  job.done = [](const std::string&) {};
  return job;
}

TEST(RequestQueue, BoundedAdmissionFifoOrderAndDrainOnClose) {
  RequestQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_EQ(queue.TryPush(MakeJob("a")), RequestQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(MakeJob("b")), RequestQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.depth(), 2u);

  // Full: the job is refused and left with the caller.
  Job rejected = MakeJob("c");
  EXPECT_EQ(queue.TryPush(std::move(rejected)),
            RequestQueue::PushResult::kFull);
  EXPECT_EQ(rejected.request.nlq, "c");  // untouched on failure

  Job out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.request.nlq, "a");  // FIFO

  // Close with one job still queued: Pop drains it, then reports end.
  EXPECT_FALSE(queue.closed());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // After close, refusal is kClosed — even with space free — so the
  // caller can answer "shutting_down" rather than the lie "overloaded".
  EXPECT_EQ(queue.TryPush(MakeJob("d")), RequestQueue::PushResult::kClosed);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.request.nlq, "b");
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, ZeroCapacityIsClampedToOne) {
  RequestQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.TryPush(MakeJob("a")), RequestQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(MakeJob("b")), RequestQueue::PushResult::kFull);
}

// The exactly-once delivery contract under contention (run under TSan
// in tier1.sh): producers race TryPush against consumers racing Pop
// while a closer thread slams the queue shut mid-stream. Every accepted
// job must be popped exactly once; every refused job must never appear;
// nothing may be lost or double-delivered.
TEST(RequestQueue, HammerConcurrentPushPopCloseDeliversExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  constexpr int kTotal = kProducers * kPerProducer;

  RequestQueue queue(8);
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::atomic<int> attempts{0};
  std::vector<std::atomic<int>> delivered(kTotal);
  std::vector<std::atomic<bool>> was_accepted(kTotal);

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int id = p * kPerProducer + i;
        Job job = MakeJob(std::to_string(id));
        const RequestQueue::PushResult result = queue.TryPush(std::move(job));
        if (result == RequestQueue::PushResult::kAccepted) {
          was_accepted[id].store(true, std::memory_order_relaxed);
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          refused.fetch_add(1, std::memory_order_relaxed);
        }
        attempts.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Close mid-stream, racing live pushes: late producers see kClosed.
  threads.emplace_back([&] {
    while (attempts.load(std::memory_order_relaxed) < kTotal / 2) {
      std::this_thread::yield();
    }
    queue.Close();
  });
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      Job job;
      while (queue.Pop(&job)) {
        delivered[std::stoi(job.request.nlq)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(accepted.load() + refused.load(), kTotal);
  EXPECT_GT(accepted.load(), 0);
  // Everything settled: the queue is closed and drained, and a late
  // push is refused as kClosed, never silently dropped.
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(MakeJob("late")), RequestQueue::PushResult::kClosed);
  int total_delivered = 0;
  for (int id = 0; id < kTotal; ++id) {
    const int count = delivered[id].load();
    total_delivered += count;
    EXPECT_LE(count, 1) << "job " << id << " double-delivered";
    EXPECT_EQ(count == 1, was_accepted[id].load())
        << "job " << id << (count ? " delivered but refused"
                                  : " accepted but lost");
  }
  EXPECT_EQ(total_delivered, accepted.load());
  EXPECT_EQ(queue.depth(), 0u);
}

// ---------------------------------------------------------------------------
// SessionRateLimiter units

TEST(SessionRateLimiter, BurstThenRejectWithoutAdvancingTheClock) {
  SessionRateLimiter limiter(/*refill_per_request=*/0.25, /*burst=*/2.0);
  // A new session gets its full burst…
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_TRUE(limiter.Admit("a"));
  EXPECT_EQ(limiter.clock(), 2u);
  // …then runs dry. Rejections do not tick the shared clock, so a
  // limited session cannot refill itself by spamming.
  EXPECT_FALSE(limiter.Admit("a"));
  EXPECT_FALSE(limiter.Admit("a"));
  EXPECT_EQ(limiter.clock(), 2u);
}

TEST(SessionRateLimiter, OtherSessionsAdmissionsRefillTheBucket) {
  SessionRateLimiter limiter(/*refill_per_request=*/0.5, /*burst=*/1.0);
  EXPECT_TRUE(limiter.Admit("a"));   // clock 1
  EXPECT_FALSE(limiter.Admit("a"));  // dry; clock still 1
  // Two admissions elsewhere advance the clock by two ticks = 1 token.
  EXPECT_TRUE(limiter.Admit("b"));  // clock 2
  EXPECT_TRUE(limiter.Admit("c"));  // clock 3
  EXPECT_TRUE(limiter.Admit("a"));  // refilled 0 + 2*0.5 -> admitted
  EXPECT_FALSE(limiter.Admit("a"));
}

TEST(SessionRateLimiter, DeterministicAcrossReplays) {
  // Same admission sequence -> same outcomes, bit for bit.
  std::vector<bool> first;
  std::vector<bool> second;
  for (std::vector<bool>* out : {&first, &second}) {
    SessionRateLimiter limiter(0.25, 2.0);
    for (int i = 0; i < 32; ++i) {
      out->push_back(limiter.Admit(i % 3 == 0 ? "x" : "y"));
    }
  }
  EXPECT_EQ(first, second);
}

TEST(Session, SerializesLinesAndCounts) {
  std::ostringstream out;
  Session session(&out);
  session.Write("{\"ok\":true}");
  session.Write("{\"ok\":false}");
  EXPECT_EQ(session.responses_written(), 2u);
  EXPECT_EQ(out.str(), "{\"ok\":true}\n{\"ok\":false}\n");
}

// ---------------------------------------------------------------------------
// Server end-to-end (shared suite + pipeline, like gred_test)

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 240;
    options.test_size = 40;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
    llm_ = new llm::SimulatedChatModel();
    gred_ = new core::Gred(corpus_, llm_);
    ASSERT_TRUE(gred_->PrepareAnnotations(suite_->databases).ok());
  }

  static std::string RequestLine(int id, const dataset::Example& example) {
    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(id));
    obj.Set("nlq", json::Value::Str(example.nlq));
    obj.Set("db", json::Value::Str(example.db_name));
    return obj.Dump();
  }

  static dataset::BenchmarkSuite* suite_;
  static models::TrainingCorpus corpus_;
  static llm::SimulatedChatModel* llm_;
  static core::Gred* gred_;
};

dataset::BenchmarkSuite* ServeFixture::suite_ = nullptr;
models::TrainingCorpus ServeFixture::corpus_;
llm::SimulatedChatModel* ServeFixture::llm_ = nullptr;
core::Gred* ServeFixture::gred_ = nullptr;

TEST_F(ServeFixture, HandleAnswersMalformedAndUnknownDbWithTypedErrors) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(suite_, gred_, options);

  json::ParseResult bad = json::Parse(server.Handle("{oops"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().Find("ok")->bool_value());
  EXPECT_EQ(bad.value().Find("code")->string_value(), "ParseError");

  json::ParseResult missing = json::Parse(
      server.Handle("{\"id\": 1, \"nlq\": \"q\", \"db\": \"no_such_db\"}"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().Find("ok")->bool_value());
  EXPECT_EQ(missing.value().Find("code")->string_value(), "NotFound");
  EXPECT_EQ(missing.value().Find("id")->number_value(), 1.0);
}

TEST_F(ServeFixture, ConcurrentRepliesMatchSerialBatchByteForByte) {
  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.include_timings = false;  // the determinism switch
  Server server(suite_, gred_, options);

  const std::size_t n = std::min<std::size_t>(10, suite_->test_clean.size());
  std::vector<std::string> lines;
  std::map<int, std::string> serial;
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back(RequestLine(static_cast<int>(i), suite_->test_clean[i]));
    serial[static_cast<int>(i)] = server.Handle(lines.back());
  }

  std::mutex mu;
  std::map<int, std::string> concurrent;
  for (const std::string& line : lines) {
    server.Submit(line, [&mu, &concurrent](const std::string& response) {
      json::ParseResult parsed = json::Parse(response);
      ASSERT_TRUE(parsed.ok()) << response;
      int id = static_cast<int>(parsed.value().Find("id")->number_value());
      std::lock_guard<std::mutex> lock(mu);
      concurrent[id] = response;
    });
  }
  server.Shutdown();  // drains every admitted request

  ASSERT_EQ(concurrent.size(), n);
  for (const auto& [id, response] : serial) {
    EXPECT_EQ(concurrent[id], response) << "request id " << id;
  }
  EXPECT_EQ(server.stats().rejected_overload, 0u);
}

TEST_F(ServeFixture, FullQueueShedsLoadWithOverloadedResponse) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  const std::string line = RequestLine(0, suite_->test_clean[0]);

  // Wedge the single worker: its completion callback blocks until the
  // test releases it, so nothing drains while we fill the queue.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::mutex mu;
  std::vector<std::string> responses;
  server.Submit(line, [&](const std::string& response) {
    started.set_value();
    release_future.wait();
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(response);
  });
  started.get_future().wait();  // the worker has popped the wedge job

  auto collect = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(response);
  };
  // Queue is empty again; exactly `queue_capacity` more are admitted…
  server.Submit(line, collect);
  server.Submit(line, collect);
  // …and the next is shed immediately, on the submitting thread.
  bool rejected_inline = false;
  server.Submit(line, [&](const std::string& response) {
    json::ParseResult parsed = json::Parse(response);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().Find("error")->string_value(), "overloaded");
    EXPECT_EQ(parsed.value().Find("code")->string_value(), "Unavailable");
    EXPECT_EQ(parsed.value().Find("id")->number_value(), 0.0);
    rejected_inline = true;
  });
  EXPECT_TRUE(rejected_inline);

  release.set_value();
  server.Shutdown();

  EXPECT_EQ(responses.size(), 3u);  // wedge + the two admitted
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, 4u);
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServeFixture, RowBudgetTripsAreTypedAndKeepTheDvq) {
  ServerOptions options;
  options.num_workers = 1;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  // Find a request that succeeds cleanly and materializes enough rows
  // that a budget of one row must trip.
  for (std::size_t i = 0; i < suite_->test_clean.size(); ++i) {
    json::ParseResult ok_reply =
        json::Parse(server.Handle(RequestLine(static_cast<int>(i),
                                              suite_->test_clean[i])));
    ASSERT_TRUE(ok_reply.ok());
    if (!ok_reply.value().Find("ok")->bool_value()) continue;
    if (ok_reply.value().Find("rows")->number_value() < 2) continue;

    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(99));
    obj.Set("nlq", json::Value::Str(suite_->test_clean[i].nlq));
    obj.Set("db", json::Value::Str(suite_->test_clean[i].db_name));
    obj.Set("budget_rows", json::Value::Int(1));
    json::ParseResult tripped = json::Parse(server.Handle(obj.Dump()));
    ASSERT_TRUE(tripped.ok());
    const json::Value& reply = tripped.value();
    EXPECT_FALSE(reply.Find("ok")->bool_value());
    ASSERT_NE(reply.Find("resource_exhausted"), nullptr);
    EXPECT_TRUE(reply.Find("resource_exhausted")->bool_value());
    // The DVQ survived the trip: clients retry with a bigger budget
    // without paying for translation again.
    ASSERT_NE(reply.Find("dvq"), nullptr);
    EXPECT_FALSE(reply.Find("dvq")->string_value().empty());
    ASSERT_NE(reply.Find("code"), nullptr);
    EXPECT_GE(server.stats().resource_exhausted, 1u);
    return;
  }
  FAIL() << "no test example produced a successful multi-row chart";
}

TEST_F(ServeFixture, CostGateRejectsOverBudgetQueryBeforeExecution) {
  ServerOptions options;
  options.num_workers = 1;
  options.include_timings = false;
  options.cost_gate = true;
  Server server(suite_, gred_, options);
  ServerOptions ungated = options;
  ungated.cost_gate = false;
  Server plain(suite_, gred_, ungated);

  for (std::size_t i = 0; i < suite_->test_clean.size(); ++i) {
    const std::string line =
        RequestLine(static_cast<int>(i), suite_->test_clean[i]);
    // Unlimited requests never gate: byte-identical to a gate-off server.
    ASSERT_EQ(server.Handle(line), plain.Handle(line));
    json::ParseResult ok_reply = json::Parse(server.Handle(line));
    ASSERT_TRUE(ok_reply.ok());
    if (!ok_reply.value().Find("ok")->bool_value()) continue;
    if (ok_reply.value().Find("rows")->number_value() < 2) continue;

    // A one-row budget is provably too small (the estimate bounds at
    // least the scan's materialized rows), so the gate must fire —
    // typed, with the priced costs — instead of the executor tripping.
    const std::uint64_t exhausted_before = server.stats().resource_exhausted;
    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(77));
    obj.Set("nlq", json::Value::Str(suite_->test_clean[i].nlq));
    obj.Set("db", json::Value::Str(suite_->test_clean[i].db_name));
    obj.Set("budget_rows", json::Value::Int(1));
    json::ParseResult gated = json::Parse(server.Handle(obj.Dump()));
    ASSERT_TRUE(gated.ok());
    const json::Value& reply = gated.value();
    EXPECT_FALSE(reply.Find("ok")->bool_value());
    ASSERT_NE(reply.Find("error"), nullptr);
    EXPECT_EQ(reply.Find("error")->string_value(), "cost_exceeded");
    ASSERT_NE(reply.Find("cost_exceeded"), nullptr);
    EXPECT_TRUE(reply.Find("cost_exceeded")->bool_value());
    // No executor ran: a runtime trip would have marked the response
    // resource_exhausted and bumped that counter.
    EXPECT_EQ(reply.Find("resource_exhausted"), nullptr);
    EXPECT_EQ(server.stats().resource_exhausted, exhausted_before);
    // The priced estimate and the budget it broke ride along, and the
    // DVQ/SQL survive for a client retry with a bigger budget.
    ASSERT_NE(reply.Find("cost"), nullptr);
    EXPECT_EQ(reply.Find("cost")->Find("exceeded")->string_value(), "rows");
    EXPECT_GE(reply.Find("cost")->Find("rows")->number_value(), 2.0);
    ASSERT_NE(reply.Find("dvq"), nullptr);
    EXPECT_FALSE(reply.Find("dvq")->string_value().empty());

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected_cost, 1u);
    EXPECT_GE(stats.failed, stats.rejected_cost);  // subset accounting
    EXPECT_TRUE(stats.Balanced());

    // The same request without the gate runs the executor and trips at
    // runtime instead — the slow failure the gate pre-empts.
    json::ParseResult runtime = json::Parse(plain.Handle(obj.Dump()));
    ASSERT_TRUE(runtime.ok());
    EXPECT_FALSE(runtime.value().Find("ok")->bool_value());
    ASSERT_NE(runtime.value().Find("resource_exhausted"), nullptr);
    EXPECT_EQ(plain.stats().rejected_cost, 0u);
    return;
  }
  FAIL() << "no test example produced a successful multi-row chart";
}

TEST_F(ServeFixture, StatsEndpointReportsCachesAndCounters) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(suite_, gred_, options);

  std::string response;
  server.Submit("{\"id\": 5, \"type\": \"stats\"}",
                [&response](const std::string& r) { response = r; });
  ASSERT_FALSE(response.empty());  // stats answers inline, not queued

  json::ParseResult parsed = json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const json::Value& reply = parsed.value();
  EXPECT_TRUE(reply.Find("ok")->bool_value());
  ASSERT_NE(reply.Find("server"), nullptr);
  EXPECT_NE(reply.Find("server")->Find("queue_capacity"), nullptr);
  ASSERT_NE(reply.Find("embed_cache"), nullptr);
  EXPECT_NE(reply.Find("embed_cache")->Find("hit_rate"), nullptr);
  ASSERT_NE(reply.Find("stages"), nullptr);
  EXPECT_NE(reply.Find("stages")->Find("translate_calls"), nullptr);
  EXPECT_EQ(server.stats().stats_requests, 1u);
}

TEST_F(ServeFixture, TimingsAppearOnlyWhenEnabled) {
  ServerOptions timed;
  timed.num_workers = 1;
  timed.include_timings = true;
  Server server(suite_, gred_, timed);
  const std::string line = RequestLine(0, suite_->test_clean[0]);
  json::ParseResult with = json::Parse(server.Handle(line));
  ASSERT_TRUE(with.ok());
  ASSERT_NE(with.value().Find("timings_us"), nullptr);
  EXPECT_NE(with.value().Find("timings_us")->Find("translate_us"), nullptr);
  EXPECT_NE(with.value().Find("timings_us")->Find("total_us"), nullptr);

  ServerOptions untimed = timed;
  untimed.include_timings = false;
  Server quiet(suite_, gred_, untimed);
  json::ParseResult without = json::Parse(quiet.Handle(line));
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value().Find("timings_us"), nullptr);
}

TEST_F(ServeFixture, ServeStreamAnswersEveryLineAndShutsDownCleanly) {
  ServerOptions options;
  options.num_workers = 2;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  std::istringstream in(RequestLine(1, suite_->test_clean[0]) +
                        "\n\n"  // blank line is ignored
                        "{this is not json}\n"
                        "{\"id\": 4, \"type\": \"stats\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.ServeStream(in, out), 0);

  std::istringstream replies(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(replies, line)) {
    json::ParseResult parsed = json::Parse(line);
    EXPECT_TRUE(parsed.ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3u);  // one response per non-blank request line

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.completed + stats.failed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// ---------------------------------------------------------------------------
// Hardening: rejection taxonomy, rate limiting, brownout, reload,
// counter balance (DESIGN.md §16)

TEST_F(ServeFixture, SubmitAfterDrainAnswersShuttingDownNotOverloaded) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  server.BeginDrain();  // queue closed; workers still draining

  // Regression: this used to be mislabeled "overloaded", telling
  // clients to retry against a server that is going away.
  bool answered = false;
  server.Submit(RequestLine(3, suite_->test_clean[0]),
                [&](const std::string& response) {
                  json::ParseResult parsed = json::Parse(response);
                  ASSERT_TRUE(parsed.ok()) << response;
                  EXPECT_FALSE(parsed.value().Find("ok")->bool_value());
                  EXPECT_EQ(parsed.value().Find("error")->string_value(),
                            "shutting_down");
                  EXPECT_EQ(parsed.value().Find("code")->string_value(),
                            "Unavailable");
                  EXPECT_EQ(parsed.value().Find("id")->number_value(), 3.0);
                  answered = true;
                });
  EXPECT_TRUE(answered);
  server.Shutdown();

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(ServeFixture, SessionRateLimitRejectsDistinctlyFromOverload) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 16;
  options.include_timings = false;
  options.rate_burst = 1.0;
  options.rate_refill_per_request = 0.01;
  Server server(suite_, gred_, options);

  auto translate_line = [&](int id, const char* session) {
    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(id));
    obj.Set("nlq", json::Value::Str(suite_->test_clean[0].nlq));
    obj.Set("db", json::Value::Str(suite_->test_clean[0].db_name));
    obj.Set("session", json::Value::Str(session));
    return obj.Dump();
  };

  std::mutex mu;
  std::map<int, std::string> responses;
  auto collect = [&](const std::string& response) {
    json::ParseResult parsed = json::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    std::lock_guard<std::mutex> lock(mu);
    responses[static_cast<int>(
        parsed.value().Find("id")->number_value())] = response;
  };

  server.Submit(translate_line(1, "greedy"), collect);  // burst spent
  server.Submit(translate_line(2, "greedy"), collect);  // bucket dry
  server.Submit(translate_line(3, "patient"), collect);  // own bucket
  server.Shutdown();

  ASSERT_EQ(responses.size(), 3u);
  json::ParseResult limited = json::Parse(responses[2]);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().Find("error")->string_value(), "rate_limited");
  EXPECT_EQ(limited.value().Find("code")->string_value(), "Unavailable");
  // The other session's request was admitted and processed (it carries
  // a DVQ; a rate-limit rejection never reaches translation).
  EXPECT_NE(json::Parse(responses[3]).value().Find("dvq"), nullptr);

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_ratelimit, 1u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(ServeFixture, BrownoutDegradesInsteadOfRejecting) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  options.include_timings = false;
  options.brownout_high_watermark = 1;
  options.brownout_low_watermark = 0;
  Server server(suite_, gred_, options);

  const std::string line = RequestLine(0, suite_->test_clean[0]);

  // Wedge the single worker so queued depth is under our control.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::mutex mu;
  std::map<int, std::string> responses;
  server.Submit(line, [&](const std::string&) {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();

  auto collect = [&](const std::string& response) {
    json::ParseResult parsed = json::Parse(response);
    ASSERT_TRUE(parsed.ok()) << response;
    std::lock_guard<std::mutex> lock(mu);
    responses[static_cast<int>(
        parsed.value().Find("id")->number_value())] = response;
  };
  // Admission-time depth 0: normal mode.
  server.Submit(RequestLine(1, suite_->test_clean[0]), collect);
  // Admission-time depth 1 >= high watermark: degraded, not rejected.
  server.Submit(RequestLine(2, suite_->test_clean[0]), collect);
  release.set_value();
  server.Shutdown();

  ASSERT_EQ(responses.size(), 2u);
  json::ParseResult normal = json::Parse(responses[1]);
  const json::Value* normal_degraded = normal.value().Find("degraded");
  ASSERT_NE(normal_degraded, nullptr);
  // Knobs-off wire format is untouched: no "brownout" key at all.
  EXPECT_EQ(normal_degraded->Find("brownout"), nullptr);
  json::ParseResult browned = json::Parse(responses[2]);
  const json::Value* degraded = browned.value().Find("degraded");
  ASSERT_NE(degraded, nullptr);
  ASSERT_NE(degraded->Find("brownout"), nullptr);
  EXPECT_TRUE(degraded->Find("brownout")->bool_value());

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.degraded_brownout, 1u);
  EXPECT_EQ(stats.rejected_overload, 0u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(ServeFixture, ReloadSwapsEpochWhileOldEpochStaysPinned) {
  // The reload handler hands out an owned copy of the suite (so epoch
  // lifetimes are observable) over the shared pipeline.
  auto owned_suite = std::make_shared<dataset::BenchmarkSuite>(*suite_);
  std::weak_ptr<dataset::BenchmarkSuite> watch = owned_suite;

  ServerOptions options;
  options.num_workers = 1;
  options.include_timings = false;
  options.reload_handler = [&owned_suite]() -> Result<EpochPayload> {
    EpochPayload payload;
    payload.suite = owned_suite;
    // Non-owning alias: the fixture's pipeline outlives the server.
    payload.gred = std::shared_ptr<const core::Gred>(
        std::shared_ptr<const core::Gred>{}, gred_);
    return payload;
  };
  {
    Server server(suite_, gred_, options);
    EXPECT_EQ(server.stats().epoch, 1u);
    std::shared_ptr<const ServingEpoch> old_epoch = server.current_epoch();

    json::ParseResult reply =
        json::Parse(server.Handle("{\"id\": 9, \"type\": \"reload\"}"));
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply.value().Find("ok")->bool_value());
    EXPECT_EQ(reply.value().Find("epoch")->number_value(), 2.0);

    // New admissions see epoch 2; the old epoch survives while held.
    EXPECT_EQ(server.current_epoch()->epoch, 2u);
    EXPECT_EQ(old_epoch->epoch, 1u);

    // Translation still works against the reloaded suite.
    json::ParseResult after =
        json::Parse(server.Handle(RequestLine(1, suite_->test_clean[0])));
    ASSERT_TRUE(after.ok());
    EXPECT_NE(after.value().Find("dvq"), nullptr);

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.epoch, 2u);
    EXPECT_EQ(stats.reload_requests, 1u);
    EXPECT_EQ(stats.reloads_ok, 1u);
    EXPECT_TRUE(stats.Balanced());

    // The reloaded suite is pinned by the live epoch even after the
    // test drops its own reference.
    owned_suite.reset();
    EXPECT_FALSE(watch.expired());
    server.Shutdown();
  }
  // Server gone -> epoch 2 released -> the owned suite dies with it.
  EXPECT_TRUE(watch.expired());
}

TEST_F(ServeFixture, ReloadWithoutHandlerFailsUnimplemented) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(suite_, gred_, options);
  json::ParseResult reply =
      json::Parse(server.Handle("{\"type\": \"reload\"}"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply.value().Find("ok")->bool_value());
  EXPECT_EQ(reply.value().Find("code")->string_value(), "Unimplemented");
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.reload_requests, 1u);
  EXPECT_EQ(stats.reloads_ok, 0u);
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(ServeFixture, CountersBalanceAfterDrainedMixedWorkload) {
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  options.include_timings = false;
  options.rate_burst = 2.0;
  options.rate_refill_per_request = 0.1;
  Server server(suite_, gred_, options);

  std::atomic<int> answered{0};
  auto count = [&answered](const std::string&) { answered++; };

  const std::size_t n = std::min<std::size_t>(6, suite_->test_clean.size());
  for (std::size_t i = 0; i < n; ++i) {
    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(static_cast<int>(i)));
    obj.Set("nlq", json::Value::Str(suite_->test_clean[i].nlq));
    obj.Set("db", json::Value::Str(suite_->test_clean[i].db_name));
    obj.Set("session", json::Value::Str("bursty"));
    server.Submit(obj.Dump(), count);
  }
  server.Submit("{not json", count);
  server.Submit("{\"type\": \"stats\"}", count);
  server.Submit("{\"type\": \"reload\"}", count);  // fails: no handler
  server.Handle(RequestLine(99, suite_->test_clean[0]));  // serial path
  server.Shutdown();

  EXPECT_EQ(answered.load(), static_cast<int>(n) + 3);
  ServerStats stats = server.stats();
  // Every received line resolved to exactly one counted outcome —
  // the invariant the chaos harness leans on, satellite-checked here
  // on a workload that exercises every rejection class.
  EXPECT_TRUE(stats.Balanced())
      << "received=" << stats.received
      << " completed=" << stats.completed << " failed=" << stats.failed
      << " overload=" << stats.rejected_overload
      << " invalid=" << stats.rejected_invalid
      << " ratelimit=" << stats.rejected_ratelimit
      << " shutdown=" << stats.rejected_shutdown
      << " stats=" << stats.stats_requests
      << " reload=" << stats.reload_requests;
  EXPECT_EQ(stats.received, n + 4);
  EXPECT_GE(stats.rejected_ratelimit, 1u);  // burst 2 < n same-session
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.reload_requests, 1u);
}

}  // namespace
}  // namespace gred::serve
