// Tests for the serving layer (DESIGN.md §13): wire-protocol parsing
// and validation, bounded-queue admission control, the concurrent
// worker pool's byte-identity with the serial reference path, typed
// budget trips, the stats endpoint and the stream loop.

#include <gtest/gtest.h>

#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"

namespace gred::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, ParsesFullTranslateRequest) {
  Result<Request> req = ParseRequest(
      "{\"id\": 7, \"nlq\": \"plot a bar chart\", \"db\": \"hr_1\","
      " \"deadline_ms\": 5, \"budget_rows\": 100, \"chart\": false}");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().type, RequestType::kTranslate);
  EXPECT_EQ(req.value().nlq, "plot a bar chart");
  EXPECT_EQ(req.value().db, "hr_1");
  EXPECT_EQ(req.value().limits.deadline_ticks, 5 * kAccountedTicksPerMs);
  EXPECT_EQ(req.value().limits.row_budget, 100u);
  EXPECT_FALSE(req.value().want_chart);
  EXPECT_EQ(req.value().id.number_value(), 7.0);
}

TEST(ServeProtocol, SchemaIsAnAliasForDb) {
  Result<Request> req =
      ParseRequest("{\"nlq\": \"q\", \"schema\": \"library_1\"}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().db, "library_1");
  // Defaults: no SLO of its own, chart wanted, null id.
  EXPECT_EQ(req.value().limits.deadline_ticks, 0u);
  EXPECT_EQ(req.value().limits.row_budget, 0u);
  EXPECT_TRUE(req.value().want_chart);
  EXPECT_TRUE(req.value().id.is_null());
}

TEST(ServeProtocol, ParsesStatsRequest) {
  Result<Request> req = ParseRequest("{\"id\": \"s1\", \"type\": \"stats\"}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().type, RequestType::kStats);
  EXPECT_EQ(req.value().id.string_value(), "s1");
}

TEST(ServeProtocol, AbsurdDeadlineSaturatesInsteadOfOverflowing) {
  Result<Request> req = ParseRequest(
      "{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": 1e18}");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().limits.deadline_ticks, ~std::uint64_t{0});
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  struct Case {
    const char* line;
    StatusCode code;
  };
  const Case cases[] = {
      {"{oops", StatusCode::kParseError},
      {"[1, 2]", StatusCode::kInvalidArgument},       // not an object
      {"{\"db\": \"d\"}", StatusCode::kInvalidArgument},  // missing nlq
      {"{\"nlq\": \"q\"}", StatusCode::kInvalidArgument},  // missing db
      {"{\"nlq\": \"\", \"db\": \"d\"}", StatusCode::kInvalidArgument},
      {"{\"nlq\": 3, \"db\": \"d\"}", StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"type\": \"delete\"}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": \"fast\"}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"budget_rows\": -1}",
       StatusCode::kInvalidArgument},
      {"{\"nlq\": \"q\", \"db\": \"d\", \"deadline_ms\": 1e19}",
       StatusCode::kInvalidArgument},  // out of range
      {"{\"nlq\": \"q\", \"db\": \"d\", \"chart\": \"yes\"}",
       StatusCode::kInvalidArgument},
  };
  for (const Case& c : cases) {
    Result<Request> req = ParseRequest(c.line);
    ASSERT_FALSE(req.ok()) << c.line;
    EXPECT_EQ(req.status().code(), c.code) << c.line;
  }
}

TEST(ServeProtocol, RejectsOversizedLineBeforeParsing) {
  std::string huge(kMaxRequestBytes + 1, 'x');
  Result<Request> req = ParseRequest(huge);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(req.status().message().find("too large"), std::string::npos);
}

TEST(ServeProtocol, ErrorResponsesAreWellFormedJson) {
  json::Value id = json::Value::Int(42);
  std::string line = ErrorResponse(&id, Status::NotFound("no such db"));
  json::ParseResult parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().Find("id")->number_value(), 42.0);
  EXPECT_FALSE(parsed.value().Find("ok")->bool_value());
  EXPECT_EQ(parsed.value().Find("error")->string_value(), "no such db");
  EXPECT_EQ(parsed.value().Find("code")->string_value(), "NotFound");

  std::string overloaded = OverloadedResponse(nullptr);
  json::ParseResult shed = json::Parse(overloaded);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value().Find("id"), nullptr);
  EXPECT_EQ(shed.value().Find("error")->string_value(), "overloaded");
  EXPECT_EQ(shed.value().Find("code")->string_value(), "Unavailable");
}

// ---------------------------------------------------------------------------
// RequestQueue / Session units

Job MakeJob(const std::string& nlq) {
  Job job;
  job.request.nlq = nlq;
  job.done = [](const std::string&) {};
  return job;
}

TEST(RequestQueue, BoundedAdmissionFifoOrderAndDrainOnClose) {
  RequestQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.TryPush(MakeJob("a")));
  EXPECT_TRUE(queue.TryPush(MakeJob("b")));
  EXPECT_EQ(queue.depth(), 2u);

  // Full: the job is refused and left with the caller.
  Job rejected = MakeJob("c");
  EXPECT_FALSE(queue.TryPush(std::move(rejected)));
  EXPECT_EQ(rejected.request.nlq, "c");  // untouched on failure

  Job out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.request.nlq, "a");  // FIFO

  // Close with one job still queued: Pop drains it, then reports end.
  queue.Close();
  EXPECT_FALSE(queue.TryPush(MakeJob("d")));  // no admissions after close
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.request.nlq, "b");
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueue, ZeroCapacityIsClampedToOne) {
  RequestQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(MakeJob("a")));
  EXPECT_FALSE(queue.TryPush(MakeJob("b")));
}

TEST(Session, SerializesLinesAndCounts) {
  std::ostringstream out;
  Session session(&out);
  session.Write("{\"ok\":true}");
  session.Write("{\"ok\":false}");
  EXPECT_EQ(session.responses_written(), 2u);
  EXPECT_EQ(out.str(), "{\"ok\":true}\n{\"ok\":false}\n");
}

// ---------------------------------------------------------------------------
// Server end-to-end (shared suite + pipeline, like gred_test)

class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 240;
    options.test_size = 40;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
    llm_ = new llm::SimulatedChatModel();
    gred_ = new core::Gred(corpus_, llm_);
    ASSERT_TRUE(gred_->PrepareAnnotations(suite_->databases).ok());
  }

  static std::string RequestLine(int id, const dataset::Example& example) {
    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(id));
    obj.Set("nlq", json::Value::Str(example.nlq));
    obj.Set("db", json::Value::Str(example.db_name));
    return obj.Dump();
  }

  static dataset::BenchmarkSuite* suite_;
  static models::TrainingCorpus corpus_;
  static llm::SimulatedChatModel* llm_;
  static core::Gred* gred_;
};

dataset::BenchmarkSuite* ServeFixture::suite_ = nullptr;
models::TrainingCorpus ServeFixture::corpus_;
llm::SimulatedChatModel* ServeFixture::llm_ = nullptr;
core::Gred* ServeFixture::gred_ = nullptr;

TEST_F(ServeFixture, HandleAnswersMalformedAndUnknownDbWithTypedErrors) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(suite_, gred_, options);

  json::ParseResult bad = json::Parse(server.Handle("{oops"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().Find("ok")->bool_value());
  EXPECT_EQ(bad.value().Find("code")->string_value(), "ParseError");

  json::ParseResult missing = json::Parse(
      server.Handle("{\"id\": 1, \"nlq\": \"q\", \"db\": \"no_such_db\"}"));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().Find("ok")->bool_value());
  EXPECT_EQ(missing.value().Find("code")->string_value(), "NotFound");
  EXPECT_EQ(missing.value().Find("id")->number_value(), 1.0);
}

TEST_F(ServeFixture, ConcurrentRepliesMatchSerialBatchByteForByte) {
  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.include_timings = false;  // the determinism switch
  Server server(suite_, gred_, options);

  const std::size_t n = std::min<std::size_t>(10, suite_->test_clean.size());
  std::vector<std::string> lines;
  std::map<int, std::string> serial;
  for (std::size_t i = 0; i < n; ++i) {
    lines.push_back(RequestLine(static_cast<int>(i), suite_->test_clean[i]));
    serial[static_cast<int>(i)] = server.Handle(lines.back());
  }

  std::mutex mu;
  std::map<int, std::string> concurrent;
  for (const std::string& line : lines) {
    server.Submit(line, [&mu, &concurrent](const std::string& response) {
      json::ParseResult parsed = json::Parse(response);
      ASSERT_TRUE(parsed.ok()) << response;
      int id = static_cast<int>(parsed.value().Find("id")->number_value());
      std::lock_guard<std::mutex> lock(mu);
      concurrent[id] = response;
    });
  }
  server.Shutdown();  // drains every admitted request

  ASSERT_EQ(concurrent.size(), n);
  for (const auto& [id, response] : serial) {
    EXPECT_EQ(concurrent[id], response) << "request id " << id;
  }
  EXPECT_EQ(server.stats().rejected_overload, 0u);
}

TEST_F(ServeFixture, FullQueueShedsLoadWithOverloadedResponse) {
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  const std::string line = RequestLine(0, suite_->test_clean[0]);

  // Wedge the single worker: its completion callback blocks until the
  // test releases it, so nothing drains while we fill the queue.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::mutex mu;
  std::vector<std::string> responses;
  server.Submit(line, [&](const std::string& response) {
    started.set_value();
    release_future.wait();
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(response);
  });
  started.get_future().wait();  // the worker has popped the wedge job

  auto collect = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(response);
  };
  // Queue is empty again; exactly `queue_capacity` more are admitted…
  server.Submit(line, collect);
  server.Submit(line, collect);
  // …and the next is shed immediately, on the submitting thread.
  bool rejected_inline = false;
  server.Submit(line, [&](const std::string& response) {
    json::ParseResult parsed = json::Parse(response);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().Find("error")->string_value(), "overloaded");
    EXPECT_EQ(parsed.value().Find("code")->string_value(), "Unavailable");
    EXPECT_EQ(parsed.value().Find("id")->number_value(), 0.0);
    rejected_inline = true;
  });
  EXPECT_TRUE(rejected_inline);

  release.set_value();
  server.Shutdown();

  EXPECT_EQ(responses.size(), 3u);  // wedge + the two admitted
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, 4u);
  EXPECT_EQ(stats.rejected_overload, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServeFixture, RowBudgetTripsAreTypedAndKeepTheDvq) {
  ServerOptions options;
  options.num_workers = 1;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  // Find a request that succeeds cleanly and materializes enough rows
  // that a budget of one row must trip.
  for (std::size_t i = 0; i < suite_->test_clean.size(); ++i) {
    json::ParseResult ok_reply =
        json::Parse(server.Handle(RequestLine(static_cast<int>(i),
                                              suite_->test_clean[i])));
    ASSERT_TRUE(ok_reply.ok());
    if (!ok_reply.value().Find("ok")->bool_value()) continue;
    if (ok_reply.value().Find("rows")->number_value() < 2) continue;

    json::Value obj = json::Value::Object();
    obj.Set("id", json::Value::Int(99));
    obj.Set("nlq", json::Value::Str(suite_->test_clean[i].nlq));
    obj.Set("db", json::Value::Str(suite_->test_clean[i].db_name));
    obj.Set("budget_rows", json::Value::Int(1));
    json::ParseResult tripped = json::Parse(server.Handle(obj.Dump()));
    ASSERT_TRUE(tripped.ok());
    const json::Value& reply = tripped.value();
    EXPECT_FALSE(reply.Find("ok")->bool_value());
    ASSERT_NE(reply.Find("resource_exhausted"), nullptr);
    EXPECT_TRUE(reply.Find("resource_exhausted")->bool_value());
    // The DVQ survived the trip: clients retry with a bigger budget
    // without paying for translation again.
    ASSERT_NE(reply.Find("dvq"), nullptr);
    EXPECT_FALSE(reply.Find("dvq")->string_value().empty());
    ASSERT_NE(reply.Find("code"), nullptr);
    EXPECT_GE(server.stats().resource_exhausted, 1u);
    return;
  }
  FAIL() << "no test example produced a successful multi-row chart";
}

TEST_F(ServeFixture, StatsEndpointReportsCachesAndCounters) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(suite_, gred_, options);

  std::string response;
  server.Submit("{\"id\": 5, \"type\": \"stats\"}",
                [&response](const std::string& r) { response = r; });
  ASSERT_FALSE(response.empty());  // stats answers inline, not queued

  json::ParseResult parsed = json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << response;
  const json::Value& reply = parsed.value();
  EXPECT_TRUE(reply.Find("ok")->bool_value());
  ASSERT_NE(reply.Find("server"), nullptr);
  EXPECT_NE(reply.Find("server")->Find("queue_capacity"), nullptr);
  ASSERT_NE(reply.Find("embed_cache"), nullptr);
  EXPECT_NE(reply.Find("embed_cache")->Find("hit_rate"), nullptr);
  ASSERT_NE(reply.Find("stages"), nullptr);
  EXPECT_NE(reply.Find("stages")->Find("translate_calls"), nullptr);
  EXPECT_EQ(server.stats().stats_requests, 1u);
}

TEST_F(ServeFixture, TimingsAppearOnlyWhenEnabled) {
  ServerOptions timed;
  timed.num_workers = 1;
  timed.include_timings = true;
  Server server(suite_, gred_, timed);
  const std::string line = RequestLine(0, suite_->test_clean[0]);
  json::ParseResult with = json::Parse(server.Handle(line));
  ASSERT_TRUE(with.ok());
  ASSERT_NE(with.value().Find("timings_us"), nullptr);
  EXPECT_NE(with.value().Find("timings_us")->Find("translate_us"), nullptr);
  EXPECT_NE(with.value().Find("timings_us")->Find("total_us"), nullptr);

  ServerOptions untimed = timed;
  untimed.include_timings = false;
  Server quiet(suite_, gred_, untimed);
  json::ParseResult without = json::Parse(quiet.Handle(line));
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value().Find("timings_us"), nullptr);
}

TEST_F(ServeFixture, ServeStreamAnswersEveryLineAndShutsDownCleanly) {
  ServerOptions options;
  options.num_workers = 2;
  options.include_timings = false;
  Server server(suite_, gred_, options);

  std::istringstream in(RequestLine(1, suite_->test_clean[0]) +
                        "\n\n"  // blank line is ignored
                        "{this is not json}\n"
                        "{\"id\": 4, \"type\": \"stats\"}\n");
  std::ostringstream out;
  EXPECT_EQ(server.ServeStream(in, out), 0);

  std::istringstream replies(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(replies, line)) {
    json::ParseResult parsed = json::Parse(line);
    EXPECT_TRUE(parsed.ok()) << line;
    ++count;
  }
  EXPECT_EQ(count, 3u);  // one response per non-blank request line

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.received, 3u);
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.stats_requests, 1u);
  EXPECT_EQ(stats.completed + stats.failed, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace gred::serve
