// Unit tests for the embedding models and the vector store.

#include <gtest/gtest.h>

#include <cmath>

#include "embed/ann_index.h"
#include "embed/embedder.h"
#include "embed/vector_store.h"
#include "util/rng.h"

namespace gred::embed {
namespace {

double Norm(const Vector& v) {
  double n = 0.0;
  for (float x : v) n += static_cast<double>(x) * x;
  return std::sqrt(n);
}

TEST(Embedder, Deterministic) {
  SemanticHashEmbedder embedder;
  Vector a = embedder.Embed("show the salary by department");
  Vector b = embedder.Embed("show the salary by department");
  EXPECT_EQ(a, b);
}

TEST(Embedder, UnitNorm) {
  SemanticHashEmbedder embedder;
  Vector v = embedder.Embed("average price per category");
  EXPECT_NEAR(Norm(v), 1.0, 1e-5);
  EXPECT_EQ(v.size(), embedder.dimension());
}

TEST(Embedder, EmptyTextIsZeroVector) {
  SemanticHashEmbedder embedder;
  Vector v = embedder.Embed("");
  EXPECT_NEAR(Norm(v), 0.0, 1e-9);
}

TEST(Embedder, SynonymsLandCloseWithConceptFolding) {
  SemanticHashEmbedder semantic;
  double syn = CosineSimilarity(semantic.Embed("the employee salary"),
                                semantic.Embed("the worker wage"));
  double unrelated = CosineSimilarity(semantic.Embed("the employee salary"),
                                      semantic.Embed("flight departure"));
  EXPECT_GT(syn, unrelated + 0.2);
}

TEST(Embedder, LexicalVariantIgnoresSynonymy) {
  LexicalHashEmbedder lexical;
  SemanticHashEmbedder semantic;
  double lex_syn = CosineSimilarity(lexical.Embed("the employee salary"),
                                    lexical.Embed("the worker wage"));
  double sem_syn = CosineSimilarity(semantic.Embed("the employee salary"),
                                    semantic.Embed("the worker wage"));
  // The semantic embedder sees the paraphrase; the lexical one largely
  // does not — the asymmetry the robustness study hinges on.
  EXPECT_GT(sem_syn, lex_syn + 0.25);
}

TEST(Embedder, IdenticalTextMaxSimilarity) {
  SemanticHashEmbedder embedder;
  Vector v = embedder.Embed("identical question");
  EXPECT_NEAR(CosineSimilarity(v, v), 1.0, 1e-6);
}

TEST(Cosine, EdgeCases) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1.0f}, {1.0f, 0.0f}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0.0f, 0.0f}, {0.0f, 0.0f}), 0.0);
}

TEST(Cosine, OppositeVectors) {
  EXPECT_NEAR(CosineSimilarity({1.0f, 0.0f}, {-1.0f, 0.0f}), -1.0, 1e-9);
}

TEST(L2Normalize, MakesUnitLength) {
  Vector v = {3.0f, 4.0f};
  L2Normalize(&v);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
  EXPECT_NEAR(v[1], 0.8f, 1e-6);
  Vector zero = {0.0f, 0.0f};
  L2Normalize(&zero);  // must not divide by zero
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(VectorStore, TopKOrdering) {
  VectorStore store;
  store.Add({1.0f, 0.0f});
  store.Add({0.0f, 1.0f});
  store.Add({0.7f, 0.7f});
  std::vector<VectorStore::Hit> hits = store.TopK({1.0f, 0.1f}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 2u);
  EXPECT_GE(hits[0].score, hits[1].score);
}

TEST(VectorStore, KLargerThanStore) {
  VectorStore store;
  store.Add({1.0f, 0.0f});
  EXPECT_EQ(store.TopK({1.0f, 0.0f}, 10).size(), 1u);
  VectorStore empty;
  EXPECT_TRUE(empty.TopK({1.0f}, 3).empty());
}

TEST(VectorStore, TieBreaksByInsertionIndex) {
  VectorStore store;
  store.Add({1.0f, 0.0f});
  store.Add({1.0f, 0.0f});  // duplicate
  std::vector<VectorStore::Hit> hits = store.TopK({1.0f, 0.0f}, 2);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 1u);
}

TEST(VectorStore, ScoresAreCosine) {
  VectorStore store;
  store.Add({2.0f, 0.0f});  // normalized on insert
  std::vector<VectorStore::Hit> hits = store.TopK({5.0f, 0.0f}, 1);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-6);
}

TEST(VectorStore, DimensionMismatchScoresZeroNotPrefixDot) {
  // Regression: TopK used to truncate to the shorter vector
  // (std::min(v.size(), q.size())), silently ranking a wrong-dimension
  // query against the prefix of every stored vector. It now follows the
  // CosineSimilarity contract and scores mismatched dimensions 0.
  VectorStore store;
  store.Add({1.0f, 0.0f});
  store.Add({0.0f, 1.0f});
  std::vector<VectorStore::Hit> hits =
      store.TopK({1.0f, 0.0f, 0.0f, 0.0f}, 2);  // dim 4 vs dim 2
  ASSERT_EQ(hits.size(), 2u);
  for (const VectorStore::Hit& hit : hits) {
    EXPECT_DOUBLE_EQ(hit.score, 0.0);
  }
  // Ties at 0 break by insertion index.
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[1].index, 1u);
}

TEST(VectorStore, AtReturnsNormalizedRow) {
  VectorStore store;
  store.Add({3.0f, 4.0f});
  Vector row = store.at(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_NEAR(row[0], 0.6f, 1e-6);
  EXPECT_NEAR(row[1], 0.8f, 1e-6);
}

TEST(IvfIndex, EmptyAndUnbuilt) {
  IvfIndex index;
  EXPECT_TRUE(index.TopK({1.0f, 0.0f}, 3).empty());  // not built
  index.Build();
  EXPECT_TRUE(index.built());
  EXPECT_TRUE(index.TopK({1.0f, 0.0f}, 3).empty());  // empty
}

TEST(IvfIndex, ExactWhenProbingEveryCluster) {
  IvfIndex::Options options;
  options.num_clusters = 4;
  options.num_probes = 4;  // probe all -> exact
  IvfIndex index(options);
  VectorStore exact;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Vector v(16);
    for (float& x : v) x = static_cast<float>(rng.NextDouble() - 0.5);
    index.Add(v);
    exact.Add(v);
  }
  index.Build();
  Vector q(16);
  for (float& x : q) x = static_cast<float>(rng.NextDouble() - 0.5);
  std::vector<VectorStore::Hit> approx = index.TopK(q, 10);
  std::vector<VectorStore::Hit> truth = exact.TopK(q, 10);
  ASSERT_EQ(approx.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(approx[i].index, truth[i].index);
    EXPECT_NEAR(approx[i].score, truth[i].score, 1e-6);
  }
}

TEST(IvfIndex, RecallAtTenOnClusteredData) {
  // Clustered data (the realistic case): probing 4 of 16 clusters should
  // recover the bulk of the true top-10.
  IvfIndex::Options options;
  options.num_clusters = 16;
  options.num_probes = 4;
  IvfIndex index(options);
  VectorStore exact;
  Rng rng(9);
  std::vector<Vector> centers;
  for (int c = 0; c < 16; ++c) {
    Vector center(32);
    for (float& x : center) x = static_cast<float>(rng.NextDouble() - 0.5);
    L2Normalize(&center);
    centers.push_back(center);
  }
  for (int i = 0; i < 600; ++i) {
    Vector v = centers[rng.NextIndex(centers.size())];
    for (float& x : v) x += static_cast<float>((rng.NextDouble() - 0.5) * 0.2);
    index.Add(v);
    exact.Add(v);
  }
  index.Build();
  double recall_sum = 0.0;
  const int queries = 20;
  for (int qi = 0; qi < queries; ++qi) {
    Vector q = centers[rng.NextIndex(centers.size())];
    for (float& x : q) x += static_cast<float>((rng.NextDouble() - 0.5) * 0.2);
    std::vector<VectorStore::Hit> approx = index.TopK(q, 10);
    std::vector<VectorStore::Hit> truth = exact.TopK(q, 10);
    std::size_t hits = 0;
    for (const auto& t : truth) {
      for (const auto& a : approx) {
        if (a.index == t.index) ++hits;
      }
    }
    recall_sum += static_cast<double>(hits) / 10.0;
  }
  EXPECT_GT(recall_sum / queries, 0.8);
}

TEST(IvfIndex, DeterministicBuilds) {
  auto build = [] {
    IvfIndex index;
    Rng rng(3);
    for (int i = 0; i < 80; ++i) {
      Vector v(8);
      for (float& x : v) x = static_cast<float>(rng.NextDouble());
      index.Add(v);
    }
    index.Build();
    Vector q(8, 0.5f);
    return index.TopK(q, 5);
  };
  std::vector<VectorStore::Hit> a = build();
  std::vector<VectorStore::Hit> b = build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
  }
}

TEST(IvfIndex, AddsAfterBuildJoinExactPendingTail) {
  IvfIndex::Options options;
  options.refresh_growth_factor = 0.0;  // no automatic refresh in this test
  IvfIndex index(options);
  index.Add({1.0f, 0.0f});
  index.Build();
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.built_size(), 1u);
  index.Add({0.0f, 1.0f});
  // The index stays serviceable: the new vector sits in the pending tail
  // and is scanned exactly, so it is retrievable before any rebuild.
  EXPECT_TRUE(index.built());
  EXPECT_EQ(index.built_size(), 1u);
  EXPECT_EQ(index.TopK({0.0f, 1.0f}, 1)[0].index, 1u);
  index.Build();
  EXPECT_EQ(index.built_size(), 2u);
  EXPECT_EQ(index.TopK({0.0f, 1.0f}, 1)[0].index, 1u);
}

TEST(IvfIndex, GrowthPastFactorTriggersAutomaticWarmRebuild) {
  IvfIndex::Options options;
  options.num_clusters = 2;
  options.num_probes = 1;
  options.refresh_growth_factor = 1.5;
  IvfIndex index(options);
  Rng rng(17);
  auto add_random = [&] {
    Vector v(8);
    for (float& x : v) x = static_cast<float>(rng.NextDouble() - 0.5);
    index.Add(v);
  };
  for (int i = 0; i < 10; ++i) add_random();
  index.Build();
  EXPECT_EQ(index.built_size(), 10u);
  // Growing to 15 (= 10 * 1.5) must trip the automatic refresh, folding
  // the pending tail back into the clustered lists.
  for (int i = 0; i < 5; ++i) add_random();
  EXPECT_EQ(index.built_size(), 15u);
  EXPECT_TRUE(index.built());
}

TEST(IvfIndex, KLargerThanSizeReturnsEverything) {
  IvfIndex index;
  index.Add({1.0f, 0.0f, 0.0f});
  index.Add({0.0f, 1.0f, 0.0f});
  index.Add({0.0f, 0.0f, 1.0f});
  index.Build();
  std::vector<VectorStore::Hit> hits = index.TopK({1.0f, 1.0f, 1.0f}, 10);
  EXPECT_EQ(hits.size(), 3u);  // clamped to size(), no out-of-range access
}

TEST(IvfIndex, SecondBuildAfterIncrementalAddsSeesAllVectors) {
  IvfIndex::Options options;
  options.num_clusters = 4;
  options.num_probes = 4;  // probe everything -> exact
  IvfIndex index(options);
  Rng rng(11);
  std::vector<Vector> all;
  auto add_batch = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Vector v(8);
      for (float& x : v) x = static_cast<float>(rng.NextDouble() - 0.5);
      L2Normalize(&v);
      all.push_back(v);
      index.Add(v);
    }
  };
  add_batch(10);
  index.Build();
  add_batch(10);
  index.Build();  // second build must re-cluster over all 20
  ASSERT_EQ(index.size(), 20u);
  // Every stored vector (including the post-first-Build batch) must be
  // retrievable as its own exact nearest neighbour.
  for (std::size_t i = 0; i < all.size(); ++i) {
    std::vector<VectorStore::Hit> hits = index.TopK(all[i], 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].index, i);
    EXPECT_NEAR(hits[0].score, 1.0, 1e-5);
  }
}

TEST(IvfIndex, DimensionMismatchScoresZeroNotPrefixDot) {
  // Regression: Dot() used to truncate to the shorter vector, so a
  // wrong-dimension query was silently ranked against prefixes. It now
  // follows the CosineSimilarity contract and scores 0.
  IvfIndex::Options options;
  options.num_clusters = 2;
  options.num_probes = 2;
  IvfIndex index(options);
  index.Add({1.0f, 0.0f});
  index.Add({0.0f, 1.0f});
  index.Build();
  std::vector<VectorStore::Hit> hits =
      index.TopK({1.0f, 0.0f, 0.0f, 0.0f}, 2);  // dim 4 vs dim 2
  for (const VectorStore::Hit& hit : hits) {
    EXPECT_DOUBLE_EQ(hit.score, 0.0);
  }
}

}  // namespace
}  // namespace gred::embed
