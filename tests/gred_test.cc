// Tests for the GRED pipeline: preparatory phase, three stages, traces,
// ablation switches and the prompt-order flag.

#include <gtest/gtest.h>

#include "dvq/components.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"

namespace gred::core {
namespace {

class GredFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 240;
    options.test_size = 40;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
    llm_ = new llm::SimulatedChatModel();
  }
  static dataset::BenchmarkSuite* suite_;
  static models::TrainingCorpus corpus_;
  static llm::SimulatedChatModel* llm_;
};

dataset::BenchmarkSuite* GredFixture::suite_ = nullptr;
models::TrainingCorpus GredFixture::corpus_;
llm::SimulatedChatModel* GredFixture::llm_ = nullptr;

TEST_F(GredFixture, AnnotationGeneratorProducesColumnLines) {
  const schema::Database& db = suite_->databases[0].data.db_schema();
  Result<std::string> annotations = GenerateAnnotations(db, *llm_);
  ASSERT_TRUE(annotations.ok());
  for (const schema::TableDef& table : db.tables()) {
    EXPECT_NE(annotations.value().find("Table " + table.name()),
              std::string::npos);
  }
}

TEST_F(GredFixture, PrepareAnnotationsCoversCorpus) {
  Gred model(corpus_, llm_);
  Result<std::size_t> prepared =
      model.PrepareAnnotations(suite_->databases);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared.value(), suite_->databases.size());
  // Idempotent (cache hits).
  EXPECT_EQ(model.PrepareAnnotations(suite_->databases).value(),
            suite_->databases.size());
}

TEST_F(GredFixture, TranslatesCleanExample) {
  Gred model(corpus_, llm_);
  const dataset::Example& ex = suite_->test_clean[0];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(model.last_trace().dvq_gen.empty());
  EXPECT_FALSE(model.last_trace().dvq_rtn.empty());
  EXPECT_FALSE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, AblationSwitchesSkipStages) {
  GredConfig config;
  config.enable_retuner = false;
  config.enable_debugger = false;
  config.name_suffix = " w/o RTN&DBG";
  Gred model(corpus_, llm_, config);
  EXPECT_EQ(model.name(), "GRED w/o RTN&DBG");
  const dataset::Example& ex = suite_->test_clean[1];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(model.last_trace().dvq_gen.empty());
  EXPECT_TRUE(model.last_trace().dvq_rtn.empty());
  EXPECT_TRUE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, DebuggerRecoversRenamedSchema) {
  Gred full(corpus_, llm_);
  GredConfig no_dbg;
  no_dbg.enable_debugger = false;
  Gred without(corpus_, llm_, no_dbg);
  std::size_t full_hits = 0;
  std::size_t without_hits = 0;
  const std::size_t n = std::min<std::size_t>(25, suite_->test_schema.size());
  for (std::size_t i = 0; i < n; ++i) {
    const dataset::Example& ex = suite_->test_schema[i];
    const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
    Result<dvq::DVQ> a = full.Translate(ex.nlq, db->data);
    Result<dvq::DVQ> b = without.Translate(ex.nlq, db->data);
    if (a.ok() && dvq::OverallMatch(a.value(), ex.dvq)) ++full_hits;
    if (b.ok() && dvq::OverallMatch(b.value(), ex.dvq)) ++without_hits;
  }
  // Section 5.3: the Debugger is the schema-variant workhorse.
  EXPECT_GT(full_hits, without_hits);
}

TEST_F(GredFixture, DebuggerWithoutAnnotationsStillRuns) {
  GredConfig config;
  config.debugger_uses_annotations = false;
  Gred model(corpus_, llm_, config);
  const dataset::Example& ex = suite_->test_schema[0];
  const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  EXPECT_TRUE(out.ok());
  EXPECT_FALSE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, DeterministicTranslations) {
  Gred model(corpus_, llm_);
  const dataset::Example& ex = suite_->test_both[0];
  const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
  Result<dvq::DVQ> a = model.Translate(ex.nlq, db->data);
  Result<dvq::DVQ> b = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ToString(), b.value().ToString());
}

TEST_F(GredFixture, PromptOrderFlagChangesNothingStructural) {
  GredConfig desc;
  desc.ascending_prompt_order = false;
  Gred model(corpus_, llm_, desc);
  const dataset::Example& ex = suite_->test_clean[2];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  EXPECT_TRUE(out.ok());
}

TEST_F(GredFixture, KConfigRespected) {
  GredConfig tiny;
  tiny.k = 1;
  Gred model(corpus_, llm_, tiny);
  EXPECT_EQ(model.config().k, 1u);
  const dataset::Example& ex = suite_->test_clean[3];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  EXPECT_TRUE(model.Translate(ex.nlq, db->data).ok());
}

}  // namespace
}  // namespace gred::core
