// Tests for the GRED pipeline: preparatory phase, three stages, traces,
// ablation switches and the prompt-order flag.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "analysis/analyzer.h"
#include "analysis/repairer.h"
#include "dvq/components.h"
#include "dvq/parser.h"
#include "gred/gred.h"
#include "llm/prompt.h"
#include "llm/resilient.h"
#include "llm/sim_llm.h"

namespace gred::core {
namespace {

class GredFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 240;
    options.test_size = 40;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
    llm_ = new llm::SimulatedChatModel();
  }
  static dataset::BenchmarkSuite* suite_;
  static models::TrainingCorpus corpus_;
  static llm::SimulatedChatModel* llm_;
};

dataset::BenchmarkSuite* GredFixture::suite_ = nullptr;
models::TrainingCorpus GredFixture::corpus_;
llm::SimulatedChatModel* GredFixture::llm_ = nullptr;

TEST_F(GredFixture, AnnotationGeneratorProducesColumnLines) {
  const schema::Database& db = suite_->databases[0].data.db_schema();
  Result<std::string> annotations = GenerateAnnotations(db, *llm_);
  ASSERT_TRUE(annotations.ok());
  for (const schema::TableDef& table : db.tables()) {
    EXPECT_NE(annotations.value().find("Table " + table.name()),
              std::string::npos);
  }
}

TEST_F(GredFixture, PrepareAnnotationsCoversCorpus) {
  Gred model(corpus_, llm_);
  Result<std::size_t> prepared =
      model.PrepareAnnotations(suite_->databases);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared.value(), suite_->databases.size());
  // Idempotent (cache hits).
  EXPECT_EQ(model.PrepareAnnotations(suite_->databases).value(),
            suite_->databases.size());
}

TEST_F(GredFixture, TranslatesCleanExample) {
  Gred model(corpus_, llm_);
  const dataset::Example& ex = suite_->test_clean[0];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(model.last_trace().dvq_gen.empty());
  EXPECT_FALSE(model.last_trace().dvq_rtn.empty());
  EXPECT_FALSE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, AblationSwitchesSkipStages) {
  GredConfig config;
  config.enable_retuner = false;
  config.enable_debugger = false;
  config.name_suffix = " w/o RTN&DBG";
  Gred model(corpus_, llm_, config);
  EXPECT_EQ(model.name(), "GRED w/o RTN&DBG");
  const dataset::Example& ex = suite_->test_clean[1];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(model.last_trace().dvq_gen.empty());
  EXPECT_TRUE(model.last_trace().dvq_rtn.empty());
  EXPECT_TRUE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, DebuggerRecoversRenamedSchema) {
  Gred full(corpus_, llm_);
  GredConfig no_dbg;
  no_dbg.enable_debugger = false;
  Gred without(corpus_, llm_, no_dbg);
  std::size_t full_hits = 0;
  std::size_t without_hits = 0;
  const std::size_t n = std::min<std::size_t>(25, suite_->test_schema.size());
  for (std::size_t i = 0; i < n; ++i) {
    const dataset::Example& ex = suite_->test_schema[i];
    const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
    Result<dvq::DVQ> a = full.Translate(ex.nlq, db->data);
    Result<dvq::DVQ> b = without.Translate(ex.nlq, db->data);
    if (a.ok() && dvq::OverallMatch(a.value(), ex.dvq)) ++full_hits;
    if (b.ok() && dvq::OverallMatch(b.value(), ex.dvq)) ++without_hits;
  }
  // Section 5.3: the Debugger is the schema-variant workhorse.
  EXPECT_GT(full_hits, without_hits);
}

TEST_F(GredFixture, DebuggerWithoutAnnotationsStillRuns) {
  GredConfig config;
  config.debugger_uses_annotations = false;
  Gred model(corpus_, llm_, config);
  const dataset::Example& ex = suite_->test_schema[0];
  const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  EXPECT_TRUE(out.ok());
  EXPECT_FALSE(model.last_trace().dvq_dbg.empty());
}

TEST_F(GredFixture, DeterministicTranslations) {
  Gred model(corpus_, llm_);
  const dataset::Example& ex = suite_->test_both[0];
  const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
  Result<dvq::DVQ> a = model.Translate(ex.nlq, db->data);
  Result<dvq::DVQ> b = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ToString(), b.value().ToString());
}

TEST_F(GredFixture, PromptOrderFlagChangesNothingStructural) {
  GredConfig desc;
  desc.ascending_prompt_order = false;
  Gred model(corpus_, llm_, desc);
  const dataset::Example& ex = suite_->test_clean[2];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  EXPECT_TRUE(out.ok());
}

TEST_F(GredFixture, KConfigRespected) {
  GredConfig tiny;
  tiny.k = 1;
  Gred model(corpus_, llm_, tiny);
  EXPECT_EQ(model.config().k, 1u);
  const dataset::Example& ex = suite_->test_clean[3];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  EXPECT_TRUE(model.Translate(ex.nlq, db->data).ok());
}

// --- Fault tolerance / graceful degradation ---------------------------------

/// Substrings that identify each of the four Appendix C prompts.
constexpr char kGenerationNeedle[] = "Generate DVQs based on";
constexpr char kRetuneNeedle[] = "Reference DVQs";
constexpr char kDebugNeedle[] = "replace the column names";
constexpr char kAnnotationNeedle[] =
    "natural language annotations to the following";

/// Fails every prompt containing `needle` with a fixed status; delegates
/// everything else to the inner model.
class FailMatchingChatModel : public llm::ChatModel {
 public:
  FailMatchingChatModel(const llm::ChatModel* inner, std::string needle,
                        Status failure = Status::Unavailable("injected"))
      : inner_(inner), needle_(std::move(needle)),
        failure_(std::move(failure)) {}

  Result<std::string> Complete(
      const llm::Prompt& prompt,
      const llm::ChatOptions& options) const override {
    if (llm::RenderPrompt(prompt).find(needle_) != std::string::npos) {
      return failure_;
    }
    return inner_->Complete(prompt, options);
  }

 private:
  const llm::ChatModel* inner_;
  std::string needle_;
  Status failure_;
};

/// Answers every prompt containing `needle` with a fixed completion (one
/// with no extractable DVQ, for the empty-extraction paths); delegates
/// everything else.
class AnswerMatchingChatModel : public llm::ChatModel {
 public:
  AnswerMatchingChatModel(const llm::ChatModel* inner, std::string needle,
                          std::string answer)
      : inner_(inner), needle_(std::move(needle)),
        answer_(std::move(answer)) {}

  Result<std::string> Complete(
      const llm::Prompt& prompt,
      const llm::ChatOptions& options) const override {
    if (llm::RenderPrompt(prompt).find(needle_) != std::string::npos) {
      return answer_;
    }
    return inner_->Complete(prompt, options);
  }

 private:
  const llm::ChatModel* inner_;
  std::string needle_;
  std::string answer_;
};

/// Fails only the first prompt containing `needle` (a one-shot transient
/// fault), then delegates forever after.
class FlakyOnceChatModel : public llm::ChatModel {
 public:
  FlakyOnceChatModel(const llm::ChatModel* inner, std::string needle)
      : inner_(inner), needle_(std::move(needle)) {}

  Result<std::string> Complete(
      const llm::Prompt& prompt,
      const llm::ChatOptions& options) const override {
    if (llm::RenderPrompt(prompt).find(needle_) != std::string::npos &&
        !failed_once_.exchange(true)) {
      return Status::Unavailable("flaky backend");
    }
    return inner_->Complete(prompt, options);
  }

 private:
  const llm::ChatModel* inner_;
  std::string needle_;
  mutable std::atomic<bool> failed_once_{false};
};

TEST_F(GredFixture, DegradedRetunerFallsBackToGeneratorDvq) {
  FailMatchingChatModel failing(llm_, kRetuneNeedle);
  Gred model(corpus_, &failing);
  GredConfig no_rtn;
  no_rtn.enable_retuner = false;
  Gred reference(corpus_, llm_, no_rtn);
  const dataset::Example& ex = suite_->test_clean[0];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Gred::Trace trace = model.last_trace();
  EXPECT_FALSE(trace.dvq_gen.empty());
  EXPECT_TRUE(trace.dvq_rtn.empty());  // the stage produced nothing
  EXPECT_TRUE(trace.rtn_degraded);
  EXPECT_FALSE(trace.dbg_degraded);
  EXPECT_EQ(model.stage_stats().retune_degraded, 1u);
  // The degraded pipeline behaves exactly like one with no retuner.
  Result<dvq::DVQ> expected = reference.Translate(ex.nlq, db->data);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(out.value().ToString(), expected.value().ToString());
}

TEST_F(GredFixture, DegradedDebuggerFallsBackToRetunerDvq) {
  FailMatchingChatModel failing(llm_, kDebugNeedle);
  Gred model(corpus_, &failing);
  const dataset::Example& ex = suite_->test_clean[1];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Gred::Trace trace = model.last_trace();
  EXPECT_FALSE(trace.dvq_rtn.empty());
  EXPECT_TRUE(trace.dvq_dbg.empty());
  EXPECT_FALSE(trace.rtn_degraded);
  EXPECT_TRUE(trace.dbg_degraded);
  EXPECT_EQ(model.stage_stats().debug_degraded, 1u);
  // The returned DVQ is the retuner's output, parsed.
  Result<dvq::DVQ> retuned = dvq::Parse(trace.dvq_rtn);
  ASSERT_TRUE(retuned.ok());
  EXPECT_EQ(out.value().ToString(), retuned.value().ToString());
}

TEST_F(GredFixture, DegradedAnnotationFailureSkipsDebugger) {
  FailMatchingChatModel failing(llm_, kAnnotationNeedle);
  Gred model(corpus_, &failing);
  const dataset::Example& ex = suite_->test_schema[0];
  const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Gred::Trace trace = model.last_trace();
  EXPECT_TRUE(trace.dvq_dbg.empty());
  EXPECT_TRUE(trace.dbg_degraded);
  EXPECT_EQ(model.stage_stats().debug_degraded, 1u);
  // Annotation failures are excluded from the PrepareAnnotations count.
  Result<std::size_t> prepared = model.PrepareAnnotations(suite_->databases);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared.value(), 0u);
}

TEST_F(GredFixture, DegradedTraceNeverClaimsCarriedForwardOutput) {
  // A retuner completion with no extractable DVQ must not be recorded as
  // the stage's output (the old trace reported the generator's DVQ as
  // dvq_rtn); it leaves the trace empty and marks the stage degraded.
  AnswerMatchingChatModel refusing(llm_, kRetuneNeedle,
                                   "I cannot help with that request.");
  Gred model(corpus_, &refusing);
  const dataset::Example& ex = suite_->test_clean[2];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Gred::Trace trace = model.last_trace();
  EXPECT_FALSE(trace.dvq_gen.empty());
  EXPECT_TRUE(trace.dvq_rtn.empty());
  EXPECT_TRUE(trace.rtn_degraded);
}

TEST_F(GredFixture, GeneratorFailureSurfacesError) {
  FailMatchingChatModel failing(llm_, kGenerationNeedle);
  Gred model(corpus_, &failing);
  const dataset::Example& ex = suite_->test_clean[3];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsTransient());
  Gred::StageStats stats = model.stage_stats();
  EXPECT_EQ(stats.retune_degraded, 0u);
  EXPECT_EQ(stats.debug_degraded, 0u);
}

TEST_F(GredFixture, RetryRecoversDegradableStage) {
  FlakyOnceChatModel flaky(llm_, kRetuneNeedle);
  llm::RetryingChatModel retrying(&flaky, llm::RetryConfig{});
  Gred model(corpus_, &retrying);
  const dataset::Example& ex = suite_->test_clean[0];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
  Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  Gred::Trace trace = model.last_trace();
  EXPECT_FALSE(trace.rtn_degraded);
  EXPECT_FALSE(trace.dvq_rtn.empty());
  EXPECT_EQ(model.stage_stats().retune_degraded, 0u);
  EXPECT_EQ(retrying.stats().retries, 1u);
}

TEST_F(GredFixture, DegradedFaultInjectedRunsAreThreadCountInvariant) {
  // The same examples translated serially and by four threads, each run
  // on a fresh fault-injecting stack, must produce identical outcomes:
  // fault draws depend only on (seed, prompt, attempt) and annotation
  // outcomes are prewarmed, never on scheduling.
  const std::size_t n = std::min<std::size_t>(12, suite_->test_clean.size());
  llm::FaultConfig faults;
  faults.transient_rate = 0.3;
  faults.truncate_rate = 0.15;
  faults.garbage_rate = 0.15;
  llm::RetryConfig retry;
  retry.max_attempts = 3;
  auto run = [&](std::size_t threads) {
    llm::FaultInjectingChatModel injector(llm_, faults);
    llm::RetryingChatModel retrying(&injector, retry);
    Gred model(corpus_, &retrying);
    (void)model.PrepareAnnotations(suite_->databases);
    std::vector<std::string> outcomes(n);
    auto score = [&](std::size_t i) {
      const dataset::Example& ex = suite_->test_clean[i];
      const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
      Result<dvq::DVQ> out = model.Translate(ex.nlq, db->data);
      outcomes[i] = out.ok() ? out.value().ToString()
                             : out.status().ToString();
    };
    if (threads <= 1) {
      for (std::size_t i = 0; i < n; ++i) score(i);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          for (std::size_t i = t; i < n; i += threads) score(i);
        });
      }
      for (std::thread& w : workers) w.join();
    }
    return outcomes;
  };
  std::vector<std::string> serial = run(1);
  std::vector<std::string> parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST_F(GredFixture, RepairGateRescuesLintRejectedRetunerCandidate) {
  // Find a clean example whose DVQ, with one select column misspelled,
  // lints broken but repairs back to error-free — the candidate shape
  // the repair gate exists for.
  const dataset::Example* example = nullptr;
  const dataset::GeneratedDatabase* db = nullptr;
  std::string broken_text;
  for (const dataset::Example& candidate : suite_->test_clean) {
    const dataset::GeneratedDatabase* cdb =
        suite_->FindCleanDb(candidate.db_name);
    if (cdb == nullptr) continue;
    analysis::DvqAnalyzer analyzer(&cdb->data.db_schema());
    if (!analyzer.Analyze(candidate.dvq).empty()) continue;
    dvq::DVQ broken = candidate.dvq;
    dvq::SelectExpr* victim = nullptr;
    for (dvq::SelectExpr& e : broken.query.select) {
      if (e.col.column != "*") {
        victim = &e;
        break;
      }
    }
    if (victim == nullptr) continue;
    victim->col.column += victim->col.column.back();  // double the last char
    if (!analysis::HasErrors(analyzer.Analyze(broken))) continue;
    analysis::DvqRepairer repairer(&cdb->data.db_schema());
    if (!repairer.Repair(broken).success) continue;
    example = &candidate;
    db = cdb;
    broken_text = broken.ToString();
    break;
  }
  ASSERT_NE(example, nullptr) << "no repairable corpus mutant found";

  // The retuner stage always answers with the broken DVQ. Lint alone
  // rejects it (degrade, keep the generator's DVQ); lint + repair
  // rescues it (accept the repaired candidate, nothing degrades).
  AnswerMatchingChatModel broken_retuner(llm_, kRetuneNeedle, broken_text);
  GredConfig lint_only;
  lint_only.enable_lint = true;
  Gred linted(corpus_, &broken_retuner, lint_only);
  Result<dvq::DVQ> rejected = linted.Translate(example->nlq, db->data);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  Gred::Trace lint_trace = linted.last_trace();
  EXPECT_TRUE(lint_trace.rtn_lint_rejected);
  EXPECT_TRUE(lint_trace.rtn_degraded);
  EXPECT_FALSE(lint_trace.rtn_repaired);
  EXPECT_EQ(linted.stage_stats().retune_lint_trips, 1u);
  EXPECT_EQ(linted.stage_stats().retune_repairs, 0u);

  GredConfig with_repair = lint_only;
  with_repair.enable_repair = true;
  Gred repairing(corpus_, &broken_retuner, with_repair);
  Result<dvq::DVQ> rescued = repairing.Translate(example->nlq, db->data);
  ASSERT_TRUE(rescued.ok()) << rescued.status().ToString();
  Gred::Trace trace = repairing.last_trace();
  EXPECT_TRUE(trace.rtn_repaired);
  EXPECT_FALSE(trace.rtn_lint_rejected);
  EXPECT_FALSE(trace.rtn_degraded);
  EXPECT_EQ(repairing.stage_stats().retune_repairs, 1u);
  EXPECT_EQ(repairing.stage_stats().retune_lint_trips, 0u);
  // The accepted retuner DVQ is the repaired candidate: not the broken
  // text, and error-free against the schema.
  EXPECT_FALSE(trace.dvq_rtn.empty());
  EXPECT_NE(trace.dvq_rtn, broken_text);
  Result<dvq::DVQ> accepted = dvq::Parse(trace.dvq_rtn);
  ASSERT_TRUE(accepted.ok());
  analysis::DvqAnalyzer analyzer(&db->data.db_schema());
  EXPECT_FALSE(analysis::HasErrors(analyzer.Analyze(accepted.value())));
}

}  // namespace
}  // namespace gred::core
