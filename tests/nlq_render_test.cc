// Focused tests for NLQ rendering in the two registers (explicit nvBench
// style vs paraphrased nvBench-Rob style).

#include <gtest/gtest.h>

#include <set>

#include "dataset/nlq_render.h"
#include "nl/lexicon.h"
#include "nl/text.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred::dataset {
namespace {

AxisPick MakePick(const std::string& table, const std::string& column,
                  std::vector<std::string> words, ColumnRole role) {
  AxisPick pick;
  pick.table = table;
  pick.column = column;
  pick.words = std::move(words);
  pick.role = role;
  return pick;
}

QueryPlan MakePlan() {
  QueryPlan plan;
  plan.db_name = "hr_1";
  plan.chart = dvq::ChartType::kBar;
  plan.hardness = Hardness::kHard;
  plan.main_table = "employees";
  plan.x = MakePick("employees", "city", {"city"}, ColumnRole::kCategory);
  plan.y_agg = dvq::AggFunc::kAvg;
  plan.y = MakePick("employees", "salary", {"salary"}, ColumnRole::kNumeric);
  plan.group = true;
  FilterPick filter;
  filter.col = MakePick("employees", "age", {"age"}, ColumnRole::kNumeric);
  filter.op = dvq::CompareOp::kGt;
  filter.literal = dvq::Literal::Int(30);
  plan.filter = filter;
  OrderPick order;
  order.on_y = true;
  order.descending = true;
  plan.order = order;
  return plan;
}

TEST(NlqRender, ExplicitStyleCarriesLiteralAndColumns) {
  Rng rng(1);
  std::string nlq = RenderNlq(MakePlan(), NlqStyle::kExplicit, &rng,
                              nl::Lexicon::Default());
  EXPECT_NE(nlq.find("30"), std::string::npos);
  EXPECT_TRUE(strings::ContainsIgnoreCase(nlq, "city"));
  EXPECT_TRUE(strings::ContainsIgnoreCase(nlq, "age"));
  // Terminal punctuation.
  EXPECT_TRUE(nlq.back() == '.' || nlq.back() == '?');
}

TEST(NlqRender, ParaphrasedStyleNeverQuotesIdentifiersVerbatim) {
  // Across many renders, the paraphrased register should avoid the raw
  // identifier form "hire_date" (words may still appear, underscored
  // names must not).
  QueryPlan plan = MakePlan();
  plan.x = MakePick("employees", "hire_date", {"hire", "date"},
                    ColumnRole::kDate);
  Rng rng(2);
  int verbatim = 0;
  for (int i = 0; i < 40; ++i) {
    std::string nlq = RenderNlq(plan, NlqStyle::kParaphrased, &rng,
                                nl::Lexicon::Default());
    if (nlq.find("hire_date") != std::string::npos) ++verbatim;
  }
  // The per-clause explicit leak can surface the identifier sometimes,
  // but the paraphrased register must not default to it.
  EXPECT_LT(verbatim, 20);
}

TEST(NlqRender, ParaphrasedUsesSynonymsSometimes) {
  QueryPlan plan = MakePlan();
  Rng rng(3);
  bool saw_synonym = false;
  for (int i = 0; i < 60 && !saw_synonym; ++i) {
    std::string nlq = strings::ToLower(RenderNlq(
        plan, NlqStyle::kParaphrased, &rng, nl::Lexicon::Default()));
    for (const char* syn : {"wage", "pay", "compensation", "earnings"}) {
      if (nlq.find(syn) != std::string::npos) saw_synonym = true;
    }
  }
  EXPECT_TRUE(saw_synonym);
}

TEST(NlqRender, DeterministicGivenRngState) {
  Rng a(7);
  Rng b(7);
  std::string nlq_a = RenderNlq(MakePlan(), NlqStyle::kParaphrased, &a,
                                nl::Lexicon::Default());
  std::string nlq_b = RenderNlq(MakePlan(), NlqStyle::kParaphrased, &b,
                                nl::Lexicon::Default());
  EXPECT_EQ(nlq_a, nlq_b);
}

TEST(NlqRender, ColumnPhraseStyles) {
  AxisPick pick = MakePick("employees", "hire_date", {"hire", "date"},
                           ColumnRole::kDate);
  Rng rng(11);
  std::set<std::string> explicit_forms;
  for (int i = 0; i < 30; ++i) {
    explicit_forms.insert(
        ColumnPhrase(pick, NlqStyle::kExplicit, &rng, nl::Lexicon::Default()));
  }
  // Explicit style is either the identifier or its exact words.
  for (const std::string& form : explicit_forms) {
    EXPECT_TRUE(form == "hire_date" || form == "hire date") << form;
  }
}

TEST(NlqRender, LimitAndBinClausesSurfaceTheirParameters) {
  QueryPlan plan = MakePlan();
  plan.limit = 7;
  BinPick bin;
  bin.col = MakePick("employees", "hire_date", {"hire", "date"},
                     ColumnRole::kDate);
  bin.unit = dvq::BinUnit::kMonth;
  plan.bin = bin;
  plan.x = bin.col;
  Rng rng(5);
  std::string nlq = RenderNlq(plan, NlqStyle::kExplicit, &rng,
                              nl::Lexicon::Default());
  EXPECT_NE(nlq.find("7"), std::string::npos);
  EXPECT_TRUE(strings::ContainsIgnoreCase(nlq, "month"));
}

TEST(NlqRender, SubqueryFilterPhrasesThroughParent) {
  QueryPlan plan = MakePlan();
  FilterPick filter;
  filter.via_subquery = true;
  filter.op = dvq::CompareOp::kEq;
  filter.literal = dvq::Literal::Str("Finance");
  filter.sub_table = "departments";
  filter.sub_key = "department_id";
  filter.sub_fk = "department_id";
  filter.sub_attr = MakePick("departments", "department_name",
                             {"department", "name"}, ColumnRole::kName);
  plan.filter = filter;
  Rng rng(13);
  std::string nlq = RenderNlq(plan, NlqStyle::kExplicit, &rng,
                              nl::Lexicon::Default());
  EXPECT_TRUE(strings::ContainsIgnoreCase(nlq, "departments"));
  EXPECT_NE(nlq.find("Finance"), std::string::npos);
}

}  // namespace
}  // namespace gred::dataset
