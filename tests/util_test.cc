// Unit tests for the util substrate: strings, rng, json, status, tables.

#include <gtest/gtest.h>

#include <set>

#include "util/json.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace gred {
namespace {

using strings::EditDistance;
using strings::EditSimilarity;
using strings::IdentifierWordOverlap;
using strings::SplitIdentifierWords;

TEST(Strings, ToLowerUpper) {
  EXPECT_EQ(strings::ToLower("HeLLo_42"), "hello_42");
  EXPECT_EQ(strings::ToUpper("HeLLo_42"), "HELLO_42");
  EXPECT_EQ(strings::ToLower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(strings::Trim("  a b \t\n"), "a b");
  EXPECT_EQ(strings::Trim(""), "");
  EXPECT_EQ(strings::Trim("   "), "");
  EXPECT_EQ(strings::Trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  EXPECT_EQ(strings::Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(strings::Split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(strings::SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(strings::SplitWhitespace("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::Join({}, ","), "");
  EXPECT_EQ(strings::Join({"solo"}, ","), "solo");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("employee_id", "emp"));
  EXPECT_FALSE(strings::StartsWith("emp", "employee"));
  EXPECT_TRUE(strings::EndsWith("employee_id", "_id"));
  EXPECT_FALSE(strings::EndsWith("id", "_id"));
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(strings::EqualsIgnoreCase("Dept_ID", "dept_id"));
  EXPECT_FALSE(strings::EqualsIgnoreCase("dept", "dept_id"));
}

TEST(Strings, ContainsIgnoreCase) {
  EXPECT_TRUE(strings::ContainsIgnoreCase("The Hire_Date column", "hire_date"));
  EXPECT_FALSE(strings::ContainsIgnoreCase("salary", "wage"));
  EXPECT_TRUE(strings::ContainsIgnoreCase("anything", ""));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(strings::ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(strings::ReplaceAll("abc", "", "x"), "abc");
}

TEST(Strings, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("salary", "salary"), 0u);
}

TEST(Strings, EditSimilarityRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_GT(EditSimilarity("salary", "salaries"), 0.6);
  EXPECT_LT(EditSimilarity("salary", "zzzzzz"), 0.2);
}

TEST(Strings, SplitIdentifierWordsSnake) {
  EXPECT_EQ(SplitIdentifierWords("hire_date"),
            (std::vector<std::string>{"hire", "date"}));
  EXPECT_EQ(SplitIdentifierWords("Dept_ID"),
            (std::vector<std::string>{"dept", "id"}));
}

TEST(Strings, SplitIdentifierWordsCamel) {
  EXPECT_EQ(SplitIdentifierWords("maxSalary"),
            (std::vector<std::string>{"max", "salary"}));
  EXPECT_EQ(SplitIdentifierWords("EmploymentDay"),
            (std::vector<std::string>{"employment", "day"}));
}

TEST(Strings, SplitIdentifierWordsDigits) {
  EXPECT_EQ(SplitIdentifierWords("top10list"),
            (std::vector<std::string>{"top", "10", "list"}));
}

TEST(Strings, CaseRendering) {
  EXPECT_EQ(strings::ToSnakeCase({"hire", "date"}), "hire_date");
  EXPECT_EQ(strings::ToCamelCase({"hire", "date"}), "HireDate");
}

TEST(Strings, IdentifierWordOverlap) {
  EXPECT_DOUBLE_EQ(IdentifierWordOverlap("acc_percent", "percent_of_acc"),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(IdentifierWordOverlap("salary", "salary"), 1.0);
  EXPECT_DOUBLE_EQ(IdentifierWordOverlap("salary", "wage"), 0.0);
  EXPECT_DOUBLE_EQ(IdentifierWordOverlap("Hire_Date", "hire_date"), 1.0);
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::Format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strings::Format("%.2f", 0.5), "0.50");
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PickWeightedRespectsZeroWeight) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    std::size_t idx = rng.PickWeighted({0.0, 1.0, 0.0});
    EXPECT_EQ(idx, 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ForkIndependence) {
  Rng a(42);
  Rng fork = a.Fork();
  std::uint64_t next_after_fork = a.Next();
  Rng b(42);
  (void)b.Fork();
  EXPECT_EQ(b.Next(), next_after_fork);
  (void)fork.Next();  // consuming the fork must not disturb the parent
}

TEST(Hash, Fnv1aStability) {
  EXPECT_EQ(Fnv1a64(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64(std::string("a")), Fnv1a64(std::string("a")));
  EXPECT_NE(Fnv1a64(std::string("a")), Fnv1a64(std::string("b")));
}

TEST(Json, Scalars) {
  EXPECT_EQ(json::Value::Null().Dump(), "null");
  EXPECT_EQ(json::Value::Bool(true).Dump(), "true");
  EXPECT_EQ(json::Value::Int(42).Dump(), "42");
  EXPECT_EQ(json::Value::Number(2.5).Dump(), "2.5");
  EXPECT_EQ(json::Value::Str("hi").Dump(), "\"hi\"");
}

TEST(Json, Escaping) {
  EXPECT_EQ(json::Value::Str("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  json::Value obj = json::Value::Object();
  obj.Set("z", json::Value::Int(1));
  obj.Set("a", json::Value::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(Json, SetOverwritesExistingKey) {
  json::Value obj = json::Value::Object();
  obj.Set("k", json::Value::Int(1));
  obj.Set("k", json::Value::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
}

TEST(Json, NestedArrayDump) {
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Int(1));
  json::Value inner = json::Value::Object();
  inner.Set("x", json::Value::Str("y"));
  arr.Append(std::move(inner));
  EXPECT_EQ(arr.Dump(), "[1,{\"x\":\"y\"}]");
}

TEST(Json, IndentedDumpContainsNewlines) {
  json::Value obj = json::Value::Object();
  obj.Set("a", json::Value::Int(1));
  std::string out = obj.Dump(2);
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("  \"a\": 1"), std::string::npos);
}

TEST(Json, Find) {
  json::Value obj = json::Value::Object();
  obj.Set("key", json::Value::Int(7));
  ASSERT_NE(obj.Find("key"), nullptr);
  EXPECT_EQ(obj.Find("key")->number_value(), 7.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, UnavailableIsTheOnlyTransientCode) {
  Status s = Status::Unavailable("backend overloaded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(s.ToString(), "Unavailable: backend overloaded");
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::Internal("boom").IsTransient());
  EXPECT_FALSE(Status::ParseError("bad").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("bad").IsTransient());
  EXPECT_FALSE(Status::NotFound("gone").IsTransient());
  EXPECT_FALSE(Status::ExecutionError("err").IsTransient());
  EXPECT_FALSE(Status::Unimplemented("todo").IsTransient());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorState) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MacroPropagation) {
  auto inner = []() -> Result<int> { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    GRED_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"A", "Long header"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| A      | Long header |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2           |"), std::string::npos);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter table({"A", "B"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("| only |"), std::string::npos);
}

TEST(TablePrinter, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.8517), "85.17%");
  EXPECT_EQ(FormatPercent(0.0), "0.00%");
  EXPECT_EQ(FormatPercent(1.0), "100.00%");
}

// Property: edit distance is a metric on a sampled set of strings.
class EditDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceProperty, TriangleInequalityAndSymmetry) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto random_word = [&]() {
    std::string w;
    std::size_t n = rng.NextIndex(10);
    for (std::size_t i = 0; i < n; ++i) {
      w.push_back(static_cast<char>('a' + rng.NextIndex(4)));
    }
    return w;
  };
  for (int i = 0; i < 50; ++i) {
    std::string a = random_word();
    std::string b = random_word();
    std::string c = random_word();
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c));
    EXPECT_EQ(EditDistance(a, a), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParsePositiveSize, AcceptsPositiveIntegers) {
  EXPECT_EQ(strings::ParsePositiveSize("1"), 1u);
  EXPECT_EQ(strings::ParsePositiveSize("42"), 42u);
  EXPECT_EQ(strings::ParsePositiveSize("  8 "), 8u);  // surrounding space
  EXPECT_EQ(strings::ParsePositiveSize("007"), 7u);
}

TEST(ParsePositiveSize, RejectsEverythingElse) {
  EXPECT_EQ(strings::ParsePositiveSize(""), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("   "), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("0"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("-3"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("+3"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("3.5"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("12abc"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("abc"), std::nullopt);
  EXPECT_EQ(strings::ParsePositiveSize("1e6"), std::nullopt);
  // Overflows std::size_t on every platform we build for.
  EXPECT_EQ(strings::ParsePositiveSize("99999999999999999999999999"),
            std::nullopt);
}

}  // namespace
}  // namespace gred
