// Cross-module integration tests: the full reproduction loop at small
// scale. These assert the *shape* of the paper's findings, with generous
// margins so the suite stays robust to calibration changes.

#include <gtest/gtest.h>

#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "viz/chart.h"

namespace gred {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 600;
    options.test_size = 80;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
    llm_ = new llm::SimulatedChatModel();
    seq2vis_ = new models::Seq2Vis(corpus_);
    transformer_ = new models::TransformerModel(corpus_);
    rgvisnet_ = new models::RGVisNet(corpus_);
    gred_ = new core::Gred(corpus_, llm_);
  }

  static eval::EvalResult Run(const models::TextToVisModel& model,
                              const std::vector<dataset::Example>& test,
                              bool rob_databases) {
    return eval::Evaluate(model, test,
                          rob_databases ? suite_->databases_rob
                                        : suite_->databases,
                          "integration");
  }

  static dataset::BenchmarkSuite* suite_;
  static models::TrainingCorpus corpus_;
  static llm::SimulatedChatModel* llm_;
  static models::Seq2Vis* seq2vis_;
  static models::TransformerModel* transformer_;
  static models::RGVisNet* rgvisnet_;
  static core::Gred* gred_;
};

dataset::BenchmarkSuite* IntegrationFixture::suite_ = nullptr;
models::TrainingCorpus IntegrationFixture::corpus_;
llm::SimulatedChatModel* IntegrationFixture::llm_ = nullptr;
models::Seq2Vis* IntegrationFixture::seq2vis_ = nullptr;
models::TransformerModel* IntegrationFixture::transformer_ = nullptr;
models::RGVisNet* IntegrationFixture::rgvisnet_ = nullptr;
core::Gred* IntegrationFixture::gred_ = nullptr;

TEST_F(IntegrationFixture, BaselinesStrongOnCleanNvBench) {
  // Figure 3's left bars: every model performs well on clean nvBench.
  for (const models::TextToVisModel* model :
       {static_cast<const models::TextToVisModel*>(seq2vis_),
        static_cast<const models::TextToVisModel*>(transformer_),
        static_cast<const models::TextToVisModel*>(rgvisnet_)}) {
    eval::EvalResult r = Run(*model, suite_->test_clean, false);
    EXPECT_GT(r.counts.OverallAcc(), 0.5) << model->name();
    EXPECT_GT(r.counts.VisAcc(), 0.9) << model->name();
  }
}

TEST_F(IntegrationFixture, BaselinesCollapseOnDualVariant) {
  // Figure 3's right bars: the robustness cliff.
  for (const models::TextToVisModel* model :
       {static_cast<const models::TextToVisModel*>(seq2vis_),
        static_cast<const models::TextToVisModel*>(transformer_),
        static_cast<const models::TextToVisModel*>(rgvisnet_)}) {
    eval::EvalResult clean = Run(*model, suite_->test_clean, false);
    eval::EvalResult rob = Run(*model, suite_->test_both, true);
    EXPECT_LT(rob.counts.OverallAcc(), clean.counts.OverallAcc() - 0.3)
        << model->name();
  }
}

TEST_F(IntegrationFixture, GredIsRobust) {
  eval::EvalResult clean = Run(*gred_, suite_->test_clean, false);
  eval::EvalResult rob = Run(*gred_, suite_->test_both, true);
  // Tables 1-3: GRED stays usable under the dual perturbation.
  EXPECT_GT(rob.counts.OverallAcc(), 0.4);
  // ... and the drop is far smaller than the baselines'.
  EXPECT_GT(rob.counts.OverallAcc(), clean.counts.OverallAcc() - 0.35);
}

TEST_F(IntegrationFixture, GredBeatsSotaOnEveryRobustnessSet) {
  struct Set {
    const std::vector<dataset::Example>* test;
    bool rob;
  };
  const Set kSets[] = {
      {&suite_->test_nlq, false},
      {&suite_->test_schema, true},
      {&suite_->test_both, true},
  };
  for (const Set& set : kSets) {
    eval::EvalResult ours = Run(*gred_, *set.test, set.rob);
    eval::EvalResult sota = Run(*rgvisnet_, *set.test, set.rob);
    EXPECT_GT(ours.counts.OverallAcc(), sota.counts.OverallAcc() + 0.1);
  }
}

TEST_F(IntegrationFixture, VisAccuracyStaysHighForEveryone) {
  // In all three of the paper's tables Vis accuracy exceeds 90%.
  for (const models::TextToVisModel* model :
       {static_cast<const models::TextToVisModel*>(seq2vis_),
        static_cast<const models::TextToVisModel*>(transformer_),
        static_cast<const models::TextToVisModel*>(rgvisnet_),
        static_cast<const models::TextToVisModel*>(gred_)}) {
    eval::EvalResult rob = Run(*model, suite_->test_both, true);
    EXPECT_GT(rob.counts.VisAcc(), 0.8) << model->name();
  }
}

TEST_F(IntegrationFixture, CleanTargetsProduceCharts) {
  for (std::size_t i = 0; i < 20 && i < suite_->test_clean.size(); ++i) {
    const dataset::Example& ex = suite_->test_clean[i];
    const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
    Result<viz::Chart> chart = viz::BuildChart(ex.dvq, db->data);
    ASSERT_TRUE(chart.ok()) << ex.id << ": " << chart.status().ToString();
    json::Value spec = viz::ToVegaLite(chart.value());
    EXPECT_NE(spec.Find("mark"), nullptr);
  }
}

TEST_F(IntegrationFixture, GredOutputsExecuteMoreOftenThanSotaOnRob) {
  // The "no chart produced" failure mode: count executable outputs.
  std::size_t gred_exec = 0;
  std::size_t sota_exec = 0;
  const std::size_t n = std::min<std::size_t>(30, suite_->test_both.size());
  for (std::size_t i = 0; i < n; ++i) {
    const dataset::Example& ex = suite_->test_both[i];
    const dataset::GeneratedDatabase* db = suite_->FindRobDb(ex.db_name);
    Result<dvq::DVQ> a = gred_->Translate(ex.nlq, db->data);
    if (a.ok() && viz::BuildChart(a.value(), db->data).ok()) ++gred_exec;
    Result<dvq::DVQ> b = rgvisnet_->Translate(ex.nlq, db->data);
    if (b.ok() && viz::BuildChart(b.value(), db->data).ok()) ++sota_exec;
  }
  EXPECT_GE(gred_exec, sota_exec);
  EXPECT_GT(gred_exec, n / 2);
}

}  // namespace
}  // namespace gred
