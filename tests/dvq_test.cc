// Unit and property tests for the DVQ language: lexer, parser, printer,
// normalizer and component extraction.

#include <gtest/gtest.h>

#include "dvq/ast.h"
#include "dvq/components.h"
#include "dvq/lexer.h"
#include "dvq/normalize.h"
#include "dvq/parser.h"
#include "util/rng.h"

namespace gred::dvq {
namespace {

DVQ MustParse(const std::string& text) {
  Result<DVQ> result = Parse(text);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
  return result.value_or(DVQ{});
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  Result<std::vector<Token>> tokens = Lex("visualize BaR select");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[0].IsKeyword("VISUALIZE"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("BAR"));
  EXPECT_TRUE(tokens.value()[2].IsKeyword("SELECT"));
}

TEST(Lexer, IdentifiersKeepSpelling) {
  Result<std::vector<Token>> tokens = Lex("Dept_ID T1.salary");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "Dept_ID");
  EXPECT_EQ(tokens.value()[1].text, "T1.salary");
}

TEST(Lexer, NumbersAndStrings) {
  Result<std::vector<Token>> tokens = Lex("42 3.5 'hi' \"there\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[1].text, "3.5");
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens.value()[2].text, "hi");
  EXPECT_EQ(tokens.value()[3].text, "there");
}

TEST(Lexer, OperatorsIncludingNormalizedNotEquals) {
  Result<std::vector<Token>> tokens = Lex("a != b <> c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[1].IsSymbol("!="));
  EXPECT_TRUE(tokens.value()[3].IsSymbol("!="));  // <> normalizes
  EXPECT_TRUE(tokens.value()[5].IsSymbol("<="));
  EXPECT_TRUE(tokens.value()[7].IsSymbol(">="));
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("WHERE x = 'oops").ok());
}

TEST(Lexer, DropsTrailingSemicolon) {
  Result<std::vector<Token>> tokens = Lex("SELECT a;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().size(), 3u);  // SELECT, a, end
}

TEST(Parser, MinimalBarQuery) {
  DVQ q = MustParse("Visualize BAR SELECT name , salary FROM employees");
  EXPECT_EQ(q.chart, ChartType::kBar);
  ASSERT_EQ(q.query.select.size(), 2u);
  EXPECT_EQ(q.query.select[0].col.column, "name");
  EXPECT_EQ(q.query.from_table, "employees");
}

TEST(Parser, AllChartTypes) {
  EXPECT_EQ(MustParse("Visualize PIE SELECT a , b FROM t").chart,
            ChartType::kPie);
  EXPECT_EQ(MustParse("Visualize STACKED BAR SELECT a , b , c FROM t").chart,
            ChartType::kStackedBar);
  EXPECT_EQ(MustParse("Visualize GROUPING LINE SELECT a , b , c FROM t").chart,
            ChartType::kGroupingLine);
  EXPECT_EQ(
      MustParse("Visualize GROUPING SCATTER SELECT a , b , c FROM t").chart,
      ChartType::kGroupingScatter);
}

TEST(Parser, Aggregates) {
  DVQ q = MustParse(
      "Visualize BAR SELECT job , COUNT(DISTINCT employee_id) FROM t");
  EXPECT_EQ(q.query.select[1].agg, AggFunc::kCount);
  EXPECT_TRUE(q.query.select[1].distinct);
  DVQ star = MustParse("Visualize BAR SELECT job , COUNT(*) FROM t");
  EXPECT_EQ(star.query.select[1].col.column, "*");
}

TEST(Parser, WhereWithPrecedence) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t WHERE x > 3 AND y = \"v\" OR z "
      "LIKE \"%m%\"");
  ASSERT_TRUE(q.query.where.has_value());
  EXPECT_EQ(q.query.where->predicates.size(), 3u);
  EXPECT_EQ(q.query.where->connectors[0], LogicalOp::kAnd);
  EXPECT_EQ(q.query.where->connectors[1], LogicalOp::kOr);
  EXPECT_EQ(q.query.where->predicates[2].op, CompareOp::kLike);
}

TEST(Parser, NullTests) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t WHERE x IS NOT NULL AND y IS NULL");
  EXPECT_EQ(q.query.where->predicates[0].op, CompareOp::kIsNotNull);
  EXPECT_EQ(q.query.where->predicates[1].op, CompareOp::kIsNull);
}

TEST(Parser, InList) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t WHERE x IN (1 , 2 , 3) AND y NOT "
      "IN (\"u\" , \"v\")");
  EXPECT_EQ(q.query.where->predicates[0].op, CompareOp::kIn);
  EXPECT_EQ(q.query.where->predicates[0].in_list.size(), 3u);
  EXPECT_EQ(q.query.where->predicates[1].op, CompareOp::kNotIn);
}

TEST(Parser, UnquotedStringLiteral) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t WHERE name = Finance");
  EXPECT_EQ(q.query.where->predicates[0].literal->string_value, "Finance");
}

TEST(Parser, JoinWithAliases) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM employees AS T1 JOIN departments AS "
      "T2 ON T1.department_id = T2.department_id");
  EXPECT_EQ(q.query.from_alias, "T1");
  ASSERT_EQ(q.query.joins.size(), 1u);
  EXPECT_EQ(q.query.joins[0].alias, "T2");
  EXPECT_EQ(q.query.joins[0].left.table, "T1");
}

TEST(Parser, GroupOrderLimitBin) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a ORDER BY "
      "COUNT(a) DESC LIMIT 5 BIN a BY MONTH");
  EXPECT_EQ(q.query.group_by.size(), 1u);
  ASSERT_TRUE(q.query.order_by.has_value());
  EXPECT_TRUE(q.query.order_by->descending);
  EXPECT_EQ(q.query.order_by->expr.agg, AggFunc::kCount);
  EXPECT_EQ(q.query.limit, 5);
  ASSERT_TRUE(q.query.bin.has_value());
  EXPECT_EQ(q.query.bin->unit, BinUnit::kMonth);
}

TEST(Parser, BinUnitsIncludingDayIdentifier) {
  EXPECT_EQ(MustParse("Visualize LINE SELECT d , c FROM t BIN d BY DAY")
                .query.bin->unit,
            BinUnit::kDay);
  EXPECT_EQ(MustParse("Visualize LINE SELECT d , c FROM t BIN d BY weekday")
                .query.bin->unit,
            BinUnit::kWeekday);
}

TEST(Parser, ScalarSubquery) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t WHERE fk = (SELECT id FROM p "
      "WHERE name = \"X\")");
  ASSERT_NE(q.query.where->predicates[0].subquery, nullptr);
  EXPECT_EQ(q.query.where->predicates[0].subquery->from_table, "p");
}

/// A DVQ whose WHERE clause nests `levels` scalar subqueries.
std::string NestedSubqueries(int levels) {
  std::string inner = "SELECT id FROM p";
  for (int i = 1; i < levels; ++i) {
    inner = "SELECT id FROM p WHERE fk = ( " + inner + " )";
  }
  return "Visualize BAR SELECT a , b FROM t WHERE fk = ( " + inner + " )";
}

TEST(Parser, SubqueryNestingAtTheDepthLimitParses) {
  Result<DVQ> at_limit = Parse(NestedSubqueries(kMaxParseDepth));
  EXPECT_TRUE(at_limit.ok()) << at_limit.status().ToString();
}

TEST(Parser, SubqueryNestingPastTheDepthLimitIsAParseError) {
  Result<DVQ> over_limit = Parse(NestedSubqueries(kMaxParseDepth + 1));
  ASSERT_FALSE(over_limit.ok());
  EXPECT_EQ(over_limit.status().code(), StatusCode::kParseError);
}

TEST(Lexer, InputAtTheSizeCapLexes) {
  // Pad a valid query to exactly the cap with trailing spaces.
  std::string input = "Visualize BAR SELECT a , b FROM t";
  input.resize(kMaxLexInputBytes, ' ');
  Result<std::vector<Token>> tokens = Lex(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
}

TEST(Lexer, InputPastTheSizeCapIsInvalidArgument) {
  std::string input(kMaxLexInputBytes + 1, ' ');
  Result<std::vector<Token>> tokens = Lex(input);
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
  // Parse goes through Lex, so the cap bounds it too.
  EXPECT_EQ(Parse(input).status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, GuardedParseChargesOneTickPerToken) {
  const std::string text = "Visualize BAR SELECT a , b FROM t";
  Result<std::vector<Token>> tokens = Lex(text);
  ASSERT_TRUE(tokens.ok());
  ExecContext counting;
  ASSERT_TRUE(Parse(text, &counting).ok());
  EXPECT_EQ(counting.usage().ticks, tokens.value().size());
  // A budget smaller than the token count trips before parsing.
  GuardLimits limits;
  limits.deadline_ticks = tokens.value().size() - 1;
  ExecContext tight(limits);
  Result<DVQ> starved = Parse(text, &tight);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);
}

TEST(Parser, ErrorsOnGarbage) {
  EXPECT_FALSE(Parse("SELECT a FROM t").ok());  // missing Visualize
  EXPECT_FALSE(Parse("Visualize TRIANGLE SELECT a , b FROM t").ok());
  EXPECT_FALSE(Parse("Visualize BAR SELECT FROM t").ok());
  EXPECT_FALSE(Parse("Visualize BAR SELECT a , b").ok());
  EXPECT_FALSE(Parse("Visualize BAR SELECT a , b FROM t trailing junk").ok());
}

TEST(Parser, ParseQueryWithoutPrefix) {
  Result<Query> q = ParseQuery("SELECT a , b FROM t WHERE a > 1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().from_table, "t");
}

TEST(Printer, RoundTripCanonical) {
  const std::string text =
      "Visualize BAR SELECT Fname , Dept_ID FROM employees ORDER BY "
      "Dept_ID DESC";
  DVQ q = MustParse(text);
  EXPECT_EQ(q.ToString(), text);
}

TEST(Printer, CanonicalLowercasesIdentifiers) {
  DVQ q = MustParse("Visualize BAR SELECT Fname , Dept_ID FROM Employees");
  EXPECT_EQ(q.Canonical(),
            "Visualize BAR SELECT fname , dept_id FROM employees");
}

TEST(Normalize, ResolveAliases) {
  DVQ q = MustParse(
      "Visualize BAR SELECT T1.a , T2.b FROM emp AS T1 JOIN dept AS T2 ON "
      "T1.k = T2.k WHERE T2.name = \"Finance\"");
  Query resolved = ResolveAliases(q.query);
  EXPECT_TRUE(resolved.from_alias.empty());
  EXPECT_EQ(resolved.select[0].col.table, "emp");
  EXPECT_EQ(resolved.select[1].col.table, "dept");
  EXPECT_EQ(resolved.where->predicates[0].col.table, "dept");
}

TEST(Normalize, DropQualifiersKeepsJoinKeys) {
  DVQ q = MustParse(
      "Visualize BAR SELECT emp.a , dept.b FROM emp JOIN dept ON emp.k = "
      "dept.k");
  Query dropped = DropQualifiers(q.query);
  EXPECT_TRUE(dropped.select[0].col.table.empty());
  EXPECT_EQ(dropped.joins[0].left.table, "emp");
}

TEST(Components, VisMatch) {
  DVQ a = MustParse("Visualize BAR SELECT x , y FROM t");
  DVQ b = MustParse("Visualize PIE SELECT x , y FROM t");
  EXPECT_TRUE(VisMatch(a, a));
  EXPECT_FALSE(VisMatch(a, b));
}

TEST(Components, AxisMatchIgnoresCaseAndQualifiers) {
  DVQ a = MustParse("Visualize BAR SELECT T1.Fname , SUM(Salary) FROM "
                    "employees AS T1");
  DVQ b = MustParse("Visualize BAR SELECT fname , SUM(salary) FROM "
                    "employees");
  EXPECT_TRUE(AxisMatch(a, b));
}

TEST(Components, AxisMismatchOnCountTarget) {
  // COUNT(col) vs COUNT(*) is a style difference the metric penalizes
  // (the Retuner exists to fix it).
  DVQ a = MustParse("Visualize BAR SELECT x , COUNT(x) FROM t GROUP BY x");
  DVQ b = MustParse("Visualize BAR SELECT x , COUNT(*) FROM t GROUP BY x");
  EXPECT_FALSE(AxisMatch(a, b));
  EXPECT_TRUE(VisMatch(a, b));
  EXPECT_TRUE(DataMatch(a, b));
}

TEST(Components, DataMatchJoinOrderInsensitive) {
  DVQ a = MustParse(
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.k = p.k JOIN q ON "
      "t.j = q.j");
  DVQ b = MustParse(
      "Visualize BAR SELECT x , y FROM t JOIN q ON q.j = t.j JOIN p ON "
      "p.k = t.k");
  EXPECT_TRUE(DataMatch(a, b));
}

TEST(Components, DataMismatchOnSubqueryVsJoin) {
  DVQ sub = MustParse(
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"v\")");
  DVQ join = MustParse(
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id WHERE n = "
      "\"v\"");
  EXPECT_FALSE(DataMatch(sub, join));
}

TEST(Components, OverallMatchIsConjunction) {
  DVQ a = MustParse(
      "Visualize BAR SELECT x , COUNT(x) FROM t GROUP BY x ORDER BY "
      "COUNT(x) DESC");
  DVQ same = MustParse(
      "Visualize BAR SELECT X , COUNT(X) FROM T GROUP BY X ORDER BY "
      "COUNT(X) DESC");
  DVQ diff_order = MustParse(
      "Visualize BAR SELECT x , COUNT(x) FROM t GROUP BY x ORDER BY "
      "COUNT(x) ASC");
  EXPECT_TRUE(OverallMatch(a, same));
  EXPECT_FALSE(OverallMatch(a, diff_order));
}

TEST(Ast, CollectColumnRefsCoversAllClauses) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , SUM(b) FROM t JOIN p ON t.k = p.k WHERE c "
      "> 1 GROUP BY a ORDER BY SUM(b) DESC BIN d BY YEAR");
  std::vector<ColumnRef> refs = CollectColumnRefs(q.query);
  std::vector<std::string> names;
  names.reserve(refs.size());
  for (const ColumnRef& r : refs) names.push_back(r.column);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "k", "k", "c", "a",
                                             "b", "d"}));
}

TEST(Ast, TransformNonJoinSkipsJoinKeys) {
  DVQ q = MustParse(
      "Visualize BAR SELECT a , b FROM t JOIN p ON t.k = p.k");
  TransformNonJoinColumnRefs(&q.query,
                             [](ColumnRef* ref) { ref->column = "Z"; });
  EXPECT_EQ(q.query.select[0].col.column, "Z");
  EXPECT_EQ(q.query.joins[0].left.column, "k");
}

TEST(Ast, LiteralEqualityNumericCrossType) {
  EXPECT_TRUE(Literal::Int(4).Equals(Literal::Real(4.0)));
  EXPECT_FALSE(Literal::Int(4).Equals(Literal::Str("4")));
  EXPECT_TRUE(Literal::Str("x").Equals(Literal::Str("x")));
}

// Property: parse(print(q)) is canonical-identical, over a grammar-driven
// random query generator.
class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, ParsePrintFixedPoint) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  for (int i = 0; i < 60; ++i) {
    DVQ q;
    q.chart = static_cast<ChartType>(rng.NextIndex(7));
    SelectExpr x;
    x.col.column = "col" + std::to_string(rng.NextIndex(4));
    q.query.select.push_back(x);
    SelectExpr y;
    y.agg = static_cast<AggFunc>(rng.NextIndex(6));
    y.col.column = y.agg == AggFunc::kCount && rng.NextBool(0.3)
                       ? "*"
                       : "val" + std::to_string(rng.NextIndex(3));
    y.distinct = y.agg == AggFunc::kCount && rng.NextBool(0.3) &&
                 y.col.column != "*";
    q.query.select.push_back(y);
    q.query.from_table = "table" + std::to_string(rng.NextIndex(3));
    if (rng.NextBool(0.3)) {
      JoinClause join;
      join.table = "parent";
      join.left = {q.query.from_table, "fk"};
      join.right = {"parent", "id"};
      q.query.joins.push_back(join);
    }
    if (rng.NextBool(0.5)) {
      Condition cond;
      Predicate pred;
      pred.col.column = "f";
      switch (rng.NextIndex(4)) {
        case 0:
          pred.op = CompareOp::kGt;
          pred.literal = Literal::Int(rng.NextInt(-9, 9));
          break;
        case 1:
          pred.op = CompareOp::kLike;
          pred.literal = Literal::Str("%ab%");
          break;
        case 2:
          pred.op = CompareOp::kIsNotNull;
          break;
        default:
          pred.op = CompareOp::kEq;
          pred.literal = Literal::Real(1.5);
          break;
      }
      cond.predicates.push_back(std::move(pred));
      q.query.where = std::move(cond);
    }
    if (rng.NextBool(0.5)) q.query.group_by.push_back(x.col);
    if (rng.NextBool(0.5)) {
      OrderByClause order;
      order.expr = rng.NextBool(0.5) ? q.query.select[0] : q.query.select[1];
      order.descending = rng.NextBool(0.5);
      q.query.order_by = order;
    }
    if (rng.NextBool(0.25)) q.query.limit = rng.NextInt(1, 20);
    if (rng.NextBool(0.25)) {
      BinClause bin;
      bin.col = x.col;
      bin.unit = static_cast<BinUnit>(rng.NextIndex(4));
      q.query.bin = bin;
    }

    std::string printed = q.ToString();
    Result<DVQ> reparsed = Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << " -> "
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed.value().Canonical(), q.Canonical()) << printed;
    EXPECT_TRUE(OverallMatch(reparsed.value(), q)) << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace gred::dvq
