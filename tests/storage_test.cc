// Unit and property tests for the storage layer: typed values and
// column-store tables.

#include <gtest/gtest.h>

#include "storage/table.h"
#include "storage/value.h"
#include "util/rng.h"

namespace gred::storage {
namespace {

TEST(Value, KindPredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(2.5).is_real());
  EXPECT_TRUE(Value::Text("x").is_text());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Real(2.5).is_numeric());
  EXPECT_FALSE(Value::Text("x").is_numeric());
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Real(4.0).ToString(), "4");
  EXPECT_EQ(Value::Real(3.5).ToString(), "3.5");
  EXPECT_EQ(Value::Text("hi").ToString(), "hi");
  EXPECT_EQ(Value::Bool(true).ToString(), "1");
}

TEST(Value, AsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Text("x").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().AsDouble(), 0.0);
}

TEST(Value, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Text("b").Compare(Value::Text("a")), 0);
}

TEST(Value, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value::Int(4).Compare(Value::Real(4.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
}

TEST(Value, SqliteTypeOrdering) {
  // NULL < numbers < text.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Int(1000).Compare(Value::Text("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, EqualValuesHashEqually) {
  EXPECT_EQ(Value::Int(4).Hash(), Value::Real(4.0).Hash());
  EXPECT_EQ(Value::Text("x").Hash(), Value::Text("x").Hash());
  EXPECT_NE(Value::Text("x").Hash(), Value::Text("y").Hash());
}

// Property: Compare defines a total order over a sampled value domain.
class ValueOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderProperty, TotalOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto random_value = [&]() -> Value {
    switch (rng.NextIndex(4)) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Int(rng.NextInt(-5, 5));
      case 2:
        return Value::Real(static_cast<double>(rng.NextInt(-5, 5)) / 2.0);
      default:
        return Value::Text(std::string(1, static_cast<char>(
                                              'a' + rng.NextIndex(3))));
    }
  };
  for (int i = 0; i < 200; ++i) {
    Value a = random_value();
    Value b = random_value();
    Value c = random_value();
    // Antisymmetry.
    EXPECT_EQ(a.Compare(b), -b.Compare(a));
    // Transitivity (on the <= relation).
    if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
      EXPECT_LE(a.Compare(c), 0);
    }
    // Hash consistency with equality.
    if (a.Compare(b) == 0) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderProperty,
                         ::testing::Values(1, 2, 3));

schema::TableDef MakeDef() {
  schema::TableDef def("people", {});
  def.AddColumn({"id", schema::ColumnType::kInt, true});
  def.AddColumn({"name", schema::ColumnType::kText, false});
  return def;
}

TEST(DataTable, AppendAndAccess) {
  DataTable table(MakeDef());
  EXPECT_EQ(table.num_rows(), 0u);
  ASSERT_TRUE(table.AppendRow({Value::Int(1), Value::Text("ann")}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Int(2), Value::Text("bob")}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.at(1, 1).text_value(), "bob");
  EXPECT_EQ(table.Row(0)[0].int_value(), 1);
  EXPECT_EQ(table.column(1).size(), 2u);
}

TEST(DataTable, RejectsArityMismatch) {
  DataTable table(MakeDef());
  EXPECT_FALSE(table.AppendRow({Value::Int(1)}).ok());
  EXPECT_EQ(table.num_rows(), 0u);
}

schema::Database MakeDbSchema() {
  schema::Database db("d");
  db.AddTable(MakeDef());
  schema::TableDef pets("pets", {});
  pets.AddColumn({"pet_id", schema::ColumnType::kInt, true});
  pets.AddColumn({"owner_id", schema::ColumnType::kInt, false});
  db.AddTable(std::move(pets));
  schema::ForeignKey fk;
  fk.from_table = "pets";
  fk.from_column = "owner_id";
  fk.to_table = "people";
  fk.to_column = "id";
  db.AddForeignKey(std::move(fk));
  return db;
}

TEST(DatabaseData, TablesAlignedWithSchema) {
  DatabaseData db(MakeDbSchema());
  EXPECT_EQ(db.tables().size(), 2u);
  EXPECT_NE(db.FindTable("PETS"), nullptr);
  EXPECT_EQ(db.FindTable("missing"), nullptr);
}

TEST(DatabaseData, RenameTableUpdatesSchemaDataAndFks) {
  DatabaseData db(MakeDbSchema());
  ASSERT_TRUE(db.RenameTable("people", "persons").ok());
  EXPECT_EQ(db.db_schema().FindTable("people"), nullptr);
  EXPECT_NE(db.db_schema().FindTable("persons"), nullptr);
  EXPECT_NE(db.FindTable("persons"), nullptr);
  EXPECT_EQ(db.db_schema().foreign_keys()[0].to_table, "persons");
  EXPECT_FALSE(db.RenameTable("people", "x").ok());
}

TEST(DatabaseData, RenameColumnUpdatesSchemaDataAndFks) {
  DatabaseData db(MakeDbSchema());
  ASSERT_TRUE(db.RenameColumn("people", "id", "person_key").ok());
  const schema::TableDef* people = db.db_schema().FindTable("people");
  EXPECT_EQ(people->FindColumn("id"), nullptr);
  EXPECT_NE(people->FindColumn("person_key"), nullptr);
  EXPECT_NE(db.FindTable("people")->def().FindColumn("person_key"), nullptr);
  EXPECT_EQ(db.db_schema().foreign_keys()[0].to_column, "person_key");
  EXPECT_FALSE(db.RenameColumn("people", "id", "y").ok());
  EXPECT_FALSE(db.RenameColumn("missing", "id", "y").ok());
}

}  // namespace
}  // namespace gred::storage
