// Tests for the SVG chart renderer.

#include <gtest/gtest.h>

#include "dvq/parser.h"
#include "viz/svg.h"

namespace gred::viz {
namespace {

using storage::Value;

storage::DatabaseData MakeDb() {
  schema::Database db_schema("shop");
  schema::TableDef sales("sales", {});
  sales.AddColumn({"region", schema::ColumnType::kText, false});
  sales.AddColumn({"amount", schema::ColumnType::kReal, false});
  sales.AddColumn({"channel", schema::ColumnType::kText, false});
  sales.AddColumn({"day", schema::ColumnType::kDate, false});
  db_schema.AddTable(std::move(sales));
  storage::DatabaseData db(std::move(db_schema));
  storage::DataTable* t = db.FindTable("sales");
  auto add = [&](const char* region, double amount, const char* channel,
                 const char* day) {
    EXPECT_TRUE(t->AppendRow({Value::Text(region), Value::Real(amount),
                              Value::Text(channel), Value::Text(day)})
                    .ok());
  };
  add("north", 10, "web", "2024-01-05");
  add("south", 25, "web", "2024-02-10");
  add("north", 5, "store", "2024-03-15");
  add("south", 15, "store", "2024-04-20");
  return db;
}

Chart MakeChart(const std::string& dvq_text) {
  storage::DatabaseData db = MakeDb();
  Result<dvq::DVQ> q = dvq::Parse(dvq_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  Result<Chart> chart = BuildChart(q.value(), db);
  EXPECT_TRUE(chart.ok()) << chart.status().ToString();
  return chart.value_or(Chart{});
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Svg, BarChartHasRectsAndAxes) {
  Chart chart = MakeChart(
      "Visualize BAR SELECT region , SUM(amount) FROM sales GROUP BY "
      "region");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "<svg"));
  EXPECT_TRUE(Contains(svg, "<rect"));
  EXPECT_TRUE(Contains(svg, "region"));       // x-axis label
  EXPECT_TRUE(Contains(svg, "SUM(amount)"));  // y-axis label
  EXPECT_TRUE(Contains(svg, "</svg>"));
}

TEST(Svg, PieChartUsesArcPaths) {
  Chart chart = MakeChart(
      "Visualize PIE SELECT region , COUNT(region) FROM sales GROUP BY "
      "region");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "<path"));
  EXPECT_TRUE(Contains(svg, " A "));   // arc command
  EXPECT_FALSE(Contains(svg, "<line"));  // no axes on a pie
}

TEST(Svg, LineChartUsesPolyline) {
  Chart chart = MakeChart(
      "Visualize LINE SELECT day , COUNT(day) FROM sales BIN day BY MONTH");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "<polyline"));
}

TEST(Svg, ScatterUsesCircles) {
  Chart chart =
      MakeChart("Visualize SCATTER SELECT amount , amount FROM sales");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "<circle"));
}

TEST(Svg, StackedBarGetsLegend) {
  Chart chart = MakeChart(
      "Visualize STACKED BAR SELECT region , SUM(amount) , channel FROM "
      "sales GROUP BY channel , region");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "web"));
  EXPECT_TRUE(Contains(svg, "store"));
  EXPECT_TRUE(Contains(svg, "<rect"));
}

TEST(Svg, EscapesLabels) {
  Chart chart = MakeChart("Visualize BAR SELECT region , amount FROM sales");
  chart.title = "a <b> & \"c\"";
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "a &lt;b&gt; &amp; &quot;c&quot;"));
  EXPECT_FALSE(Contains(svg, "<b>"));
}

TEST(Svg, EmptyDataStillValidDocument) {
  Chart chart = MakeChart(
      "Visualize BAR SELECT region , amount FROM sales WHERE amount > "
      "9999");
  std::string svg = RenderSvg(chart);
  EXPECT_TRUE(Contains(svg, "(no data)"));
  EXPECT_TRUE(Contains(svg, "</svg>"));
}

TEST(Svg, MaxItemsTruncationNoted) {
  Chart chart = MakeChart("Visualize BAR SELECT region , amount FROM sales");
  SvgOptions options;
  options.max_items = 2;
  std::string svg = RenderSvg(chart, options);
  EXPECT_TRUE(Contains(svg, "more)"));
}

TEST(Svg, RespectsDimensions) {
  Chart chart = MakeChart("Visualize BAR SELECT region , amount FROM sales");
  SvgOptions options;
  options.width = 320;
  options.height = 200;
  std::string svg = RenderSvg(chart, options);
  EXPECT_TRUE(Contains(svg, "width='320'"));
  EXPECT_TRUE(Contains(svg, "height='200'"));
}

}  // namespace
}  // namespace gred::viz
