// Failure-injection / fuzz-style tests: random and malformed inputs must
// produce Status errors (or graceful degradation), never crashes.

#include <gtest/gtest.h>

#include "dataset/benchmark.h"
#include "dvq/lexer.h"
#include "dvq/parser.h"
#include "exec/executor.h"
#include "llm/prompt.h"
#include "llm/sim_llm.h"
#include "models/linking.h"
#include "util/rng.h"

namespace gred {
namespace {

std::string RandomBytes(Rng* rng, std::size_t max_len) {
  std::string s;
  std::size_t n = rng->NextIndex(max_len);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng->NextInt(32, 126)));
  }
  return s;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 1);
  for (int i = 0; i < 300; ++i) {
    std::string input = RandomBytes(&rng, 80);
    Result<std::vector<dvq::Token>> tokens = dvq::Lex(input);
    (void)tokens;
    Result<dvq::DVQ> parsed = dvq::Parse(input);
    if (parsed.ok()) {
      // Anything that parses must round-trip.
      EXPECT_TRUE(dvq::Parse(parsed.value().ToString()).ok());
    }
  }
}

TEST_P(ParserFuzz, TokenSoupNeverCrashes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  static const char* kWords[] = {
      "Visualize", "BAR",   "SELECT", ",",     "FROM",  "WHERE", "GROUP",
      "BY",        "ORDER", "ASC",    "DESC",  "LIMIT", "BIN",   "JOIN",
      "ON",        "AND",   "OR",     "(",     ")",     "=",     "!=",
      "COUNT",     "col",   "t",      "\"v\"", "3",     "*",     "IS",
      "NOT",       "NULL",  "LIKE",   "IN",    "AS",
  };
  for (int i = 0; i < 300; ++i) {
    std::string input;
    std::size_t n = rng.NextIndex(30);
    for (std::size_t w = 0; w < n; ++w) {
      input += kWords[rng.NextIndex(std::size(kWords))];
      input += ' ';
    }
    Result<dvq::DVQ> parsed = dvq::Parse(input);
    if (parsed.ok()) {
      EXPECT_TRUE(dvq::Parse(parsed.value().ToString()).ok()) << input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 5));

TEST(ExecutorFuzz, CorruptedTargetsErrorCleanly) {
  dataset::BenchmarkOptions options;
  options.train_size = 60;
  options.test_size = 30;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  Rng rng(99);
  for (const dataset::Example& ex : suite.test_clean) {
    const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    dvq::DVQ corrupted = ex.dvq;
    // Corrupt one random reference.
    std::vector<dvq::ColumnRef> refs = dvq::CollectColumnRefs(
        corrupted.query);
    if (refs.empty()) continue;
    std::size_t victim = rng.NextIndex(refs.size());
    std::size_t seen = 0;
    dvq::TransformColumnRefs(&corrupted.query, [&](dvq::ColumnRef* ref) {
      if (seen++ == victim && ref->column != "*") {
        ref->column = "zz_not_a_column";
      }
    });
    Result<exec::ResultSet> rs = exec::Execute(corrupted, db->data);
    // Either it still resolves (the victim was a duplicate name) or it
    // errors; both are fine — no crash, no UB.
    if (!rs.ok()) {
      EXPECT_EQ(rs.status().code(), StatusCode::kExecutionError);
    }
  }
}

TEST(SimLlmFuzz, MalformedPromptsErrorOrEcho) {
  llm::SimulatedChatModel model;
  // Generation marker with no parsable blocks.
  llm::Prompt p1;
  p1.push_back({llm::ChatMessage::Role::kUser,
                "Generate DVQs based on nothing at all"});
  EXPECT_FALSE(model.Complete(p1, {}).ok());

  // Retune with an unparseable original: the model echoes it.
  llm::Prompt p2 = llm::BuildRetunePrompt({"garbage ref"},
                                          "not a dvq at all");
  Result<std::string> out = model.Complete(p2, {});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("not a dvq at all"), std::string::npos);

  // Debug with an empty schema fails cleanly.
  llm::Prompt p3 = llm::BuildDebugPrompt("", "", "Visualize BAR SELECT a , "
                                                 "b FROM t");
  EXPECT_FALSE(model.Complete(p3, {}).ok());
}

TEST(SimLlmFuzz, GenerationWithGarbageExamplesFails) {
  llm::SimulatedChatModel model;
  llm::GenerationExample ex;
  ex.schema_prompt = "# Table t , columns = [ * , a ]\n";
  ex.nlq = "junk";
  ex.dvq = "completely unparseable &^%";
  llm::Prompt prompt = llm::BuildGenerationPrompt(
      {ex}, "# Table t , columns = [ * , a ]\n", "show a of t");
  Result<std::string> out = model.Complete(prompt, {});
  // No parseable example DVQ exists -> the model reports failure rather
  // than hallucinating structure from nothing.
  EXPECT_FALSE(out.ok());
}

TEST(SurfaceValuesFuzz, NeverCrashesOnRandomText) {
  Rng rng(4242);
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, 60);
    models::SurfaceValues values = models::ExtractSurfaceValues(input);
    for (const dvq::Literal& n : values.numbers) {
      EXPECT_NE(n.kind, dvq::Literal::Kind::kString);
    }
  }
}

TEST(ParserFuzzEdges, OversizedInputsAreRejectedNotLexed) {
  // Just past the cap, far past the cap, and a huge valid-looking query:
  // all must come back as kInvalidArgument without crashing.
  for (std::size_t size : {dvq::kMaxLexInputBytes + 1,
                           4 * dvq::kMaxLexInputBytes}) {
    std::string padded = "Visualize BAR SELECT a , b FROM t WHERE x = 1";
    padded.resize(size, ' ');
    Result<dvq::DVQ> parsed = dvq::Parse(padded);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParserFuzzEdges, DeeplyNestedSubqueriesFailWithoutRecursionBlowup) {
  // 200 nesting levels is ~12x the depth limit; the parser must return a
  // typed parse error (from the depth guard) long before stack trouble.
  std::string inner = "SELECT id FROM p";
  for (int i = 0; i < 200; ++i) {
    inner = "SELECT id FROM p WHERE fk = ( " + inner + " )";
  }
  std::string input = "Visualize BAR SELECT a , b FROM t WHERE fk = ( " +
                      inner + " )";
  Result<dvq::DVQ> parsed = dvq::Parse(input);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);

  // Same shape for raw parenthesis towers with no keywords.
  std::string parens(5000, '(');
  EXPECT_FALSE(dvq::Parse("Visualize BAR SELECT a , b FROM t WHERE x = " +
                          parens)
                   .ok());
}

TEST(ParserFuzzEdges, EmbeddedNulBytesNeverCrash) {
  Rng rng(31337);
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 60);
    // Sprinkle NUL bytes at random offsets (including position 0).
    for (int n = 0; n < 3; ++n) {
      std::size_t at = rng.NextIndex(input.size() + 1);
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(at), '\0');
    }
    Result<std::vector<dvq::Token>> tokens = dvq::Lex(input);
    (void)tokens;
    Result<dvq::DVQ> parsed = dvq::Parse(input);
    if (parsed.ok()) {
      EXPECT_TRUE(dvq::Parse(parsed.value().ToString()).ok());
    }
  }
  // A well-formed query with a NUL inside a string literal must not
  // truncate parsing at the NUL.
  std::string embedded = "Visualize BAR SELECT a , b FROM t WHERE x = "
                         "\"be";
  embedded.push_back('\0');
  embedded += "fore\"";
  Result<dvq::DVQ> parsed = dvq::Parse(embedded);
  (void)parsed;  // accept or reject — crashing is the only wrong answer
}

TEST(ParserFuzzDeterminism, TwoRunsProduceIdenticalOutcomeLists) {
  // The fuzz corpus is seeded from gred::Rng alone, so replaying a seed
  // must reproduce the exact same per-input outcome (ok/error code), in
  // order. A mismatch means hidden nondeterminism in lexing or parsing.
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::string> outcomes;
    for (int i = 0; i < 400; ++i) {
      std::string input = RandomBytes(&rng, 100);
      Result<dvq::DVQ> parsed = dvq::Parse(input);
      outcomes.push_back(parsed.ok()
                             ? "ok:" + parsed.value().ToString()
                             : std::string("err:") +
                                   StatusCodeToString(parsed.status().code()));
    }
    return outcomes;
  };
  for (std::uint64_t seed : {1u, 42u, 31415u}) {
    EXPECT_EQ(run(seed), run(seed)) << "seed " << seed;
  }
}

TEST(LexerFuzz, OffsetsAreMonotonic) {
  Rng rng(777);
  for (int i = 0; i < 200; ++i) {
    std::string input = RandomBytes(&rng, 60);
    Result<std::vector<dvq::Token>> tokens = dvq::Lex(input);
    if (!tokens.ok()) continue;
    std::size_t last = 0;
    for (const dvq::Token& t : tokens.value()) {
      EXPECT_GE(t.offset, last);
      last = t.offset;
    }
  }
}

}  // namespace
}  // namespace gred
