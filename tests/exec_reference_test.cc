// Differential test: an independent, deliberately naive reference
// evaluator for single-table DVQs is compared against the production
// executor over the generated benchmark corpus. The reference
// implementation shares no code with exec::Execute beyond the AST and
// Value types.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <map>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "exec/executor.h"
#include "exec/scalar.h"
#include "util/rng.h"

namespace gred {
namespace {

using storage::Value;

/// Naive reference: materialize -> filter -> bin -> group -> aggregate ->
/// order -> limit, all with straightforward O(n^2) scans and string keys.
class ReferenceEvaluator {
 public:
  ReferenceEvaluator(const dvq::Query& query,
                     const storage::DataTable& table)
      : query_(query), table_(table) {}

  /// Returns nullopt when the query uses features outside the reference
  /// scope (joins, subqueries) or references unknown columns.
  std::optional<std::vector<std::vector<Value>>> Run() {
    if (!query_.joins.empty()) return std::nullopt;
    std::vector<std::vector<Value>> rows;
    for (std::size_t r = 0; r < table_.num_rows(); ++r) {
      rows.push_back(table_.Row(r));
    }
    // Filter.
    if (query_.where.has_value()) {
      std::vector<std::vector<Value>> kept;
      for (const auto& row : rows) {
        std::optional<bool> pass = EvalCondition(*query_.where, row);
        if (!pass.has_value()) return std::nullopt;
        if (*pass) kept.push_back(row);
      }
      rows = std::move(kept);
    }
    // Bin.
    if (query_.bin.has_value()) {
      std::optional<std::size_t> slot = Slot(query_.bin->col.column);
      if (!slot.has_value()) return std::nullopt;
      for (auto& row : rows) {
        row[*slot] = exec::BinValue(row[*slot], query_.bin->unit);
      }
    }
    // Compute output columns (plus a hidden order column when needed).
    std::vector<dvq::SelectExpr> exprs = query_.select;
    std::optional<std::size_t> order_slot;
    if (query_.order_by.has_value()) {
      for (std::size_t i = 0; i < exprs.size(); ++i) {
        if (exprs[i].EqualsIgnoreCase(query_.order_by->expr)) order_slot = i;
      }
      if (!order_slot.has_value()) {
        exprs.push_back(query_.order_by->expr);
        order_slot = exprs.size() - 1;
      }
    }
    bool has_agg = false;
    for (const auto& e : exprs) {
      if (e.agg != dvq::AggFunc::kNone) has_agg = true;
    }
    std::vector<std::vector<Value>> out;
    if (has_agg || !query_.group_by.empty()) {
      std::vector<std::string> keys;
      std::vector<std::size_t> key_slots;
      std::vector<dvq::ColumnRef> group = query_.group_by;
      if (group.empty()) {
        for (const auto& e : query_.select) {
          if (e.agg == dvq::AggFunc::kNone) group.push_back(e.col);
        }
      }
      for (const auto& g : group) {
        std::optional<std::size_t> slot = Slot(g.column);
        if (!slot.has_value()) return std::nullopt;
        key_slots.push_back(*slot);
      }
      // Group rows by string key, first-seen order.
      std::vector<std::string> group_order;
      std::map<std::string, std::vector<std::vector<Value>>> groups;
      for (const auto& row : rows) {
        std::string key;
        for (std::size_t slot : key_slots) {
          key += row[slot].ToString();
          key += '\x1f';
        }
        if (groups.find(key) == groups.end()) group_order.push_back(key);
        groups[key].push_back(row);
      }
      for (const std::string& key : group_order) {
        const auto& members = groups[key];
        std::vector<Value> out_row;
        for (const auto& e : exprs) {
          std::optional<Value> v = EvalExpr(e, members);
          if (!v.has_value()) return std::nullopt;
          out_row.push_back(*v);
        }
        out.push_back(std::move(out_row));
      }
    } else {
      for (const auto& row : rows) {
        std::vector<Value> out_row;
        for (const auto& e : exprs) {
          std::optional<std::size_t> slot = Slot(e.col.column);
          if (!slot.has_value()) return std::nullopt;
          out_row.push_back(row[*slot]);
        }
        out.push_back(std::move(out_row));
      }
    }
    // Order (stable).
    if (query_.order_by.has_value()) {
      const std::size_t slot = *order_slot;
      const bool desc = query_.order_by->descending;
      std::stable_sort(out.begin(), out.end(),
                       [slot, desc](const auto& a, const auto& b) {
                         int cmp = a[slot].Compare(b[slot]);
                         return desc ? cmp > 0 : cmp < 0;
                       });
    }
    // Limit + strip hidden column.
    if (query_.limit.has_value() &&
        out.size() > static_cast<std::size_t>(*query_.limit)) {
      out.resize(static_cast<std::size_t>(*query_.limit));
    }
    for (auto& row : out) row.resize(query_.select.size());
    return out;
  }

 private:
  std::optional<std::size_t> Slot(const std::string& column) const {
    return table_.def().ColumnIndex(column);
  }

  std::optional<bool> EvalCondition(const dvq::Condition& cond,
                                    const std::vector<Value>& row) const {
    // OR of AND-groups (SQL precedence).
    bool group = true;
    bool any = false;
    for (std::size_t i = 0; i < cond.predicates.size(); ++i) {
      std::optional<bool> value = EvalPredicate(cond.predicates[i], row);
      if (!value.has_value()) return std::nullopt;
      group = group && *value;
      bool group_ends = i + 1 >= cond.predicates.size() ||
                        cond.connectors[i] == dvq::LogicalOp::kOr;
      if (group_ends) {
        any = any || group;
        group = true;
      }
    }
    return any;
  }

  std::optional<bool> EvalPredicate(const dvq::Predicate& pred,
                                    const std::vector<Value>& row) const {
    if (pred.subquery != nullptr) return std::nullopt;  // out of scope
    std::optional<std::size_t> slot = Slot(pred.col.column);
    if (!slot.has_value()) return std::nullopt;
    const Value& lhs = row[*slot];
    auto lit_value = [](const dvq::Literal& lit) {
      switch (lit.kind) {
        case dvq::Literal::Kind::kInt:
          return Value::Int(lit.int_value);
        case dvq::Literal::Kind::kReal:
          return Value::Real(lit.real_value);
        case dvq::Literal::Kind::kString:
          return Value::Text(lit.string_value);
      }
      return Value::Null();
    };
    switch (pred.op) {
      case dvq::CompareOp::kIsNull:
        return lhs.is_null();
      case dvq::CompareOp::kIsNotNull:
        return !lhs.is_null();
      case dvq::CompareOp::kLike:
        return !lhs.is_null() &&
               exec::LikeMatch(pred.literal->string_value, lhs.ToString());
      case dvq::CompareOp::kNotLike:
        return !lhs.is_null() &&
               !exec::LikeMatch(pred.literal->string_value, lhs.ToString());
      case dvq::CompareOp::kIn:
      case dvq::CompareOp::kNotIn: {
        bool found = false;
        for (const auto& lit : pred.in_list) {
          if (lhs == lit_value(lit)) found = true;
        }
        return pred.op == dvq::CompareOp::kIn ? found : !found;
      }
      default:
        break;
    }
    if (lhs.is_null()) return false;
    Value rhs = lit_value(*pred.literal);
    int cmp = lhs.Compare(rhs);
    switch (pred.op) {
      case dvq::CompareOp::kEq:
        return cmp == 0;
      case dvq::CompareOp::kNe:
        return cmp != 0;
      case dvq::CompareOp::kLt:
        return cmp < 0;
      case dvq::CompareOp::kLe:
        return cmp <= 0;
      case dvq::CompareOp::kGt:
        return cmp > 0;
      case dvq::CompareOp::kGe:
        return cmp >= 0;
      default:
        return std::nullopt;
    }
  }

  std::optional<Value> EvalExpr(
      const dvq::SelectExpr& expr,
      const std::vector<std::vector<Value>>& members) const {
    if (expr.agg == dvq::AggFunc::kNone) {
      std::optional<std::size_t> slot = Slot(expr.col.column);
      if (!slot.has_value()) return std::nullopt;
      return members.front()[*slot];
    }
    if (expr.col.column == "*") {
      if (expr.agg != dvq::AggFunc::kCount) return std::nullopt;
      return Value::Int(static_cast<std::int64_t>(members.size()));
    }
    std::optional<std::size_t> slot = Slot(expr.col.column);
    if (!slot.has_value()) return std::nullopt;
    std::vector<Value> values;
    std::vector<std::string> seen;
    for (const auto& row : members) {
      const Value& v = row[*slot];
      if (v.is_null()) continue;
      if (expr.distinct) {
        std::string key = v.ToString();
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(key);
      }
      values.push_back(v);
    }
    switch (expr.agg) {
      case dvq::AggFunc::kCount:
        return Value::Int(static_cast<std::int64_t>(values.size()));
      case dvq::AggFunc::kSum: {
        if (values.empty()) return Value::Null();
        double sum = 0.0;
        for (const Value& v : values) sum += v.AsDouble();
        return Value::Real(sum);
      }
      case dvq::AggFunc::kAvg: {
        if (values.empty()) return Value::Null();
        double sum = 0.0;
        for (const Value& v : values) sum += v.AsDouble();
        return Value::Real(sum / static_cast<double>(values.size()));
      }
      case dvq::AggFunc::kMin: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (const Value& v : values) {
          if (v < best) best = v;
        }
        return best;
      }
      case dvq::AggFunc::kMax: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (const Value& v : values) {
          if (best < v) best = v;
        }
        return best;
      }
      default:
        return std::nullopt;
    }
  }

  const dvq::Query& query_;
  const storage::DataTable& table_;
};

class ExecutorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorDifferential, AgreesWithReferenceOnCorpusTargets) {
  dataset::BenchmarkOptions options;
  options.seed = 9000 + static_cast<std::uint64_t>(GetParam());
  options.train_size = 60;
  options.test_size = 120;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  std::size_t compared = 0;
  for (const dataset::Example& ex : suite.test_clean) {
    const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    if (!ex.dvq.query.joins.empty()) continue;
    bool has_subquery = false;
    if (ex.dvq.query.where.has_value()) {
      for (const auto& p : ex.dvq.query.where->predicates) {
        if (p.subquery != nullptr) has_subquery = true;
      }
    }
    if (has_subquery) continue;
    const storage::DataTable* table =
        db->data.FindTable(ex.dvq.query.from_table);
    ASSERT_NE(table, nullptr);
    ReferenceEvaluator reference(ex.dvq.query, *table);
    std::optional<std::vector<std::vector<Value>>> expected =
        reference.Run();
    if (!expected.has_value()) continue;
    Result<exec::ResultSet> actual = exec::Execute(ex.dvq, db->data);
    ASSERT_TRUE(actual.ok()) << ex.DvqText();
    ASSERT_EQ(actual.value().num_rows(), expected->size()) << ex.DvqText();
    for (std::size_t r = 0; r < expected->size(); ++r) {
      for (std::size_t c = 0; c < ex.dvq.query.select.size(); ++c) {
        const Value& a = actual.value().rows[r][c];
        const Value& b = (*expected)[r][c];
        if (a.is_numeric() && b.is_numeric()) {
          EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9) << ex.DvqText();
        } else {
          EXPECT_EQ(a.Compare(b), 0) << ex.DvqText();
        }
      }
    }
    ++compared;
  }
  EXPECT_GT(compared, 40u);  // the corpus must exercise the comparison
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferential,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Row-engine vs columnar-engine differential harness. The row-at-a-time
// engine is the executable reference semantics; the vectorized engine
// must be bit-identical on results and — absent scalar subqueries, which
// it hoists — charge-identical on guards.
// ---------------------------------------------------------------------------

/// Type-exact fingerprint of a ResultSet: column names, row order, and
/// for each cell a kind tag plus an exact payload (ints by value, reals
/// by bit pattern, text raw). Any divergence between engines — including
/// int-vs-real kind drift or a different double-accumulation order —
/// changes the fingerprint.
std::string Fingerprint(const exec::ResultSet& rs) {
  std::string out;
  for (const std::string& name : rs.column_names) {
    out += name;
    out += '\x1f';
  }
  out += '\n';
  for (const auto& row : rs.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        out += 'N';
      } else if (v.is_int()) {
        out += 'I';
        out += std::to_string(v.int_value());
      } else if (v.is_real()) {
        out += 'R';
        out += std::to_string(std::bit_cast<std::uint64_t>(v.real_value()));
      } else {
        out += 'T';
        out += v.text_value();
      }
      out += '\x1f';
    }
    out += '\n';
  }
  return out;
}

bool HasSubquery(const dvq::Query& q) {
  if (!q.where.has_value()) return false;
  for (const auto& p : q.where->predicates) {
    if (p.subquery != nullptr) return true;
  }
  return false;
}

/// Runs one query through both engines and asserts agreement: identical
/// ok-ness, identical error code/message on failure, identical result
/// fingerprint on success. When `check_usage` is set, also runs both
/// under a fresh unlimited guard and asserts identical charge totals
/// (valid only without subqueries).
void ExpectEnginesAgree(const dvq::Query& q, const storage::DatabaseData& db,
                        exec::JoinStrategy strategy, bool check_usage,
                        const std::string& label) {
  exec::ExecOptions row;
  row.engine = exec::Engine::kRowAtATime;
  row.join_strategy = strategy;
  exec::ExecOptions col;
  col.engine = exec::Engine::kColumnar;
  col.join_strategy = strategy;
  Result<exec::ResultSet> a = exec::Execute(q, db, row);
  Result<exec::ResultSet> b = exec::Execute(q, db, col);
  ASSERT_EQ(a.ok(), b.ok()) << label << "\nrow: " << a.status().ToString()
                            << "\ncolumnar: " << b.status().ToString();
  if (!a.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << label;
    EXPECT_EQ(a.status().message(), b.status().message()) << label;
    return;
  }
  EXPECT_EQ(Fingerprint(a.value()), Fingerprint(b.value())) << label;
  if (!check_usage) return;
  ExecContext row_ctx;
  ExecContext col_ctx;
  row.context = &row_ctx;
  col.context = &col_ctx;
  ASSERT_TRUE(exec::Execute(q, db, row).ok()) << label;
  ASSERT_TRUE(exec::Execute(q, db, col).ok()) << label;
  EXPECT_EQ(row_ctx.usage().ticks, col_ctx.usage().ticks) << label;
  EXPECT_EQ(row_ctx.usage().rows, col_ctx.usage().rows) << label;
  EXPECT_EQ(row_ctx.usage().bytes, col_ctx.usage().bytes) << label;
  EXPECT_EQ(row_ctx.usage().join_rows, col_ctx.usage().join_rows) << label;
}

/// Trip parity under tight budgets: per-chunk charging must exhaust the
/// same budgets as per-row charging. Without subqueries both engines
/// charge identical totals, so trip/no-trip must match exactly; with a
/// subquery the columnar engine (which hoists it) charges at most as
/// much, so its trip implies the reference engine's.
void ExpectTripParity(const dvq::Query& q, const storage::DatabaseData& db,
                      const GuardLimits& limits, const std::string& label) {
  ExecContext row_ctx(limits);
  ExecContext col_ctx(limits);
  exec::ExecOptions row;
  row.engine = exec::Engine::kRowAtATime;
  row.context = &row_ctx;
  exec::ExecOptions col;
  col.engine = exec::Engine::kColumnar;
  col.context = &col_ctx;
  Result<exec::ResultSet> a = exec::Execute(q, db, row);
  Result<exec::ResultSet> b = exec::Execute(q, db, col);
  if (HasSubquery(q)) {
    if (!b.ok()) {
      EXPECT_FALSE(a.ok()) << label;
    }
  } else {
    ASSERT_EQ(a.ok(), b.ok())
        << label << "\nrow: " << a.status().ToString()
        << "\ncolumnar: " << b.status().ToString();
  }
  if (!a.ok() && !b.ok()) {
    EXPECT_EQ(a.status().code(), b.status().code()) << label;
  }
  if (a.ok() && b.ok()) {
    EXPECT_EQ(Fingerprint(a.value()), Fingerprint(b.value())) << label;
  }
}

class EngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(EngineDifferential, ColumnarMatchesRowEngineOnEvalSuite) {
  dataset::BenchmarkOptions options;
  options.seed = 9100 + static_cast<std::uint64_t>(GetParam());
  options.train_size = 40;
  options.test_size = 120;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  struct SetRef {
    const std::vector<dataset::Example>* examples;
    bool rob;
  };
  const SetRef sets[] = {{&suite.test_clean, false},
                         {&suite.test_nlq, false},
                         {&suite.test_schema, true},
                         {&suite.test_both, true}};
  std::size_t compared = 0;
  for (const SetRef& set : sets) {
    for (const dataset::Example& ex : *set.examples) {
      const dataset::GeneratedDatabase* db =
          set.rob ? suite.FindRobDb(ex.db_name)
                  : suite.FindCleanDb(ex.db_name);
      ASSERT_NE(db, nullptr) << ex.db_name;
      const bool check_usage = !HasSubquery(ex.dvq.query);
      ExpectEnginesAgree(ex.dvq.query, db->data,
                         exec::JoinStrategy::kHashJoin, check_usage,
                         ex.DvqText());
      ++compared;
    }
  }
  EXPECT_GT(compared, 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Randomized differential: structured random queries over hand-built
// tables that concentrate the awkward cases — NULL group keys, empty
// inputs, BIN + GROUP BY, duplicate join keys, ambiguous column names —
// run through both engines, with and without guards.
// ---------------------------------------------------------------------------

dvq::ColumnRef Col(const std::string& table, const std::string& column) {
  dvq::ColumnRef ref;
  ref.table = table;
  ref.column = column;
  return ref;
}

dvq::SelectExpr Sel(dvq::AggFunc agg, bool distinct, dvq::ColumnRef col) {
  dvq::SelectExpr e;
  e.agg = agg;
  e.distinct = distinct;
  e.col = std::move(col);
  return e;
}

/// Tables: t(g, x, d, s) with NULLs in every column and a small `g`
/// domain (group collisions, NULL group keys); u(k, w) with duplicate
/// keys (join fan-out). `rows == 0` exercises empty-input aggregates.
storage::DatabaseData MakeRandomDb(Rng* rng, std::size_t rows) {
  schema::Database db_schema("rnd");
  schema::TableDef t("t", {});
  t.AddColumn({"g", schema::ColumnType::kInt, false});
  t.AddColumn({"x", schema::ColumnType::kInt, false});
  t.AddColumn({"d", schema::ColumnType::kDate, false});
  t.AddColumn({"s", schema::ColumnType::kText, false});
  db_schema.AddTable(std::move(t));
  schema::TableDef u("u", {});
  u.AddColumn({"k", schema::ColumnType::kInt, false});
  u.AddColumn({"w", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(u));
  storage::DatabaseData db(std::move(db_schema));
  const std::vector<std::string> dates = {"2020-01-15", "2020-02-20",
                                          "2021-01-05", "2021-07-04",
                                          "not a date"};
  const std::vector<std::string> texts = {"aa", "ab", "b", ""};
  storage::DataTable* tt = db.FindTable("t");
  for (std::size_t r = 0; r < rows; ++r) {
    Value g = rng->NextBool(0.2) ? Value::Null()
                                 : Value::Int(rng->NextInt(0, 4));
    Value x = rng->NextBool(0.1) ? Value::Null()
                                 : Value::Int(rng->NextInt(-5, 9));
    Value d = rng->NextBool(0.15) ? Value::Null()
                                  : Value::Text(rng->Pick(dates));
    Value s = rng->NextBool(0.1) ? Value::Null()
                                 : Value::Text(rng->Pick(texts));
    EXPECT_TRUE(tt->AppendRow({g, x, d, s}).ok());
  }
  storage::DataTable* tu = db.FindTable("u");
  const std::size_t u_rows = rows == 0 ? 3 : rows / 2 + 1;
  for (std::size_t r = 0; r < u_rows; ++r) {
    Value k = rng->NextBool(0.15) ? Value::Null()
                                  : Value::Int(rng->NextInt(0, 5));
    EXPECT_TRUE(
        tu->AppendRow({k, Value::Int(rng->NextInt(0, 100))}).ok());
  }
  return db;
}

dvq::Query MakeRandomQuery(Rng* rng) {
  dvq::Query q;
  q.from_table = "t";
  const bool join = rng->NextBool(0.3);
  if (join) {
    dvq::JoinClause j;
    j.table = "u";
    j.left = Col("t", "g");
    j.right = Col("u", "k");
    q.joins.push_back(j);
  }
  std::vector<std::string> plain_cols = {"g", "x", "d", "s"};
  if (join) {
    plain_cols.push_back("w");
    plain_cols.push_back("k");
  }
  const std::vector<dvq::AggFunc> aggs = {
      dvq::AggFunc::kCount, dvq::AggFunc::kSum, dvq::AggFunc::kAvg,
      dvq::AggFunc::kMin, dvq::AggFunc::kMax};
  const std::string x_col = rng->Pick(plain_cols);
  q.select.push_back(Sel(dvq::AggFunc::kNone, false, Col("", x_col)));
  if (rng->NextBool(0.7)) {
    const dvq::AggFunc agg = rng->Pick(aggs);
    const bool star = agg == dvq::AggFunc::kCount && rng->NextBool(0.3);
    q.select.push_back(Sel(agg, rng->NextBool(0.15),
                           star ? Col("", "*")
                                : Col("", rng->Pick(plain_cols))));
  } else {
    q.select.push_back(
        Sel(dvq::AggFunc::kNone, false, Col("", rng->Pick(plain_cols))));
  }
  if (rng->NextBool(0.5)) {
    dvq::Condition cond;
    const std::size_t n_preds = static_cast<std::size_t>(rng->NextInt(1, 3));
    for (std::size_t i = 0; i < n_preds; ++i) {
      dvq::Predicate p;
      p.col = Col("", rng->Pick(plain_cols));
      switch (rng->NextInt(0, 6)) {
        case 0:
          p.op = dvq::CompareOp::kEq;
          p.literal = dvq::Literal::Int(rng->NextInt(0, 5));
          break;
        case 1:
          p.op = rng->NextBool(0.5) ? dvq::CompareOp::kLt
                                    : dvq::CompareOp::kGe;
          p.literal = dvq::Literal::Int(rng->NextInt(-2, 8));
          break;
        case 2:
          p.op = rng->NextBool(0.5) ? dvq::CompareOp::kNe
                                    : dvq::CompareOp::kLe;
          p.literal = rng->NextBool(0.5)
                          ? dvq::Literal::Str(rng->NextBool(0.5) ? "ab" : "b")
                          : dvq::Literal::Real(2.5);
          break;
        case 3:
          p.op = rng->NextBool(0.5) ? dvq::CompareOp::kLike
                                    : dvq::CompareOp::kNotLike;
          p.literal = dvq::Literal::Str(rng->NextBool(0.5) ? "%a%" : "2_2%");
          break;
        case 4:
          p.op = rng->NextBool(0.5) ? dvq::CompareOp::kIsNull
                                    : dvq::CompareOp::kIsNotNull;
          break;
        case 5: {
          p.op = rng->NextBool(0.5) ? dvq::CompareOp::kIn
                                    : dvq::CompareOp::kNotIn;
          const std::size_t n_in = static_cast<std::size_t>(rng->NextInt(1, 3));
          for (std::size_t v = 0; v < n_in; ++v) {
            p.in_list.push_back(dvq::Literal::Int(rng->NextInt(0, 5)));
          }
          break;
        }
        default: {
          // Scalar subquery RHS: the columnar engine hoists these.
          p.op = dvq::CompareOp::kEq;
          auto sub = std::make_shared<dvq::Query>();
          sub->from_table = "u";
          sub->select.push_back(
              Sel(dvq::AggFunc::kNone, false, Col("", "k")));
          sub->select.push_back(
              Sel(dvq::AggFunc::kNone, false, Col("", "w")));
          sub->limit = 1;
          p.subquery = std::move(sub);
          break;
        }
      }
      cond.predicates.push_back(std::move(p));
      if (i + 1 < n_preds) {
        cond.connectors.push_back(rng->NextBool(0.5) ? dvq::LogicalOp::kAnd
                                                     : dvq::LogicalOp::kOr);
      }
    }
    q.where = std::move(cond);
  }
  if (rng->NextBool(0.25)) {
    dvq::BinClause bin;
    bin.col = Col("", rng->NextBool(0.8) ? "d" : "g");
    bin.unit = static_cast<dvq::BinUnit>(rng->NextInt(0, 3));
    q.bin = bin;
    if (rng->NextBool(0.5)) q.group_by.push_back(bin.col);
  } else if (rng->NextBool(0.3)) {
    // Explicit GROUP BY, sometimes on a column that is not selected.
    q.group_by.push_back(
        Col("", rng->NextBool(0.6) ? x_col : rng->Pick(plain_cols)));
  }
  if (rng->NextBool(0.5)) {
    dvq::OrderByClause order;
    if (rng->NextBool(0.6)) {
      order.expr = rng->Pick(q.select);
    } else if (rng->NextBool(0.5)) {
      order.expr =
          Sel(dvq::AggFunc::kNone, false, Col("", rng->Pick(plain_cols)));
    } else {
      order.expr = Sel(rng->Pick(aggs), false, Col("", "x"));
    }
    order.descending = rng->NextBool(0.5);
    q.order_by = order;
  }
  if (rng->NextBool(0.35)) q.limit = rng->NextInt(0, 5);
  return q;
}

class RandomizedEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEngineDifferential, EnginesAgreeOnRandomQueries) {
  Rng rng(7700 + 131 * static_cast<std::uint64_t>(GetParam()));
  // Four databases per seed, including an empty one (aggregates over
  // empty input must agree, and WHERE/ORDER resolution must stay lazy
  // in exactly the same places).
  const std::size_t sizes[] = {0, 1, 7, 60};
  std::vector<storage::DatabaseData> dbs;
  for (std::size_t size : sizes) dbs.push_back(MakeRandomDb(&rng, size));
  for (int iter = 0; iter < 250; ++iter) {
    const storage::DatabaseData& db = dbs[rng.NextIndex(dbs.size())];
    const dvq::Query q = MakeRandomQuery(&rng);
    const std::string label = "iter " + std::to_string(iter) + ": " +
                              q.ToString();
    const exec::JoinStrategy strategy = rng.NextBool(0.75)
                                            ? exec::JoinStrategy::kHashJoin
                                            : exec::JoinStrategy::kNestedLoop;
    ExpectEnginesAgree(q, db, strategy, !HasSubquery(q), label);
    // Tight random budgets: per-chunk charging must trip identically.
    GuardLimits limits;
    if (rng.NextBool(0.5)) {
      limits.deadline_ticks = static_cast<std::uint64_t>(rng.NextInt(1, 200));
    }
    if (rng.NextBool(0.5)) {
      limits.row_budget = static_cast<std::uint64_t>(rng.NextInt(1, 100));
    }
    if (rng.NextBool(0.5)) {
      limits.memory_budget =
          static_cast<std::uint64_t>(rng.NextInt(1, 2000));
    }
    if (rng.NextBool(0.5)) {
      limits.join_budget = static_cast<std::uint64_t>(rng.NextInt(1, 50));
    }
    ExpectTripParity(q, db, limits, label);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEngineDifferential,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace gred
