// Differential test: an independent, deliberately naive reference
// evaluator for single-table DVQs is compared against the production
// executor over the generated benchmark corpus. The reference
// implementation shares no code with exec::Execute beyond the AST and
// Value types.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "dataset/benchmark.h"
#include "exec/executor.h"
#include "exec/scalar.h"

namespace gred {
namespace {

using storage::Value;

/// Naive reference: materialize -> filter -> bin -> group -> aggregate ->
/// order -> limit, all with straightforward O(n^2) scans and string keys.
class ReferenceEvaluator {
 public:
  ReferenceEvaluator(const dvq::Query& query,
                     const storage::DataTable& table)
      : query_(query), table_(table) {}

  /// Returns nullopt when the query uses features outside the reference
  /// scope (joins, subqueries) or references unknown columns.
  std::optional<std::vector<std::vector<Value>>> Run() {
    if (!query_.joins.empty()) return std::nullopt;
    std::vector<std::vector<Value>> rows;
    for (std::size_t r = 0; r < table_.num_rows(); ++r) {
      rows.push_back(table_.Row(r));
    }
    // Filter.
    if (query_.where.has_value()) {
      std::vector<std::vector<Value>> kept;
      for (const auto& row : rows) {
        std::optional<bool> pass = EvalCondition(*query_.where, row);
        if (!pass.has_value()) return std::nullopt;
        if (*pass) kept.push_back(row);
      }
      rows = std::move(kept);
    }
    // Bin.
    if (query_.bin.has_value()) {
      std::optional<std::size_t> slot = Slot(query_.bin->col.column);
      if (!slot.has_value()) return std::nullopt;
      for (auto& row : rows) {
        row[*slot] = exec::BinValue(row[*slot], query_.bin->unit);
      }
    }
    // Compute output columns (plus a hidden order column when needed).
    std::vector<dvq::SelectExpr> exprs = query_.select;
    std::optional<std::size_t> order_slot;
    if (query_.order_by.has_value()) {
      for (std::size_t i = 0; i < exprs.size(); ++i) {
        if (exprs[i].EqualsIgnoreCase(query_.order_by->expr)) order_slot = i;
      }
      if (!order_slot.has_value()) {
        exprs.push_back(query_.order_by->expr);
        order_slot = exprs.size() - 1;
      }
    }
    bool has_agg = false;
    for (const auto& e : exprs) {
      if (e.agg != dvq::AggFunc::kNone) has_agg = true;
    }
    std::vector<std::vector<Value>> out;
    if (has_agg || !query_.group_by.empty()) {
      std::vector<std::string> keys;
      std::vector<std::size_t> key_slots;
      std::vector<dvq::ColumnRef> group = query_.group_by;
      if (group.empty()) {
        for (const auto& e : query_.select) {
          if (e.agg == dvq::AggFunc::kNone) group.push_back(e.col);
        }
      }
      for (const auto& g : group) {
        std::optional<std::size_t> slot = Slot(g.column);
        if (!slot.has_value()) return std::nullopt;
        key_slots.push_back(*slot);
      }
      // Group rows by string key, first-seen order.
      std::vector<std::string> group_order;
      std::map<std::string, std::vector<std::vector<Value>>> groups;
      for (const auto& row : rows) {
        std::string key;
        for (std::size_t slot : key_slots) {
          key += row[slot].ToString();
          key += '\x1f';
        }
        if (groups.find(key) == groups.end()) group_order.push_back(key);
        groups[key].push_back(row);
      }
      for (const std::string& key : group_order) {
        const auto& members = groups[key];
        std::vector<Value> out_row;
        for (const auto& e : exprs) {
          std::optional<Value> v = EvalExpr(e, members);
          if (!v.has_value()) return std::nullopt;
          out_row.push_back(*v);
        }
        out.push_back(std::move(out_row));
      }
    } else {
      for (const auto& row : rows) {
        std::vector<Value> out_row;
        for (const auto& e : exprs) {
          std::optional<std::size_t> slot = Slot(e.col.column);
          if (!slot.has_value()) return std::nullopt;
          out_row.push_back(row[*slot]);
        }
        out.push_back(std::move(out_row));
      }
    }
    // Order (stable).
    if (query_.order_by.has_value()) {
      const std::size_t slot = *order_slot;
      const bool desc = query_.order_by->descending;
      std::stable_sort(out.begin(), out.end(),
                       [slot, desc](const auto& a, const auto& b) {
                         int cmp = a[slot].Compare(b[slot]);
                         return desc ? cmp > 0 : cmp < 0;
                       });
    }
    // Limit + strip hidden column.
    if (query_.limit.has_value() &&
        out.size() > static_cast<std::size_t>(*query_.limit)) {
      out.resize(static_cast<std::size_t>(*query_.limit));
    }
    for (auto& row : out) row.resize(query_.select.size());
    return out;
  }

 private:
  std::optional<std::size_t> Slot(const std::string& column) const {
    return table_.def().ColumnIndex(column);
  }

  std::optional<bool> EvalCondition(const dvq::Condition& cond,
                                    const std::vector<Value>& row) const {
    // OR of AND-groups (SQL precedence).
    bool group = true;
    bool any = false;
    for (std::size_t i = 0; i < cond.predicates.size(); ++i) {
      std::optional<bool> value = EvalPredicate(cond.predicates[i], row);
      if (!value.has_value()) return std::nullopt;
      group = group && *value;
      bool group_ends = i + 1 >= cond.predicates.size() ||
                        cond.connectors[i] == dvq::LogicalOp::kOr;
      if (group_ends) {
        any = any || group;
        group = true;
      }
    }
    return any;
  }

  std::optional<bool> EvalPredicate(const dvq::Predicate& pred,
                                    const std::vector<Value>& row) const {
    if (pred.subquery != nullptr) return std::nullopt;  // out of scope
    std::optional<std::size_t> slot = Slot(pred.col.column);
    if (!slot.has_value()) return std::nullopt;
    const Value& lhs = row[*slot];
    auto lit_value = [](const dvq::Literal& lit) {
      switch (lit.kind) {
        case dvq::Literal::Kind::kInt:
          return Value::Int(lit.int_value);
        case dvq::Literal::Kind::kReal:
          return Value::Real(lit.real_value);
        case dvq::Literal::Kind::kString:
          return Value::Text(lit.string_value);
      }
      return Value::Null();
    };
    switch (pred.op) {
      case dvq::CompareOp::kIsNull:
        return lhs.is_null();
      case dvq::CompareOp::kIsNotNull:
        return !lhs.is_null();
      case dvq::CompareOp::kLike:
        return !lhs.is_null() &&
               exec::LikeMatch(pred.literal->string_value, lhs.ToString());
      case dvq::CompareOp::kNotLike:
        return !lhs.is_null() &&
               !exec::LikeMatch(pred.literal->string_value, lhs.ToString());
      case dvq::CompareOp::kIn:
      case dvq::CompareOp::kNotIn: {
        bool found = false;
        for (const auto& lit : pred.in_list) {
          if (lhs == lit_value(lit)) found = true;
        }
        return pred.op == dvq::CompareOp::kIn ? found : !found;
      }
      default:
        break;
    }
    if (lhs.is_null()) return false;
    Value rhs = lit_value(*pred.literal);
    int cmp = lhs.Compare(rhs);
    switch (pred.op) {
      case dvq::CompareOp::kEq:
        return cmp == 0;
      case dvq::CompareOp::kNe:
        return cmp != 0;
      case dvq::CompareOp::kLt:
        return cmp < 0;
      case dvq::CompareOp::kLe:
        return cmp <= 0;
      case dvq::CompareOp::kGt:
        return cmp > 0;
      case dvq::CompareOp::kGe:
        return cmp >= 0;
      default:
        return std::nullopt;
    }
  }

  std::optional<Value> EvalExpr(
      const dvq::SelectExpr& expr,
      const std::vector<std::vector<Value>>& members) const {
    if (expr.agg == dvq::AggFunc::kNone) {
      std::optional<std::size_t> slot = Slot(expr.col.column);
      if (!slot.has_value()) return std::nullopt;
      return members.front()[*slot];
    }
    if (expr.col.column == "*") {
      if (expr.agg != dvq::AggFunc::kCount) return std::nullopt;
      return Value::Int(static_cast<std::int64_t>(members.size()));
    }
    std::optional<std::size_t> slot = Slot(expr.col.column);
    if (!slot.has_value()) return std::nullopt;
    std::vector<Value> values;
    std::vector<std::string> seen;
    for (const auto& row : members) {
      const Value& v = row[*slot];
      if (v.is_null()) continue;
      if (expr.distinct) {
        std::string key = v.ToString();
        if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
        seen.push_back(key);
      }
      values.push_back(v);
    }
    switch (expr.agg) {
      case dvq::AggFunc::kCount:
        return Value::Int(static_cast<std::int64_t>(values.size()));
      case dvq::AggFunc::kSum: {
        if (values.empty()) return Value::Null();
        double sum = 0.0;
        for (const Value& v : values) sum += v.AsDouble();
        return Value::Real(sum);
      }
      case dvq::AggFunc::kAvg: {
        if (values.empty()) return Value::Null();
        double sum = 0.0;
        for (const Value& v : values) sum += v.AsDouble();
        return Value::Real(sum / static_cast<double>(values.size()));
      }
      case dvq::AggFunc::kMin: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (const Value& v : values) {
          if (v < best) best = v;
        }
        return best;
      }
      case dvq::AggFunc::kMax: {
        if (values.empty()) return Value::Null();
        Value best = values[0];
        for (const Value& v : values) {
          if (best < v) best = v;
        }
        return best;
      }
      default:
        return std::nullopt;
    }
  }

  const dvq::Query& query_;
  const storage::DataTable& table_;
};

class ExecutorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorDifferential, AgreesWithReferenceOnCorpusTargets) {
  dataset::BenchmarkOptions options;
  options.seed = 9000 + static_cast<std::uint64_t>(GetParam());
  options.train_size = 60;
  options.test_size = 120;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  std::size_t compared = 0;
  for (const dataset::Example& ex : suite.test_clean) {
    const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    if (!ex.dvq.query.joins.empty()) continue;
    bool has_subquery = false;
    if (ex.dvq.query.where.has_value()) {
      for (const auto& p : ex.dvq.query.where->predicates) {
        if (p.subquery != nullptr) has_subquery = true;
      }
    }
    if (has_subquery) continue;
    const storage::DataTable* table =
        db->data.FindTable(ex.dvq.query.from_table);
    ASSERT_NE(table, nullptr);
    ReferenceEvaluator reference(ex.dvq.query, *table);
    std::optional<std::vector<std::vector<Value>>> expected =
        reference.Run();
    if (!expected.has_value()) continue;
    Result<exec::ResultSet> actual = exec::Execute(ex.dvq, db->data);
    ASSERT_TRUE(actual.ok()) << ex.DvqText();
    ASSERT_EQ(actual.value().num_rows(), expected->size()) << ex.DvqText();
    for (std::size_t r = 0; r < expected->size(); ++r) {
      for (std::size_t c = 0; c < ex.dvq.query.select.size(); ++c) {
        const Value& a = actual.value().rows[r][c];
        const Value& b = (*expected)[r][c];
        if (a.is_numeric() && b.is_numeric()) {
          EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9) << ex.DvqText();
        } else {
          EXPECT_EQ(a.Compare(b), 0) << ex.DvqText();
        }
      }
    }
    ++compared;
  }
  EXPECT_GT(compared, 40u);  // the corpus must exercise the comparison
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferential,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace gred
