// Tests for the schema-aware static analyzer (DESIGN.md §12): every
// diagnostic code DVQ001..DVQ013 is exercised with at least one DVQ that
// fires it and one that must not, plus the suggestion machinery, the
// code-name stability contract, and the real-literal round-trip the
// fix-it pipeline depends on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "dvq/normalize.h"
#include "dvq/parser.h"
#include "nl/lexicon.h"

namespace gred::analysis {
namespace {

schema::Column Col(const std::string& name, schema::ColumnType type) {
  schema::Column c;
  c.name = name;
  c.type = type;
  return c;
}

/// Fixture schema with every type class represented:
///   employees(id int, name text, salary real, hire_date date,
///             active bool, age int, city text, department_id int)
///   departments(department_id int, department_name text, budget real)
///   FK: employees.department_id -> departments.department_id
const schema::Database& TestDb() {
  static const schema::Database* const kDb = [] {
    auto* db = new schema::Database("testdb");
    schema::TableDef employees("employees", {});
    employees.AddColumn(Col("id", schema::ColumnType::kInt));
    employees.AddColumn(Col("name", schema::ColumnType::kText));
    employees.AddColumn(Col("salary", schema::ColumnType::kReal));
    employees.AddColumn(Col("hire_date", schema::ColumnType::kDate));
    employees.AddColumn(Col("active", schema::ColumnType::kBool));
    employees.AddColumn(Col("age", schema::ColumnType::kInt));
    employees.AddColumn(Col("city", schema::ColumnType::kText));
    employees.AddColumn(Col("department_id", schema::ColumnType::kInt));
    db->AddTable(std::move(employees));
    schema::TableDef departments("departments", {});
    departments.AddColumn(Col("department_id", schema::ColumnType::kInt));
    departments.AddColumn(Col("department_name", schema::ColumnType::kText));
    departments.AddColumn(Col("budget", schema::ColumnType::kReal));
    db->AddTable(std::move(departments));
    schema::ForeignKey fk;
    fk.from_table = "employees";
    fk.from_column = "department_id";
    fk.to_table = "departments";
    fk.to_column = "department_id";
    db->AddForeignKey(std::move(fk));
    return db;
  }();
  return *kDb;
}

std::vector<Diagnostic> Lint(const std::string& text) {
  Result<dvq::DVQ> parsed = dvq::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  if (!parsed.ok()) return {};
  DvqAnalyzer analyzer(&TestDb());
  return analyzer.Analyze(parsed.value());
}

bool Fires(const std::vector<Diagnostic>& diagnostics, Code code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic* Find(const std::vector<Diagnostic>& diagnostics,
                       Code code) {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

TEST(Codes, NamesAreStable) {
  // Append-only contract: these strings are public surface.
  EXPECT_STREQ(CodeName(Code::kUnknownTable), "DVQ001");
  EXPECT_STREQ(CodeName(Code::kUnknownColumn), "DVQ002");
  EXPECT_STREQ(CodeName(Code::kAggTypeMismatch), "DVQ003");
  EXPECT_STREQ(CodeName(Code::kAggStarMisuse), "DVQ004");
  EXPECT_STREQ(CodeName(Code::kGroupByInconsistency), "DVQ005");
  EXPECT_STREQ(CodeName(Code::kBinNonTemporal), "DVQ006");
  EXPECT_STREQ(CodeName(Code::kChartAxisMismatch), "DVQ007");
  EXPECT_STREQ(CodeName(Code::kJoinNotForeignKey), "DVQ008");
  EXPECT_STREQ(CodeName(Code::kJoinTypeMismatch), "DVQ009");
  EXPECT_STREQ(CodeName(Code::kAlwaysFalsePredicate), "DVQ010");
  EXPECT_STREQ(CodeName(Code::kComparisonTypeMismatch), "DVQ011");
  EXPECT_STREQ(CodeName(Code::kOrderByNotProjected), "DVQ012");
  EXPECT_STREQ(CodeName(Code::kDuplicateSelectItem), "DVQ013");
  EXPECT_EQ(AllCodes().size(), kNumCodes);
}

TEST(Analyzer, CleanQueryHasNoDiagnostics) {
  EXPECT_TRUE(Lint("Visualize BAR SELECT city , COUNT(city) FROM employees "
                   "GROUP BY city")
                  .empty());
  EXPECT_TRUE(Lint("Visualize SCATTER SELECT age , salary FROM employees "
                   "WHERE salary > 1000")
                  .empty());
}

// --- DVQ001 ----------------------------------------------------------------

TEST(UnknownTable, FiresWithSuggestion) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employes "
           "GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kUnknownTable);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->fixit, "employees");
  EXPECT_EQ(d->location.ToString(), "from[0]");
}

TEST(UnknownTable, SuppressesColumnCascade) {
  // Every column would be "unknown" once the table is unknown; the
  // cascade is noise and must be suppressed.
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employes "
           "GROUP BY city");
  EXPECT_FALSE(Fires(diags, Code::kUnknownColumn));
}

TEST(UnknownTable, DoesNotFireOnKnownTables) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT budget , department_name "
                          "FROM departments"),
                     Code::kUnknownTable));
}

// --- DVQ002 ----------------------------------------------------------------

TEST(UnknownColumn, FiresWithFixit) {
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT citty , COUNT(citty) FROM employees "
      "GROUP BY citty");
  const Diagnostic* d = Find(diags, Code::kUnknownColumn);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->fixit, "city");
}

TEST(UnknownColumn, SynonymResolvesThroughLexicon) {
  // "wage" shares no spelling with "salary"; only the lexicon's concept
  // map can connect them.
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , SUM(wage) FROM employees "
           "GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kUnknownColumn);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->fixit, "salary");
}

TEST(UnknownColumn, MissingJoinHint) {
  // `budget` exists — in a table the query never joined.
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , SUM(budget) FROM employees "
           "GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kUnknownColumn);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("JOIN"), std::string::npos) << d->message;
}

TEST(UnknownColumn, QualifierOutsideScope) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT departments.budget , city FROM employees");
  ASSERT_TRUE(Fires(diags, Code::kUnknownColumn));
}

TEST(UnknownColumn, DoesNotFireOnValidRefs) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT employees.city , "
                          "COUNT(employees.city) FROM employees "
                          "GROUP BY employees.city"),
                     Code::kUnknownColumn));
}

// --- DVQ003 ----------------------------------------------------------------

TEST(AggTypeMismatch, SumOverText) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , SUM(name) FROM employees "
           "GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kAggTypeMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(AggTypeMismatch, AvgOverDate) {
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , AVG(hire_date) "
                         "FROM employees GROUP BY city"),
                    Code::kAggTypeMismatch));
}

TEST(AggTypeMismatch, NumericAggregatesAreFine) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , SUM(salary) "
                          "FROM employees GROUP BY city"),
                     Code::kAggTypeMismatch));
  // COUNT / MIN / MAX are defined for every type.
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , MAX(name) "
                          "FROM employees GROUP BY city"),
                     Code::kAggTypeMismatch));
}

// --- DVQ004 ----------------------------------------------------------------

TEST(AggStarMisuse, SumStar) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , SUM(*) FROM employees GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kAggStarMisuse);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->fixit, "COUNT(*)");
}

TEST(AggStarMisuse, CountStarIsFine) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(*) "
                          "FROM employees GROUP BY city"),
                     Code::kAggStarMisuse));
}

// --- DVQ005 ----------------------------------------------------------------

TEST(GroupByInconsistency, BareColumnOutsideGroupBy) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , name , COUNT(id) FROM employees "
           "GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kGroupByInconsistency);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->location.ToString(), "select[1]");
}

TEST(GroupByInconsistency, ImplicitGroupingIsFine) {
  // Without GROUP BY the executor groups by the bare select columns
  // itself (Vega-Zero semantics) — nothing to flag.
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(id) "
                          "FROM employees"),
                     Code::kGroupByInconsistency));
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(id) "
                          "FROM employees GROUP BY city"),
                     Code::kGroupByInconsistency));
}

// --- DVQ006 ----------------------------------------------------------------

TEST(BinNonTemporal, FiresOnText) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employees "
           "BIN city BY YEAR");
  const Diagnostic* d = Find(diags, Code::kBinNonTemporal);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(BinNonTemporal, DateColumnIsFine) {
  EXPECT_FALSE(Fires(Lint("Visualize LINE SELECT hire_date , "
                          "COUNT(hire_date) FROM employees "
                          "BIN hire_date BY YEAR"),
                     Code::kBinNonTemporal));
}

// --- DVQ007 ----------------------------------------------------------------

TEST(ChartAxisMismatch, LineOverCategoricalX) {
  std::vector<Diagnostic> diags =
      Lint("Visualize LINE SELECT city , COUNT(city) FROM employees");
  const Diagnostic* d = Find(diags, Code::kChartAxisMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(ChartAxisMismatch, ScatterNeedsQuantitativeAxes) {
  EXPECT_TRUE(Fires(Lint("Visualize SCATTER SELECT city , salary "
                         "FROM employees"),
                    Code::kChartAxisMismatch));
}

TEST(ChartAxisMismatch, BarNeedsNumericMeasure) {
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , name FROM employees"),
                    Code::kChartAxisMismatch));
}

TEST(ChartAxisMismatch, BinnedTemporalLineIsFine) {
  EXPECT_FALSE(Fires(Lint("Visualize LINE SELECT hire_date , "
                          "COUNT(hire_date) FROM employees "
                          "BIN hire_date BY YEAR"),
                     Code::kChartAxisMismatch));
  EXPECT_FALSE(Fires(Lint("Visualize SCATTER SELECT age , salary "
                          "FROM employees"),
                     Code::kChartAxisMismatch));
}

// --- DVQ008 ----------------------------------------------------------------

TEST(JoinNotForeignKey, FiresWithConnectingFkFixit) {
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT department_name , COUNT(id) FROM employees "
      "JOIN departments ON employees.id = departments.department_id "
      "GROUP BY department_name");
  const Diagnostic* d = Find(diags, Code::kJoinNotForeignKey);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->fixit,
            "employees.department_id = departments.department_id");
}

TEST(JoinNotForeignKey, DeclaredFkIsFine) {
  EXPECT_FALSE(Fires(
      Lint("Visualize BAR SELECT department_name , COUNT(id) "
           "FROM employees JOIN departments "
           "ON employees.department_id = departments.department_id "
           "GROUP BY department_name"),
      Code::kJoinNotForeignKey));
}

// --- DVQ009 ----------------------------------------------------------------

TEST(JoinTypeMismatch, TextAgainstNumeric) {
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT department_name , COUNT(id) FROM employees "
      "JOIN departments ON employees.name = departments.department_id "
      "GROUP BY department_name");
  const Diagnostic* d = Find(diags, Code::kJoinTypeMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(JoinTypeMismatch, MatchingClassesAreFine) {
  EXPECT_FALSE(Fires(
      Lint("Visualize BAR SELECT department_name , COUNT(id) "
           "FROM employees JOIN departments "
           "ON employees.department_id = departments.department_id "
           "GROUP BY department_name"),
      Code::kJoinTypeMismatch));
}

// --- DVQ010 ----------------------------------------------------------------

TEST(AlwaysFalse, ContradictoryBoundsAreAnError) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employees "
           "WHERE age > 100 AND age < 10 GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kAlwaysFalsePredicate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(AlwaysFalse, EqNeOnSameValue) {
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                         "FROM employees WHERE city = \"x\" AND "
                         "city != \"x\" GROUP BY city"),
                    Code::kAlwaysFalsePredicate));
}

TEST(AlwaysFalse, ViableOrBranchDowngradesToWarning) {
  // One OR-branch contradicts itself, the other can match: the chart is
  // not provably empty, so the finding is a warning on that branch.
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employees "
           "WHERE age > 100 AND age < 10 OR city = \"x\" GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kAlwaysFalsePredicate);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(AlwaysFalse, SatisfiableChainsAreFine) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                          "FROM employees WHERE age > 10 AND age < 100 "
                          "GROUP BY city"),
                     Code::kAlwaysFalsePredicate));
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                          "FROM employees WHERE age > 100 OR age < 10 "
                          "GROUP BY city"),
                     Code::kAlwaysFalsePredicate));
}

// --- DVQ011 ----------------------------------------------------------------

TEST(ComparisonTypeMismatch, NonNumericStringAgainstNumericColumn) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , COUNT(city) FROM employees "
           "WHERE age = \"abc\" GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kComparisonTypeMismatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(ComparisonTypeMismatch, NumberAgainstTextColumn) {
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                         "FROM employees WHERE name > 5 GROUP BY city"),
                    Code::kComparisonTypeMismatch));
}

TEST(ComparisonTypeMismatch, LikeOnNumericColumn) {
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                         "FROM employees WHERE age LIKE \"4%\" "
                         "GROUP BY city"),
                    Code::kComparisonTypeMismatch));
}

TEST(ComparisonTypeMismatch, NumericLookingStringIsFine) {
  // The executor coerces "42" numerically, so it is not a mismatch.
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                          "FROM employees WHERE age = \"42\" "
                          "GROUP BY city"),
                     Code::kComparisonTypeMismatch));
}

// --- DVQ012 ----------------------------------------------------------------

TEST(OrderByNotProjected, FiresWithNearestSelectFixit) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , SUM(salary) FROM employees "
           "GROUP BY city ORDER BY age DESC");
  const Diagnostic* d = Find(diags, Code::kOrderByNotProjected);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.ToString(), "order_by[0]");
  // "age" is closest to neither; the fix-it still names a select item.
  EXPECT_TRUE(d->fixit == "city" || d->fixit == "SUM(salary)") << d->fixit;
}

TEST(OrderByNotProjected, AggregateNearMissFires) {
  // ORDER BY SUM(age) when the projected measure is SUM(salary): the
  // sort key becomes a hidden extra column.
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT city , SUM(salary) "
                         "FROM employees GROUP BY city ORDER BY "
                         "SUM(age) DESC"),
                    Code::kOrderByNotProjected));
}

TEST(OrderByNotProjected, ProjectedOrGroupedSortIsFine) {
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                          "FROM employees GROUP BY city ORDER BY "
                          "COUNT(city) DESC"),
                     Code::kOrderByNotProjected));
  // Sorting by a GROUP BY key is meaningful even when not projected.
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT COUNT(id) , SUM(salary) "
                          "FROM employees GROUP BY city ORDER BY city"),
                     Code::kOrderByNotProjected));
}

// --- DVQ013 ----------------------------------------------------------------

TEST(DuplicateSelectItem, FiresOnLaterDuplicate) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT city , city FROM employees");
  const Diagnostic* d = Find(diags, Code::kDuplicateSelectItem);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_EQ(d->location.ToString(), "select[1]");
}

TEST(DuplicateSelectItem, CaseInsensitiveAndAggAware) {
  // Same column, different aggregate: not a duplicate.
  EXPECT_FALSE(Fires(Lint("Visualize BAR SELECT city , COUNT(city) "
                          "FROM employees GROUP BY city"),
                     Code::kDuplicateSelectItem));
  EXPECT_TRUE(Fires(Lint("Visualize BAR SELECT City , COUNT(id) , city "
                         "FROM employees GROUP BY city"),
                    Code::kDuplicateSelectItem));
}

// --- Helpers / surface ------------------------------------------------------

TEST(Helpers, HasErrorsAndCountByCode) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT citty , SUM(name) FROM employees "
           "GROUP BY citty");
  EXPECT_TRUE(HasErrors(diags));
  std::map<std::string, std::size_t> counts;
  CountByCode(diags, &counts);
  EXPECT_EQ(counts["DVQ002"], 2u);  // select[0] and group_by[0]
  EXPECT_EQ(counts["DVQ003"], 1u);
  EXPECT_FALSE(HasErrors(Lint(
      "Visualize LINE SELECT city , COUNT(city) FROM employees")));  // warning
}

TEST(Helpers, RenderDiagnosticsOnePerLine) {
  std::vector<Diagnostic> diags =
      Lint("Visualize BAR SELECT citty , COUNT(citty) FROM employees "
           "GROUP BY citty");
  std::string rendered = RenderDiagnostics(diags);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(rendered.begin(), rendered.end(), '\n')),
            diags.size());
  EXPECT_NE(rendered.find("[DVQ002]"), std::string::npos);
  EXPECT_NE(rendered.find("(fix-it: city)"), std::string::npos);
  EXPECT_TRUE(RenderDiagnostics({}).empty());
}

TEST(Suggestions, EditDistanceAndSynonyms) {
  const nl::Lexicon& lexicon = nl::Lexicon::Default();
  EXPECT_EQ(SuggestName("citty", {"city", "name", "salary"}, lexicon, 0.5),
            "city");
  // Concept-aware: "wage" maps to the same lexicon concept as "salary".
  EXPECT_EQ(SuggestName("wage", {"city", "name", "salary"}, lexicon, 0.5),
            "salary");
  // Nothing close enough: no suggestion at all.
  EXPECT_EQ(SuggestName("zzzz", {"city", "name"}, lexicon, 0.5), "");
  EXPECT_GT(NameSimilarity("wage", "salary", lexicon),
            NameSimilarity("wage", "city", lexicon));
}

TEST(Locations, SubqueryPrefixAndClauseNames) {
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT city , COUNT(city) FROM employees WHERE "
      "salary > (SELECT AVG(budgget) FROM departments) GROUP BY city");
  const Diagnostic* d = Find(diags, Code::kUnknownColumn);
  ASSERT_NE(d, nullptr);
  // The prefix names the WHERE-predicate index owning the subquery.
  EXPECT_EQ(d->location.ToString(), "subquery(0).select[0]");
  EXPECT_EQ(d->fixit, "budget");
}

TEST(Locations, SiblingSubqueriesGetDistinctPrefixes) {
  // Regression: depth-only rendering labeled BOTH sibling subqueries
  // "subquery(1).", making their diagnostics indistinguishable (and any
  // repair keyed on location ambiguous). The path-based prefix names
  // the owning predicate index instead.
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT city , COUNT(city) FROM employees WHERE "
      "salary > (SELECT AVG(budgget) FROM departments) AND "
      "age < (SELECT AVG(budgget) FROM departments) GROUP BY city");
  std::vector<std::string> locations;
  for (const Diagnostic& d : diags) {
    if (d.code == Code::kUnknownColumn) {
      locations.push_back(d.location.ToString());
    }
  }
  ASSERT_EQ(locations.size(), 2u);
  EXPECT_EQ(locations[0], "subquery(0).select[0]");
  EXPECT_EQ(locations[1], "subquery(1).select[0]");
  EXPECT_NE(locations[0], locations[1]);
}

TEST(Locations, HandBuiltLocationFallsBackToDepth) {
  // Hand-built Locations (no path) keep the legacy depth rendering so
  // existing callers that never see subqueries are unaffected.
  Location loc{Clause::kSelect, 2, 1};
  EXPECT_EQ(loc.ToString(), "subquery(1).select[2]");
  EXPECT_EQ((Location{Clause::kWhere, 0, 0}).ToString(), "where[0]");
}

TEST(Analyzer, AliasesResolveBeforeDiagnostics) {
  // T1.citty must be reported against the real table name.
  std::vector<Diagnostic> diags = Lint(
      "Visualize BAR SELECT T1.citty , COUNT(T1.citty) FROM employees AS T1 "
      "GROUP BY T1.citty");
  const Diagnostic* d = Find(diags, Code::kUnknownColumn);
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("employees"), std::string::npos) << d->message;
}

// --- Real-literal round-trip (fix-it/normalizer agreement) ------------------

TEST(LiteralRoundTrip, RealsPrintLexableAndExact) {
  // The DVQ lexer has no exponent notation: "%g"-style "1e+06" used to
  // break the parse→print→parse fixpoint, and "1.23457e+07" dropped
  // precision. The printer must emit the shortest plain-decimal form
  // that round-trips exactly.
  EXPECT_EQ(dvq::Literal::Real(1e6).ToString(), "1000000");
  EXPECT_EQ(dvq::Literal::Real(0.5).ToString(), "0.5");
  EXPECT_EQ(dvq::Literal::Real(12345678.5).ToString(), "12345678.5");
  for (double v : {1e6, 0.5, 12345678.5, 5e-7, 1.0 / 3.0, -42.125}) {
    std::string text =
        "Visualize BAR SELECT city , COUNT(city) FROM employees WHERE "
        "salary > " +
        dvq::Literal::Real(v).ToString() + " GROUP BY city";
    Result<dvq::DVQ> parsed = dvq::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    // Fixpoint: printing and reparsing changes nothing, so fix-it
    // output and dvq::NormalizeForComparison agree on canonical form.
    EXPECT_EQ(parsed.value().ToString(), text);
    dvq::DVQ normalized = dvq::NormalizeForComparison(parsed.value());
    Result<dvq::DVQ> reparsed = dvq::Parse(normalized.ToString());
    ASSERT_TRUE(reparsed.ok()) << normalized.ToString();
    EXPECT_EQ(dvq::NormalizeForComparison(reparsed.value()).ToString(),
              normalized.ToString());
    // Exact value preservation (an integral real like 1e6 legitimately
    // reparses as an int literal; Literal::Equals compares numerically).
    const dvq::Literal& lit =
        *parsed.value().query.where->predicates[0].literal;
    EXPECT_TRUE(lit.Equals(dvq::Literal::Real(v)))
        << lit.ToString() << " != " << v;
  }
}

TEST(Analyzer, EveryCodeIsExercisedSomewhere) {
  // Meta-test backing the acceptance criterion "every diagnostic code
  // exercised": one DVQ per code, all against the same schema.
  const std::vector<std::pair<Code, std::string>> cases = {
      {Code::kUnknownTable,
       "Visualize BAR SELECT city , COUNT(city) FROM employes GROUP BY city"},
      {Code::kUnknownColumn,
       "Visualize BAR SELECT citty , COUNT(citty) FROM employees "
       "GROUP BY citty"},
      {Code::kAggTypeMismatch,
       "Visualize BAR SELECT city , SUM(name) FROM employees GROUP BY city"},
      {Code::kAggStarMisuse,
       "Visualize BAR SELECT city , SUM(*) FROM employees GROUP BY city"},
      {Code::kGroupByInconsistency,
       "Visualize BAR SELECT city , name , COUNT(id) FROM employees "
       "GROUP BY city"},
      {Code::kBinNonTemporal,
       "Visualize BAR SELECT city , COUNT(city) FROM employees "
       "BIN city BY YEAR"},
      {Code::kChartAxisMismatch,
       "Visualize LINE SELECT city , COUNT(city) FROM employees"},
      {Code::kJoinNotForeignKey,
       "Visualize BAR SELECT department_name , COUNT(id) FROM employees "
       "JOIN departments ON employees.id = departments.department_id "
       "GROUP BY department_name"},
      {Code::kJoinTypeMismatch,
       "Visualize BAR SELECT department_name , COUNT(id) FROM employees "
       "JOIN departments ON employees.name = departments.department_id "
       "GROUP BY department_name"},
      {Code::kAlwaysFalsePredicate,
       "Visualize BAR SELECT city , COUNT(city) FROM employees "
       "WHERE age > 100 AND age < 10 GROUP BY city"},
      {Code::kComparisonTypeMismatch,
       "Visualize BAR SELECT city , COUNT(city) FROM employees "
       "WHERE age = \"abc\" GROUP BY city"},
      {Code::kOrderByNotProjected,
       "Visualize BAR SELECT city , SUM(salary) FROM employees "
       "GROUP BY city ORDER BY age DESC"},
      {Code::kDuplicateSelectItem,
       "Visualize BAR SELECT city , city FROM employees"},
  };
  ASSERT_EQ(cases.size(), kNumCodes);
  for (const auto& [code, text] : cases) {
    EXPECT_TRUE(Fires(Lint(text), code))
        << CodeName(code) << " not fired by: " << text;
  }
}

}  // namespace
}  // namespace gred::analysis
