// Metamorphic fuzz harness for the DVQ pipeline.
//
// The corpus is seeded from the benchmark generator and the schema
// perturbation engine (deterministically, via gred::Rng only — no wall
// clock, no std::random_device), and every example is pushed through a
// set of metamorphic invariants:
//
//   1. Parse→print→parse fixpoint: ToString() of a parsed DVQ reparses
//      to the same text.
//   2. Guarded-with-unlimited-budget execution is bit-identical to
//      unguarded execution (same status code, columns and cells).
//   3. Executor results are invariant under column reorder inside every
//      table (binding is by name, never by position).
//   4. Executor results are invariant under schema synonym renames when
//      the DVQ is rewritten with the recorded rename map (same cells;
//      column labels follow the renames).
//   5. Lint-clean DVQs stay lint-clean (analysis::DvqAnalyzer) under
//      column reorder and under synonym renames with the rewritten DVQ:
//      the analyzer reasons about names and types, neither of which
//      those transformations may change observably.
//   6. Static repair commutes with synonym renames: damaging a
//      lint-clean DVQ structurally (GROUP BY retargeted to an unrelated
//      column), repairing it, then renaming yields the same DVQ as
//      renaming first and repairing against the renamed schema. The
//      repairer's decisions are name-driven only through the schema, so
//      a consistent rename on both sides must not change them.
//
// Each violation is recorded as a deterministic fingerprint string; the
// suite asserts no violations AND that two independent harness runs
// produce identical fingerprint lists (corpus determinism).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/repairer.h"
#include "dataset/benchmark.h"
#include "dataset/perturb.h"
#include "dvq/parser.h"
#include "exec/executor.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred {
namespace {

using dataset::BenchmarkSuite;
using dataset::Example;
using dataset::GeneratedDatabase;
using storage::DatabaseData;

/// One shared small suite: building it is the expensive part of the
/// harness, and the invariants only read from it.
const BenchmarkSuite& Corpus() {
  static const BenchmarkSuite* const kSuite = [] {
    dataset::BenchmarkOptions options;
    options.num_databases = 10;
    options.train_size = 120;
    options.test_size = 120;
    return new BenchmarkSuite(dataset::BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

const GeneratedDatabase* FindDb(const std::vector<GeneratedDatabase>& dbs,
                                const std::string& name) {
  for (const GeneratedDatabase& db : dbs) {
    if (db.data.name() == name) return &db;
  }
  return nullptr;
}

/// Renders a result set into comparable lines (same cell encoding as
/// eval::ExecutionMatch). Status failures render as "!<code>" so a
/// divergent error code is a visible mismatch, not a silent pass.
std::vector<std::string> Fingerprint(const Result<exec::ResultSet>& rs) {
  if (!rs.ok()) {
    return {std::string("!") + StatusCodeToString(rs.status().code())};
  }
  std::vector<std::string> rows;
  rows.reserve(rs.value().num_rows());
  for (const auto& row : rs.value().rows) {
    std::string line;
    for (const storage::Value& cell : row) {
      line += cell.ToString();
      line += '\x1f';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

/// Deep copy of `db` with the columns of every table shuffled into a new
/// order (rows preserved). Deterministic given the Rng.
DatabaseData ReorderColumns(const DatabaseData& db, Rng* rng) {
  schema::Database reordered_schema(db.name());
  std::vector<std::vector<std::size_t>> perms;
  for (const storage::DataTable& table : db.tables()) {
    std::vector<std::size_t> perm(table.num_columns());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    rng->Shuffle(&perm);
    schema::TableDef def(table.name(), {});
    for (std::size_t col : perm) def.AddColumn(table.def().columns()[col]);
    reordered_schema.AddTable(std::move(def));
    perms.push_back(std::move(perm));
  }
  for (const schema::ForeignKey& fk : db.db_schema().foreign_keys()) {
    reordered_schema.AddForeignKey(fk);
  }
  DatabaseData reordered(std::move(reordered_schema));
  for (std::size_t t = 0; t < db.tables().size(); ++t) {
    const storage::DataTable& src = db.tables()[t];
    storage::DataTable* dst = reordered.mutable_tables().data() + t;
    for (std::size_t r = 0; r < src.num_rows(); ++r) {
      std::vector<storage::Value> row;
      row.reserve(src.num_columns());
      for (std::size_t col : perms[t]) row.push_back(src.at(r, col));
      Status appended = dst->AppendRow(std::move(row));
      EXPECT_TRUE(appended.ok()) << appended.ToString();
    }
  }
  return reordered;
}

/// Structural damage for invariant 6: retarget the (single-column)
/// GROUP BY at some other column of the FROM table, leaving the bare
/// select column ungrouped (error-level DVQ005). Returns nullopt when
/// the query has no such corruption point.
std::optional<dvq::DVQ> RetargetGroupBy(const dvq::DVQ& input,
                                        const schema::Database& schema) {
  const dvq::Query& q = input.query;
  if (q.group_by.size() != 1 || !q.joins.empty()) return std::nullopt;
  const schema::TableDef* table = schema.FindTable(q.from_table);
  if (table == nullptr) return std::nullopt;
  for (const schema::Column& c : table->columns()) {
    bool selected = std::any_of(
        q.select.begin(), q.select.end(), [&c](const dvq::SelectExpr& e) {
          return strings::EqualsIgnoreCase(e.col.column, c.name);
        });
    if (selected) continue;
    dvq::DVQ broken = input;
    broken.query.group_by[0].table.clear();
    broken.query.group_by[0].column = c.name;
    return broken;
  }
  return std::nullopt;
}

/// Runs every invariant over the corpus and returns the violation
/// fingerprints, in corpus order. `seed` drives all random choices.
std::vector<std::string> RunHarness(std::uint64_t seed) {
  const BenchmarkSuite& suite = Corpus();
  Rng rng(seed);
  std::vector<std::string> violations;
  std::size_t repairs_exercised = 0;

  // Invariant 1: parse→print→parse fixpoint, over both the clean and
  // the schema-perturbed DVQ corpora (the perturbed texts exercise the
  // renamed identifier styles: camel case, abbreviations, ...).
  auto check_fixpoint = [&](const std::vector<Example>& examples,
                            const char* tag) {
    for (const Example& example : examples) {
      const std::string text = example.DvqText();
      Result<dvq::DVQ> parsed = dvq::Parse(text);
      if (!parsed.ok()) {
        violations.push_back(std::string("fixpoint-parse:") + tag + ":" +
                             example.id + ":" + text);
        continue;
      }
      const std::string printed = parsed.value().ToString();
      Result<dvq::DVQ> reparsed = dvq::Parse(printed);
      if (!reparsed.ok() || reparsed.value().ToString() != printed) {
        violations.push_back(std::string("fixpoint:") + tag + ":" +
                             example.id + ":" + text);
      }
    }
  };
  check_fixpoint(suite.test_clean, "clean");
  check_fixpoint(suite.test_schema, "schema");

  for (const Example& example : suite.test_clean) {
    const GeneratedDatabase* clean = FindDb(suite.databases, example.db_name);
    if (clean == nullptr) {
      violations.push_back("missing-db:" + example.db_name);
      continue;
    }
    std::vector<std::string> baseline =
        Fingerprint(exec::Execute(example.dvq, clean->data));

    // Invariant 2: a guard with no limits must not change anything.
    ExecContext unlimited;
    exec::ExecOptions guarded;
    guarded.context = &unlimited;
    if (Fingerprint(exec::Execute(example.dvq, clean->data, guarded)) !=
        baseline) {
      violations.push_back("guard-identity:" + example.id);
    }

    // Invariant 3: column order inside a table is not load-bearing.
    DatabaseData reordered = ReorderColumns(clean->data, &rng);
    if (Fingerprint(exec::Execute(example.dvq, reordered)) != baseline) {
      violations.push_back("column-reorder:" + example.id);
    }

    // Invariant 4: renaming schema identifiers and rewriting the DVQ
    // with the recorded map yields the same cells from the perturbed
    // database copy.
    const GeneratedDatabase* rob = FindDb(suite.databases_rob,
                                          example.db_name);
    auto renames = suite.renames.find(example.db_name);
    if (rob == nullptr || renames == suite.renames.end()) {
      violations.push_back("missing-rob-db:" + example.db_name);
      continue;
    }
    dvq::DVQ rewritten =
        dataset::RewriteDvq(example.dvq, *clean, renames->second);
    if (Fingerprint(exec::Execute(rewritten, rob->data)) != baseline) {
      violations.push_back("synonym-rename:" + example.id);
    }

    // Invariant 5: lint-clean DVQs stay lint-clean. Column reorder
    // changes no name or type, so the original DVQ must stay clean
    // against the reordered schema; a synonym rename changes names
    // consistently on both sides, so the rewritten DVQ must stay clean
    // against the renamed schema.
    analysis::DvqAnalyzer clean_analyzer(&clean->data.db_schema());
    if (clean_analyzer.Analyze(example.dvq).empty()) {
      analysis::DvqAnalyzer reordered_analyzer(&reordered.db_schema());
      if (!reordered_analyzer.Analyze(example.dvq).empty()) {
        violations.push_back("lint-column-reorder:" + example.id);
      }
      analysis::DvqAnalyzer rob_analyzer(&rob->data.db_schema());
      if (!rob_analyzer.Analyze(rewritten).empty()) {
        violations.push_back("lint-synonym-rename:" + example.id);
      }

      // Invariant 6: repair commutes with synonym renames. Damage the
      // clean DVQ structurally, then compare repair→rename against
      // rename→repair (the renamed damage is the rename of the damage:
      // RewriteDvq maps every identifier the corruption touches).
      std::optional<dvq::DVQ> broken =
          RetargetGroupBy(example.dvq, clean->data.db_schema());
      if (broken.has_value()) {
        analysis::DvqRepairer clean_repairer(&clean->data.db_schema());
        analysis::DvqRepairer rob_repairer(&rob->data.db_schema());
        analysis::RepairResult on_clean = clean_repairer.Repair(*broken);
        analysis::RepairResult on_renamed = rob_repairer.Repair(
            dataset::RewriteDvq(*broken, *clean, renames->second));
        if (on_clean.success != on_renamed.success) {
          violations.push_back("repair-rename-outcome:" + example.id);
        } else if (on_clean.success) {
          if (on_clean.changed) ++repairs_exercised;
          const std::string renamed_repair =
              dataset::RewriteDvq(on_clean.dvq, *clean, renames->second)
                  .ToString();
          if (renamed_repair != on_renamed.dvq.ToString()) {
            violations.push_back("repair-rename-commute:" + example.id);
          }
        }
      }
    }
  }
  // Vacuity guard: the corpus must actually feed invariant 6 some
  // repairable damage, or the commutation check proves nothing.
  if (repairs_exercised == 0) {
    violations.push_back("repair-rename-not-exercised");
  }
  return violations;
}

TEST(Metamorphic, CorpusIsNonTrivial) {
  const BenchmarkSuite& suite = Corpus();
  ASSERT_GE(suite.test_clean.size(), 100u);
  ASSERT_EQ(suite.test_clean.size(), suite.test_schema.size());
  // The perturbation engine must actually have renamed something, or
  // invariant 4 degenerates into invariant 2.
  std::size_t renamed = 0;
  for (const auto& [db_name, renames] : suite.renames) {
    renamed += renames.tables.size() + renames.columns.size();
  }
  ASSERT_GT(renamed, 0u);
}

TEST(Metamorphic, AllInvariantsHold) {
  std::vector<std::string> violations = RunHarness(/*seed=*/0x5eedu);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();
}

TEST(Metamorphic, HarnessIsDeterministicAcrossRuns) {
  // Same seed → bit-identical violation list (empty or not): the corpus
  // and every random choice come from gred::Rng alone.
  EXPECT_EQ(RunHarness(/*seed=*/0x5eedu), RunHarness(/*seed=*/0x5eedu));
  EXPECT_EQ(RunHarness(/*seed=*/7u), RunHarness(/*seed=*/7u));
}

}  // namespace
}  // namespace gred
