// Unit and invariant tests for the NL layer: tokenizer, stemmer and the
// concept lexicon.

#include <gtest/gtest.h>

#include <map>

#include "nl/lexicon.h"
#include "nl/text.h"

namespace gred::nl {
namespace {

TEST(Tokenize, LowercasesAndSplitsPunctuation) {
  EXPECT_EQ(Tokenize("Show me the Hire_Date, please!"),
            (std::vector<std::string>{"show", "me", "the", "hire", "date",
                                      "please"}));
}

TEST(Tokenize, KeepsNumbersAndDropsApostrophes) {
  EXPECT_EQ(Tokenize("what's the top 10?"),
            (std::vector<std::string>{"whats", "the", "top", "10"}));
}

TEST(Tokenize, EmptyInput) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("?!,.").empty());
}

TEST(Stem, PluralForms) {
  EXPECT_EQ(Stem("salaries"), Stem("salary"));
  EXPECT_EQ(Stem("departments"), Stem("department"));
  EXPECT_EQ(Stem("matches"), Stem("match"));
}

TEST(Stem, VerbSuffixes) {
  EXPECT_EQ(Stem("sorting"), Stem("sort"));
  EXPECT_EQ(Stem("sorted"), Stem("sort"));
  EXPECT_EQ(Stem("grouping"), Stem("group"));
}

TEST(Stem, NeverShortensBelowThree) {
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("as"), "as");
}

TEST(Stopwords, CommonFunctionWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("show"));
  EXPECT_FALSE(IsStopword("salary"));
  EXPECT_FALSE(IsStopword("whose"));
}

TEST(ContentTokens, DropsStopwords) {
  std::vector<std::string> tokens =
      ContentTokens("Show me the salary of each employee");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"salary", "employee"}));
}

TEST(Lexicon, DefaultKnowsDomainSynonyms) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_TRUE(lex.SameConcept("salary", "wage"));
  EXPECT_TRUE(lex.SameConcept("department", "division"));
  EXPECT_TRUE(lex.SameConcept("film", "movie"));
  EXPECT_FALSE(lex.SameConcept("salary", "department"));
  EXPECT_FALSE(lex.SameConcept("zzz", "salary"));
}

TEST(Lexicon, StemmedLookup) {
  const Lexicon& lex = Lexicon::Default();
  // "wages" stems to "wage" which belongs to the salary concept.
  EXPECT_EQ(lex.ConceptIdOf("wages"), "salary");
  EXPECT_EQ(lex.ConceptIdOf("unknownword"), "");
}

TEST(Lexicon, WordSimilarityTiers) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_DOUBLE_EQ(lex.WordSimilarity("salary", "salaries"), 1.0);
  EXPECT_DOUBLE_EQ(lex.WordSimilarity("salary", "wage"), 0.85);
  EXPECT_DOUBLE_EQ(lex.WordSimilarity("salary", "pet"), 0.0);
}

TEST(Lexicon, AlternateFormsExcludeSameStem) {
  const Lexicon& lex = Lexicon::Default();
  std::vector<std::string> alts = lex.AlternateForms("salary");
  EXPECT_FALSE(alts.empty());
  for (const std::string& alt : alts) {
    EXPECT_NE(Stem(alt), Stem("salary"));
    EXPECT_TRUE(lex.SameConcept(alt, "salary"));
  }
  EXPECT_TRUE(lex.AlternateForms("qqq").empty());
}

TEST(Lexicon, AddConceptIgnoresDuplicateForms) {
  Lexicon lex;
  lex.AddConcept("a", {"alpha", "first"});
  lex.AddConcept("b", {"alpha", "beta"});  // "alpha" already taken
  EXPECT_EQ(lex.ConceptIdOf("alpha"), "a");
  EXPECT_EQ(lex.ConceptIdOf("beta"), "b");
}

// Invariant: every surface form in the default lexicon maps to exactly
// one concept, and the canonical form (forms[0]) maps back to its own
// concept.
TEST(Lexicon, DefaultBankInvariants) {
  const Lexicon& lex = Lexicon::Default();
  EXPECT_GT(lex.size(), 100u);
  std::map<std::string, std::string> stem_owner;
  for (const Lexicon::Concept& entry : lex.concepts()) {
    ASSERT_FALSE(entry.forms.empty());
    EXPECT_EQ(lex.ConceptIdOf(entry.forms[0]), entry.id)
        << "canonical form of " << entry.id;
    for (const std::string& form : entry.forms) {
      std::string stem = Stem(form);
      auto [it, inserted] = stem_owner.emplace(stem, entry.id);
      EXPECT_TRUE(inserted) << "stem '" << stem << "' owned by both '"
                            << it->second << "' and '" << entry.id << "'";
      EXPECT_EQ(lex.ConceptIdOf(form), entry.id);
    }
  }
}

// Invariant: word similarity is symmetric over the lexicon vocabulary.
TEST(Lexicon, WordSimilaritySymmetry) {
  const Lexicon& lex = Lexicon::Default();
  const std::vector<std::string> words = {"salary", "wage", "pay",
                                          "department", "film", "movie",
                                          "city", "unknown"};
  for (const std::string& a : words) {
    for (const std::string& b : words) {
      EXPECT_DOUBLE_EQ(lex.WordSimilarity(a, b), lex.WordSimilarity(b, a));
    }
  }
}

}  // namespace
}  // namespace gred::nl
