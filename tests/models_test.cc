// Unit tests for the baseline-model infrastructure: lexical linking,
// keyword detection, revision heads, retrieval and the three baselines.

#include <gtest/gtest.h>

#include "dataset/benchmark.h"
#include "dvq/components.h"
#include "dvq/parser.h"
#include "models/keywords.h"
#include "models/linking.h"
#include "models/retrieval.h"
#include "models/revision.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "nl/text.h"

namespace gred::models {
namespace {

schema::Database MakeSchema() {
  schema::Database db("hr");
  schema::TableDef employees("employees", {});
  employees.AddColumn({"employee_id", schema::ColumnType::kInt, true});
  employees.AddColumn({"first_name", schema::ColumnType::kText, false});
  employees.AddColumn({"salary", schema::ColumnType::kInt, false});
  employees.AddColumn({"hire_date", schema::ColumnType::kDate, false});
  employees.AddColumn({"department_id", schema::ColumnType::kInt, false});
  db.AddTable(std::move(employees));
  schema::TableDef departments("departments", {});
  departments.AddColumn({"department_id", schema::ColumnType::kInt, true});
  departments.AddColumn({"department_name", schema::ColumnType::kText,
                         false});
  db.AddTable(std::move(departments));
  schema::ForeignKey fk;
  fk.from_table = "employees";
  fk.from_column = "department_id";
  fk.to_table = "departments";
  fk.to_column = "department_id";
  db.AddForeignKey(std::move(fk));
  return db;
}

dvq::DVQ D(const std::string& text) {
  Result<dvq::DVQ> q = dvq::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value_or(dvq::DVQ{});
}

TEST(MentionScore, VerbatimAndWindowed) {
  std::vector<std::string> tokens =
      nl::Tokenize("show the hire_date of employees");
  EXPECT_DOUBLE_EQ(MentionScore(tokens, "hire_date"), 1.0);
  EXPECT_LT(MentionScore(tokens, "birth_date"), 1.0);
  EXPECT_GT(MentionScore(tokens, "birth_date"), 0.0);  // shares "date"
  EXPECT_DOUBLE_EQ(MentionScore(tokens, "zzz"), 0.0);
}

TEST(MentionScore, StemmedWindow) {
  std::vector<std::string> tokens = nl::Tokenize("count of departments");
  EXPECT_GE(MentionScore(tokens, "department"), 0.95);
}

TEST(LexicalLink, ExactAndOverlap) {
  schema::Database db = MakeSchema();
  auto exact = LexicalLinkColumn("SALARY", db, 0.9);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->column, "salary");
  auto reorder = LexicalLinkColumn("name_of_department", db, 0.6);
  ASSERT_TRUE(reorder.has_value());
  EXPECT_EQ(reorder->column, "department_name");
  EXPECT_FALSE(LexicalLinkColumn("wage", db, 0.6).has_value());
}

TEST(LexicalLink, Table) {
  schema::Database db = MakeSchema();
  EXPECT_EQ(LexicalLinkTable("employee", db, 0.5).value_or(""), "employees");
  EXPECT_FALSE(LexicalLinkTable("airlines", db, 0.5).has_value());
}

TEST(SurfaceValues, NumbersInOrder) {
  SurfaceValues values =
      ExtractSurfaceValues("where salary > 1500.5 show top 3");
  ASSERT_EQ(values.numbers.size(), 2u);
  EXPECT_EQ(values.numbers[0].kind, dvq::Literal::Kind::kReal);
  EXPECT_DOUBLE_EQ(values.numbers[0].real_value, 1500.5);
  EXPECT_EQ(values.numbers[1].int_value, 3);
}

TEST(SurfaceValues, ProperWordsSkipSentenceStart) {
  SurfaceValues values =
      ExtractSurfaceValues("Show the city whose name is Springfield.");
  ASSERT_EQ(values.proper_words.size(), 1u);
  EXPECT_EQ(values.proper_words[0], "Springfield");
}

TEST(AdaptLiterals, RewritesFilterAndLimit) {
  dvq::DVQ q = D(
      "Visualize BAR SELECT a , b FROM t WHERE x > 100 AND n = \"Old\" "
      "LIMIT 9");
  SurfaceValues values =
      ExtractSurfaceValues("rows where x is above 250, named Fresh, top 4");
  AdaptLiterals(&q.query, values);
  EXPECT_EQ(q.query.where->predicates[0].literal->int_value, 250);
  EXPECT_EQ(q.query.where->predicates[1].literal->string_value, "Fresh");
  EXPECT_EQ(q.query.limit, 4);
}

TEST(AdaptLiterals, PreservesLikeWrapping) {
  dvq::DVQ q = D(
      "Visualize BAR SELECT a , b FROM t WHERE n LIKE \"%old%\"");
  SurfaceValues values;
  values.proper_words = {"New"};
  AdaptLiterals(&q.query, values);
  EXPECT_EQ(q.query.where->predicates[0].literal->string_value, "%New%");
}

TEST(RepairJoinKeys, UsesDeclaredForeignKey) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT department_name , COUNT(department_name) FROM "
      "employees JOIN departments ON employees.wrong = departments.also_wrong "
      "GROUP BY department_name");
  RepairJoinKeys(&q.query, db);
  EXPECT_EQ(q.query.joins[0].left.column, "department_id");
  EXPECT_EQ(q.query.joins[0].right.table, "departments");
}

TEST(SynthesizeJoins, AddsFkHop) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT department_name , COUNT(department_name) FROM "
      "employees GROUP BY department_name");
  SynthesizeJoins(&q.query, db);
  ASSERT_EQ(q.query.joins.size(), 1u);
  EXPECT_EQ(q.query.joins[0].table, "departments");
  // Idempotent: a second pass adds nothing.
  SynthesizeJoins(&q.query, db);
  EXPECT_EQ(q.query.joins.size(), 1u);
}

TEST(SynthesizeJoins, NoEdgeNoJoin) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D("Visualize BAR SELECT nothing , salary FROM employees");
  SynthesizeJoins(&q.query, db);
  EXPECT_TRUE(q.query.joins.empty());
}

TEST(Relink, OnlyMissingLeavesResolvedRefsAlone) {
  schema::Database db = MakeSchema();
  // Case differences resolve (lookup is case-insensitive), so the ref is
  // untouched; the missing "employee_salary" is repaired via word
  // overlap + mention evidence.
  dvq::DVQ q = D(
      "Visualize BAR SELECT FIRST_NAME , employee_salary FROM employees");
  RelinkOptions options;
  options.only_missing = true;
  RelinkSchemaLexically(&q.query, db,
                        nl::Tokenize("first_name by salary"), options);
  EXPECT_EQ(q.query.select[0].col.column, "FIRST_NAME");
  EXPECT_EQ(q.query.select[1].col.column, "salary");
}

TEST(Relink, KeepsHallucinationBelowThreshold) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D("Visualize BAR SELECT wage , first_name FROM employees");
  RelinkOptions options;
  options.only_missing = true;
  options.column_threshold = 0.7;
  RelinkSchemaLexically(&q.query, db, nl::Tokenize("wage by first name"),
                        options);
  // "wage" has no lexical relation to "salary": the baseline keeps the
  // hallucinated name (the paper's diagnosis).
  EXPECT_EQ(q.query.select[0].col.column, "wage");
}

TEST(Keywords, ChartDetection) {
  using dvq::ChartType;
  constexpr auto kCorpus = DetectorProfile::kCorpusTrained;
  EXPECT_EQ(DetectChart("draw a histogram of x", kCorpus), ChartType::kBar);
  EXPECT_EQ(DetectChart("a stacked bar chart", kCorpus),
            ChartType::kStackedBar);
  EXPECT_EQ(DetectChart("show a pie graph", kCorpus), ChartType::kPie);
  EXPECT_EQ(DetectChart("scatter plot please", kCorpus),
            ChartType::kScatter);
  EXPECT_FALSE(DetectChart("just a table", kCorpus).has_value());
  // "trend" is general-register vocabulary only.
  EXPECT_FALSE(DetectChart("a trend view", kCorpus).has_value());
  EXPECT_EQ(DetectChart("a trend view", DetectorProfile::kGeneral),
            ChartType::kLine);
}

TEST(Keywords, OrderDetectionRegisters) {
  constexpr auto kCorpus = DetectorProfile::kCorpusTrained;
  constexpr auto kGeneral = DetectorProfile::kGeneral;
  auto corpus = DetectOrder("sort the Y-axis in descending order", kCorpus);
  ASSERT_TRUE(corpus.has_value());
  EXPECT_TRUE(corpus->descending);
  EXPECT_EQ(corpus->axis, 1);
  EXPECT_FALSE(
      DetectOrder("arranged from largest to smallest", kCorpus).has_value());
  auto general = DetectOrder("arranged from largest to smallest", kGeneral);
  ASSERT_TRUE(general.has_value());
  EXPECT_TRUE(general->descending);
}

TEST(Keywords, AggDetectionPositional) {
  constexpr auto kCorpus = DetectorProfile::kCorpusTrained;
  EXPECT_EQ(DetectAgg("the sum of price by name", kCorpus),
            dvq::AggFunc::kSum);
  EXPECT_EQ(DetectAgg("how many employees", kCorpus), dvq::AggFunc::kCount);
  EXPECT_FALSE(DetectAgg("the combined price", kCorpus).has_value());
  EXPECT_EQ(DetectAgg("the combined price", DetectorProfile::kGeneral),
            dvq::AggFunc::kSum);
  auto hit = FindAggPhrase("show the average of salary", kCorpus);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->func, dvq::AggFunc::kAvg);
  // The earliest-ending phrase wins ("the average" before "average of").
  EXPECT_EQ(hit->end_pos, std::string("show the average").size());
}

TEST(Keywords, BinAndGroupAndLimit) {
  constexpr auto kCorpus = DetectorProfile::kCorpusTrained;
  EXPECT_EQ(DetectBinUnit("bin hire_date by month", kCorpus),
            dvq::BinUnit::kMonth);
  EXPECT_FALSE(DetectBinUnit("on a monthly basis", kCorpus).has_value());
  EXPECT_EQ(DetectBinUnit("on a monthly basis", DetectorProfile::kGeneral),
            dvq::BinUnit::kMonth);
  EXPECT_TRUE(DetectGroup("group by city", kCorpus));
  EXPECT_FALSE(DetectGroup("broken down by city", kCorpus));
  EXPECT_TRUE(DetectGroup("broken down by city",
                          DetectorProfile::kGeneral));
  EXPECT_EQ(DetectLimit("show only the top 7 rows"), 7);
  EXPECT_FALSE(DetectLimit("show everything").has_value());
}

TEST(Revision, AggHeadSetsFunctionAndTarget) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT first_name , COUNT(first_name) FROM employees "
      "GROUP BY first_name");
  ApplyCorpusIntent(&q, "Show the sum of salary by first_name for each "
                        "first_name in a bar chart",
                    db);
  EXPECT_EQ(q.query.select[1].agg, dvq::AggFunc::kSum);
  EXPECT_EQ(q.query.select[1].col.column, "salary");
  EXPECT_EQ(q.query.group_by.size(), 1u);
}

TEST(Revision, StripsAggWithoutEvidence) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT first_name , MIN(salary) FROM employees GROUP "
      "BY first_name");
  ApplyCorpusIntent(&q, "Show first_name and salary in a bar chart", db);
  EXPECT_EQ(q.query.select[1].agg, dvq::AggFunc::kNone);
  EXPECT_TRUE(q.query.group_by.empty());
}

TEST(Revision, ArityNormalizationForPlainCharts) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT first_name , salary , hire_date FROM "
      "employees");
  ApplyCorpusIntent(&q, "bar chart of first_name and salary", db);
  EXPECT_EQ(q.query.select.size(), 2u);
}

TEST(Revision, PruneGateKeepsClausesWhenDisabled) {
  schema::Database db = MakeSchema();
  dvq::DVQ q = D(
      "Visualize BAR SELECT first_name , salary FROM employees WHERE "
      "salary > 10 ORDER BY salary DESC");
  CorpusIntentOptions options;
  options.prune_unevidenced = false;
  ApplyCorpusIntent(&q, "an unrelated paraphrase", db, options);
  EXPECT_TRUE(q.query.where.has_value());
  EXPECT_TRUE(q.query.order_by.has_value());
  CorpusIntentOptions pruning;
  pruning.prune_unevidenced = true;
  ApplyCorpusIntent(&q, "an unrelated paraphrase", db, pruning);
  EXPECT_FALSE(q.query.where.has_value());
  EXPECT_FALSE(q.query.order_by.has_value());
}

TEST(Revision, LiteralAfterPhraseKinds) {
  EXPECT_EQ(LiteralAfterPhrase("is 42 end", 2)->int_value, 42);
  EXPECT_DOUBLE_EQ(LiteralAfterPhrase("is 4.5 end", 2)->real_value, 4.5);
  EXPECT_EQ(LiteralAfterPhrase("is Finance end", 2)->string_value,
            "Finance");
  EXPECT_EQ(LiteralAfterPhrase("is Harbor Point for each", 2)->string_value,
            "Harbor Point");
  EXPECT_EQ(LiteralAfterPhrase("is clarinet.", 2)->string_value,
            "clarinet");
  EXPECT_EQ(LiteralAfterPhrase("is 2020-03-05 x", 2)->string_value,
            "2020-03-05");
  EXPECT_FALSE(LiteralAfterPhrase("is ", 2).has_value());
}

TEST(Revision, TryBuildCorpusFilter) {
  schema::Database db = MakeSchema();
  auto pred = TryBuildCorpusFilter(
      "bar chart of employees whose salary is greater than 5000", db);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->col.column, "salary");
  EXPECT_EQ(pred->op, dvq::CompareOp::kGt);
  EXPECT_EQ(pred->literal->int_value, 5000);
}

TEST(Revision, TryBuildCorpusFilterMultiWordColumnAndLike) {
  schema::Database db = MakeSchema();
  auto pred = TryBuildCorpusFilter(
      "employees whose first name contains Ann for each salary", db);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->col.column, "first_name");
  EXPECT_EQ(pred->op, dvq::CompareOp::kLike);
  EXPECT_EQ(pred->literal->string_value, "%Ann%");
}

TEST(Revision, TryBuildCorpusFilterNeedsAllIngredients) {
  schema::Database db = MakeSchema();
  EXPECT_FALSE(TryBuildCorpusFilter("just show everything", db).has_value());
  EXPECT_FALSE(
      TryBuildCorpusFilter("whose nonexistent is more than 3", db)
          .has_value());
}

/// A tiny corpus the baselines can memorize.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::BenchmarkOptions options;
    options.train_size = 240;
    options.test_size = 40;
    suite_ = new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
    corpus_.train = &suite_->train;
    corpus_.databases = &suite_->databases;
  }
  static dataset::BenchmarkSuite* suite_;
  static TrainingCorpus corpus_;
};

dataset::BenchmarkSuite* BaselineFixture::suite_ = nullptr;
TrainingCorpus BaselineFixture::corpus_;

TEST_F(BaselineFixture, ExampleIndexRetrievesSelf) {
  embed::LexicalHashEmbedder embedder;
  ExampleIndex index(&suite_->train, &embedder);
  EXPECT_EQ(index.size(), suite_->train.size());
  const dataset::Example& probe = suite_->train[5];
  std::vector<ExampleIndex::Hit> hits = index.TopK(probe.nlq, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].example->id, probe.id);
  EXPECT_NEAR(hits[0].score, 1.0, 1e-6);
}

TEST_F(BaselineFixture, DvqIndexRetrievesSelf) {
  embed::SemanticHashEmbedder embedder;
  DvqIndex index(&suite_->train, &embedder);
  const dataset::Example& probe = suite_->train[7];
  std::vector<DvqIndex::Hit> hits = index.TopK(probe.DvqText(), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].example->DvqText(), probe.DvqText());
}

TEST_F(BaselineFixture, Seq2VisMemorizesTrainingPairs) {
  Seq2Vis model(corpus_);
  const dataset::Example& probe = suite_->train[3];
  const dataset::GeneratedDatabase* db = suite_->FindCleanDb(probe.db_name);
  Result<dvq::DVQ> out = model.Translate(probe.nlq, db->data);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(dvq::OverallMatch(out.value(), probe.dvq));
}

TEST_F(BaselineFixture, BaselinesProduceParseableOutput) {
  Seq2Vis seq2vis(corpus_);
  TransformerModel transformer(corpus_);
  RGVisNet rgvisnet(corpus_);
  for (std::size_t i = 0; i < 10; ++i) {
    const dataset::Example& ex = suite_->test_clean[i];
    const dataset::GeneratedDatabase* db = suite_->FindCleanDb(ex.db_name);
    for (const TextToVisModel* model :
         {static_cast<const TextToVisModel*>(&seq2vis),
          static_cast<const TextToVisModel*>(&transformer),
          static_cast<const TextToVisModel*>(&rgvisnet)}) {
      Result<dvq::DVQ> out = model->Translate(ex.nlq, db->data);
      ASSERT_TRUE(out.ok()) << model->name();
      EXPECT_FALSE(out.value().ToString().empty());
    }
  }
}

TEST_F(BaselineFixture, ModelNames) {
  EXPECT_EQ(Seq2Vis(corpus_).name(), "Seq2Vis");
  EXPECT_EQ(TransformerModel(corpus_).name(), "Transformer");
  EXPECT_EQ(RGVisNet(corpus_).name(), "RGVisNet");
}

}  // namespace
}  // namespace gred::models
