// Unit tests for the worker pool behind the parallel eval harness.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"
#include "util/timing.h"

namespace gred {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(ThreadPool, ResultsLandInTheRightFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SingleThreadRunsInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (std::future<void>& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> bad =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 42; }).get(), 42);
}

TEST(Timing, AtomicDurationAccumulatesAcrossThreads) {
  AtomicDuration total;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&total] { total.AddNanos(1000); }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  EXPECT_EQ(total.nanos(), 32'000);
  EXPECT_EQ(total.count(), 32u);
  total.Reset();
  EXPECT_EQ(total.nanos(), 0);
  EXPECT_EQ(total.count(), 0u);
}

TEST(Timing, ScopedTimerWithNullTargetIsANoOp) {
  ScopedTimer timer(nullptr);  // must not crash
}

}  // namespace
}  // namespace gred
