// Retrieval-at-scale acceptance tests: the library-growth generator and
// the IVF index at 10^5 entries.
//
// These are the slowest tests in the suite (a few seconds in Release) on
// purpose: the ISSUE-8 contract is about behaviour at scale — IVF
// multi-probe recall@10 >= 0.99 over a 10^5-entry generated library —
// and no small fixture can stand in for it. Everything is seeded, so a
// recall regression here is a real ranking change, not flakiness.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "dataset/entity_bank.h"
#include "dataset/library_growth.h"
#include "embed/ann_index.h"
#include "embed/embedder.h"
#include "embed/vector_store.h"
#include "nl/lexicon.h"

namespace gred::embed {
namespace {

constexpr std::size_t kLibrarySize = 100000;
constexpr std::size_t kDim = 128;

/// The grown library, embedded once and shared across tests in this
/// binary (building it twice would double the suite's slowest fixture).
class ScaleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset::DbGeneratorOptions db_options;
    databases_ = new std::vector<dataset::GeneratedDatabase>(
        dataset::GenerateDatabases(dataset::EntityBank::Default(),
                                   db_options));
    library_ = new std::vector<std::string>(dataset::GrowNlqLibrary(
        *databases_, nl::Lexicon::Default(), kLibrarySize));
    EmbedderOptions options;
    options.dimension = kDim;
    SemanticHashEmbedder embedder(&nl::Lexicon::Default(), options);
    vectors_ = new std::vector<Vector>();
    vectors_->reserve(library_->size());
    for (const std::string& nlq : *library_) {
      vectors_->push_back(embedder.Embed(nlq));
    }
  }

  static void TearDownTestSuite() {
    delete vectors_;
    vectors_ = nullptr;
    delete library_;
    library_ = nullptr;
    delete databases_;
    databases_ = nullptr;
  }

  static std::vector<dataset::GeneratedDatabase>* databases_;
  static std::vector<std::string>* library_;
  static std::vector<Vector>* vectors_;
};

std::vector<dataset::GeneratedDatabase>* ScaleFixture::databases_ = nullptr;
std::vector<std::string>* ScaleFixture::library_ = nullptr;
std::vector<Vector>* ScaleFixture::vectors_ = nullptr;

TEST_F(ScaleFixture, LibraryGrowthIsDeterministicAndWellFormed) {
  ASSERT_EQ(library_->size(), kLibrarySize);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_FALSE((*library_)[i].empty()) << "entry " << i;
  }
  // Same corpus + seed => same library (spot-check a prefix rebuild).
  std::vector<std::string> again = dataset::GrowNlqLibrary(
      *databases_, nl::Lexicon::Default(), 500);
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i], (*library_)[i]) << "entry " << i;
  }
  // The library is not degenerate repetition: plenty of distinct
  // questions in any window.
  std::set<std::string> distinct(library_->begin(), library_->begin() + 5000);
  EXPECT_GT(distinct.size(), 2500u);
}

TEST_F(ScaleFixture, IvfMultiProbeRecallAtTenAboveNinetyNinePercent) {
  IvfIndex::Options options;
  options.num_clusters = 0;  // auto ~sqrt(n)
  options.num_probes = 16;
  options.quantized_scan = true;  // the production (env-default) shape
  IvfIndex index(options);
  VectorStore exact;
  for (const Vector& v : *vectors_) {
    index.Add(v);
    exact.Add(v);
  }
  index.Build();
  ASSERT_EQ(index.built_size(), kLibrarySize);
  EXPECT_GE(index.num_clusters(), 256u);  // ~sqrt(1e5), clamped

  // Queries drawn from a disjoint generator seed: same distribution,
  // never the same strings as the library.
  dataset::LibraryGrowthOptions query_options;
  query_options.seed = 0xfeedbeef;
  std::vector<std::string> query_texts = dataset::GrowNlqLibrary(
      *databases_, nl::Lexicon::Default(), 50, query_options);
  EmbedderOptions embed_options;
  embed_options.dimension = kDim;
  SemanticHashEmbedder embedder(&nl::Lexicon::Default(), embed_options);

  const std::size_t k = 10;
  double recall_sum = 0.0;
  for (const std::string& nlq : query_texts) {
    Vector q = embedder.Embed(nlq);
    std::vector<Hit> truth = exact.TopK(q, k);
    std::vector<Hit> approx = index.TopK(q, k);
    std::size_t hits = 0;
    for (const Hit& t : truth) {
      for (const Hit& a : approx) {
        if (a.index == t.index) {
          ++hits;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(hits) /
                  static_cast<double>(truth.size());
  }
  const double recall = recall_sum / static_cast<double>(query_texts.size());
  RecordProperty("recall_at_10", std::to_string(recall));
  EXPECT_GE(recall, 0.99) << "IVF multi-probe recall@10 regressed at 10^5";
}

}  // namespace
}  // namespace gred::embed
