// Assorted edge-case coverage across modules: corners that the focused
// per-module suites do not reach.

#include <gtest/gtest.h>

#include "dvq/components.h"
#include "dvq/normalize.h"
#include "dvq/parser.h"
#include "dvq/sql.h"
#include "exec/executor.h"
#include "llm/prompt.h"
#include "models/keywords.h"
#include "models/linking.h"
#include "util/rng.h"
#include "util/strings.h"
#include "viz/chart.h"
#include "viz/echarts.h"

namespace gred {
namespace {

using storage::Value;

dvq::DVQ D(const std::string& text) {
  Result<dvq::DVQ> q = dvq::Parse(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return q.value_or(dvq::DVQ{});
}

// --- dvq ------------------------------------------------------------------

TEST(EdgeDvq, ThreeColumnSelectRoundTrip) {
  const std::string text =
      "Visualize STACKED BAR SELECT a , COUNT(a) , c FROM t GROUP BY c , a";
  EXPECT_EQ(D(text).ToString(), text);
}

TEST(EdgeDvq, NestedSubqueryPrintsAndReparses) {
  dvq::DVQ q = D(
      "Visualize BAR SELECT a , b FROM t WHERE fk = (SELECT id FROM p "
      "WHERE pk = (SELECT gid FROM g WHERE n = \"x\"))");
  Result<dvq::DVQ> again = dvq::Parse(q.ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(dvq::OverallMatch(q, again.value()));
}

TEST(EdgeDvq, CanonicalStableUnderAliasAndCaseChurn) {
  dvq::DVQ a = D(
      "Visualize BAR SELECT T1.X , T2.Y FROM Emp AS T1 JOIN Dept AS T2 ON "
      "T1.K = T2.K");
  dvq::DVQ b = D(
      "Visualize BAR SELECT emp.x , dept.y FROM emp JOIN dept ON emp.k = "
      "dept.k");
  EXPECT_TRUE(dvq::OverallMatch(a, b));
}

TEST(EdgeDvq, NegativeNumberLiterals) {
  dvq::DVQ q = D("Visualize BAR SELECT a , b FROM t WHERE x > -5");
  EXPECT_EQ(q.query.where->predicates[0].literal->int_value, -5);
}

TEST(EdgeDvq, EmptyConditionRejected) {
  EXPECT_FALSE(dvq::Parse("Visualize BAR SELECT a , b FROM t WHERE").ok());
  EXPECT_FALSE(
      dvq::Parse("Visualize BAR SELECT a , b FROM t GROUP BY").ok());
}

TEST(EdgeSql, MultiPredicateMixedConnectors) {
  EXPECT_EQ(dvq::ToSql(D("Visualize BAR SELECT a , b FROM t WHERE x = 1 "
                         "OR y = 2 AND z = 3")),
            "SELECT a, b FROM t WHERE x = 1 OR y = 2 AND z = 3");
}

// --- exec -------------------------------------------------------------

storage::DatabaseData TinyDb() {
  schema::Database db_schema("d");
  schema::TableDef t("t", {});
  t.AddColumn({"k", schema::ColumnType::kText, false});
  t.AddColumn({"v", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(t));
  storage::DatabaseData db(std::move(db_schema));
  storage::DataTable* table = db.FindTable("t");
  EXPECT_TRUE(table->AppendRow({Value::Text("a"), Value::Int(1)}).ok());
  EXPECT_TRUE(table->AppendRow({Value::Text("a"), Value::Int(2)}).ok());
  EXPECT_TRUE(table->AppendRow({Value::Text("b"), Value::Null()}).ok());
  return db;
}

TEST(EdgeExec, SumOverOnlyNullsIsNull) {
  storage::DatabaseData db = TinyDb();
  Result<exec::ResultSet> rs = exec::Execute(
      dvq::ParseQuery("SELECT k , SUM(v) FROM t WHERE k = \"b\" GROUP BY k")
          .value(),
      db);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_TRUE(rs.value().rows[0][1].is_null());
}

TEST(EdgeExec, CountIgnoresNullsCountStarDoesNot) {
  storage::DatabaseData db = TinyDb();
  Result<exec::ResultSet> named = exec::Execute(
      dvq::ParseQuery("SELECT k , COUNT(v) FROM t GROUP BY k").value(), db);
  Result<exec::ResultSet> star = exec::Execute(
      dvq::ParseQuery("SELECT k , COUNT(*) FROM t GROUP BY k").value(), db);
  ASSERT_TRUE(named.ok());
  ASSERT_TRUE(star.ok());
  // Group "b" has one row whose v is NULL.
  EXPECT_EQ(named.value().rows[1][1].int_value(), 0);
  EXPECT_EQ(star.value().rows[1][1].int_value(), 1);
}

TEST(EdgeExec, LimitZeroAndOversized) {
  storage::DatabaseData db = TinyDb();
  Result<exec::ResultSet> zero = exec::Execute(
      dvq::ParseQuery("SELECT k , v FROM t LIMIT 0").value(), db);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero.value().num_rows(), 0u);
  Result<exec::ResultSet> big = exec::Execute(
      dvq::ParseQuery("SELECT k , v FROM t LIMIT 999").value(), db);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value().num_rows(), 3u);
}

TEST(EdgeExec, StableSortPreservesInsertionOrderOnTies) {
  storage::DatabaseData db = TinyDb();
  Result<exec::ResultSet> rs = exec::Execute(
      dvq::ParseQuery("SELECT k , v FROM t ORDER BY k ASC").value(), db);
  ASSERT_TRUE(rs.ok());
  // Two "a" rows keep their original relative order (v = 1 then 2).
  EXPECT_EQ(rs.value().rows[0][1].int_value(), 1);
  EXPECT_EQ(rs.value().rows[1][1].int_value(), 2);
}

TEST(EdgeExec, NullsSortFirstAscending) {
  storage::DatabaseData db = TinyDb();
  Result<exec::ResultSet> rs = exec::Execute(
      dvq::ParseQuery("SELECT k , v FROM t ORDER BY v ASC").value(), db);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs.value().rows[0][1].is_null());
}

// --- models -----------------------------------------------------------

TEST(EdgeKeywords, LimitParsesFirstMarkerOnly) {
  EXPECT_EQ(models::DetectLimit("top 3 of the first 9"), 3);
}

TEST(EdgeKeywords, OrderBareSortDefaultsAscending) {
  auto intent = models::DetectOrder("sorted please",
                                    models::DetectorProfile::kCorpusTrained);
  ASSERT_TRUE(intent.has_value());
  EXPECT_FALSE(intent->descending);
  EXPECT_EQ(intent->axis, -1);
}

TEST(EdgeLinking, AdaptLiteralsLeavesQueryWithoutWhereAlone) {
  dvq::DVQ q = D("Visualize BAR SELECT a , b FROM t");
  models::SurfaceValues values;
  values.numbers.push_back(dvq::Literal::Int(7));
  models::AdaptLiterals(&q.query, values);
  EXPECT_FALSE(q.query.where.has_value());
  EXPECT_FALSE(q.query.limit.has_value());
}

TEST(EdgeLinking, SubqueryLiteralsAdaptedInOrder) {
  dvq::DVQ q = D(
      "Visualize BAR SELECT a , b FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"Old\")");
  models::SurfaceValues values;
  values.proper_words = {"Fresh"};
  models::AdaptLiterals(&q.query, values);
  EXPECT_EQ(q.query.where->predicates[0]
                .subquery->where->predicates[0]
                .literal->string_value,
            "Fresh");
}

// --- llm prompts ------------------------------------------------------

TEST(EdgePrompt, ExtractDvqTakesLastOccurrence) {
  // The DVQ is the final line of every expected answer format, so the
  // last occurrence wins — prose mentioning "visualize" earlier in the
  // completion must not hijack extraction.
  EXPECT_EQ(llm::ExtractDvqText("x\nVisualize BAR SELECT a , b FROM t\n"
                                "Visualize PIE SELECT c , d FROM u"),
            "Visualize PIE SELECT c , d FROM u");
}

TEST(EdgePrompt, SchemaPromptToleratesMissingForeignKeys) {
  Result<schema::Database> db =
      llm::ParseSchemaPrompt("# Table t , columns = [ * , a ]\n");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db.value().foreign_keys().empty());
}

// --- viz --------------------------------------------------------------

TEST(EdgeViz, EChartsLineFamilySplitsBySeries) {
  schema::Database db_schema("d");
  schema::TableDef t("t", {});
  t.AddColumn({"day", schema::ColumnType::kDate, false});
  t.AddColumn({"v", schema::ColumnType::kInt, false});
  t.AddColumn({"s", schema::ColumnType::kText, false});
  db_schema.AddTable(std::move(t));
  storage::DatabaseData db(std::move(db_schema));
  storage::DataTable* table = db.FindTable("t");
  ASSERT_TRUE(table
                  ->AppendRow({Value::Text("2024-01-01"), Value::Int(1),
                               Value::Text("x")})
                  .ok());
  ASSERT_TRUE(table
                  ->AppendRow({Value::Text("2024-02-01"), Value::Int(2),
                               Value::Text("y")})
                  .ok());
  Result<viz::Chart> chart = viz::BuildChart(
      D("Visualize GROUPING LINE SELECT day , v , s FROM t"), db);
  ASSERT_TRUE(chart.ok());
  json::Value option = viz::ToECharts(chart.value());
  EXPECT_EQ(option.Find("series")->size(), 2u);
  EXPECT_EQ(option.Find("series")->at(0).Find("type")->string_value(),
            "line");
}

// --- strings ----------------------------------------------------------

TEST(EdgeStrings, CamelCaseAcronymBoundaries) {
  EXPECT_EQ(strings::SplitIdentifierWords("HTTPServerPort"),
            (std::vector<std::string>{"http", "server", "port"}));
  EXPECT_EQ(strings::SplitIdentifierWords("HH_ID"),
            (std::vector<std::string>{"hh", "id"}));
}

TEST(EdgeStrings, IdentifierOverlapIgnoresWordOrder) {
  EXPECT_DOUBLE_EQ(
      strings::IdentifierWordOverlap("date_hire", "hire_date"), 1.0);
}

TEST(EdgeRng, WeightedSinglePositiveWeight) {
  Rng rng(3);
  EXPECT_EQ(rng.PickWeighted({5.0}), 0u);
}

}  // namespace
}  // namespace gred
