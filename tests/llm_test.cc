// Unit tests for the LLM layer: prompt builders/parsers, semantic
// linking, and the four tasks of the simulated chat model.

#include <gtest/gtest.h>

#include "dvq/components.h"
#include "dvq/parser.h"
#include "llm/prompt.h"
#include "llm/semantic_link.h"
#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/recording.h"
#include "llm/sim_llm.h"
#include "nl/text.h"

namespace gred::llm {
namespace {

schema::Database MakeSchema() {
  schema::Database db("hr");
  schema::TableDef employees("staffers", {});
  employees.AddColumn({"staffer_id", schema::ColumnType::kInt, true});
  employees.AddColumn({"forename", schema::ColumnType::kText, false});
  employees.AddColumn({"wage", schema::ColumnType::kInt, false});
  employees.AddColumn({"employment_day", schema::ColumnType::kDate, false});
  db.AddTable(std::move(employees));
  return db;
}

TEST(Prompt, RenderContainsRoles) {
  Prompt prompt;
  prompt.push_back({ChatMessage::Role::kSystem, "sys"});
  prompt.push_back({ChatMessage::Role::kUser, "usr"});
  std::string text = RenderPrompt(prompt);
  EXPECT_NE(text.find("Role: SYSTEM"), std::string::npos);
  EXPECT_NE(text.find("usr"), std::string::npos);
}

TEST(Prompt, SchemaPromptRoundTrip) {
  schema::Database db = MakeSchema();
  Result<schema::Database> parsed =
      ParseSchemaPrompt(db.RenderSchemaPrompt());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tables().size(), 1u);
  EXPECT_EQ(parsed.value().tables()[0].name(), "staffers");
  EXPECT_TRUE(parsed.value().HasColumn("employment_day"));
}

TEST(Prompt, SchemaPromptRoundTripKeepsForeignKeys) {
  std::string text =
      "# Table a , columns = [ * , id ]\n"
      "# Table b , columns = [ * , a_id ]\n"
      "# Foreign_keys = [ b.a_id = a.id ]\n";
  Result<schema::Database> parsed = ParseSchemaPrompt(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().foreign_keys().size(), 1u);
  EXPECT_EQ(parsed.value().foreign_keys()[0].from_table, "b");
  EXPECT_EQ(parsed.value().foreign_keys()[0].to_column, "id");
}

TEST(Prompt, SchemaPromptRejectsEmpty) {
  EXPECT_FALSE(ParseSchemaPrompt("no tables here").ok());
}

TEST(Prompt, ExtractDvqText) {
  EXPECT_EQ(ExtractDvqText("A: Visualize BAR SELECT a , b FROM t\nrest"),
            "Visualize BAR SELECT a , b FROM t");
  EXPECT_EQ(ExtractDvqText("nothing here"), "");
}

TEST(Prompt, GenerationPromptStructure) {
  GenerationExample ex;
  ex.schema_prompt = "# Table t , columns = [ * , a ]\n";
  ex.nlq = "question one";
  ex.dvq = "Visualize BAR SELECT a , a FROM t";
  Prompt prompt = BuildGenerationPrompt({ex}, "# Table u , columns = [ * , "
                                              "b ]\n",
                                        "the real question");
  ASSERT_EQ(prompt.size(), 2u);
  const std::string& user = prompt[1].content;
  // Example appears before the final question block.
  EXPECT_LT(user.find("question one"), user.find("the real question"));
  EXPECT_NE(user.find("### Chart Type"), std::string::npos);
  EXPECT_TRUE(user.rfind("A:") == user.size() - 2);
}

TEST(Prompt, RetuneAndDebugPromptsCarryNotes) {
  Prompt retune = BuildRetunePrompt({"Visualize BAR SELECT a , b FROM t"},
                                    "Visualize BAR SELECT a , b FROM t");
  EXPECT_NE(retune[1].content.find("Do not Modify the column name"),
            std::string::npos);
  Prompt debug = BuildDebugPrompt("# Table t , columns = [ * , a ]\n",
                                  "- a: the a.", "Visualize BAR SELECT a , "
                                                 "b FROM t");
  EXPECT_NE(debug[1].content.find("replace the column names"),
            std::string::npos);
}

TEST(SemanticLink, NameSimilarityThroughLexicon) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  EXPECT_GT(SemanticNameSimilarity("salary", "wage", lex), 0.8);
  EXPECT_GT(SemanticNameSimilarity("hire_date", "employment_day", lex),
            0.8);
  EXPECT_LT(SemanticNameSimilarity("salary", "pet_type", lex), 0.3);
  EXPECT_DOUBLE_EQ(SemanticNameSimilarity("", "x", lex), 0.0);
}

TEST(SemanticLink, MentionScoreConceptAware) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  std::vector<std::string> tokens =
      nl::Tokenize("present the wage across divisions");
  EXPECT_GT(SemanticMentionScore(tokens, "salary", lex), 0.8);
  EXPECT_GT(SemanticMentionScore(tokens, "department_name", lex), 0.4);
}

TEST(SemanticLink, SoftTokenSimilarity) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  double close = SoftTokenSimilarity({"wage", "employee"},
                                     {"salary", "worker"}, lex);
  double far = SoftTokenSimilarity({"wage"}, {"flight"}, lex);
  EXPECT_GT(close, 0.8);
  EXPECT_LT(far, 0.2);
}

TEST(SemanticLink, RelinksHallucinatedNamesAcrossSynonyms) {
  schema::Database db = MakeSchema();
  Result<dvq::DVQ> q = dvq::Parse(
      "Visualize BAR SELECT first_name , salary FROM employees");
  ASSERT_TRUE(q.ok());
  dvq::DVQ out = q.value();
  SemanticLinkOptions options;
  options.only_missing = true;
  options.column_threshold = 0.35;
  options.mention_weight = 0.0;
  RelinkSchemaSemantically(&out.query, db, {}, nl::Lexicon::Default(),
                           options);
  EXPECT_EQ(out.query.from_table, "staffers");
  EXPECT_EQ(out.query.select[0].col.column, "forename");
  EXPECT_EQ(out.query.select[1].col.column, "wage");
}

TEST(SemanticLink, RelinkMissingFlagDisablesRepair) {
  schema::Database db = MakeSchema();
  Result<dvq::DVQ> q = dvq::Parse(
      "Visualize BAR SELECT forename , salary FROM staffers");
  ASSERT_TRUE(q.ok());
  dvq::DVQ out = q.value();
  SemanticLinkOptions options;
  options.relink_missing = false;
  RelinkSchemaSemantically(&out.query, db, nl::Tokenize("forename wage"),
                           nl::Lexicon::Default(), options);
  EXPECT_EQ(out.query.select[1].col.column, "salary");  // left hallucinated
}

TEST(SimLlm, RejectsUnknownPrompt) {
  SimulatedChatModel llm;
  Prompt prompt;
  prompt.push_back({ChatMessage::Role::kUser, "tell me a joke"});
  EXPECT_FALSE(llm.Complete(prompt, {}).ok());
}

TEST(SimLlm, AnnotationTaskCoversEveryColumn) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> out =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("Table staffers:"), std::string::npos);
  EXPECT_NE(out.value().find("- wage:"), std::string::npos);
  EXPECT_NE(out.value().find("- employment_day:"), std::string::npos);
  // World knowledge: the gloss surfaces the canonical concept.
  EXPECT_NE(out.value().find("(salary)"), std::string::npos);
}

TEST(SimLlm, GenerationFollowsBestExample) {
  SimulatedChatModel llm;
  GenerationExample near;
  near.schema_prompt = "# Table staffers , columns = [ * , forename , wage ]\n";
  near.nlq = "Show a bar chart of forename and wage from staffers.";
  near.dvq = "Visualize BAR SELECT forename , wage FROM staffers";
  GenerationExample far;
  far.schema_prompt = "# Table flights , columns = [ * , origin , price ]\n";
  far.nlq = "Draw a pie chart about the number of origin in flights.";
  far.dvq =
      "Visualize PIE SELECT origin , COUNT(origin) FROM flights GROUP BY "
      "origin";
  Prompt prompt = BuildGenerationPrompt(
      {far, near},
      "# Table staffers , columns = [ * , forename , wage ]\n",
      "Show a bar chart of forename and wage from staffers.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().chart, dvq::ChartType::kBar);
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
}

TEST(SimLlm, GenerationUnderstandsParaphrase) {
  SimulatedChatModel llm;
  GenerationExample ex;
  ex.schema_prompt =
      "# Table staffers , columns = [ * , forename , wage ]\n";
  ex.nlq = "Show a bar chart of forename and wage from staffers.";
  ex.dvq = "Visualize BAR SELECT forename , wage FROM staffers";
  Prompt prompt = BuildGenerationPrompt(
      {ex}, "# Table staffers , columns = [ * , forename , wage ]\n",
      "Present the pay across forename as a histogram, with the Y-axis "
      "organized in descending order.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  ASSERT_TRUE(parsed.value().query.order_by.has_value());
  EXPECT_TRUE(parsed.value().query.order_by->descending);
}

TEST(SimLlm, GenerationFromFallbackForForeignExamples) {
  // The best example comes from another database entirely; the LLM must
  // re-ground FROM on the table covering the question's columns.
  SimulatedChatModel llm;
  GenerationExample foreign;
  foreign.schema_prompt =
      "# Table students , columns = [ * , city , grade ]\n";
  foreign.nlq = "Show a bar chart of city and the number of city from "
                "students for each city.";
  foreign.dvq =
      "Visualize BAR SELECT city , COUNT(city) FROM students GROUP BY city";
  Prompt prompt = BuildGenerationPrompt(
      {foreign},
      "# Table staffers , columns = [ * , forename , wage , city ]\n",
      "Show a bar chart of city and the number of city from staffers for "
      "each city.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
}

TEST(SimLlm, GenerationGroundsAxesFromQuestionForForeignExamples) {
  SimulatedChatModel llm;
  GenerationExample foreign;
  foreign.schema_prompt =
      "# Table students , columns = [ * , grade , age ]\n";
  foreign.nlq = "Could you put together a scatter plot relating grade "
                "with age?";
  foreign.dvq = "Visualize SCATTER SELECT grade , age FROM students";
  Prompt prompt = BuildGenerationPrompt(
      {foreign},
      "# Table staffers , columns = [ * , wage , age ]\n",
      "Could you put together a scatter plot relating wage with age?");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
  // "wage" is grounded from the question; "age" resolves directly.
  EXPECT_EQ(parsed.value().query.select[0].col.column, "wage");
  EXPECT_EQ(parsed.value().query.select[1].col.column, "age");
}

TEST(SimLlm, RetuneFixesCountStarTowardCorpus) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a",
      "Visualize BAR SELECT b , COUNT(b) FROM t GROUP BY b",
  };
  Prompt prompt = BuildRetunePrompt(
      refs, "Visualize BAR SELECT a , COUNT(*) FROM t GROUP BY a");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("COUNT(a)"), std::string::npos);
  EXPECT_EQ(out.value().find("COUNT(*)"), std::string::npos);
}

TEST(SimLlm, RetuneRewritesSubqueryAsJoin) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id WHERE n = "
      "\"v\"",
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id",
  };
  Prompt prompt = BuildRetunePrompt(
      refs,
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"v\")");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  ASSERT_EQ(parsed.value().query.joins.size(), 1u);
  EXPECT_EQ(parsed.value().query.joins[0].table, "p");
  EXPECT_EQ(parsed.value().query.where->predicates[0].subquery, nullptr);
}

TEST(SimLlm, RetuneKeepsSubqueryWhenReferencesUseIt) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"a\")",
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"b\")",
  };
  std::string original =
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"v\")";
  Prompt prompt = BuildRetunePrompt(refs, original);
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("(SELECT"), std::string::npos);
}

TEST(SimLlm, RetuneNormalizesNullStyle) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT a , b FROM t WHERE c IS NOT NULL",
  };
  Prompt prompt = BuildRetunePrompt(
      refs, "Visualize BAR SELECT a , b FROM t WHERE c != \"null\"");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("IS NOT NULL"), std::string::npos);
}

TEST(SimLlm, RetuneStripsAliasesTowardCorpus) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id",
  };
  Prompt prompt = BuildRetunePrompt(
      refs,
      "Visualize BAR SELECT T1.x , T2.y FROM t AS T1 JOIN p AS T2 ON T1.fk "
      "= T2.id");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().find(" AS "), std::string::npos);
}

TEST(SimLlm, DebugReplacesOnlyMissingColumns) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> annotations =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(annotations.ok());
  Prompt prompt = BuildDebugPrompt(
      db.RenderSchemaPrompt(), annotations.value(),
      "Visualize BAR SELECT forename , salary FROM staffers ORDER BY "
      "salary DESC");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  // "salary" (hallucinated) -> "wage"; "forename" (exists) untouched.
  EXPECT_EQ(parsed.value().query.select[0].col.column, "forename");
  EXPECT_EQ(parsed.value().query.select[1].col.column, "wage");
  EXPECT_EQ(parsed.value().query.order_by->expr.col.column, "wage");
}

TEST(SimLlm, DebugFixesTables) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> annotations =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(annotations.ok());
  Prompt prompt = BuildDebugPrompt(
      db.RenderSchemaPrompt(), annotations.value(),
      "Visualize BAR SELECT forename , wage FROM employees");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("FROM staffers"), std::string::npos);
}

TEST(Recording, CapturesExchangesAndTranscript) {
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  schema::Database db = MakeSchema();
  Result<std::string> out =
      recorder.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(recorder.call_count(), 1u);
  EXPECT_EQ(recorder.exchanges()[0].completion, out.value());
  EXPECT_TRUE(recorder.exchanges()[0].status.ok());
  std::string transcript = recorder.Transcript();
  EXPECT_NE(transcript.find("exchange 1 of 1"), std::string::npos);
  EXPECT_NE(transcript.find("Table staffers"), std::string::npos);
  recorder.Clear();
  EXPECT_EQ(recorder.call_count(), 0u);
}

TEST(Recording, CapturesErrors) {
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  Prompt bad;
  bad.push_back({ChatMessage::Role::kUser, "tell me a joke"});
  EXPECT_FALSE(recorder.Complete(bad, {}).ok());
  ASSERT_EQ(recorder.call_count(), 1u);
  EXPECT_FALSE(recorder.exchanges()[0].status.ok());
  EXPECT_NE(recorder.Transcript().find("(error)"), std::string::npos);
}

TEST(Recording, GredPipelineCallCounts) {
  // Full GRED issues generation + retune + debug (+ one annotation on a
  // fresh database) per translation.
  dataset::BenchmarkOptions options;
  options.train_size = 120;
  options.test_size = 20;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &recorder);
  const dataset::Example& ex = suite.test_clean[0];
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
  ASSERT_TRUE(gred.Translate(ex.nlq, db->data).ok());
  EXPECT_EQ(recorder.call_count(), 4u);  // gen + rtn + annotate + dbg
  recorder.Clear();
  ASSERT_TRUE(gred.Translate(ex.nlq, db->data).ok());
  EXPECT_EQ(recorder.call_count(), 3u);  // annotation now cached
}

TEST(SimLlm, DeterministicCompletion) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Prompt prompt = BuildAnnotationPrompt(db);
  Result<std::string> a = llm.Complete(prompt, ChatOptions{});
  Result<std::string> b = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace gred::llm
