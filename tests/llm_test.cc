// Unit tests for the LLM layer: prompt builders/parsers, semantic
// linking, and the four tasks of the simulated chat model.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dvq/components.h"
#include "dvq/parser.h"
#include "llm/prompt.h"
#include "llm/semantic_link.h"
#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/recording.h"
#include "llm/resilient.h"
#include "llm/sim_llm.h"
#include "nl/text.h"

namespace gred::llm {
namespace {

schema::Database MakeSchema() {
  schema::Database db("hr");
  schema::TableDef employees("staffers", {});
  employees.AddColumn({"staffer_id", schema::ColumnType::kInt, true});
  employees.AddColumn({"forename", schema::ColumnType::kText, false});
  employees.AddColumn({"wage", schema::ColumnType::kInt, false});
  employees.AddColumn({"employment_day", schema::ColumnType::kDate, false});
  db.AddTable(std::move(employees));
  return db;
}

TEST(Prompt, RenderContainsRoles) {
  Prompt prompt;
  prompt.push_back({ChatMessage::Role::kSystem, "sys"});
  prompt.push_back({ChatMessage::Role::kUser, "usr"});
  std::string text = RenderPrompt(prompt);
  EXPECT_NE(text.find("Role: SYSTEM"), std::string::npos);
  EXPECT_NE(text.find("usr"), std::string::npos);
}

TEST(Prompt, SchemaPromptRoundTrip) {
  schema::Database db = MakeSchema();
  Result<schema::Database> parsed =
      ParseSchemaPrompt(db.RenderSchemaPrompt());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().tables().size(), 1u);
  EXPECT_EQ(parsed.value().tables()[0].name(), "staffers");
  EXPECT_TRUE(parsed.value().HasColumn("employment_day"));
}

TEST(Prompt, SchemaPromptRoundTripKeepsForeignKeys) {
  std::string text =
      "# Table a , columns = [ * , id ]\n"
      "# Table b , columns = [ * , a_id ]\n"
      "# Foreign_keys = [ b.a_id = a.id ]\n";
  Result<schema::Database> parsed = ParseSchemaPrompt(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().foreign_keys().size(), 1u);
  EXPECT_EQ(parsed.value().foreign_keys()[0].from_table, "b");
  EXPECT_EQ(parsed.value().foreign_keys()[0].to_column, "id");
}

TEST(Prompt, SchemaPromptRejectsEmpty) {
  EXPECT_FALSE(ParseSchemaPrompt("no tables here").ok());
}

TEST(Prompt, ExtractDvqText) {
  EXPECT_EQ(ExtractDvqText("A: Visualize BAR SELECT a , b FROM t\nrest"),
            "Visualize BAR SELECT a , b FROM t");
  EXPECT_EQ(ExtractDvqText("nothing here"), "");
}

TEST(Prompt, ExtractDvqTextCaseInsensitive) {
  // A completion in the general register ("visualize bar ...") is the
  // lexical-variability failure mode the paper studies; extraction must
  // not demand the canonical capitalization.
  EXPECT_EQ(ExtractDvqText("A: visualize bar SELECT a , b FROM t\nrest"),
            "visualize bar SELECT a , b FROM t");
  EXPECT_EQ(ExtractDvqText("VISUALIZE PIE SELECT a , b FROM t"),
            "VISUALIZE PIE SELECT a , b FROM t");
}

TEST(Prompt, ExtractDvqTextPrefersLastOccurrence) {
  // Chatty prose before the answer mentions "visualize"; the DVQ is the
  // final occurrence and must win.
  EXPECT_EQ(ExtractDvqText("Sure, I can visualize that for you.\n"
                           "A: Visualize BAR SELECT a , b FROM t\n"),
            "Visualize BAR SELECT a , b FROM t");
  EXPECT_EQ(ExtractDvqText("let me visualize it... "
                           "Visualize SCATTER SELECT x , y FROM t"),
            "Visualize SCATTER SELECT x , y FROM t");
}

TEST(Prompt, GenerationPromptStructure) {
  GenerationExample ex;
  ex.schema_prompt = "# Table t , columns = [ * , a ]\n";
  ex.nlq = "question one";
  ex.dvq = "Visualize BAR SELECT a , a FROM t";
  Prompt prompt = BuildGenerationPrompt({ex}, "# Table u , columns = [ * , "
                                              "b ]\n",
                                        "the real question");
  ASSERT_EQ(prompt.size(), 2u);
  const std::string& user = prompt[1].content;
  // Example appears before the final question block.
  EXPECT_LT(user.find("question one"), user.find("the real question"));
  EXPECT_NE(user.find("### Chart Type"), std::string::npos);
  EXPECT_TRUE(user.rfind("A:") == user.size() - 2);
}

TEST(Prompt, RetuneAndDebugPromptsCarryNotes) {
  Prompt retune = BuildRetunePrompt({"Visualize BAR SELECT a , b FROM t"},
                                    "Visualize BAR SELECT a , b FROM t");
  EXPECT_NE(retune[1].content.find("Do not Modify the column name"),
            std::string::npos);
  Prompt debug = BuildDebugPrompt("# Table t , columns = [ * , a ]\n",
                                  "- a: the a.", "Visualize BAR SELECT a , "
                                                 "b FROM t");
  EXPECT_NE(debug[1].content.find("replace the column names"),
            std::string::npos);
}

TEST(SemanticLink, NameSimilarityThroughLexicon) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  EXPECT_GT(SemanticNameSimilarity("salary", "wage", lex), 0.8);
  EXPECT_GT(SemanticNameSimilarity("hire_date", "employment_day", lex),
            0.8);
  EXPECT_LT(SemanticNameSimilarity("salary", "pet_type", lex), 0.3);
  EXPECT_DOUBLE_EQ(SemanticNameSimilarity("", "x", lex), 0.0);
}

TEST(SemanticLink, MentionScoreConceptAware) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  std::vector<std::string> tokens =
      nl::Tokenize("present the wage across divisions");
  EXPECT_GT(SemanticMentionScore(tokens, "salary", lex), 0.8);
  EXPECT_GT(SemanticMentionScore(tokens, "department_name", lex), 0.4);
}

TEST(SemanticLink, SoftTokenSimilarity) {
  const nl::Lexicon& lex = nl::Lexicon::Default();
  double close = SoftTokenSimilarity({"wage", "employee"},
                                     {"salary", "worker"}, lex);
  double far = SoftTokenSimilarity({"wage"}, {"flight"}, lex);
  EXPECT_GT(close, 0.8);
  EXPECT_LT(far, 0.2);
}

TEST(SemanticLink, RelinksHallucinatedNamesAcrossSynonyms) {
  schema::Database db = MakeSchema();
  Result<dvq::DVQ> q = dvq::Parse(
      "Visualize BAR SELECT first_name , salary FROM employees");
  ASSERT_TRUE(q.ok());
  dvq::DVQ out = q.value();
  SemanticLinkOptions options;
  options.only_missing = true;
  options.column_threshold = 0.35;
  options.mention_weight = 0.0;
  RelinkSchemaSemantically(&out.query, db, {}, nl::Lexicon::Default(),
                           options);
  EXPECT_EQ(out.query.from_table, "staffers");
  EXPECT_EQ(out.query.select[0].col.column, "forename");
  EXPECT_EQ(out.query.select[1].col.column, "wage");
}

TEST(SemanticLink, RelinkMissingFlagDisablesRepair) {
  schema::Database db = MakeSchema();
  Result<dvq::DVQ> q = dvq::Parse(
      "Visualize BAR SELECT forename , salary FROM staffers");
  ASSERT_TRUE(q.ok());
  dvq::DVQ out = q.value();
  SemanticLinkOptions options;
  options.relink_missing = false;
  RelinkSchemaSemantically(&out.query, db, nl::Tokenize("forename wage"),
                           nl::Lexicon::Default(), options);
  EXPECT_EQ(out.query.select[1].col.column, "salary");  // left hallucinated
}

TEST(SimLlm, RejectsUnknownPrompt) {
  SimulatedChatModel llm;
  Prompt prompt;
  prompt.push_back({ChatMessage::Role::kUser, "tell me a joke"});
  EXPECT_FALSE(llm.Complete(prompt, {}).ok());
}

TEST(SimLlm, AnnotationTaskCoversEveryColumn) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> out =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("Table staffers:"), std::string::npos);
  EXPECT_NE(out.value().find("- wage:"), std::string::npos);
  EXPECT_NE(out.value().find("- employment_day:"), std::string::npos);
  // World knowledge: the gloss surfaces the canonical concept.
  EXPECT_NE(out.value().find("(salary)"), std::string::npos);
}

TEST(SimLlm, GenerationFollowsBestExample) {
  SimulatedChatModel llm;
  GenerationExample near;
  near.schema_prompt = "# Table staffers , columns = [ * , forename , wage ]\n";
  near.nlq = "Show a bar chart of forename and wage from staffers.";
  near.dvq = "Visualize BAR SELECT forename , wage FROM staffers";
  GenerationExample far;
  far.schema_prompt = "# Table flights , columns = [ * , origin , price ]\n";
  far.nlq = "Draw a pie chart about the number of origin in flights.";
  far.dvq =
      "Visualize PIE SELECT origin , COUNT(origin) FROM flights GROUP BY "
      "origin";
  Prompt prompt = BuildGenerationPrompt(
      {far, near},
      "# Table staffers , columns = [ * , forename , wage ]\n",
      "Show a bar chart of forename and wage from staffers.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().chart, dvq::ChartType::kBar);
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
}

TEST(SimLlm, GenerationUnderstandsParaphrase) {
  SimulatedChatModel llm;
  GenerationExample ex;
  ex.schema_prompt =
      "# Table staffers , columns = [ * , forename , wage ]\n";
  ex.nlq = "Show a bar chart of forename and wage from staffers.";
  ex.dvq = "Visualize BAR SELECT forename , wage FROM staffers";
  Prompt prompt = BuildGenerationPrompt(
      {ex}, "# Table staffers , columns = [ * , forename , wage ]\n",
      "Present the pay across forename as a histogram, with the Y-axis "
      "organized in descending order.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  ASSERT_TRUE(parsed.value().query.order_by.has_value());
  EXPECT_TRUE(parsed.value().query.order_by->descending);
}

TEST(SimLlm, GenerationFromFallbackForForeignExamples) {
  // The best example comes from another database entirely; the LLM must
  // re-ground FROM on the table covering the question's columns.
  SimulatedChatModel llm;
  GenerationExample foreign;
  foreign.schema_prompt =
      "# Table students , columns = [ * , city , grade ]\n";
  foreign.nlq = "Show a bar chart of city and the number of city from "
                "students for each city.";
  foreign.dvq =
      "Visualize BAR SELECT city , COUNT(city) FROM students GROUP BY city";
  Prompt prompt = BuildGenerationPrompt(
      {foreign},
      "# Table staffers , columns = [ * , forename , wage , city ]\n",
      "Show a bar chart of city and the number of city from staffers for "
      "each city.");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
}

TEST(SimLlm, GenerationGroundsAxesFromQuestionForForeignExamples) {
  SimulatedChatModel llm;
  GenerationExample foreign;
  foreign.schema_prompt =
      "# Table students , columns = [ * , grade , age ]\n";
  foreign.nlq = "Could you put together a scatter plot relating grade "
                "with age?";
  foreign.dvq = "Visualize SCATTER SELECT grade , age FROM students";
  Prompt prompt = BuildGenerationPrompt(
      {foreign},
      "# Table staffers , columns = [ * , wage , age ]\n",
      "Could you put together a scatter plot relating wage with age?");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  EXPECT_EQ(parsed.value().query.from_table, "staffers");
  // "wage" is grounded from the question; "age" resolves directly.
  EXPECT_EQ(parsed.value().query.select[0].col.column, "wage");
  EXPECT_EQ(parsed.value().query.select[1].col.column, "age");
}

TEST(SimLlm, RetuneFixesCountStarTowardCorpus) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT a , COUNT(a) FROM t GROUP BY a",
      "Visualize BAR SELECT b , COUNT(b) FROM t GROUP BY b",
  };
  Prompt prompt = BuildRetunePrompt(
      refs, "Visualize BAR SELECT a , COUNT(*) FROM t GROUP BY a");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("COUNT(a)"), std::string::npos);
  EXPECT_EQ(out.value().find("COUNT(*)"), std::string::npos);
}

TEST(SimLlm, RetuneRewritesSubqueryAsJoin) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id WHERE n = "
      "\"v\"",
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id",
  };
  Prompt prompt = BuildRetunePrompt(
      refs,
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"v\")");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  ASSERT_EQ(parsed.value().query.joins.size(), 1u);
  EXPECT_EQ(parsed.value().query.joins[0].table, "p");
  EXPECT_EQ(parsed.value().query.where->predicates[0].subquery, nullptr);
}

TEST(SimLlm, RetuneKeepsSubqueryWhenReferencesUseIt) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"a\")",
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"b\")",
  };
  std::string original =
      "Visualize BAR SELECT x , y FROM t WHERE fk = (SELECT id FROM p "
      "WHERE n = \"v\")";
  Prompt prompt = BuildRetunePrompt(refs, original);
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("(SELECT"), std::string::npos);
}

TEST(SimLlm, RetuneNormalizesNullStyle) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT a , b FROM t WHERE c IS NOT NULL",
  };
  Prompt prompt = BuildRetunePrompt(
      refs, "Visualize BAR SELECT a , b FROM t WHERE c != \"null\"");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("IS NOT NULL"), std::string::npos);
}

TEST(SimLlm, RetuneStripsAliasesTowardCorpus) {
  SimulatedChatModel llm;
  std::vector<std::string> refs = {
      "Visualize BAR SELECT x , y FROM t JOIN p ON t.fk = p.id",
  };
  Prompt prompt = BuildRetunePrompt(
      refs,
      "Visualize BAR SELECT T1.x , T2.y FROM t AS T1 JOIN p AS T2 ON T1.fk "
      "= T2.id");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().find(" AS "), std::string::npos);
}

TEST(SimLlm, DebugReplacesOnlyMissingColumns) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> annotations =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(annotations.ok());
  Prompt prompt = BuildDebugPrompt(
      db.RenderSchemaPrompt(), annotations.value(),
      "Visualize BAR SELECT forename , salary FROM staffers ORDER BY "
      "salary DESC");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  Result<dvq::DVQ> parsed = dvq::Parse(ExtractDvqText(out.value()));
  ASSERT_TRUE(parsed.ok()) << out.value();
  // "salary" (hallucinated) -> "wage"; "forename" (exists) untouched.
  EXPECT_EQ(parsed.value().query.select[0].col.column, "forename");
  EXPECT_EQ(parsed.value().query.select[1].col.column, "wage");
  EXPECT_EQ(parsed.value().query.order_by->expr.col.column, "wage");
}

TEST(SimLlm, DebugFixesTables) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Result<std::string> annotations =
      llm.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(annotations.ok());
  Prompt prompt = BuildDebugPrompt(
      db.RenderSchemaPrompt(), annotations.value(),
      "Visualize BAR SELECT forename , wage FROM employees");
  Result<std::string> out = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("FROM staffers"), std::string::npos);
}

TEST(Recording, CapturesExchangesAndTranscript) {
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  schema::Database db = MakeSchema();
  Result<std::string> out =
      recorder.Complete(BuildAnnotationPrompt(db), ChatOptions{});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(recorder.call_count(), 1u);
  EXPECT_EQ(recorder.exchanges()[0].completion, out.value());
  EXPECT_TRUE(recorder.exchanges()[0].status.ok());
  std::string transcript = recorder.Transcript();
  EXPECT_NE(transcript.find("exchange 1 of 1"), std::string::npos);
  EXPECT_NE(transcript.find("Table staffers"), std::string::npos);
  recorder.Clear();
  EXPECT_EQ(recorder.call_count(), 0u);
}

TEST(Recording, CapturesErrors) {
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  Prompt bad;
  bad.push_back({ChatMessage::Role::kUser, "tell me a joke"});
  EXPECT_FALSE(recorder.Complete(bad, {}).ok());
  ASSERT_EQ(recorder.call_count(), 1u);
  EXPECT_FALSE(recorder.exchanges()[0].status.ok());
  EXPECT_NE(recorder.Transcript().find("(error)"), std::string::npos);
}

TEST(Recording, GredPipelineCallCounts) {
  // Full GRED issues generation + retune + debug (+ one annotation on a
  // fresh database) per translation.
  dataset::BenchmarkOptions options;
  options.train_size = 120;
  options.test_size = 20;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  SimulatedChatModel inner;
  RecordingChatModel recorder(&inner);
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &recorder);
  const dataset::Example& ex = suite.test_clean[0];
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
  ASSERT_TRUE(gred.Translate(ex.nlq, db->data).ok());
  EXPECT_EQ(recorder.call_count(), 4u);  // gen + rtn + annotate + dbg
  recorder.Clear();
  ASSERT_TRUE(gred.Translate(ex.nlq, db->data).ok());
  EXPECT_EQ(recorder.call_count(), 3u);  // annotation now cached
}

TEST(SimLlm, DeterministicCompletion) {
  SimulatedChatModel llm;
  schema::Database db = MakeSchema();
  Prompt prompt = BuildAnnotationPrompt(db);
  Result<std::string> a = llm.Complete(prompt, ChatOptions{});
  Result<std::string> b = llm.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), b.value());
}

// --- Fault-tolerance decorators ---------------------------------------------

/// Plays back a fixed outcome script, one entry per call (the last entry
/// repeats once the script is exhausted). Thread-compatible for the
/// single-threaded decorator tests.
class ScriptedChatModel : public ChatModel {
 public:
  explicit ScriptedChatModel(std::vector<Result<std::string>> script)
      : script_(std::move(script)) {}

  Result<std::string> Complete(const Prompt& /*prompt*/,
                               const ChatOptions& /*options*/) const override {
    std::size_t index = calls_.fetch_add(1, std::memory_order_relaxed);
    if (index >= script_.size()) index = script_.size() - 1;
    return script_[index];
  }

  std::size_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Result<std::string>> script_;
  mutable std::atomic<std::size_t> calls_{0};
};

Prompt UserPrompt(const std::string& text) {
  return {{ChatMessage::Role::kUser, text}};
}

TEST(Resilient, RetryingRecoversFromTransientFailures) {
  ScriptedChatModel inner({Status::Unavailable("drop 1"),
                           Status::Unavailable("drop 2"),
                           std::string("A: Visualize BAR SELECT a , a FROM "
                                       "t")});
  RetryingChatModel retrying(&inner, RetryConfig{});
  Result<std::string> out = retrying.Complete(UserPrompt("q"), ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(inner.calls(), 3u);
  RetryingChatModel::Stats stats = retrying.stats();
  EXPECT_EQ(stats.calls, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 0u);
  // Simulated exponential backoff: 0.05s + 0.10s, accounted not slept.
  EXPECT_NEAR(retrying.simulated_backoff().seconds(), 0.15, 1e-9);
}

TEST(Resilient, RetryingDoesNotRetryPermanentErrors) {
  ScriptedChatModel inner({Status::Internal("broken prompt")});
  RetryingChatModel retrying(&inner, RetryConfig{});
  Result<std::string> out = retrying.Complete(UserPrompt("q"), ChatOptions{});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  EXPECT_EQ(inner.calls(), 1u);
  EXPECT_EQ(retrying.stats().retries, 0u);
}

TEST(Resilient, RetryingExhaustsBoundedAttempts) {
  ScriptedChatModel inner({Status::Unavailable("always down")});
  RetryConfig config;
  config.max_attempts = 2;
  RetryingChatModel retrying(&inner, config);
  Result<std::string> out = retrying.Complete(UserPrompt("q"), ChatOptions{});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsTransient());
  EXPECT_EQ(inner.calls(), 2u);
  RetryingChatModel::Stats stats = retrying.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.exhausted, 1u);
}

TEST(Resilient, InjectorIsIdentityAtZeroRates) {
  SimulatedChatModel sim;
  FaultInjectingChatModel injector(&sim, FaultConfig{});
  schema::Database db = MakeSchema();
  Prompt prompt = BuildAnnotationPrompt(db);
  Result<std::string> direct = sim.Complete(prompt, ChatOptions{});
  Result<std::string> wrapped = injector.Complete(prompt, ChatOptions{});
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(direct.value(), wrapped.value());
  FaultInjectingChatModel::Stats stats = injector.stats();
  EXPECT_EQ(stats.calls, 1u);
  EXPECT_EQ(stats.transient_faults, 0u);
  EXPECT_EQ(stats.truncations, 0u);
  EXPECT_EQ(stats.garbage_prefixes, 0u);
}

TEST(Resilient, InjectorFaultsArePureFunctionOfPromptAndAttempt) {
  ScriptedChatModel inner({std::string("A: Visualize BAR SELECT a , a "
                                       "FROM t")});
  FaultConfig config;
  config.transient_rate = 0.5;
  config.truncate_rate = 0.25;
  config.garbage_rate = 0.25;
  FaultInjectingChatModel first(&inner, config);
  FaultInjectingChatModel second(&inner, config);
  // Same prompt sequence on two independent instances: identical faults,
  // including across repeated attempts on the same prompt.
  for (int round = 0; round < 8; ++round) {
    for (const char* text : {"alpha", "beta", "gamma"}) {
      Result<std::string> a = first.Complete(UserPrompt(text), ChatOptions{});
      Result<std::string> b = second.Complete(UserPrompt(text), ChatOptions{});
      ASSERT_EQ(a.ok(), b.ok()) << text << " round " << round;
      if (a.ok()) {
        EXPECT_EQ(a.value(), b.value());
      } else {
        EXPECT_EQ(a.status().ToString(), b.status().ToString());
      }
    }
  }
  FaultInjectingChatModel::Stats sa = first.stats();
  FaultInjectingChatModel::Stats sb = second.stats();
  EXPECT_EQ(sa.transient_faults, sb.transient_faults);
  EXPECT_EQ(sa.truncations, sb.truncations);
  EXPECT_EQ(sa.garbage_prefixes, sb.garbage_prefixes);
  // With 24 draws at these rates, something must have fired.
  EXPECT_GT(sa.transient_faults + sa.truncations + sa.garbage_prefixes, 0u);
}

TEST(Resilient, InjectorSeedChangesOutcomes) {
  ScriptedChatModel inner({std::string("A: Visualize BAR SELECT a , a "
                                       "FROM t")});
  FaultConfig config;
  config.transient_rate = 0.5;
  std::size_t disagreements = 0;
  for (int i = 0; i < 16; ++i) {
    FaultConfig other = config;
    other.seed = config.seed + 1 + i;
    FaultInjectingChatModel a(&inner, config);
    FaultInjectingChatModel b(&inner, other);
    std::string text = "prompt " + std::to_string(i);
    if (a.Complete(UserPrompt(text), ChatOptions{}).ok() !=
        b.Complete(UserPrompt(text), ChatOptions{}).ok()) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0u);
}

TEST(Resilient, GarbagePrefixDoesNotDefeatExtraction) {
  ScriptedChatModel inner({std::string("A: Visualize BAR SELECT a , a "
                                       "FROM t")});
  FaultConfig config;
  config.garbage_rate = 1.0;
  FaultInjectingChatModel injector(&inner, config);
  Result<std::string> out = injector.Complete(UserPrompt("q"), ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out.value().find("visualize"), std::string::npos);  // the prose
  EXPECT_EQ(ExtractDvqText(out.value()),
            "Visualize BAR SELECT a , a FROM t");
}

TEST(Resilient, TruncationHalvesCompletions) {
  std::string full = "A: Visualize BAR SELECT a , a FROM t";
  ScriptedChatModel inner({full});
  FaultConfig config;
  config.truncate_rate = 1.0;
  FaultInjectingChatModel injector(&inner, config);
  Result<std::string> out = injector.Complete(UserPrompt("q"), ChatOptions{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), full.substr(0, full.size() / 2));
  EXPECT_EQ(injector.stats().truncations, 1u);
}

TEST(Resilient, RetryStackEventuallyDeliversInnerCompletion) {
  std::string completion = "A: Visualize BAR SELECT a , a FROM t";
  ScriptedChatModel inner({completion});
  FaultConfig config;
  config.transient_rate = 0.4;
  FaultInjectingChatModel injector(&inner, config);
  RetryConfig retry;
  retry.max_attempts = 8;
  RetryingChatModel retrying(&injector, retry);
  std::size_t successes = 0;
  for (int i = 0; i < 20; ++i) {
    Result<std::string> out = retrying.Complete(
        UserPrompt("question " + std::to_string(i)), ChatOptions{});
    if (out.ok() && out.value() == completion) ++successes;
  }
  // 8 attempts at 40% fault rate: effectively every call succeeds, and
  // clean completions pass through unmodified.
  EXPECT_GE(successes, 18u);
  EXPECT_GT(retrying.stats().retries, 0u);
}

TEST(Resilient, ConcurrentCallsKeepConsistentStats) {
  ScriptedChatModel inner({std::string("A: Visualize BAR SELECT a , a "
                                       "FROM t")});
  FaultConfig config;
  config.transient_rate = 0.3;
  config.truncate_rate = 0.2;
  FaultInjectingChatModel injector(&inner, config);
  RetryConfig retry;
  retry.max_attempts = 4;
  RetryingChatModel retrying(&injector, retry);
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&retrying, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        std::string text =
            "thread " + std::to_string(t) + " call " + std::to_string(i);
        (void)retrying.Complete(UserPrompt(text), ChatOptions{});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RetryingChatModel::Stats stats = retrying.stats();
  EXPECT_EQ(stats.calls,
            static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  FaultInjectingChatModel::Stats faults = injector.stats();
  EXPECT_EQ(faults.calls, stats.calls + stats.retries);
}

}  // namespace
}  // namespace gred::llm
