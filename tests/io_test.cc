// Tests for JSON parsing and benchmark (de)serialization round trips.

#include <gtest/gtest.h>

#include <cstdio>

#include "dataset/benchmark.h"
#include "dataset/io.h"
#include "dvq/components.h"
#include "exec/executor.h"

namespace gred {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::Parse("null").value().is_null());
  EXPECT_TRUE(json::Parse("true").value().bool_value());
  EXPECT_DOUBLE_EQ(json::Parse("-3.5e2").value().number_value(), -350.0);
  EXPECT_EQ(json::Parse("\"hi\\n\"").value().string_value(), "hi\n");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json::Parse("\"\\u0041\"").value().string_value(), "A");
  EXPECT_EQ(json::Parse("\"\\u00e9\"").value().string_value(), "\xc3\xa9");
}

TEST(JsonParse, Structures) {
  json::ParseResult result =
      json::Parse("{\"a\": [1, 2, {\"b\": false}], \"c\": \"x\"}");
  ASSERT_TRUE(result.ok()) << result.error();
  const json::Value& v = result.value();
  EXPECT_EQ(v.Find("a")->size(), 3u);
  EXPECT_FALSE(v.Find("a")->at(2).Find("b")->bool_value());
  EXPECT_EQ(v.Find("c")->string_value(), "x");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(json::Parse("[]").value().size(), 0u);
  EXPECT_TRUE(json::Parse("{}").ok());
  EXPECT_TRUE(json::Parse("  [ ]  ").ok());
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("1 2").ok());
  EXPECT_FALSE(json::Parse("nope").ok());
}

TEST(JsonParse, RoundTripDump) {
  const std::string doc =
      "{\"k\":[1,2.5,\"s\\\"x\",null,true],\"nested\":{\"a\":-7}}";
  json::ParseResult first = json::Parse(doc);
  ASSERT_TRUE(first.ok());
  json::ParseResult second = json::Parse(first.value().Dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().Dump(), second.value().Dump());
  // Indented output parses back identically too.
  json::ParseResult third = json::Parse(first.value().Dump(2));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().Dump(), first.value().Dump());
}

const dataset::BenchmarkSuite& SmallSuite() {
  static const dataset::BenchmarkSuite* const kSuite = [] {
    dataset::BenchmarkOptions options;
    options.train_size = 90;
    options.test_size = 30;
    return new dataset::BenchmarkSuite(
        dataset::BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

TEST(DatasetIo, DatabaseRoundTrip) {
  const dataset::GeneratedDatabase& original = SmallSuite().databases[0];
  json::Value serialized = dataset::DatabaseToJson(original);
  Result<dataset::GeneratedDatabase> restored =
      dataset::DatabaseFromJson(serialized);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().data.name(), original.data.name());
  EXPECT_EQ(restored.value().data.db_schema().RenderSchemaPrompt(),
            original.data.db_schema().RenderSchemaPrompt());
  ASSERT_EQ(restored.value().data.tables().size(),
            original.data.tables().size());
  for (std::size_t t = 0; t < original.data.tables().size(); ++t) {
    const storage::DataTable& a = original.data.tables()[t];
    const storage::DataTable& b = restored.value().data.tables()[t];
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (std::size_t r = 0; r < a.num_rows(); ++r) {
      for (std::size_t c = 0; c < a.num_columns(); ++c) {
        EXPECT_EQ(a.at(r, c).Compare(b.at(r, c)), 0);
      }
    }
  }
}

TEST(DatasetIo, RestoredDatabaseExecutesTargets) {
  const dataset::BenchmarkSuite& suite = SmallSuite();
  const dataset::Example& ex = suite.test_clean[0];
  const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
  Result<dataset::GeneratedDatabase> restored =
      dataset::DatabaseFromJson(dataset::DatabaseToJson(*db));
  ASSERT_TRUE(restored.ok());
  Result<exec::ResultSet> a = exec::Execute(ex.dvq, db->data);
  Result<exec::ResultSet> b = exec::Execute(ex.dvq, restored.value().data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().num_rows(), b.value().num_rows());
}

TEST(DatasetIo, ExampleRoundTrip) {
  const dataset::Example& original = SmallSuite().test_clean[3];
  Result<dataset::Example> restored =
      dataset::ExampleFromJson(dataset::ExampleToJson(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().id, original.id);
  EXPECT_EQ(restored.value().nlq, original.nlq);
  EXPECT_EQ(restored.value().nlq_rob, original.nlq_rob);
  EXPECT_EQ(restored.value().hardness, original.hardness);
  EXPECT_TRUE(dvq::OverallMatch(restored.value().dvq, original.dvq));
}

TEST(DatasetIo, ExampleListRoundTrip) {
  const auto& examples = SmallSuite().test_clean;
  Result<std::vector<dataset::Example>> restored =
      dataset::ExamplesFromJson(dataset::ExamplesToJson(examples));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value().size(), examples.size());
  for (std::size_t i = 0; i < examples.size(); ++i) {
    EXPECT_EQ(restored.value()[i].DvqText(), examples[i].DvqText());
  }
}

TEST(DatasetIo, ExampleFromJsonRejectsMalformed) {
  json::Value bad = json::Value::Object();
  bad.Set("id", json::Value::Str("x"));
  EXPECT_FALSE(dataset::ExampleFromJson(bad).ok());  // missing keys
  bad.Set("db", json::Value::Str("d"));
  bad.Set("nlq", json::Value::Str("q"));
  bad.Set("dvq", json::Value::Str("not a dvq"));
  EXPECT_FALSE(dataset::ExampleFromJson(bad).ok());  // unparseable DVQ
}

TEST(DatasetIo, FileRoundTrip) {
  const std::string path = "/tmp/gredvis_io_test.json";
  json::Value doc = dataset::ExamplesToJson(SmallSuite().test_clean);
  ASSERT_TRUE(dataset::WriteJsonFile(path, doc).ok());
  Result<json::Value> read = dataset::ReadJsonFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().Dump(), doc.Dump());
  std::remove(path.c_str());
  EXPECT_FALSE(dataset::ReadJsonFile("/tmp/definitely_missing_xyz.json")
                   .ok());
}

}  // namespace
}  // namespace gred
