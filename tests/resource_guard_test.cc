// Tests for the resource-guard layer (util/resource_guard.h): the
// ExecContext accounting/cancellation contract, and budget exhaustion in
// the executor — cross joins and high-cardinality group-bys must stop
// with a clean kResourceExhausted, leaving storage untouched and leaking
// no partial results.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dvq/parser.h"
#include "exec/executor.h"
#include "util/resource_guard.h"

namespace gred {
namespace {

using exec::ExecOptions;
using exec::Execute;
using exec::ResultSet;
using storage::DatabaseData;
using storage::Value;

TEST(ExecContext, UnlimitedChargesAlwaysSucceed) {
  ExecContext ctx;  // default limits: everything unlimited
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ctx.ChargeTicks(1'000'000).ok());
    EXPECT_TRUE(ctx.ChargeRows(1'000'000, 64).ok());
    EXPECT_TRUE(ctx.ChargeJoinRows(1'000'000).ok());
  }
  EXPECT_FALSE(ctx.exhausted());
}

TEST(ExecContext, DeadlineTripsAtExactTick) {
  GuardLimits limits;
  limits.deadline_ticks = 10;
  ExecContext ctx(limits);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ctx.ChargeTicks(1).ok());
  Status over = ctx.ChargeTicks(1);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(over.IsResourceExhausted());
  EXPECT_TRUE(ctx.exhausted());
}

TEST(ExecContext, ExhaustionIsSticky) {
  GuardLimits limits;
  limits.row_budget = 1;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows(1, 1).ok());
  EXPECT_FALSE(ctx.ChargeRows(1, 1).ok());
  // A tripped context fails every later charge, even within other limits.
  EXPECT_EQ(ctx.ChargeTicks(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.ChargeJoinRows(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContext, MemoryBudgetUsesAccountedCellModel) {
  GuardLimits limits;
  limits.memory_budget = 10 * kAccountedBytesPerCell;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows(1, 10).ok());   // exactly at the limit
  EXPECT_FALSE(ctx.ChargeRows(1, 1).ok());   // one cell over
  EXPECT_TRUE(ctx.usage().exhausted);
}

TEST(ExecContext, JoinBudgetIsIndependentOfRowBudget) {
  GuardLimits limits;
  limits.join_budget = 5;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows(100, 4).ok());  // rows unlimited
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ctx.ChargeJoinRows(1).ok());
  EXPECT_EQ(ctx.ChargeJoinRows(1).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContext, CancellationWinsOverBudgets) {
  ExecContext ctx;  // unlimited
  EXPECT_TRUE(ctx.ChargeTicks(1).ok());
  ctx.RequestCancel();
  Status s = ctx.ChargeTicks(1);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.exhausted());  // cancelled, not exhausted
}

TEST(ExecContext, CancellationFromAnotherThreadStopsCharges) {
  ExecContext ctx;
  std::thread canceller([&ctx] { ctx.RequestCancel(); });
  canceller.join();
  EXPECT_EQ(ctx.ChargeRows(1, 1).code(), StatusCode::kCancelled);
}

TEST(ExecContext, UsageCountersAreExact) {
  GuardLimits limits;
  limits.deadline_ticks = 1000;
  ExecContext ctx(limits);
  ASSERT_TRUE(ctx.ChargeTicks(7).ok());
  ASSERT_TRUE(ctx.ChargeRows(3, 2).ok());
  ASSERT_TRUE(ctx.ChargeJoinRows(5).ok());
  ExecContext::Usage u = ctx.usage();
  EXPECT_EQ(u.ticks, 7u);
  EXPECT_EQ(u.rows, 3u);
  EXPECT_EQ(u.bytes, 3u * 2u * kAccountedBytesPerCell);
  EXPECT_EQ(u.join_rows, 5u);
  EXPECT_FALSE(u.exhausted);
  EXPECT_FALSE(u.cancelled);
}

TEST(ExecContext, ConcurrentChargesTripExactlyOnceAtTheLimit) {
  GuardLimits limits;
  limits.deadline_ticks = 1000;
  ExecContext ctx(limits);
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&ctx, &failures] {
      for (int i = 0; i < 500; ++i) {
        if (!ctx.ChargeTicks(1).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // 2000 ticks offered against a 1000-tick deadline: the context must
  // have tripped, and once latched the gate stops accounting, so the
  // recorded total stays near the limit instead of drifting to 2000.
  EXPECT_TRUE(ctx.exhausted());
  EXPECT_GE(ctx.usage().ticks, 1000u);
  EXPECT_LT(ctx.usage().ticks, 2000u);
  EXPECT_GE(failures.load(), 1);
}

// --- Executor budget exhaustion -----------------------------------------

/// Two tables whose only join key takes one shared value, so joining
/// them produces a full cross product (n*m rows) — the pathological
/// many-to-many skew the join budget exists for.
DatabaseData MakeCrossJoinDb(std::size_t left_rows, std::size_t right_rows) {
  schema::Database db_schema("skew");
  schema::TableDef lhs("lhs", {});
  lhs.AddColumn({"k", schema::ColumnType::kInt, false});
  lhs.AddColumn({"a", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(lhs));
  schema::TableDef rhs("rhs", {});
  rhs.AddColumn({"k", schema::ColumnType::kInt, false});
  rhs.AddColumn({"b", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(rhs));
  DatabaseData db(std::move(db_schema));
  storage::DataTable* left = db.FindTable("lhs");
  for (std::size_t i = 0; i < left_rows; ++i) {
    EXPECT_TRUE(
        left->AppendRow({Value::Int(1), Value::Int(static_cast<int>(i))})
            .ok());
  }
  storage::DataTable* right = db.FindTable("rhs");
  for (std::size_t i = 0; i < right_rows; ++i) {
    EXPECT_TRUE(
        right->AppendRow({Value::Int(1), Value::Int(static_cast<int>(i))})
            .ok());
  }
  return db;
}

dvq::DVQ ParseDvq(const std::string& text) {
  Result<dvq::DVQ> parsed = dvq::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value_or(dvq::DVQ{});
}

class ExecutorExhaustion : public ::testing::TestWithParam<exec::JoinStrategy> {
};

TEST_P(ExecutorExhaustion, CrossJoinTripsJoinBudgetCleanly) {
  DatabaseData db = MakeCrossJoinDb(100, 100);  // 10,000 join rows
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT a , b FROM lhs JOIN rhs ON lhs.k = rhs.k");
  GuardLimits limits;
  limits.join_budget = 1000;
  ExecContext guard(limits);
  ExecOptions options;
  options.join_strategy = GetParam();
  options.context = &guard;
  Result<ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(guard.exhausted());
  // No partial result escaped and storage is untouched.
  EXPECT_EQ(db.FindTable("lhs")->num_rows(), 100u);
  EXPECT_EQ(db.FindTable("rhs")->num_rows(), 100u);
  // Unguarded, the same query completes with the full cross product.
  ExecOptions unguarded;
  unguarded.join_strategy = GetParam();
  Result<ResultSet> full = Execute(dvq, db, unguarded);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().num_rows(), 10'000u);
}

TEST_P(ExecutorExhaustion, CrossJoinTripsRowBudgetMidOperator) {
  DatabaseData db = MakeCrossJoinDb(50, 50);
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT a , b FROM lhs JOIN rhs ON lhs.k = rhs.k");
  GuardLimits limits;
  limits.row_budget = 600;  // base scans cost 100; the join busts it
  ExecContext guard(limits);
  ExecOptions options;
  options.join_strategy = GetParam();
  options.context = &guard;
  Result<ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  // The trip happened mid-join: more than the scans, less than the full
  // product.
  ExecContext::Usage u = guard.usage();
  EXPECT_GT(u.rows, 100u);
  EXPECT_LT(u.rows, 2600u);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, ExecutorExhaustion,
                         ::testing::Values(exec::JoinStrategy::kHashJoin,
                                           exec::JoinStrategy::kNestedLoop));

TEST(ExecutorGuard, HighCardinalityGroupByTripsMemoryBudget) {
  // Every row is its own group: group-by materializes one group per row.
  schema::Database db_schema("wide");
  schema::TableDef t("t", {});
  t.AddColumn({"id", schema::ColumnType::kInt, false});
  t.AddColumn({"v", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(t));
  DatabaseData db(std::move(db_schema));
  storage::DataTable* table = db.FindTable("t");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value::Int(i), Value::Int(i % 7)}).ok());
  }
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT id , COUNT(*) FROM t GROUP BY id");
  GuardLimits limits;
  // Enough for the scan (500 rows * 2 cells) but not for 500 more groups
  // of 3 accounted cells each.
  limits.memory_budget = (500 * 2 + 100 * 3) * kAccountedBytesPerCell;
  ExecContext guard(limits);
  ExecOptions options;
  options.context = &guard;
  Result<exec::ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(table->num_rows(), 500u);  // storage untouched
  // Unguarded, the query succeeds with one group per row.
  Result<exec::ResultSet> full = Execute(dvq, db);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().num_rows(), 500u);
}

TEST(ExecutorGuard, DeadlineTripsLongScan) {
  DatabaseData db = MakeCrossJoinDb(200, 1);
  dvq::DVQ dvq = ParseDvq("Visualize BAR SELECT k , a FROM lhs");
  GuardLimits limits;
  limits.deadline_ticks = 50;
  ExecContext guard(limits);
  ExecOptions options;
  options.context = &guard;
  Result<ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutorGuard, CancellationAbortsExecution) {
  DatabaseData db = MakeCrossJoinDb(100, 100);
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT a , b FROM lhs JOIN rhs ON lhs.k = rhs.k");
  ExecContext guard;  // unlimited budgets, cancellation only
  guard.RequestCancel();
  ExecOptions options;
  options.context = &guard;
  Result<ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
}

TEST(ExecutorGuard, SubqueryWorkCountsAgainstParentBudget) {
  DatabaseData db = MakeCrossJoinDb(100, 1);
  // The scalar subquery scans lhs again; with a deadline sized for one
  // scan only, the subquery's work must trip the shared context.
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT k , a FROM lhs WHERE a >= ( SELECT a FROM "
      "lhs )");
  GuardLimits limits;
  limits.deadline_ticks = 150;
  ExecContext guard(limits);
  ExecOptions options;
  options.context = &guard;
  Result<ResultSet> rs = Execute(dvq, db, options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
  // With a deadline that covers both scans the query succeeds.
  ExecContext roomy_guard(GuardLimits{.deadline_ticks = 1'000'000});
  options.context = &roomy_guard;
  EXPECT_TRUE(Execute(dvq, db, options).ok());
}

TEST(ExecutorGuard, GuardedUnlimitedMatchesUnguarded) {
  DatabaseData db = MakeCrossJoinDb(20, 5);
  dvq::DVQ dvq = ParseDvq(
      "Visualize BAR SELECT a , COUNT(*) FROM lhs JOIN rhs ON lhs.k = "
      "rhs.k GROUP BY a ORDER BY a ASC");
  Result<ResultSet> unguarded = Execute(dvq, db);
  ExecContext guard;  // context present, no limits
  ExecOptions options;
  options.context = &guard;
  Result<ResultSet> guarded = Execute(dvq, db, options);
  ASSERT_TRUE(unguarded.ok());
  ASSERT_TRUE(guarded.ok());
  EXPECT_EQ(unguarded.value().column_names, guarded.value().column_names);
  EXPECT_EQ(unguarded.value().rows, guarded.value().rows);
}

}  // namespace
}  // namespace gred
