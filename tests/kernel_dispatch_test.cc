// Dispatch suite for the SIMD dot kernel and the aligned SoA layout.
//
// The contract under test: every compiled-and-supported dispatch target
// (scalar, portable, avx2, neon) computes the scalar reference
// DotBlocked's exact arithmetic DAG, so Dot() returns bit-identical
// doubles no matter which target the CPU selects — retrieval results
// cannot change across machines or GRED_DOT_TARGET overrides. The
// integer code kernel (DotCodes) is exact by construction and must
// match a naive int64 sum on every target. The concurrent hammer runs
// under TSan via scripts/tier1.sh: the one-time target resolution and
// concurrent Dot() calls must be race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "embed/aligned_buffer.h"
#include "embed/flat_vectors.h"
#include "embed/kernel.h"
#include "embed/quantized_vectors.h"
#include "util/rng.h"

namespace gred::embed {
namespace {

Vector RandomVector(Rng* rng, std::size_t dim) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng->NextDouble() - 0.5);
  return v;
}

TEST(KernelDispatch, ScalarTargetAlwaysSupported) {
  std::vector<DotTarget> targets = SupportedDotTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_NE(std::find(targets.begin(), targets.end(), DotTarget::kScalar),
            targets.end());
  // The active target must be one of the supported ones.
  EXPECT_NE(std::find(targets.begin(), targets.end(), ActiveDotTarget()),
            targets.end());
  // Names are distinct and stable (they key GRED_DOT_TARGET).
  std::set<std::string> names;
  for (DotTarget target : targets) names.insert(DotTargetName(target));
  EXPECT_EQ(names.size(), targets.size());
}

TEST(KernelDispatch, AllTargetsBitIdenticalToScalarReference) {
  // Bit-identical, not approximately equal: every target reproduces
  // DotBlocked's four-chain DAG exactly (float->double products are
  // exact, so even FMA rounds identically to multiply-then-add).
  Rng rng(101);
  for (std::size_t dim : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{4}, std::size_t{7}, std::size_t{8},
                          std::size_t{15}, std::size_t{16}, std::size_t{17},
                          std::size_t{64}, std::size_t{511}, std::size_t{512},
                          std::size_t{513}}) {
    Vector a = RandomVector(&rng, dim);
    Vector b = RandomVector(&rng, dim);
    const double reference = DotBlocked(a.data(), b.data(), dim);
    for (DotTarget target : SupportedDotTargets()) {
      EXPECT_EQ(DotWithTarget(target, a.data(), b.data(), dim), reference)
          << "dim " << dim << " target " << DotTargetName(target);
    }
    EXPECT_EQ(Dot(a.data(), b.data(), dim), reference) << "dim " << dim;
  }
}

TEST(KernelDispatch, DotCodesExactOnAllTargets) {
  Rng rng(202);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                        std::size_t{16}, std::size_t{17}, std::size_t{31},
                        std::size_t{32}, std::size_t{100}, std::size_t{512}}) {
    std::vector<std::uint8_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.NextIndex(256));
      b[i] = static_cast<std::uint8_t>(rng.NextIndex(256));
    }
    std::int64_t reference = 0;
    for (std::size_t i = 0; i < n; ++i) {
      reference += static_cast<std::int64_t>(a[i]) * b[i];
    }
    for (DotTarget target : SupportedDotTargets()) {
      EXPECT_EQ(DotCodesWithTarget(target, a.data(), b.data(), n), reference)
          << "n " << n << " target " << DotTargetName(target);
    }
    EXPECT_EQ(DotCodes(a.data(), b.data(), n), reference);
  }
}

TEST(KernelDispatch, DotCodesSaturatedRowsAtOverflowBound) {
  // All-255 rows at the documented kMaxCodeDot length: the worst case
  // the int32 lane analysis in kernel.h promises to survive.
  std::vector<std::uint8_t> a(kMaxCodeDot, 255), b(kMaxCodeDot, 255);
  const std::int64_t expected =
      static_cast<std::int64_t>(kMaxCodeDot) * 255 * 255;
  for (DotTarget target : SupportedDotTargets()) {
    EXPECT_EQ(DotCodesWithTarget(target, a.data(), b.data(), kMaxCodeDot),
              expected)
        << DotTargetName(target);
  }
}

TEST(KernelDispatch, ConcurrentDispatchIsRaceFreeAndConsistent) {
  // Run under TSan by scripts/tier1.sh: concurrent Dot() calls (racing
  // through the one-time target resolution on a cold process) must be
  // data-race-free and agree with the scalar reference.
  Rng rng(303);
  Vector a = RandomVector(&rng, 257);
  Vector b = RandomVector(&rng, 257);
  const double reference = DotBlocked(a.data(), b.data(), a.size());
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        if (Dot(a.data(), b.data(), a.size()) != reference) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AlignedLayout, AlignedStrideRoundsUpToRowAlignment) {
  EXPECT_EQ(AlignedStride(0, sizeof(float)), 0u);
  EXPECT_EQ(AlignedStride(1, sizeof(float)), 8u);   // 32 bytes / 4
  EXPECT_EQ(AlignedStride(8, sizeof(float)), 8u);
  EXPECT_EQ(AlignedStride(9, sizeof(float)), 16u);
  EXPECT_EQ(AlignedStride(1, 1), 32u);              // uint8 codes
  EXPECT_EQ(AlignedStride(32, 1), 32u);
  EXPECT_EQ(AlignedStride(33, 1), 64u);
}

TEST(AlignedLayout, FlatVectorsRowsStartOnAlignedBoundaries) {
  Rng rng(404);
  for (std::size_t dim : {std::size_t{3}, std::size_t{17}, std::size_t{64},
                          std::size_t{129}}) {
    FlatVectors rows;
    for (int i = 0; i < 9; ++i) rows.Append(RandomVector(&rng, dim));
    EXPECT_EQ(rows.stride() % FlatVectors::kRowAlignFloats, 0u)
        << "stride invariant at dim " << dim;
    EXPECT_GE(rows.stride(), dim);
    EXPECT_EQ(rows.max_dim(), dim);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rows.row(i)) %
                    kRowAlignBytes,
                0u)
          << "row " << i << " at dim " << dim;
      EXPECT_EQ(rows.row_size(i), dim);
    }
  }
}

TEST(AlignedLayout, MixedDimensionRepackKeepsAlignmentAndContents) {
  Rng rng(505);
  FlatVectors rows;
  std::vector<Vector> originals;
  for (std::size_t dim : {std::size_t{4}, std::size_t{40}, std::size_t{12},
                          std::size_t{100}, std::size_t{7}}) {
    originals.push_back(RandomVector(&rng, dim));
    rows.Append(originals.back());
  }
  EXPECT_EQ(rows.max_dim(), 100u);
  EXPECT_EQ(rows.stride() % FlatVectors::kRowAlignFloats, 0u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rows.row(i)) % kRowAlignBytes,
              0u);
    EXPECT_EQ(rows.CopyRow(i), originals[i]);  // re-pack preserved rows
    // Padding past the true dimension is zero (dot-product neutral).
    for (std::size_t d = rows.row_size(i); d < rows.stride(); ++d) {
      EXPECT_EQ(rows.row(i)[d], 0.0f);
    }
  }
}

TEST(AlignedLayout, QuantizedRowsShareTheStrideInvariant) {
  Rng rng(606);
  FlatVectors rows;
  for (int i = 0; i < 5; ++i) rows.Append(RandomVector(&rng, 48));
  QuantizedVectors codes;
  codes.AppendRows(rows, 0);
  EXPECT_EQ(codes.size(), rows.size());
  EXPECT_EQ(codes.stride() % kRowAlignBytes, 0u);
  EXPECT_GE(codes.stride(), 48u);
}

}  // namespace
}  // namespace gred::embed
