// Unit tests for schema definitions, lookup and validation.

#include <gtest/gtest.h>

#include "schema/schema.h"

namespace gred::schema {
namespace {

Database MakeHrSchema() {
  Database db("hr");
  TableDef departments("departments", {});
  departments.AddColumn({"department_id", ColumnType::kInt, true});
  departments.AddColumn({"department_name", ColumnType::kText, false});
  db.AddTable(std::move(departments));
  TableDef employees("employees", {});
  employees.AddColumn({"employee_id", ColumnType::kInt, true});
  employees.AddColumn({"salary", ColumnType::kInt, false});
  employees.AddColumn({"hire_date", ColumnType::kDate, false});
  employees.AddColumn({"department_id", ColumnType::kInt, false});
  db.AddTable(std::move(employees));
  ForeignKey fk;
  fk.from_table = "employees";
  fk.from_column = "department_id";
  fk.to_table = "departments";
  fk.to_column = "department_id";
  db.AddForeignKey(std::move(fk));
  return db;
}

TEST(Schema, ColumnTypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt), "Number");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kReal), "Number");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kText), "Text");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "Time");
}

TEST(Schema, TableColumnLookupIsCaseInsensitive) {
  Database db = MakeHrSchema();
  const TableDef* employees = db.FindTable("EMPLOYEES");
  ASSERT_NE(employees, nullptr);
  EXPECT_NE(employees->FindColumn("Hire_Date"), nullptr);
  EXPECT_EQ(employees->FindColumn("wage"), nullptr);
  EXPECT_EQ(employees->ColumnIndex("salary"), 1u);
  EXPECT_FALSE(employees->ColumnIndex("missing").has_value());
}

TEST(Schema, FindColumnAnywherePrefersTableOrder) {
  Database db = MakeHrSchema();
  auto [table, column] = db.FindColumnAnywhere("department_id");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->name(), "departments");
  ASSERT_NE(column, nullptr);
  EXPECT_EQ(column->name, "department_id");
  EXPECT_EQ(db.FindColumnAnywhere("nothing").first, nullptr);
}

TEST(Schema, HasColumn) {
  Database db = MakeHrSchema();
  EXPECT_TRUE(db.HasColumn("SALARY"));
  EXPECT_FALSE(db.HasColumn("wage"));
}

TEST(Schema, AllColumnNamesInTableOrder) {
  Database db = MakeHrSchema();
  std::vector<std::string> names = db.AllColumnNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "department_id");
  EXPECT_EQ(names[2], "employee_id");
  EXPECT_EQ(db.total_columns(), 6u);
}

TEST(Schema, RenderSchemaPromptFormat) {
  Database db = MakeHrSchema();
  std::string prompt = db.RenderSchemaPrompt();
  EXPECT_NE(prompt.find("# Table departments , columns = [ * , "
                        "department_id , department_name ]"),
            std::string::npos);
  EXPECT_NE(prompt.find("# Foreign_keys = [ employees.department_id = "
                        "departments.department_id ]"),
            std::string::npos);
}

TEST(Schema, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(MakeHrSchema().Validate().ok());
}

TEST(Schema, ValidateRejectsDuplicateTables) {
  Database db("d");
  TableDef a("t", {});
  a.AddColumn({"x", ColumnType::kInt, false});
  db.AddTable(a);
  db.AddTable(a);
  EXPECT_FALSE(db.Validate().ok());
}

TEST(Schema, ValidateRejectsDuplicateColumns) {
  Database db("d");
  TableDef t("t", {});
  t.AddColumn({"x", ColumnType::kInt, false});
  t.AddColumn({"X", ColumnType::kText, false});  // case-insensitive dup
  db.AddTable(std::move(t));
  EXPECT_FALSE(db.Validate().ok());
}

TEST(Schema, ValidateRejectsEmptyTable) {
  Database db("d");
  db.AddTable(TableDef("empty", {}));
  EXPECT_FALSE(db.Validate().ok());
}

TEST(Schema, ValidateRejectsDanglingForeignKey) {
  Database db = MakeHrSchema();
  ForeignKey bad;
  bad.from_table = "employees";
  bad.from_column = "salary";
  bad.to_table = "missing_table";
  bad.to_column = "id";
  db.AddForeignKey(std::move(bad));
  EXPECT_FALSE(db.Validate().ok());
}

TEST(Schema, ValidateRejectsMissingFkColumn) {
  Database db = MakeHrSchema();
  ForeignKey bad;
  bad.from_table = "employees";
  bad.from_column = "no_such_col";
  bad.to_table = "departments";
  bad.to_column = "department_id";
  db.AddForeignKey(std::move(bad));
  EXPECT_FALSE(db.Validate().ok());
}

TEST(Schema, CatalogLookup) {
  Catalog catalog;
  catalog.AddDatabase(MakeHrSchema());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_NE(catalog.FindDatabase("HR"), nullptr);
  EXPECT_EQ(catalog.FindDatabase("other"), nullptr);
}

}  // namespace
}  // namespace gred::schema
