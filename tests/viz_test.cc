// Unit tests for the chart pipeline: DVQ -> executed data -> Vega-Lite /
// ASCII.

#include <gtest/gtest.h>

#include "dvq/parser.h"
#include "viz/chart.h"
#include "viz/echarts.h"

namespace gred::viz {
namespace {

using storage::Value;

storage::DatabaseData MakeDb() {
  schema::Database db_schema("shop");
  schema::TableDef products("products", {});
  products.AddColumn({"category", schema::ColumnType::kText, false});
  products.AddColumn({"price", schema::ColumnType::kReal, false});
  products.AddColumn({"stock", schema::ColumnType::kInt, false});
  db_schema.AddTable(std::move(products));
  storage::DatabaseData db(std::move(db_schema));
  storage::DataTable* t = db.FindTable("products");
  EXPECT_TRUE(
      t->AppendRow({Value::Text("toys"), Value::Real(9.5), Value::Int(4)})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Text("books"), Value::Real(12.0), Value::Int(7)})
          .ok());
  EXPECT_TRUE(
      t->AppendRow({Value::Text("toys"), Value::Real(3.0), Value::Int(2)})
          .ok());
  return db;
}

dvq::DVQ D(const std::string& text) {
  Result<dvq::DVQ> q = dvq::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.value_or(dvq::DVQ{});
}

TEST(Chart, BuildsFromValidDvq) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT category , SUM(price) FROM products GROUP "
        "BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().type, dvq::ChartType::kBar);
  EXPECT_EQ(chart.value().x_label, "category");
  EXPECT_EQ(chart.value().y_label, "SUM(price)");
  EXPECT_EQ(chart.value().data.num_rows(), 2u);
}

TEST(Chart, FailsOnHallucinatedColumn) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT genre , SUM(price) FROM products GROUP BY "
        "genre"),
      db);
  EXPECT_FALSE(chart.ok());  // the paper's "no chart" outcome
}

TEST(Chart, SeriesLabelForGroupedCharts) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize STACKED BAR SELECT category , SUM(price) , category "
        "FROM products GROUP BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart.value().series_label, "category");
}

TEST(VegaLite, BarSpecShape) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT category , stock FROM products"), db);
  ASSERT_TRUE(chart.ok());
  json::Value spec = ToVegaLite(chart.value());
  EXPECT_EQ(spec.Find("mark")->string_value(), "bar");
  const json::Value* encoding = spec.Find("encoding");
  ASSERT_NE(encoding, nullptr);
  EXPECT_EQ(encoding->Find("x")->Find("type")->string_value(), "nominal");
  EXPECT_EQ(encoding->Find("y")->Find("type")->string_value(),
            "quantitative");
  const json::Value* data = spec.Find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->Find("values")->size(), 3u);
}

TEST(VegaLite, PieUsesThetaEncoding) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize PIE SELECT category , COUNT(category) FROM products "
        "GROUP BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  json::Value spec = ToVegaLite(chart.value());
  EXPECT_EQ(spec.Find("mark")->string_value(), "arc");
  EXPECT_NE(spec.Find("encoding")->Find("theta"), nullptr);
  EXPECT_EQ(spec.Find("encoding")->Find("x"), nullptr);
}

TEST(VegaLite, ScatterIsQuantitativeBothAxes) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize SCATTER SELECT price , stock FROM products"), db);
  ASSERT_TRUE(chart.ok());
  json::Value spec = ToVegaLite(chart.value());
  EXPECT_EQ(spec.Find("mark")->string_value(), "point");
  EXPECT_EQ(
      spec.Find("encoding")->Find("x")->Find("type")->string_value(),
      "quantitative");
}

TEST(Ascii, BarRenderingContainsLabelsAndBars) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT category , SUM(stock) FROM products GROUP "
        "BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  std::string art = RenderAscii(chart.value(), 20);
  EXPECT_NE(art.find("toys"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Ascii, LineRenderingHasGrid) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize SCATTER SELECT price , stock FROM products"), db);
  ASSERT_TRUE(chart.ok());
  std::string art = RenderAscii(chart.value(), 30);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("+"), std::string::npos);
}

TEST(Ascii, EmptyResult) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT category , price FROM products WHERE price "
        "> 100"),
      db);
  ASSERT_TRUE(chart.ok());
  EXPECT_NE(RenderAscii(chart.value()).find("(no data)"),
            std::string::npos);
}

TEST(ECharts, BarOptionShape) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize BAR SELECT category , SUM(price) FROM products GROUP "
        "BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  json::Value option = ToECharts(chart.value());
  EXPECT_EQ(option.Find("xAxis")->Find("type")->string_value(), "category");
  EXPECT_EQ(option.Find("series")->at(0).Find("type")->string_value(),
            "bar");
  EXPECT_EQ(option.Find("xAxis")->Find("data")->size(), 2u);
}

TEST(ECharts, PieUsesNameValuePairs) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize PIE SELECT category , COUNT(category) FROM products "
        "GROUP BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  json::Value option = ToECharts(chart.value());
  const json::Value& series = option.Find("series")->at(0);
  EXPECT_EQ(series.Find("type")->string_value(), "pie");
  EXPECT_NE(series.Find("data")->at(0).Find("name"), nullptr);
  EXPECT_EQ(option.Find("xAxis"), nullptr);
}

TEST(ECharts, StackedBarSplitsSeriesWithStackKey) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize STACKED BAR SELECT category , SUM(price) , category "
        "FROM products GROUP BY category"),
      db);
  ASSERT_TRUE(chart.ok());
  json::Value option = ToECharts(chart.value());
  const json::Value* series = option.Find("series");
  EXPECT_GE(series->size(), 2u);
  EXPECT_EQ(series->at(0).Find("stack")->string_value(), "total");
  // Category-aligned data arrays match the x-axis length.
  EXPECT_EQ(series->at(0).Find("data")->size(),
            option.Find("xAxis")->Find("data")->size());
}

TEST(ECharts, ScatterEmitsPairs) {
  storage::DatabaseData db = MakeDb();
  Result<Chart> chart = BuildChart(
      D("Visualize SCATTER SELECT price , stock FROM products"), db);
  ASSERT_TRUE(chart.ok());
  json::Value option = ToECharts(chart.value());
  EXPECT_EQ(option.Find("xAxis")->Find("type")->string_value(), "value");
  const json::Value& point =
      option.Find("series")->at(0).Find("data")->at(0);
  EXPECT_EQ(point.size(), 2u);
}

}  // namespace
}  // namespace gred::viz
