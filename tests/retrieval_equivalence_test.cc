// Equivalence suite for the flat-layout retrieval kernel.
//
// The flat SoA store, blocked dot kernel, bounded top-k heap, and batched
// scan must return bit-identical hits (scores AND order) to a naive
// reference — materialize every candidate, full sort, truncate — across
// randomized inputs and the edge cases that historically bite top-k
// implementations (empty store, k=0, k>size, duplicate vectors, zero
// vectors). The CachingEmbedder is hammered from many threads (run under
// TSan by scripts/tier1.sh) and must behave exactly like its inner
// embedder.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dataset/benchmark.h"
#include "embed/ann_index.h"
#include "embed/caching_embedder.h"
#include "embed/embedder.h"
#include "embed/kernel.h"
#include "embed/retrieval_index.h"
#include "embed/vector_store.h"
#include "util/rng.h"

namespace gred::embed {
namespace {

/// The naive reference the kernel must match bit-for-bit: score every
/// stored vector (CosineSimilarity contract: dimension mismatch and
/// empty vectors score 0), sort all hits best-first with the shared
/// ordering, truncate to k. This is the seed implementation's shape —
/// O(n) materialization + full sort — with the shared DotBlocked kernel
/// substituted for its scalar loop.
std::vector<Hit> NaiveTopK(const std::vector<Vector>& raw_vectors,
                           const Vector& raw_query, std::size_t k) {
  std::vector<Vector> vectors = raw_vectors;
  for (Vector& v : vectors) L2Normalize(&v);
  Vector q = raw_query;
  L2Normalize(&q);
  std::vector<Hit> hits;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    const Vector& v = vectors[i];
    double score = v.size() == q.size() && !q.empty()
                       ? DotBlocked(v.data(), q.data(), q.size())
                       : 0.0;
    hits.push_back(Hit{i, score});
  }
  std::sort(hits.begin(), hits.end(), HitBetter);
  hits.resize(std::min(k, hits.size()));
  return hits;
}

Vector RandomVector(Rng* rng, std::size_t dim) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng->NextDouble() - 0.5);
  return v;
}

void ExpectBitIdentical(const std::vector<Hit>& actual,
                        const std::vector<Hit>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].index, expected[i].index) << "rank " << i;
    // Bit-identical, not approximately equal: same kernel, same sums.
    EXPECT_EQ(actual[i].score, expected[i].score) << "rank " << i;
  }
}

TEST(FlatStoreEquivalence, RandomizedAgainstNaiveReference) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    for (std::size_t dim : {3u, 17u, 64u, 512u}) {
      for (std::size_t n : {0u, 1u, 2u, 257u}) {
        Rng rng(seed * 1000 + dim * 10 + n);
        std::vector<Vector> raw;
        VectorStore store;
        for (std::size_t i = 0; i < n; ++i) {
          raw.push_back(RandomVector(&rng, dim));
          store.Add(raw.back());
        }
        Vector query = RandomVector(&rng, dim);
        for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{10},
                              n, n + 7}) {
          ExpectBitIdentical(store.TopK(query, k), NaiveTopK(raw, query, k));
        }
      }
    }
  }
}

TEST(FlatStoreEquivalence, DuplicateVectorsTieBreakByInsertionIndex) {
  Rng rng(5);
  std::vector<Vector> raw;
  VectorStore store;
  Vector dup = RandomVector(&rng, 32);
  for (int i = 0; i < 50; ++i) {
    // Every third vector is the same: plenty of exact score ties.
    raw.push_back(i % 3 == 0 ? dup : RandomVector(&rng, 32));
    store.Add(raw.back());
  }
  Vector query = dup;
  std::vector<Hit> hits = store.TopK(query, 20);
  ExpectBitIdentical(hits, NaiveTopK(raw, query, 20));
  // The duplicates all score exactly 1 and must appear in insertion order.
  for (std::size_t i = 1; i + 1 < hits.size(); ++i) {
    if (hits[i].score == hits[i - 1].score) {
      EXPECT_LT(hits[i - 1].index, hits[i].index);
    }
  }
}

TEST(FlatStoreEquivalence, ZeroVectorsScoreZeroAndRankDeterministically) {
  Rng rng(13);
  std::vector<Vector> raw;
  VectorStore store;
  for (int i = 0; i < 20; ++i) {
    raw.push_back(i % 4 == 0 ? Vector(16, 0.0f) : RandomVector(&rng, 16));
    store.Add(raw.back());
  }
  Vector query = RandomVector(&rng, 16);
  ExpectBitIdentical(store.TopK(query, 20), NaiveTopK(raw, query, 20));
  // A zero query scores 0 against everything; order is pure index order.
  std::vector<Hit> zero_hits = store.TopK(Vector(16, 0.0f), 5);
  ASSERT_EQ(zero_hits.size(), 5u);
  for (std::size_t i = 0; i < zero_hits.size(); ++i) {
    EXPECT_EQ(zero_hits[i].index, i);
    EXPECT_EQ(zero_hits[i].score, 0.0);
  }
}

TEST(FlatStoreEquivalence, MixedDimensionsFollowCosineContract) {
  // Rows whose dimension differs from the query score exactly 0 — the
  // seed silently dotted the query against each vector's prefix.
  std::vector<Vector> raw = {{1.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, {0.5f, 0.5f}};
  VectorStore store;
  for (const Vector& v : raw) store.Add(v);
  Vector query = {1.0f, 0.0f};
  ExpectBitIdentical(store.TopK(query, 3), NaiveTopK(raw, query, 3));
  std::vector<Hit> hits = store.TopK(query, 3);
  ASSERT_EQ(hits.size(), 3u);
  for (const Hit& hit : hits) {
    if (hit.index == 1) {
      EXPECT_EQ(hit.score, 0.0);  // dim 3 vs dim 2
    }
  }
}

TEST(FlatStoreEquivalence, BatchedTopKMatchesSingleQueryBitForBit) {
  Rng rng(21);
  VectorStore store;
  for (int i = 0; i < 300; ++i) store.Add(RandomVector(&rng, 48));
  std::vector<Vector> queries;
  for (int i = 0; i < 9; ++i) queries.push_back(RandomVector(&rng, 48));
  queries.push_back(Vector(48, 0.0f));              // zero query
  queries.push_back(RandomVector(&rng, 7));         // wrong dimension
  std::vector<std::vector<Hit>> batched = store.TopKBatch(queries, 10);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectBitIdentical(batched[qi], store.TopK(queries[qi], 10));
  }
}

TEST(FlatStoreEquivalence, DotBlockedMatchesSequentialSum) {
  // The blocked kernel reassociates four double partial sums; for unit
  // vectors that is within ~1e-15 of the seed's strictly sequential sum.
  Rng rng(33);
  for (std::size_t dim : {1u, 5u, 16u, 511u, 512u}) {
    Vector a = RandomVector(&rng, dim);
    Vector b = RandomVector(&rng, dim);
    L2Normalize(&a);
    L2Normalize(&b);
    double sequential = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      sequential += static_cast<double>(a[i]) * b[i];
    }
    EXPECT_NEAR(DotBlocked(a.data(), b.data(), dim), sequential, 1e-12);
  }
}

TEST(FlatStoreEquivalence, IvfProbeAllIsBitIdenticalToExactStore) {
  IvfIndex::Options options;
  options.num_clusters = 6;
  options.num_probes = 6;  // probe everything -> exact
  IvfIndex index(options);
  VectorStore exact;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    Vector v = RandomVector(&rng, 24);
    index.Add(v);
    exact.Add(v);
  }
  index.Build();
  for (int qi = 0; qi < 10; ++qi) {
    Vector q = RandomVector(&rng, 24);
    ExpectBitIdentical(index.TopK(q, 15), exact.TopK(q, 15));
  }
}

TEST(QuantizedEquivalence, ReRankMatchesExactTopKOnSeedCorpus) {
  // The int8 scan's promise: on the benchmark's own NLQ distribution,
  // the widened-shortlist re-rank returns *bit-identical* hits to the
  // exact scan — same indexes, same order, same float-kernel scores.
  // The run here is the ANN differential smoke scripts/tier1.sh drives
  // under ASan+UBSan.
  dataset::BenchmarkOptions options;
  options.train_size = 600;
  options.test_size = 60;
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  SemanticHashEmbedder embedder;
  VectorStore store;
  for (const dataset::Example& ex : suite.train) {
    store.Add(embedder.Embed(ex.nlq));
  }
  store.EnsureQuantized();
  const std::size_t k = 10;
  const std::size_t shortlist = ShortlistSize(k, store.size(), 4, 32);
  for (const dataset::Example& ex : suite.test_nlq) {
    Vector q = embedder.Embed(ex.nlq_rob.empty() ? ex.nlq : ex.nlq_rob);
    ExpectBitIdentical(store.TopKQuantized(q, k, shortlist),
                       store.TopK(q, k));
  }
}

TEST(QuantizedEquivalence, RandomizedReRankMatchesExact) {
  Rng rng(71);
  for (std::size_t n : {std::size_t{1}, std::size_t{50}, std::size_t{400}}) {
    VectorStore store;
    for (std::size_t i = 0; i < n; ++i) store.Add(RandomVector(&rng, 64));
    store.EnsureQuantized();
    for (int qi = 0; qi < 10; ++qi) {
      Vector q = RandomVector(&rng, 64);
      for (std::size_t k : {std::size_t{1}, std::size_t{10}, n}) {
        ExpectBitIdentical(
            store.TopKQuantized(q, k, ShortlistSize(k, n, 4, 32)),
            store.TopK(q, k));
      }
    }
  }
}

TEST(QuantizedEquivalence, DegenerateInputs) {
  VectorStore store;
  store.EnsureQuantized();
  EXPECT_TRUE(store.TopKQuantized({1.0f, 0.0f}, 5, 10).empty());  // empty

  store.Add({1.0f, 0.0f});
  store.Add(Vector(2, 0.0f));  // all-zero row quantizes to scale 0
  store.Add({0.0f, 1.0f});
  store.EnsureQuantized();
  EXPECT_TRUE(store.TopKQuantized({1.0f, 0.0f}, 0, 10).empty());  // k = 0

  // Dimension mismatch: every score exactly 0, index-ordered (the
  // CosineSimilarity contract through the quantized path).
  std::vector<Hit> mismatched =
      store.TopKQuantized({1.0f, 0.0f, 0.0f}, 3, 10);
  ASSERT_EQ(mismatched.size(), 3u);
  for (std::size_t i = 0; i < mismatched.size(); ++i) {
    EXPECT_EQ(mismatched[i].index, i);
    EXPECT_EQ(mismatched[i].score, 0.0);
  }

  // All-zero query: same contract.
  std::vector<Hit> zero = store.TopKQuantized(Vector(2, 0.0f), 3, 10);
  ASSERT_EQ(zero.size(), 3u);
  for (const Hit& hit : zero) EXPECT_EQ(hit.score, 0.0);
}

TEST(IvfEquivalence, QuantizedScanProbeAllMatchesExactStore) {
  // IVF with quantized list scans, probing every cluster: the shortlist
  // covers everything the exact scan sees, so after the exact re-rank
  // the result must be bit-identical to the brute-force store.
  IvfIndex::Options options;
  options.num_clusters = 6;
  options.num_probes = 6;
  options.quantized_scan = true;
  IvfIndex index(options);
  VectorStore exact;
  Rng rng(87);
  for (int i = 0; i < 300; ++i) {
    Vector v = RandomVector(&rng, 24);
    index.Add(v);
    exact.Add(v);
  }
  index.Build();
  for (int qi = 0; qi < 10; ++qi) {
    Vector q = RandomVector(&rng, 24);
    ExpectBitIdentical(index.TopK(q, 15), exact.TopK(q, 15));
  }
}

TEST(IvfEquivalence, DegenerateInputs) {
  IvfIndex::Options options;
  options.num_clusters = 2;
  options.num_probes = 2;
  options.quantized_scan = true;
  IvfIndex index(options);
  EXPECT_TRUE(index.TopK({1.0f, 0.0f}, 5).empty());  // unbuilt
  index.Build();
  EXPECT_TRUE(index.TopK({1.0f, 0.0f}, 5).empty());  // built but empty

  index.Add({1.0f, 0.0f});
  index.Add(Vector(2, 0.0f));  // all-zero vector
  index.Add({0.0f, 1.0f});
  index.Build();
  EXPECT_TRUE(index.TopK({1.0f, 0.0f}, 0).empty());  // k = 0

  std::vector<Hit> mismatched = index.TopK({1.0f, 0.0f, 0.0f}, 3);
  ASSERT_EQ(mismatched.size(), 3u);  // dim mismatch: all zeros, index order
  for (std::size_t i = 0; i < mismatched.size(); ++i) {
    EXPECT_EQ(mismatched[i].index, i);
    EXPECT_EQ(mismatched[i].score, 0.0);
  }

  std::vector<Hit> zero = index.TopK(Vector(2, 0.0f), 3);
  ASSERT_EQ(zero.size(), 3u);
  for (const Hit& hit : zero) EXPECT_EQ(hit.score, 0.0);
}

TEST(RetrievalIndexFacade, ExactBackendBitIdenticalToVectorStore) {
  RetrievalConfig config;  // default: exact
  RetrievalIndex facade(config);
  VectorStore store;
  Rng rng(91);
  for (int i = 0; i < 150; ++i) {
    Vector v = RandomVector(&rng, 32);
    facade.Add(v);
    store.Add(v);
  }
  facade.Seal();
  for (int qi = 0; qi < 8; ++qi) {
    Vector q = RandomVector(&rng, 32);
    ExpectBitIdentical(facade.TopK(q, 12), store.TopK(q, 12));
  }
}

TEST(RetrievalIndexFacade, AllBackendsReturnExactScoresAndAgreeHere) {
  // On a small library every backend's shortlist covers the whole store,
  // so all three must agree bit-for-bit (scores are always exact-kernel
  // scores by the re-rank contract).
  Rng rng(93);
  std::vector<Vector> vectors;
  for (int i = 0; i < 120; ++i) vectors.push_back(RandomVector(&rng, 16));
  std::vector<RetrievalIndex> indexes;
  for (RetrievalBackend backend :
       {RetrievalBackend::kExact, RetrievalBackend::kQuantized,
        RetrievalBackend::kIvf}) {
    RetrievalConfig config;
    config.backend = backend;
    config.ivf.num_clusters = 4;
    config.ivf.num_probes = 4;  // probe everything
    config.ivf.quantized_scan = true;
    indexes.emplace_back(config);
  }
  for (RetrievalIndex& index : indexes) {
    for (const Vector& v : vectors) index.Add(v);
    index.Seal();
    EXPECT_EQ(index.size(), vectors.size());
  }
  for (int qi = 0; qi < 8; ++qi) {
    Vector q = RandomVector(&rng, 16);
    std::vector<Hit> expected = indexes[0].TopK(q, 10);
    ExpectBitIdentical(indexes[1].TopK(q, 10), expected);
    ExpectBitIdentical(indexes[2].TopK(q, 10), expected);
  }
}

TEST(RetrievalIndexFacade, AddAfterSealStaysRetrievableOnEveryBackend) {
  for (RetrievalBackend backend :
       {RetrievalBackend::kExact, RetrievalBackend::kQuantized,
        RetrievalBackend::kIvf}) {
    RetrievalConfig config;
    config.backend = backend;
    config.ivf.num_clusters = 2;
    config.ivf.num_probes = 2;
    RetrievalIndex index(config);
    index.Add({1.0f, 0.0f});
    index.Add({0.7f, 0.7f});
    index.Seal();
    index.Add({0.0f, 1.0f});  // post-seal insert
    std::vector<Hit> hits = index.TopK({0.0f, 1.0f}, 1);
    ASSERT_EQ(hits.size(), 1u)
        << RetrievalBackendName(backend);
    EXPECT_EQ(hits[0].index, 2u) << RetrievalBackendName(backend);
  }
}

TEST(RetrievalIndexFacade, BackendNamesAreStable) {
  EXPECT_STREQ(RetrievalBackendName(RetrievalBackend::kExact), "exact");
  EXPECT_STREQ(RetrievalBackendName(RetrievalBackend::kQuantized),
               "quantized");
  EXPECT_STREQ(RetrievalBackendName(RetrievalBackend::kIvf), "ivf");
}

TEST(CachingEmbedder, IdenticalToInnerEmbedder) {
  SemanticHashEmbedder plain;
  CachingEmbedder cached(std::make_unique<SemanticHashEmbedder>());
  const std::vector<std::string> texts = {
      "show the salary by department", "average price per category", "",
      "show the salary by department"};
  for (const std::string& text : texts) {
    EXPECT_EQ(cached.Embed(text), plain.Embed(text));
  }
  EXPECT_EQ(cached.dimension(), plain.dimension());
  CachingEmbedder::Stats stats = cached.stats();
  EXPECT_EQ(stats.hits + stats.misses, texts.size());
  EXPECT_GE(stats.hits, 1u);  // the repeated text
}

TEST(CachingEmbedder, ConcurrentHammerIsRaceFreeAndDeterministic) {
  // Run under TSan by scripts/tier1.sh: many threads embedding a small,
  // overlapping set of texts must race-freely agree with the uncached
  // embedder on every call.
  CachingEmbedder cached(std::make_unique<SemanticHashEmbedder>());
  SemanticHashEmbedder plain;
  std::vector<std::string> texts;
  std::vector<Vector> expected;
  for (int i = 0; i < 25; ++i) {
    texts.push_back("query number " + std::to_string(i) +
                    " about salary and department");
    expected.push_back(plain.Embed(texts.back()));
  }
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the texts at a different phase so hits and
        // misses interleave across shards.
        std::size_t i = static_cast<std::size_t>((round + t * 7)) %
                        texts.size();
        if (cached.Embed(texts[i]) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
  CachingEmbedder::Stats stats = cached.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds);
  // Every distinct text misses at least once; concurrent first touches
  // may each miss (compute happens outside the lock), so misses can
  // exceed the distinct-text count but never the total.
  EXPECT_GE(stats.misses, texts.size());
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace gred::embed
