// Tests for the static repair engine (analysis::DvqRepairer) and the
// abstract cost estimator (analysis::CostEstimator), DESIGN.md §17.
//
// The repairer is exercised over a deterministic perturbation corpus:
// benchmark DVQs with names misspelled and structure damaged by a
// seeded Rng. The contract under test:
//   * termination at a fixpoint (bounded by RepairOptions::max_repairs),
//   * idempotence (repairing a repaired DVQ accepts zero steps),
//   * lint-clean-or-failure (success ⇔ no error-level diagnostics;
//     failure returns the input untouched),
//   * never-worsens (the returned DVQ never has more error-level
//     diagnostics than the input).
//
// The estimator's contract is the upper bound the serve cost gate
// leans on: for every subquery-free corpus query, the estimate
// dominates the executor's measured ExecContext charges on every
// engine × join-strategy combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/cost_estimator.h"
#include "analysis/repairer.h"
#include "dataset/benchmark.h"
#include "dvq/parser.h"
#include "exec/executor.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred {
namespace {

using dataset::BenchmarkSuite;
using dataset::Example;
using dataset::GeneratedDatabase;

/// One shared corpus (building it dominates the suite's runtime).
const BenchmarkSuite& Corpus() {
  static const BenchmarkSuite* const kSuite = [] {
    dataset::BenchmarkOptions options;
    options.num_databases = 10;
    options.train_size = 120;
    options.test_size = 120;
    return new BenchmarkSuite(dataset::BuildBenchmarkSuite(options));
  }();
  return *kSuite;
}

const GeneratedDatabase* FindDb(const std::vector<GeneratedDatabase>& dbs,
                                const std::string& name) {
  for (const GeneratedDatabase& db : dbs) {
    if (db.data.name() == name) return &db;
  }
  return nullptr;
}

/// Deterministically misspells an identifier: double a character, drop
/// the last one, or swap the first two — whatever keeps it non-empty.
std::string Misspell(const std::string& name, Rng* rng) {
  if (name.size() < 2 || name == "*") return name + "x";
  switch (rng->NextBounded(3)) {
    case 0: {
      std::size_t i = rng->NextIndex(name.size());
      return name.substr(0, i + 1) + name.substr(i);
    }
    case 1:
      return name.substr(0, name.size() - 1);
    default: {
      std::string swapped = name;
      std::swap(swapped[0], swapped[1]);
      return swapped == name ? name + "x" : swapped;
    }
  }
}

/// Pointers to every column name mentioned by the top-level query (the
/// corruption targets; subqueries are left alone so the corpus stays
/// mostly repairable).
std::vector<std::string*> ColumnNames(dvq::Query* q) {
  std::vector<std::string*> out;
  for (dvq::SelectExpr& e : q->select) {
    if (e.col.column != "*") out.push_back(&e.col.column);
  }
  for (dvq::ColumnRef& g : q->group_by) out.push_back(&g.column);
  if (q->order_by.has_value() && q->order_by->expr.col.column != "*") {
    out.push_back(&q->order_by->expr.col.column);
  }
  if (q->bin.has_value()) out.push_back(&q->bin->col.column);
  return out;
}

/// A deterministic lint-breaking corruption of `input`: misspell one
/// column name (and, sometimes, the FROM table). Returns nullopt when
/// there is nothing to corrupt.
std::optional<dvq::DVQ> Corrupt(const dvq::DVQ& input, Rng* rng) {
  dvq::DVQ broken = input;
  std::vector<std::string*> names = ColumnNames(&broken.query);
  if (names.empty()) return std::nullopt;
  std::string* victim = names[rng->NextIndex(names.size())];
  *victim = Misspell(*victim, rng);
  if (rng->NextBool(0.25)) {
    broken.query.from_table = Misspell(broken.query.from_table, rng);
  }
  return broken;
}

std::size_t CountErrors(const std::vector<analysis::Diagnostic>& diagnostics) {
  return static_cast<std::size_t>(std::count_if(
      diagnostics.begin(), diagnostics.end(), [](const analysis::Diagnostic& d) {
        return d.severity == analysis::Severity::kError;
      }));
}

bool HasSubquery(const dvq::Query& q) {
  if (!q.where.has_value()) return false;
  for (const dvq::Predicate& p : q.where->predicates) {
    if (p.subquery != nullptr) return true;
  }
  return false;
}

TEST(Repairer, PerturbationCorpusContract) {
  const BenchmarkSuite& suite = Corpus();
  Rng rng(0xf1f1u);
  std::size_t corrupted = 0;
  std::size_t repaired = 0;
  std::size_t failed = 0;
  for (const Example& example : suite.test_clean) {
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr) << example.db_name;
    std::optional<dvq::DVQ> broken = Corrupt(example.dvq, &rng);
    if (!broken.has_value()) continue;
    ++corrupted;

    analysis::DvqAnalyzer analyzer(&db->data.db_schema());
    const std::size_t errors_before =
        CountErrors(analyzer.Analyze(broken.value()));
    analysis::DvqRepairer repairer(&db->data.db_schema());
    analysis::RepairResult result = repairer.Repair(broken.value());

    // Lint-clean-or-failure, and `remaining` is truthful.
    std::vector<analysis::Diagnostic> recheck = analyzer.Analyze(result.dvq);
    EXPECT_EQ(result.success, !analysis::HasErrors(recheck)) << example.id;
    EXPECT_EQ(result.remaining.size(), recheck.size()) << example.id;

    // Never worsens: on failure the input comes back untouched, so the
    // error count is never above the input's.
    EXPECT_LE(CountErrors(recheck), errors_before) << example.id;
    if (!result.success) {
      ++failed;
      EXPECT_FALSE(result.changed) << example.id;
      EXPECT_EQ(result.dvq.ToString(), broken->ToString()) << example.id;
      continue;
    }
    if (result.changed) ++repaired;

    // Idempotence: a repaired DVQ needs no further repairs.
    analysis::RepairResult again = repairer.Repair(result.dvq);
    EXPECT_TRUE(again.success) << example.id;
    EXPECT_FALSE(again.changed) << example.id;
    EXPECT_TRUE(again.log.empty()) << example.id;
    EXPECT_EQ(again.dvq.ToString(), result.dvq.ToString()) << example.id;

    // Termination bound: the log never exceeds the budget.
    EXPECT_LE(result.log.size(), analysis::RepairOptions{}.max_repairs)
        << example.id;
  }
  // The corpus must actually exercise both outcomes, or the contract
  // checks above are vacuous.
  EXPECT_GE(corrupted, 100u);
  EXPECT_GT(repaired, corrupted / 2) << "repairer rescued too little";
  EXPECT_GT(failed, 0u) << "corpus has no unrepairable mutant";
}

TEST(Repairer, CleanInputIsIdentity) {
  const BenchmarkSuite& suite = Corpus();
  std::size_t checked = 0;
  for (const Example& example : suite.test_clean) {
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr);
    analysis::DvqAnalyzer analyzer(&db->data.db_schema());
    if (!analyzer.Analyze(example.dvq).empty()) continue;
    ++checked;
    analysis::DvqRepairer repairer(&db->data.db_schema());
    analysis::RepairResult result = repairer.Repair(example.dvq);
    EXPECT_TRUE(result.success) << example.id;
    EXPECT_FALSE(result.changed) << example.id;
    EXPECT_TRUE(result.log.empty()) << example.id;
  }
  EXPECT_GE(checked, 50u);
}

TEST(Repairer, StructuralDamageIsRepaired) {
  // Retargeting an aggregate query's GROUP BY to an unrelated column
  // leaves the bare select column ungrouped — error-level DVQ005 — and
  // the repairer completes the grouping.
  const BenchmarkSuite& suite = Corpus();
  std::size_t restored = 0;
  for (const Example& example : suite.test_clean) {
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr);
    analysis::DvqAnalyzer analyzer(&db->data.db_schema());
    if (!analyzer.Analyze(example.dvq).empty()) continue;
    const dvq::Query& q = example.dvq.query;
    if (q.group_by.size() != 1 || !q.joins.empty()) continue;
    const schema::TableDef* table =
        db->data.db_schema().FindTable(q.from_table);
    if (table == nullptr) continue;
    // A replacement grouping column that is no bare select column.
    std::string replacement;
    for (const schema::Column& c : table->columns()) {
      bool selected = std::any_of(
          q.select.begin(), q.select.end(), [&c](const dvq::SelectExpr& e) {
            return strings::EqualsIgnoreCase(e.col.column, c.name);
          });
      if (!selected) {
        replacement = c.name;
        break;
      }
    }
    if (replacement.empty()) continue;
    dvq::DVQ broken = example.dvq;
    broken.query.group_by[0].table.clear();
    broken.query.group_by[0].column = replacement;
    if (!analysis::HasErrors(analyzer.Analyze(broken))) continue;
    analysis::DvqRepairer repairer(&db->data.db_schema());
    analysis::RepairResult result = repairer.Repair(broken);
    EXPECT_TRUE(result.success) << example.id;
    if (result.success) {
      EXPECT_TRUE(result.changed) << example.id;
      ++restored;
    }
  }
  EXPECT_GT(restored, 0u);
}

TEST(Repairer, MaxRepairsBoundsAcceptedSteps) {
  const BenchmarkSuite& suite = Corpus();
  Rng rng(0xabcdu);
  analysis::RepairOptions options;
  options.max_repairs = 1;
  for (const Example& example : suite.test_clean) {
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr);
    std::optional<dvq::DVQ> broken = Corrupt(example.dvq, &rng);
    if (!broken.has_value()) continue;
    analysis::DvqRepairer repairer(&db->data.db_schema(), options);
    analysis::RepairResult result = repairer.Repair(broken.value());
    EXPECT_LE(result.log.size(), 1u) << example.id;
  }
}

// ---------------------------------------------------------------------------
// Cost estimator: provable upper bound on executor charges.

TEST(CostEstimator, UpperBoundsExecutorChargesOnCorpus) {
  const BenchmarkSuite& suite = Corpus();
  std::size_t checked = 0;
  for (const Example& example : suite.test_clean) {
    if (HasSubquery(example.dvq.query)) continue;
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr);
    analysis::CostEstimator estimator(&db->data);
    Result<analysis::CostEstimate> estimate = estimator.Estimate(example.dvq);
    // Corpus DVQs resolve against their own schema, so pricing must too.
    ASSERT_TRUE(estimate.ok())
        << example.id << ": " << estimate.status().ToString();
    ++checked;
    for (exec::Engine engine :
         {exec::Engine::kColumnar, exec::Engine::kRowAtATime}) {
      for (exec::JoinStrategy strategy :
           {exec::JoinStrategy::kHashJoin, exec::JoinStrategy::kNestedLoop}) {
        ExecContext guard;  // unlimited: measure, never trip
        exec::ExecOptions options;
        options.engine = engine;
        options.join_strategy = strategy;
        options.context = &guard;
        (void)exec::Execute(example.dvq, db->data, options);
        ExecContext::Usage used = guard.usage();
        EXPECT_LE(used.ticks, estimate.value().ticks) << example.id;
        EXPECT_LE(used.rows, estimate.value().rows) << example.id;
        EXPECT_LE(used.bytes, estimate.value().bytes) << example.id;
        EXPECT_LE(used.join_rows, estimate.value().join_rows) << example.id;
      }
    }
  }
  EXPECT_GE(checked, 100u);
}

TEST(CostEstimator, SubqueryChargesAreCovered) {
  // The row engine re-executes a scalar subquery once per filtered row;
  // the estimate must absorb that worst case too.
  const BenchmarkSuite& suite = Corpus();
  std::size_t checked = 0;
  for (const Example& example : suite.test_clean) {
    if (!HasSubquery(example.dvq.query)) continue;
    const GeneratedDatabase* db = FindDb(suite.databases, example.db_name);
    ASSERT_NE(db, nullptr);
    analysis::CostEstimator estimator(&db->data);
    Result<analysis::CostEstimate> estimate = estimator.Estimate(example.dvq);
    if (!estimate.ok()) continue;
    ++checked;
    for (exec::Engine engine :
         {exec::Engine::kColumnar, exec::Engine::kRowAtATime}) {
      ExecContext guard;
      exec::ExecOptions options;
      options.engine = engine;
      options.context = &guard;
      (void)exec::Execute(example.dvq, db->data, options);
      ExecContext::Usage used = guard.usage();
      EXPECT_LE(used.ticks, estimate.value().ticks) << example.id;
      EXPECT_LE(used.rows, estimate.value().rows) << example.id;
      EXPECT_LE(used.bytes, estimate.value().bytes) << example.id;
      EXPECT_LE(used.join_rows, estimate.value().join_rows) << example.id;
    }
  }
  // The generator may or may not emit subqueries at this corpus size;
  // when it does, every one must be covered (the loop asserts), and
  // this test is not allowed to silently skip a failing estimate.
  (void)checked;
}

TEST(CostEstimator, ExceedsReportsTheTrippedBudget) {
  analysis::CostEstimate estimate;
  estimate.ticks = 100;
  estimate.rows = 5;
  estimate.bytes = 80;
  estimate.join_rows = 0;
  GuardLimits limits;
  EXPECT_FALSE(estimate.Exceeds(limits));  // unlimited: nothing trips
  limits.deadline_ticks = 99;
  EXPECT_TRUE(estimate.Exceeds(limits));
  EXPECT_EQ(estimate.ExceededBudget(limits), "deadline");
  limits.deadline_ticks = 100;
  EXPECT_FALSE(estimate.Exceeds(limits));  // trip is strictly-greater
  limits.row_budget = 4;
  EXPECT_EQ(estimate.ExceededBudget(limits), "rows");
  limits.row_budget = 0;
  limits.memory_budget = 79;
  EXPECT_EQ(estimate.ExceededBudget(limits), "memory");
}

TEST(CostEstimator, UnknownTableFailsClosed) {
  const BenchmarkSuite& suite = Corpus();
  const GeneratedDatabase& db = suite.databases.front();
  analysis::CostEstimator estimator(&db.data);
  Result<dvq::DVQ> dvq =
      dvq::Parse("Visualize BAR SELECT a , COUNT(a) FROM no_such_table "
                 "GROUP BY a");
  ASSERT_TRUE(dvq.ok());
  EXPECT_FALSE(estimator.Estimate(dvq.value()).ok());
}

}  // namespace
}  // namespace gred
