// Tests for util/json.h: the document model, the Parse/Dump round trip,
// and the hardening the serve wire protocol depends on (DESIGN.md §13).
// Three of these are regressions for parser bugs fixed when untrusted
// bytes started arriving over a socket:
//   * unbounded recursion — a line of a few thousand '[' used to
//     overflow the native stack; now a typed parse error at
//     kMaxJsonDepth;
//   * silent number misparses — "1.2.3" / "1e+e5" used to strtod to a
//     prefix and drop the rest, "+1" parsed though JSON forbids it;
//   * CESU-8 output — "\ud83d\ude00" used to decode as two 3-byte
//     sequences (invalid UTF-8) instead of one 4-byte code point, and
//     lone surrogate halves were passed through.

#include "util/json.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace gred::json {
namespace {

// ---------------------------------------------------------------------------
// Round trip: Parse ∘ Dump is a fixpoint.

/// A nested document exercising every Value kind, exotic numbers and
/// every escape class.
Value MakeNestedDoc() {
  Value inner = Value::Object();
  inner.Set("text", Value::Str("line\nbreak\ttab \"quoted\" back\\slash"));
  inner.Set("ctrl", Value::Str(std::string("bell\x07" "bs\bff\fnul") +
                               std::string(1, '\x01')));
  inner.Set("unicode", Value::Str("caf\xC3\xA9 \xE2\x82\xAC"));  // café €
  Value numbers = Value::Array();
  numbers.Append(Value::Number(0));
  numbers.Append(Value::Number(-1.5));
  numbers.Append(Value::Number(3.14159265358979));
  numbers.Append(Value::Number(1e-12));
  numbers.Append(Value::Number(-2.5e17));
  numbers.Append(Value::Int(1234567890123));
  Value doc = Value::Object();
  doc.Set("null", Value::Null());
  doc.Set("true", Value::Bool(true));
  doc.Set("false", Value::Bool(false));
  doc.Set("numbers", std::move(numbers));
  doc.Set("inner", std::move(inner));
  Value list = Value::Array();
  list.Append(Value::Array());
  list.Append(Value::Object());
  list.Append(Value::Str(""));
  doc.Set("empties", std::move(list));
  return doc;
}

TEST(JsonRoundTrip, ParseDumpFixpoint) {
  Value doc = MakeNestedDoc();
  std::string once = doc.Dump();
  ParseResult parsed = Parse(once);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  std::string twice = parsed.value().Dump();
  EXPECT_EQ(once, twice);
  // And a second full cycle stays fixed.
  ParseResult reparsed = Parse(twice);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(twice, reparsed.value().Dump());
}

TEST(JsonRoundTrip, IndentedDumpReparsesToSameCompactForm) {
  Value doc = MakeNestedDoc();
  ParseResult parsed = Parse(doc.Dump(/*indent=*/2));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(doc.Dump(), parsed.value().Dump());
}

TEST(JsonRoundTrip, BackspaceAndFormfeedUseShortEscapes) {
  // Regression: \b and \f were understood by the parser but dumped via
  // the generic \u00XX path; both directions now use the short forms.
  EXPECT_EQ(Escape("\b\f"), "\\b\\f");
  ParseResult parsed = Parse("\"\\b\\f\"");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string_value(), "\b\f");
  EXPECT_EQ(parsed.value().Dump(), "\"\\b\\f\"");
}

// ---------------------------------------------------------------------------
// Regression 1: recursion depth.

TEST(JsonDepth, DeepArrayNestingIsAParseErrorNotACrash) {
  // A few thousand '[' used to overflow the stack (one native frame per
  // level). Far past the cap, this must return an error.
  std::string bomb(100000, '[');
  ParseResult parsed = Parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("depth"), std::string::npos);
}

TEST(JsonDepth, DeepObjectNestingIsAParseError) {
  std::string bomb;
  for (int i = 0; i < 100000; ++i) bomb += "{\"k\":";
  ParseResult parsed = Parse(bomb);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("depth"), std::string::npos);
}

TEST(JsonDepth, ExactlyAtTheCapParses) {
  // kMaxJsonDepth nested arrays (depth 0..kMaxJsonDepth-1) are fine...
  std::string ok(static_cast<std::size_t>(kMaxJsonDepth), '[');
  ok += std::string(static_cast<std::size_t>(kMaxJsonDepth), ']');
  EXPECT_TRUE(Parse(ok).ok());
  // ...one more level trips the cap.
  std::string over = "[" + ok + "]";
  ParseResult parsed = Parse(over);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("depth"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Regression 2: number validation.

TEST(JsonNumbers, LeadingPlusIsRejected) {
  EXPECT_FALSE(Parse("+1").ok());
  EXPECT_FALSE(Parse("[+1]").ok());
}

TEST(JsonNumbers, GarbageThatStrtodWouldTruncateIsRejected) {
  // The greedy scanner consumes all of these; strtod converts only a
  // prefix. They used to silently misparse ("1.2.3" -> 1.2).
  const char* kGarbage[] = {"1.2.3",  "1e+e5", "1-2",    "1..2",
                            "3e",     "3e+",   "1.2e5e", "--1",
                            "1e5.5",  "0x10",  "-"};
  for (const char* text : kGarbage) {
    EXPECT_FALSE(Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonNumbers, ValidNumbersStillParseExactly) {
  struct Case {
    const char* text;
    double want;
  };
  const Case kCases[] = {
      {"0", 0.0},          {"-0", -0.0},       {"42", 42.0},
      {"-17", -17.0},      {"3.5", 3.5},       {"1e5", 1e5},
      {"1E5", 1e5},        {"1e+5", 1e5},      {"1e-5", 1e-5},
      {"2.5e-3", 2.5e-3},  {"-2.5E+3", -2500.0},
  };
  for (const Case& c : kCases) {
    ParseResult parsed = Parse(c.text);
    ASSERT_TRUE(parsed.ok()) << c.text << ": " << parsed.error();
    EXPECT_DOUBLE_EQ(parsed.value().number_value(), c.want) << c.text;
  }
}

// ---------------------------------------------------------------------------
// Regression 3: \uXXXX surrogate handling.

TEST(JsonUnicode, SurrogatePairDecodesToOne4ByteSequence) {
  // U+1F600 (😀) as a JSON surrogate pair. The old parser emitted the
  // two halves as separate 3-byte sequences (CESU-8, invalid UTF-8).
  ParseResult parsed = Parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string_value(), "\xF0\x9F\x98\x80");
}

TEST(JsonUnicode, LoneSurrogatesAreRejected) {
  EXPECT_FALSE(Parse("\"\\ud83d\"").ok());          // lone high half
  EXPECT_FALSE(Parse("\"\\ude00\"").ok());          // lone low half
  EXPECT_FALSE(Parse("\"\\ud83d x\"").ok());        // high then raw text
  EXPECT_FALSE(Parse("\"\\ud83d\\u0041\"").ok());   // high then non-low
  EXPECT_FALSE(Parse("\"\\ud83d\\ud83d\"").ok());   // high then high
}

TEST(JsonUnicode, BmpEscapesStillDecode) {
  ParseResult parsed = Parse("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().string_value(), "A\xC3\xA9\xE2\x82\xAC");  // Aé€
}

// ---------------------------------------------------------------------------
// Malformed-input table: every entry must fail with a typed error (and,
// under the tier-1 ASan+UBSan pass, without touching invalid memory).

TEST(JsonMalformed, RejectionTable) {
  const char* kMalformed[] = {
      "",                      // empty document
      "   ",                   // whitespace only
      "{",                     // unterminated object
      "[1, 2",                 // unterminated array
      "\"abc",                 // unterminated string
      "\"esc\\",               // truncated escape at end of input
      "\"\\u12",               // truncated \u escape
      "\"\\u12g4\"",           // non-hex in \u escape
      "\"\\q\"",               // unknown escape
      "\"line\nbreak\"",       // raw control char (newline) in string
      "\"tab\tchar\"",         // raw control char (tab) in string
      "{\"a\" 1}",             // missing ':'
      "{\"a\":1,}",            // trailing comma (object)
      "[1,]",                  // trailing comma (array)
      "[1 2]",                 // missing comma
      "{1: 2}",                // non-string key
      "truth",                 // near-literal
      "nul",                   // truncated literal
      "{} {}",                 // trailing content
      "[1]extra",              // trailing content
  };
  for (const char* text : kMalformed) {
    ParseResult parsed = Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_FALSE(parsed.error().empty()) << text;
  }
}

// ---------------------------------------------------------------------------
// Determinism: parsing and dumping the same bytes twice is bit-identical
// (the serve determinism contract builds on this).

TEST(JsonDeterminism, TwoRunsAreByteIdentical) {
  std::vector<std::string> inputs = {
      MakeNestedDoc().Dump(),
      "{\"id\":7,\"nlq\":\"how many caf\\u00e9s per city\",\"ok\":true}",
      "[0.1,0.2,0.30000000000000004,1e300]",
  };
  for (const std::string& text : inputs) {
    ParseResult a = Parse(text);
    ParseResult b = Parse(text);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().Dump(), b.value().Dump());
    EXPECT_EQ(a.value().Dump(2), b.value().Dump(2));
  }
}

// ---------------------------------------------------------------------------
// Document-model basics the serve layer leans on.

TEST(JsonValue, ObjectSetReplacesAndFindLooksUp) {
  Value obj = Value::Object();
  obj.Set("k", Value::Int(1));
  obj.Set("k", Value::Int(2));  // replace, not duplicate
  ASSERT_NE(obj.Find("k"), nullptr);
  EXPECT_EQ(obj.Find("k")->number_value(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
}

TEST(JsonValue, DuplicateKeysInInputKeepLastValue) {
  ParseResult parsed = Parse("{\"a\":1,\"a\":2}");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().Find("a")->number_value(), 2.0);
}

}  // namespace
}  // namespace gred::json
