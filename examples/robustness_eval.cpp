// Robustness evaluation driver: score any model on any test set, with
// per-hardness and per-chart breakdowns.
//
//   $ ./build/examples/robustness_eval [model] [test_set]
//     model:    seq2vis | transformer | rgvisnet | gred   (default gred)
//     test_set: clean | nlq | schema | both               (default both)
//
// Scale via GRED_BENCH_TRAIN_SIZE / GRED_BENCH_TEST_SIZE env vars.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "dataset/benchmark.h"
#include "eval/metrics.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "models/rgvisnet.h"
#include "models/seq2vis.h"
#include "models/transformer.h"
#include "util/table_printer.h"

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && std::atoll(value) > 0
             ? static_cast<std::size_t>(std::atoll(value))
             : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gred;
  std::string model_name = argc > 1 ? argv[1] : "gred";
  std::string set_name = argc > 2 ? argv[2] : "both";

  dataset::BenchmarkOptions options;
  options.train_size = EnvSize("GRED_BENCH_TRAIN_SIZE", 2000);
  options.test_size = EnvSize("GRED_BENCH_TEST_SIZE", 300);
  std::fprintf(stderr, "building suite (%zu train / %zu test)...\n",
               options.train_size, options.test_size);
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;

  llm::SimulatedChatModel llm;
  std::unique_ptr<models::TextToVisModel> model;
  if (model_name == "seq2vis") {
    model = std::make_unique<models::Seq2Vis>(corpus);
  } else if (model_name == "transformer") {
    model = std::make_unique<models::TransformerModel>(corpus);
  } else if (model_name == "rgvisnet") {
    model = std::make_unique<models::RGVisNet>(corpus);
  } else {
    model = std::make_unique<core::Gred>(corpus, &llm);
  }

  const std::vector<dataset::Example>* test = &suite.test_both;
  const std::vector<dataset::GeneratedDatabase>* dbs = &suite.databases_rob;
  if (set_name == "clean") {
    test = &suite.test_clean;
    dbs = &suite.databases;
  } else if (set_name == "nlq") {
    test = &suite.test_nlq;
    dbs = &suite.databases;
  } else if (set_name == "schema") {
    test = &suite.test_schema;
  }

  std::fprintf(stderr, "evaluating %s on %s (%zu examples)...\n",
               model->name().c_str(), set_name.c_str(), test->size());
  eval::EvalResult result = eval::Evaluate(*model, *test, *dbs, set_name);

  std::printf("\n%s on %s\n", result.model_name.c_str(), set_name.c_str());
  TablePrinter totals({"Vis Acc.", "Data Acc.", "Axis Acc.", "Acc.",
                       "Exec Acc.", "Errors"});
  totals.AddRow({FormatPercent(result.counts.VisAcc()),
                 FormatPercent(result.counts.DataAcc()),
                 FormatPercent(result.counts.AxisAcc()),
                 FormatPercent(result.counts.OverallAcc()),
                 FormatPercent(result.counts.ExecutionAcc()),
                 std::to_string(result.counts.errors)});
  std::printf("%s\n", totals.ToString().c_str());

  TablePrinter hardness({"Hardness", "N", "Acc."});
  for (const char* level : {"Easy", "Medium", "Hard", "Extra Hard"}) {
    auto it = result.by_hardness.find(level);
    if (it == result.by_hardness.end()) continue;
    hardness.AddRow({level, std::to_string(it->second.total),
                     FormatPercent(it->second.OverallAcc())});
  }
  std::printf("%s\n", hardness.ToString().c_str());

  TablePrinter charts({"Chart", "N", "Acc."});
  for (const auto& [chart, counts] : result.by_chart) {
    charts.AddRow({chart, std::to_string(counts.total),
                   FormatPercent(counts.OverallAcc())});
  }
  std::printf("%s", charts.ToString().c_str());
  return 0;
}
