// Exports the generated nvBench-Rob benchmark to JSON files so it can be
// consumed by other tooling (or eyeballed):
//
//   $ ./build/examples/dataset_export out_dir
//
// Produces:
//   out_dir/databases.json       clean schemas (+ rename maps)
//   out_dir/train.json           training pairs
//   out_dir/test_clean.json      the four test sets
//   out_dir/test_nlq.json
//   out_dir/test_schema.json
//   out_dir/test_both.json
//   out_dir/sample_specs.json    Vega-Lite specs for the first few targets
//   out_dir/data/<db>.json       full databases (schema + rows), reloadable
//                                via dataset::DatabaseFromJson
//   out_dir/sample_<i>.svg       rendered charts for the first few targets

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "dataset/benchmark.h"
#include "dataset/io.h"
#include "util/strings.h"
#include "util/json.h"
#include "viz/chart.h"
#include "viz/svg.h"

namespace {

using namespace gred;

void WriteFile(const std::string& path, const json::Value& value) {
  Status status = dataset::WriteJsonFile(path, value);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "nvbench_rob_export";
  std::string mkdir = "mkdir -p " + dir;
  if (std::system(mkdir.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  dataset::BenchmarkOptions options;
  options.train_size = 1500;
  options.test_size = 300;
  if (const char* scaled = std::getenv("GRED_BENCH_TRAIN_SIZE")) {
    options.train_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  if (const char* scaled = std::getenv("GRED_BENCH_TEST_SIZE")) {
    options.test_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  std::fprintf(stderr, "building suite...\n");
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);

  json::Value dbs = json::Value::Array();
  for (const dataset::GeneratedDatabase& db : suite.databases) {
    json::Value entry = json::Value::Object();
    entry.Set("name", json::Value::Str(db.data.name()));
    entry.Set("domain", json::Value::Str(db.domain));
    entry.Set("schema",
              json::Value::Str(db.data.db_schema().RenderSchemaPrompt()));
    const dataset::GeneratedDatabase* rob = suite.FindRobDb(db.data.name());
    entry.Set("schema_rob",
              json::Value::Str(rob->data.db_schema().RenderSchemaPrompt()));
    json::Value renames = json::Value::Object();
    const dataset::SchemaRename& map = suite.renames.at(db.data.name());
    for (const auto& [key, renamed] : map.columns) {
      renames.Set(key.first + "." + key.second, json::Value::Str(renamed));
    }
    entry.Set("column_renames", std::move(renames));
    dbs.Append(std::move(entry));
  }
  WriteFile(dir + "/databases.json", dbs);
  WriteFile(dir + "/train.json", dataset::ExamplesToJson(suite.train));
  WriteFile(dir + "/test_clean.json",
            dataset::ExamplesToJson(suite.test_clean));
  WriteFile(dir + "/test_nlq.json", dataset::ExamplesToJson(suite.test_nlq));
  WriteFile(dir + "/test_schema.json",
            dataset::ExamplesToJson(suite.test_schema));
  WriteFile(dir + "/test_both.json", dataset::ExamplesToJson(suite.test_both));

  // Full databases (schema + rows), one file each, reloadable through
  // dataset::DatabaseFromJson.
  std::string data_dir = dir + "/data";
  if (std::system(("mkdir -p " + data_dir).c_str()) == 0) {
    for (std::size_t i = 0; i < 8 && i < suite.databases.size(); ++i) {
      const dataset::GeneratedDatabase& db = suite.databases[i];
      WriteFile(data_dir + "/" + db.data.name() + ".json",
                dataset::DatabaseToJson(db));
    }
  }

  json::Value specs = json::Value::Array();
  for (std::size_t i = 0; i < 8 && i < suite.test_clean.size(); ++i) {
    const dataset::Example& ex = suite.test_clean[i];
    const dataset::GeneratedDatabase* db = suite.FindCleanDb(ex.db_name);
    Result<viz::Chart> chart = viz::BuildChart(ex.dvq, db->data);
    if (!chart.ok()) continue;
    json::Value entry = json::Value::Object();
    entry.Set("id", json::Value::Str(ex.id));
    entry.Set("spec", viz::ToVegaLite(chart.value()));
    specs.Append(std::move(entry));
    std::string svg_path = dir + strings::Format("/sample_%zu.svg", i);
    std::ofstream svg(svg_path);
    svg << viz::RenderSvg(chart.value());
    std::printf("wrote %s\n", svg_path.c_str());
  }
  WriteFile(dir + "/sample_specs.json", specs);
  return 0;
}
