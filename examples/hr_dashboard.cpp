// Domain-specific scenario: an HR analyst asks a handful of natural
// language questions about the employees database and gets a one-page
// SVG dashboard back — the end-to-end workflow the paper's introduction
// motivates.
//
//   $ ./build/examples/hr_dashboard [out.svg]
//
// Questions are deliberately phrased in everyday language (the
// paraphrased register), so this exercises GRED's robustness rather than
// keyword matching.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "util/strings.h"
#include "viz/chart.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace gred;
  std::string out_path = argc > 1 ? argv[1] : "hr_dashboard.svg";

  dataset::BenchmarkOptions options;
  options.train_size = 1200;
  options.test_size = 50;
  if (const char* scaled = std::getenv("GRED_BENCH_TRAIN_SIZE")) {
    options.train_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  std::fprintf(stderr, "building corpus + GRED...\n");
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  const dataset::GeneratedDatabase* hr = suite.FindCleanDb("hr_1");
  if (hr == nullptr) {
    std::fprintf(stderr, "hr_1 database missing\n");
    return 1;
  }

  llm::SimulatedChatModel llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &llm);

  const std::vector<std::string> questions = {
      "Present the mean wage across city as a histogram, with the Y-axis "
      "organized in descending order.",
      "Give me a pie graph that lays out how many staffers over city.",
      "Present the tally of employees across employment day as a line "
      "graph, aggregated per year.",
      "Could you put together a scatter plot relating age with salary?",
  };

  const int tile_w = 640;
  const int tile_h = 400;
  std::string body;
  int row = 0;
  int col = 0;
  std::size_t rendered = 0;
  for (const std::string& question : questions) {
    std::printf("Q: %s\n", question.c_str());
    Result<dvq::DVQ> dvq = gred.Translate(question, hr->data);
    if (!dvq.ok()) {
      std::printf("   (no DVQ: %s)\n", dvq.status().ToString().c_str());
      continue;
    }
    std::printf("   %s\n", dvq.value().ToString().c_str());
    Result<viz::Chart> chart = viz::BuildChart(dvq.value(), hr->data);
    if (!chart.ok()) {
      std::printf("   (no chart: %s)\n", chart.status().ToString().c_str());
      continue;
    }
    viz::SvgOptions svg_options;
    svg_options.width = tile_w;
    svg_options.height = tile_h;
    std::string tile = viz::RenderSvg(chart.value(), svg_options);
    // Strip the standalone document wrapper and place the tile into the
    // dashboard grid.
    std::size_t open_end = tile.find('\n');
    std::size_t close = tile.rfind("</svg>");
    std::string inner = tile.substr(open_end + 1, close - open_end - 1);
    body += strings::Format("<g transform='translate(%d %d)'>\n",
                            col * tile_w, row * tile_h);
    body += inner;
    body += "</g>\n";
    ++rendered;
    if (++col == 2) {
      col = 0;
      ++row;
    }
  }

  const int width = tile_w * 2;
  const int height = tile_h * (col == 0 ? row : row + 1);
  std::ofstream out(out_path);
  out << strings::Format(
      "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d' "
      "viewBox='0 0 %d %d'>\n",
      width, height, width, height);
  out << body << "</svg>\n";
  std::printf("dashboard with %zu charts written to %s\n", rendered,
              out_path.c_str());
  return rendered > 0 ? 0 : 1;
}
