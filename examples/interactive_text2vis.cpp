// Interactive text-to-vis shell: pick a database, type questions, get
// DVQs and charts back. Reads from stdin, so it also works scripted:
//
//   $ printf 'use hr_1\nShow a bar chart of the number of employees for
//     each city.\n' | ./build/examples/interactive_text2vis
//
// Commands:
//   use <database>   switch database (default: first)
//   schema           print the active database's schema
//   tables           list databases
//   quit             exit
//   anything else    treated as a natural-language question

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/sim_llm.h"
#include "util/strings.h"
#include "dvq/sql.h"
#include "viz/chart.h"

int main() {
  using namespace gred;

  dataset::BenchmarkOptions options;
  options.train_size = 1200;
  options.test_size = 50;
  if (const char* scaled = std::getenv("GRED_BENCH_TRAIN_SIZE")) {
    options.train_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  std::fprintf(stderr, "loading benchmark + GRED (a few seconds)...\n");
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  llm::SimulatedChatModel llm;
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &llm);

  const dataset::GeneratedDatabase* active = &suite.databases.front();
  std::printf("connected to '%s' (%zu databases available; try 'tables')\n",
              active->data.name().c_str(), suite.databases.size());

  std::string line;
  while (std::printf("text2vis> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string input = strings::Trim(line);
    if (input.empty()) continue;
    if (input == "quit" || input == "exit") break;
    if (input == "tables") {
      for (const dataset::GeneratedDatabase& db : suite.databases) {
        std::printf("  %s (%zu tables)\n", db.data.name().c_str(),
                    db.data.tables().size());
      }
      continue;
    }
    if (input == "schema") {
      std::printf("%s", active->data.db_schema().RenderSchemaPrompt().c_str());
      continue;
    }
    if (strings::StartsWith(input, "use ")) {
      std::string name = strings::Trim(input.substr(4));
      const dataset::GeneratedDatabase* found = suite.FindCleanDb(name);
      if (found == nullptr) {
        std::printf("unknown database '%s'\n", name.c_str());
      } else {
        active = found;
        std::printf("switched to '%s'\n", name.c_str());
      }
      continue;
    }

    Result<dvq::DVQ> dvq = gred.Translate(input, active->data);
    if (!dvq.ok()) {
      std::printf("could not translate: %s\n",
                  dvq.status().ToString().c_str());
      continue;
    }
    std::printf("DVQ: %s\n", dvq.value().ToString().c_str());
    std::printf("SQL: %s\n", dvq::ToSql(dvq.value()).c_str());
    Result<viz::Chart> chart = viz::BuildChart(dvq.value(), active->data);
    if (!chart.ok()) {
      std::printf("no chart produced: %s\n",
                  chart.status().ToString().c_str());
      continue;
    }
    std::printf("%s", viz::RenderAscii(chart.value()).c_str());
  }
  return 0;
}
