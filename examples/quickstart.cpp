// Quickstart: build the benchmark, stand up GRED, translate one natural
// language question into a DVQ, and render the chart.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface: dataset generation, the
// simulated LLM, the three-stage GRED pipeline, execution and rendering.

#include <cstdio>
#include <cstdlib>

#include "dataset/benchmark.h"
#include "gred/gred.h"
#include "llm/recording.h"
#include "llm/sim_llm.h"
#include "viz/chart.h"

int main() {
  using namespace gred;

  // 1. Build a (small) nvBench-Rob benchmark suite: databases, training
  //    pairs and the robustness test sets.
  dataset::BenchmarkOptions options;
  options.train_size = 1000;
  options.test_size = 100;
  if (const char* scaled = std::getenv("GRED_BENCH_TRAIN_SIZE")) {
    options.train_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  if (const char* scaled = std::getenv("GRED_BENCH_TEST_SIZE")) {
    options.test_size = static_cast<std::size_t>(std::atoll(scaled));
  }
  std::printf("Building benchmark suite...\n");
  dataset::BenchmarkSuite suite = dataset::BuildBenchmarkSuite(options);
  std::printf("  %zu databases, %zu training pairs, %zu test pairs\n\n",
              suite.databases.size(), suite.train.size(),
              suite.test_clean.size());

  // 2. Stand up GRED: the simulated chat LLM (wrapped in a transcript
  //    recorder) plus the retrieval indexes built in the preparatory
  //    phase.
  llm::SimulatedChatModel sim;
  llm::RecordingChatModel llm(&sim);
  models::TrainingCorpus corpus;
  corpus.train = &suite.train;
  corpus.databases = &suite.databases;
  core::Gred gred(corpus, &llm);

  // 3. Translate a paraphrased question against a schema-perturbed
  //    database — the hardest robustness setting.
  const dataset::Example& example = suite.test_both.front();
  const dataset::GeneratedDatabase* db = suite.FindRobDb(example.db_name);
  std::printf("Question : %s\n", example.nlq.c_str());
  std::printf("Database : %s\n\n", example.db_name.c_str());

  Result<dvq::DVQ> dvq = gred.Translate(example.nlq, db->data);
  if (!dvq.ok()) {
    std::printf("translation failed: %s\n", dvq.status().ToString().c_str());
    return 1;
  }
  const core::Gred::Trace& trace = gred.last_trace();
  std::printf("Generator : %s\n", trace.dvq_gen.c_str());
  std::printf("Retuner   : %s\n", trace.dvq_rtn.c_str());
  std::printf("Debugger  : %s\n\n", trace.dvq_dbg.c_str());
  std::printf("Target    : %s\n\n", example.DvqText().c_str());

  // 4. Execute the DVQ and render the chart.
  Result<viz::Chart> chart = viz::BuildChart(dvq.value(), db->data);
  if (!chart.ok()) {
    std::printf("no chart produced: %s\n",
                chart.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", viz::RenderAscii(chart.value()).c_str());
  std::printf("Vega-Lite spec:\n%s\n",
              viz::ToVegaLite(chart.value()).Dump(2).c_str());
  std::printf("(%zu LLM calls; set GRED_DUMP_TRANSCRIPT=1 to print the "
              "prompts)\n",
              llm.call_count());
  if (std::getenv("GRED_DUMP_TRANSCRIPT") != nullptr) {
    std::printf("\n%s", llm.Transcript().c_str());
  }
  return 0;
}
