# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(quickstart_smoke "/root/repo/build/examples/quickstart")
set_tests_properties(quickstart_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(robustness_eval_smoke "/root/repo/build/examples/robustness_eval" "gred" "clean")
set_tests_properties(robustness_eval_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(dataset_export_smoke "/root/repo/build/examples/dataset_export" "/root/repo/build/export_smoke")
set_tests_properties(dataset_export_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(hr_dashboard_smoke "/root/repo/build/examples/hr_dashboard" "/root/repo/build/hr_dashboard_smoke.svg")
set_tests_properties(hr_dashboard_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
