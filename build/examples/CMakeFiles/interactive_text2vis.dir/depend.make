# Empty dependencies file for interactive_text2vis.
# This may be replaced when dependencies are built.
