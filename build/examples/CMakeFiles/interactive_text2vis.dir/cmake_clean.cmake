file(REMOVE_RECURSE
  "CMakeFiles/interactive_text2vis.dir/interactive_text2vis.cpp.o"
  "CMakeFiles/interactive_text2vis.dir/interactive_text2vis.cpp.o.d"
  "interactive_text2vis"
  "interactive_text2vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_text2vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
