# Empty compiler generated dependencies file for hr_dashboard.
# This may be replaced when dependencies are built.
