file(REMOVE_RECURSE
  "CMakeFiles/hr_dashboard.dir/hr_dashboard.cpp.o"
  "CMakeFiles/hr_dashboard.dir/hr_dashboard.cpp.o.d"
  "hr_dashboard"
  "hr_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hr_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
