file(REMOVE_RECURSE
  "CMakeFiles/robustness_eval.dir/robustness_eval.cpp.o"
  "CMakeFiles/robustness_eval.dir/robustness_eval.cpp.o.d"
  "robustness_eval"
  "robustness_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
