# Empty compiler generated dependencies file for robustness_eval.
# This may be replaced when dependencies are built.
