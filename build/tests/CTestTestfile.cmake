# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/nl_test[1]_include.cmake")
include("/root/repo/build/tests/dvq_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/exec_reference_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/svg_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/nlq_render_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/llm_test[1]_include.cmake")
include("/root/repo/build/tests/gred_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
