file(REMOVE_RECURSE
  "CMakeFiles/exec_reference_test.dir/exec_reference_test.cc.o"
  "CMakeFiles/exec_reference_test.dir/exec_reference_test.cc.o.d"
  "exec_reference_test"
  "exec_reference_test.pdb"
  "exec_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
