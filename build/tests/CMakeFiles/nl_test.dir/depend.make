# Empty dependencies file for nl_test.
# This may be replaced when dependencies are built.
