file(REMOVE_RECURSE
  "CMakeFiles/nl_test.dir/nl_test.cc.o"
  "CMakeFiles/nl_test.dir/nl_test.cc.o.d"
  "nl_test"
  "nl_test.pdb"
  "nl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
