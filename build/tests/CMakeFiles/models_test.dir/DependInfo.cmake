
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/models_test.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/gred_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/gred/CMakeFiles/gred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/gred_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gred_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gred_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gred_models.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/gred_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/gred_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gred_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/gred_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/dvq/CMakeFiles/gred_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/nl/CMakeFiles/gred_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
