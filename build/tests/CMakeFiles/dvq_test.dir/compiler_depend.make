# Empty compiler generated dependencies file for dvq_test.
# This may be replaced when dependencies are built.
