# Empty dependencies file for gred_test.
# This may be replaced when dependencies are built.
