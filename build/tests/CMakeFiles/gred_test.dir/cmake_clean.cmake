file(REMOVE_RECURSE
  "CMakeFiles/gred_test.dir/gred_test.cc.o"
  "CMakeFiles/gred_test.dir/gred_test.cc.o.d"
  "gred_test"
  "gred_test.pdb"
  "gred_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
