# Empty compiler generated dependencies file for nlq_render_test.
# This may be replaced when dependencies are built.
