file(REMOVE_RECURSE
  "CMakeFiles/nlq_render_test.dir/nlq_render_test.cc.o"
  "CMakeFiles/nlq_render_test.dir/nlq_render_test.cc.o.d"
  "nlq_render_test"
  "nlq_render_test.pdb"
  "nlq_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlq_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
