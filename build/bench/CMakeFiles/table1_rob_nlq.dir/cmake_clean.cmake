file(REMOVE_RECURSE
  "CMakeFiles/table1_rob_nlq.dir/table1_rob_nlq.cc.o"
  "CMakeFiles/table1_rob_nlq.dir/table1_rob_nlq.cc.o.d"
  "table1_rob_nlq"
  "table1_rob_nlq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rob_nlq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
