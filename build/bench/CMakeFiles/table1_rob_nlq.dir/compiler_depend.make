# Empty compiler generated dependencies file for table1_rob_nlq.
# This may be replaced when dependencies are built.
