file(REMOVE_RECURSE
  "../lib/libgred_bench_common.a"
)
