file(REMOVE_RECURSE
  "../lib/libgred_bench_common.a"
  "../lib/libgred_bench_common.pdb"
  "CMakeFiles/gred_bench_common.dir/common.cc.o"
  "CMakeFiles/gred_bench_common.dir/common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
