# Empty dependencies file for gred_bench_common.
# This may be replaced when dependencies are built.
