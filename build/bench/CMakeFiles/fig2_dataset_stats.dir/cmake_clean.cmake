file(REMOVE_RECURSE
  "CMakeFiles/fig2_dataset_stats.dir/fig2_dataset_stats.cc.o"
  "CMakeFiles/fig2_dataset_stats.dir/fig2_dataset_stats.cc.o.d"
  "fig2_dataset_stats"
  "fig2_dataset_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dataset_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
