# Empty compiler generated dependencies file for fig2_dataset_stats.
# This may be replaced when dependencies are built.
