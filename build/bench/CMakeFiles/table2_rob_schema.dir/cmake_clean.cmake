file(REMOVE_RECURSE
  "CMakeFiles/table2_rob_schema.dir/table2_rob_schema.cc.o"
  "CMakeFiles/table2_rob_schema.dir/table2_rob_schema.cc.o.d"
  "table2_rob_schema"
  "table2_rob_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rob_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
