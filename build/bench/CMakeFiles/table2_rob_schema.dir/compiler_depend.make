# Empty compiler generated dependencies file for table2_rob_schema.
# This may be replaced when dependencies are built.
