file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_domain.dir/ablation_cross_domain.cc.o"
  "CMakeFiles/ablation_cross_domain.dir/ablation_cross_domain.cc.o.d"
  "ablation_cross_domain"
  "ablation_cross_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
