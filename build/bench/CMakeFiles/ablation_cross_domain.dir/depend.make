# Empty dependencies file for ablation_cross_domain.
# This may be replaced when dependencies are built.
