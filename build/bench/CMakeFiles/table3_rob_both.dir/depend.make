# Empty dependencies file for table3_rob_both.
# This may be replaced when dependencies are built.
