file(REMOVE_RECURSE
  "CMakeFiles/table3_rob_both.dir/table3_rob_both.cc.o"
  "CMakeFiles/table3_rob_both.dir/table3_rob_both.cc.o.d"
  "table3_rob_both"
  "table3_rob_both.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rob_both.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
