file(REMOVE_RECURSE
  "CMakeFiles/table5_case_study.dir/table5_case_study.cc.o"
  "CMakeFiles/table5_case_study.dir/table5_case_study.cc.o.d"
  "table5_case_study"
  "table5_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
