# Empty compiler generated dependencies file for fig3_robustness_drop.
# This may be replaced when dependencies are built.
