file(REMOVE_RECURSE
  "CMakeFiles/fig3_robustness_drop.dir/fig3_robustness_drop.cc.o"
  "CMakeFiles/fig3_robustness_drop.dir/fig3_robustness_drop.cc.o.d"
  "fig3_robustness_drop"
  "fig3_robustness_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_robustness_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
