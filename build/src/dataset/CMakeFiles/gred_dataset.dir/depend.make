# Empty dependencies file for gred_dataset.
# This may be replaced when dependencies are built.
