file(REMOVE_RECURSE
  "libgred_dataset.a"
)
