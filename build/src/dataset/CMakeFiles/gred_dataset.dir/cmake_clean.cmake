file(REMOVE_RECURSE
  "CMakeFiles/gred_dataset.dir/benchmark.cc.o"
  "CMakeFiles/gred_dataset.dir/benchmark.cc.o.d"
  "CMakeFiles/gred_dataset.dir/db_generator.cc.o"
  "CMakeFiles/gred_dataset.dir/db_generator.cc.o.d"
  "CMakeFiles/gred_dataset.dir/entity_bank.cc.o"
  "CMakeFiles/gred_dataset.dir/entity_bank.cc.o.d"
  "CMakeFiles/gred_dataset.dir/io.cc.o"
  "CMakeFiles/gred_dataset.dir/io.cc.o.d"
  "CMakeFiles/gred_dataset.dir/nlq_render.cc.o"
  "CMakeFiles/gred_dataset.dir/nlq_render.cc.o.d"
  "CMakeFiles/gred_dataset.dir/perturb.cc.o"
  "CMakeFiles/gred_dataset.dir/perturb.cc.o.d"
  "CMakeFiles/gred_dataset.dir/plan.cc.o"
  "CMakeFiles/gred_dataset.dir/plan.cc.o.d"
  "CMakeFiles/gred_dataset.dir/query_generator.cc.o"
  "CMakeFiles/gred_dataset.dir/query_generator.cc.o.d"
  "libgred_dataset.a"
  "libgred_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
