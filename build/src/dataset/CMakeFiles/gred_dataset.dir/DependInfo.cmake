
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/benchmark.cc" "src/dataset/CMakeFiles/gred_dataset.dir/benchmark.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/benchmark.cc.o.d"
  "/root/repo/src/dataset/db_generator.cc" "src/dataset/CMakeFiles/gred_dataset.dir/db_generator.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/db_generator.cc.o.d"
  "/root/repo/src/dataset/entity_bank.cc" "src/dataset/CMakeFiles/gred_dataset.dir/entity_bank.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/entity_bank.cc.o.d"
  "/root/repo/src/dataset/io.cc" "src/dataset/CMakeFiles/gred_dataset.dir/io.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/io.cc.o.d"
  "/root/repo/src/dataset/nlq_render.cc" "src/dataset/CMakeFiles/gred_dataset.dir/nlq_render.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/nlq_render.cc.o.d"
  "/root/repo/src/dataset/perturb.cc" "src/dataset/CMakeFiles/gred_dataset.dir/perturb.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/perturb.cc.o.d"
  "/root/repo/src/dataset/plan.cc" "src/dataset/CMakeFiles/gred_dataset.dir/plan.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/plan.cc.o.d"
  "/root/repo/src/dataset/query_generator.cc" "src/dataset/CMakeFiles/gred_dataset.dir/query_generator.cc.o" "gcc" "src/dataset/CMakeFiles/gred_dataset.dir/query_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dvq/CMakeFiles/gred_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gred_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nl/CMakeFiles/gred_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/gred_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
