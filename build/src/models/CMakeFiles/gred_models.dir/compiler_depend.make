# Empty compiler generated dependencies file for gred_models.
# This may be replaced when dependencies are built.
