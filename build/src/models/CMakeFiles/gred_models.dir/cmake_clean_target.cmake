file(REMOVE_RECURSE
  "libgred_models.a"
)
