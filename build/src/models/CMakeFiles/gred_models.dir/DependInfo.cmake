
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/keywords.cc" "src/models/CMakeFiles/gred_models.dir/keywords.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/keywords.cc.o.d"
  "/root/repo/src/models/linking.cc" "src/models/CMakeFiles/gred_models.dir/linking.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/linking.cc.o.d"
  "/root/repo/src/models/retrieval.cc" "src/models/CMakeFiles/gred_models.dir/retrieval.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/retrieval.cc.o.d"
  "/root/repo/src/models/revision.cc" "src/models/CMakeFiles/gred_models.dir/revision.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/revision.cc.o.d"
  "/root/repo/src/models/rgvisnet.cc" "src/models/CMakeFiles/gred_models.dir/rgvisnet.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/rgvisnet.cc.o.d"
  "/root/repo/src/models/seq2vis.cc" "src/models/CMakeFiles/gred_models.dir/seq2vis.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/seq2vis.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/models/CMakeFiles/gred_models.dir/transformer.cc.o" "gcc" "src/models/CMakeFiles/gred_models.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataset/CMakeFiles/gred_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/gred_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/dvq/CMakeFiles/gred_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/gred_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gred_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/nl/CMakeFiles/gred_nl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
