file(REMOVE_RECURSE
  "CMakeFiles/gred_models.dir/keywords.cc.o"
  "CMakeFiles/gred_models.dir/keywords.cc.o.d"
  "CMakeFiles/gred_models.dir/linking.cc.o"
  "CMakeFiles/gred_models.dir/linking.cc.o.d"
  "CMakeFiles/gred_models.dir/retrieval.cc.o"
  "CMakeFiles/gred_models.dir/retrieval.cc.o.d"
  "CMakeFiles/gred_models.dir/revision.cc.o"
  "CMakeFiles/gred_models.dir/revision.cc.o.d"
  "CMakeFiles/gred_models.dir/rgvisnet.cc.o"
  "CMakeFiles/gred_models.dir/rgvisnet.cc.o.d"
  "CMakeFiles/gred_models.dir/seq2vis.cc.o"
  "CMakeFiles/gred_models.dir/seq2vis.cc.o.d"
  "CMakeFiles/gred_models.dir/transformer.cc.o"
  "CMakeFiles/gred_models.dir/transformer.cc.o.d"
  "libgred_models.a"
  "libgred_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
