file(REMOVE_RECURSE
  "CMakeFiles/gred_dvq.dir/ast.cc.o"
  "CMakeFiles/gred_dvq.dir/ast.cc.o.d"
  "CMakeFiles/gred_dvq.dir/components.cc.o"
  "CMakeFiles/gred_dvq.dir/components.cc.o.d"
  "CMakeFiles/gred_dvq.dir/lexer.cc.o"
  "CMakeFiles/gred_dvq.dir/lexer.cc.o.d"
  "CMakeFiles/gred_dvq.dir/normalize.cc.o"
  "CMakeFiles/gred_dvq.dir/normalize.cc.o.d"
  "CMakeFiles/gred_dvq.dir/parser.cc.o"
  "CMakeFiles/gred_dvq.dir/parser.cc.o.d"
  "CMakeFiles/gred_dvq.dir/sql.cc.o"
  "CMakeFiles/gred_dvq.dir/sql.cc.o.d"
  "libgred_dvq.a"
  "libgred_dvq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_dvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
