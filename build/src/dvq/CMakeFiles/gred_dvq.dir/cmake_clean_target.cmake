file(REMOVE_RECURSE
  "libgred_dvq.a"
)
