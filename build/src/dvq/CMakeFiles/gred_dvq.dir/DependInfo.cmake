
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvq/ast.cc" "src/dvq/CMakeFiles/gred_dvq.dir/ast.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/ast.cc.o.d"
  "/root/repo/src/dvq/components.cc" "src/dvq/CMakeFiles/gred_dvq.dir/components.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/components.cc.o.d"
  "/root/repo/src/dvq/lexer.cc" "src/dvq/CMakeFiles/gred_dvq.dir/lexer.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/lexer.cc.o.d"
  "/root/repo/src/dvq/normalize.cc" "src/dvq/CMakeFiles/gred_dvq.dir/normalize.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/normalize.cc.o.d"
  "/root/repo/src/dvq/parser.cc" "src/dvq/CMakeFiles/gred_dvq.dir/parser.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/parser.cc.o.d"
  "/root/repo/src/dvq/sql.cc" "src/dvq/CMakeFiles/gred_dvq.dir/sql.cc.o" "gcc" "src/dvq/CMakeFiles/gred_dvq.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
