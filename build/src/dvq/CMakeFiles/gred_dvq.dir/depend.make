# Empty dependencies file for gred_dvq.
# This may be replaced when dependencies are built.
