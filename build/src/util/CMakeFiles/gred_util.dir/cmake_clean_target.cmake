file(REMOVE_RECURSE
  "libgred_util.a"
)
