# Empty dependencies file for gred_util.
# This may be replaced when dependencies are built.
