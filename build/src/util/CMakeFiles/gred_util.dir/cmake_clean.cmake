file(REMOVE_RECURSE
  "CMakeFiles/gred_util.dir/json.cc.o"
  "CMakeFiles/gred_util.dir/json.cc.o.d"
  "CMakeFiles/gred_util.dir/rng.cc.o"
  "CMakeFiles/gred_util.dir/rng.cc.o.d"
  "CMakeFiles/gred_util.dir/status.cc.o"
  "CMakeFiles/gred_util.dir/status.cc.o.d"
  "CMakeFiles/gred_util.dir/strings.cc.o"
  "CMakeFiles/gred_util.dir/strings.cc.o.d"
  "CMakeFiles/gred_util.dir/table_printer.cc.o"
  "CMakeFiles/gred_util.dir/table_printer.cc.o.d"
  "libgred_util.a"
  "libgred_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
