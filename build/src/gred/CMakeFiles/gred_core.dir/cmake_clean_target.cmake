file(REMOVE_RECURSE
  "libgred_core.a"
)
