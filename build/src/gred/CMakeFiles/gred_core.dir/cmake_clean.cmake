file(REMOVE_RECURSE
  "CMakeFiles/gred_core.dir/gred.cc.o"
  "CMakeFiles/gred_core.dir/gred.cc.o.d"
  "libgred_core.a"
  "libgred_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
