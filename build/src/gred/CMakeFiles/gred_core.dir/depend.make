# Empty dependencies file for gred_core.
# This may be replaced when dependencies are built.
