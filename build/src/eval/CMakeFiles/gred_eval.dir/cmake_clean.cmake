file(REMOVE_RECURSE
  "CMakeFiles/gred_eval.dir/metrics.cc.o"
  "CMakeFiles/gred_eval.dir/metrics.cc.o.d"
  "libgred_eval.a"
  "libgred_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
