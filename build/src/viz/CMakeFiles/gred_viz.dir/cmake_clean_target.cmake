file(REMOVE_RECURSE
  "libgred_viz.a"
)
