# Empty dependencies file for gred_viz.
# This may be replaced when dependencies are built.
