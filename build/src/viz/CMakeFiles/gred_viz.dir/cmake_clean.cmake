file(REMOVE_RECURSE
  "CMakeFiles/gred_viz.dir/chart.cc.o"
  "CMakeFiles/gred_viz.dir/chart.cc.o.d"
  "CMakeFiles/gred_viz.dir/echarts.cc.o"
  "CMakeFiles/gred_viz.dir/echarts.cc.o.d"
  "CMakeFiles/gred_viz.dir/svg.cc.o"
  "CMakeFiles/gred_viz.dir/svg.cc.o.d"
  "libgred_viz.a"
  "libgred_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
