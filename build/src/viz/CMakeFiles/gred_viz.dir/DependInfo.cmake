
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/chart.cc" "src/viz/CMakeFiles/gred_viz.dir/chart.cc.o" "gcc" "src/viz/CMakeFiles/gred_viz.dir/chart.cc.o.d"
  "/root/repo/src/viz/echarts.cc" "src/viz/CMakeFiles/gred_viz.dir/echarts.cc.o" "gcc" "src/viz/CMakeFiles/gred_viz.dir/echarts.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/viz/CMakeFiles/gred_viz.dir/svg.cc.o" "gcc" "src/viz/CMakeFiles/gred_viz.dir/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/gred_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/dvq/CMakeFiles/gred_dvq.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gred_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/gred_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
