# Empty compiler generated dependencies file for gred_embed.
# This may be replaced when dependencies are built.
