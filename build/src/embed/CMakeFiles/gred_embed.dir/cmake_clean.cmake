file(REMOVE_RECURSE
  "CMakeFiles/gred_embed.dir/ann_index.cc.o"
  "CMakeFiles/gred_embed.dir/ann_index.cc.o.d"
  "CMakeFiles/gred_embed.dir/embedder.cc.o"
  "CMakeFiles/gred_embed.dir/embedder.cc.o.d"
  "CMakeFiles/gred_embed.dir/vector_store.cc.o"
  "CMakeFiles/gred_embed.dir/vector_store.cc.o.d"
  "libgred_embed.a"
  "libgred_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
