
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/ann_index.cc" "src/embed/CMakeFiles/gred_embed.dir/ann_index.cc.o" "gcc" "src/embed/CMakeFiles/gred_embed.dir/ann_index.cc.o.d"
  "/root/repo/src/embed/embedder.cc" "src/embed/CMakeFiles/gred_embed.dir/embedder.cc.o" "gcc" "src/embed/CMakeFiles/gred_embed.dir/embedder.cc.o.d"
  "/root/repo/src/embed/vector_store.cc" "src/embed/CMakeFiles/gred_embed.dir/vector_store.cc.o" "gcc" "src/embed/CMakeFiles/gred_embed.dir/vector_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nl/CMakeFiles/gred_nl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
