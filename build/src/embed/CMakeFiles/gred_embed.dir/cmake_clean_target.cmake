file(REMOVE_RECURSE
  "libgred_embed.a"
)
