# Empty dependencies file for gred_nl.
# This may be replaced when dependencies are built.
