
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nl/lexicon.cc" "src/nl/CMakeFiles/gred_nl.dir/lexicon.cc.o" "gcc" "src/nl/CMakeFiles/gred_nl.dir/lexicon.cc.o.d"
  "/root/repo/src/nl/text.cc" "src/nl/CMakeFiles/gred_nl.dir/text.cc.o" "gcc" "src/nl/CMakeFiles/gred_nl.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gred_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
