file(REMOVE_RECURSE
  "CMakeFiles/gred_nl.dir/lexicon.cc.o"
  "CMakeFiles/gred_nl.dir/lexicon.cc.o.d"
  "CMakeFiles/gred_nl.dir/text.cc.o"
  "CMakeFiles/gred_nl.dir/text.cc.o.d"
  "libgred_nl.a"
  "libgred_nl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_nl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
