file(REMOVE_RECURSE
  "libgred_nl.a"
)
