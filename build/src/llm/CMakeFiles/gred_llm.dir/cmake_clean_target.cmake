file(REMOVE_RECURSE
  "libgred_llm.a"
)
