# Empty compiler generated dependencies file for gred_llm.
# This may be replaced when dependencies are built.
