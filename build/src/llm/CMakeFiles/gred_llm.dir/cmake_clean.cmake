file(REMOVE_RECURSE
  "CMakeFiles/gred_llm.dir/prompt.cc.o"
  "CMakeFiles/gred_llm.dir/prompt.cc.o.d"
  "CMakeFiles/gred_llm.dir/recording.cc.o"
  "CMakeFiles/gred_llm.dir/recording.cc.o.d"
  "CMakeFiles/gred_llm.dir/semantic_link.cc.o"
  "CMakeFiles/gred_llm.dir/semantic_link.cc.o.d"
  "CMakeFiles/gred_llm.dir/sim_llm.cc.o"
  "CMakeFiles/gred_llm.dir/sim_llm.cc.o.d"
  "libgred_llm.a"
  "libgred_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
