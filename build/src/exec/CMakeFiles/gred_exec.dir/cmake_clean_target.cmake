file(REMOVE_RECURSE
  "libgred_exec.a"
)
