file(REMOVE_RECURSE
  "CMakeFiles/gred_exec.dir/executor.cc.o"
  "CMakeFiles/gred_exec.dir/executor.cc.o.d"
  "CMakeFiles/gred_exec.dir/scalar.cc.o"
  "CMakeFiles/gred_exec.dir/scalar.cc.o.d"
  "libgred_exec.a"
  "libgred_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
