# Empty dependencies file for gred_exec.
# This may be replaced when dependencies are built.
