# Empty dependencies file for gred_storage.
# This may be replaced when dependencies are built.
