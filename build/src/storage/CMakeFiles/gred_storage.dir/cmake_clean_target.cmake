file(REMOVE_RECURSE
  "libgred_storage.a"
)
