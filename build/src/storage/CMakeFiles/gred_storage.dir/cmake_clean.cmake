file(REMOVE_RECURSE
  "CMakeFiles/gred_storage.dir/table.cc.o"
  "CMakeFiles/gred_storage.dir/table.cc.o.d"
  "CMakeFiles/gred_storage.dir/value.cc.o"
  "CMakeFiles/gred_storage.dir/value.cc.o.d"
  "libgred_storage.a"
  "libgred_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
