file(REMOVE_RECURSE
  "CMakeFiles/gred_schema.dir/schema.cc.o"
  "CMakeFiles/gred_schema.dir/schema.cc.o.d"
  "libgred_schema.a"
  "libgred_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gred_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
