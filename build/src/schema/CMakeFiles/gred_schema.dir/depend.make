# Empty dependencies file for gred_schema.
# This may be replaced when dependencies are built.
