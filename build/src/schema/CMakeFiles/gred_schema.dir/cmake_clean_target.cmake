file(REMOVE_RECURSE
  "libgred_schema.a"
)
