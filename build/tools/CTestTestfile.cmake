# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gredvis_cli_stats_smoke "/root/repo/build/tools/gredvis" "stats")
set_tests_properties(gredvis_cli_stats_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gredvis_cli_eval_smoke "/root/repo/build/tools/gredvis" "eval" "seq2vis" "nlq")
set_tests_properties(gredvis_cli_eval_smoke PROPERTIES  ENVIRONMENT "GRED_BENCH_TRAIN_SIZE=250;GRED_BENCH_TEST_SIZE=40" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(render_dvq_smoke "/root/repo/build/tools/render_dvq" "hr_1" "Visualize BAR SELECT city , COUNT(city) FROM employees GROUP BY city" "--sql" "--vega")
set_tests_properties(render_dvq_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
