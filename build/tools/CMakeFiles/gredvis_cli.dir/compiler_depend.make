# Empty compiler generated dependencies file for gredvis_cli.
# This may be replaced when dependencies are built.
