file(REMOVE_RECURSE
  "CMakeFiles/gredvis_cli.dir/gredvis_cli.cc.o"
  "CMakeFiles/gredvis_cli.dir/gredvis_cli.cc.o.d"
  "gredvis"
  "gredvis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gredvis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
