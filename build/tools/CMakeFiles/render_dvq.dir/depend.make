# Empty dependencies file for render_dvq.
# This may be replaced when dependencies are built.
