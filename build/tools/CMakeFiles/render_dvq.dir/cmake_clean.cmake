file(REMOVE_RECURSE
  "CMakeFiles/render_dvq.dir/render_dvq.cc.o"
  "CMakeFiles/render_dvq.dir/render_dvq.cc.o.d"
  "render_dvq"
  "render_dvq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_dvq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
