#ifndef GREDVIS_MODELS_LINKING_H_
#define GREDVIS_MODELS_LINKING_H_

#include <optional>
#include <string>
#include <vector>

#include "dvq/ast.h"
#include "schema/schema.h"

namespace gred::models {

/// Lexical schema-linking utilities shared by the baseline models.
///
/// Everything in this header matches on surface forms only — exact names,
/// case/underscore normalization, word overlap, edit distance and stems.
/// Deliberately no synonym knowledge: the paper's analysis attributes the
/// baselines' robustness collapse to exactly this limitation.

/// How strongly an NLQ mentions `column_name`, in [0,1]:
/// 1.0 the name appears verbatim (as a token or adjacent word sequence),
/// otherwise the best of word-overlap and stem-overlap scores between the
/// column's identifier words and any NLQ window of the same length.
double MentionScore(const std::vector<std::string>& nlq_tokens,
                    const std::string& column_name);

/// Best-matching column in `db_schema` for a mention string, by combined
/// word-overlap + edit similarity. Returns nullopt when the best score is
/// below `threshold`.
struct LinkCandidate {
  std::string table;
  std::string column;
  double score = 0.0;
};
std::optional<LinkCandidate> LexicalLinkColumn(
    const std::string& mention, const schema::Database& db_schema,
    double threshold);

/// Best-matching table for a mention, same scoring; nullopt below
/// `threshold`.
std::optional<std::string> LexicalLinkTable(
    const std::string& mention, const schema::Database& db_schema,
    double threshold);

/// Values the NLQ surface carries: numbers (in order of appearance) and
/// capitalized / quoted words usable as string literals. Models use these
/// to adapt retrieved literals (a seq2seq copy mechanism would do the
/// same).
struct SurfaceValues {
  std::vector<dvq::Literal> numbers;
  std::vector<std::string> proper_words;
};
SurfaceValues ExtractSurfaceValues(const std::string& nlq);

/// Rewrites the literals of `query` in place from `values`, pairing
/// numeric literals with extracted numbers and string literals with
/// proper words (in order). LIKE patterns keep their % wrapping.
void AdaptLiterals(dvq::Query* query, const SurfaceValues& values);

/// Options for lexical schema re-linking.
struct RelinkOptions {
  /// Minimum combined score to accept a substitution; below it the model
  /// keeps the (possibly hallucinated) original name — the paper's
  /// signature baseline failure.
  double column_threshold = 0.55;
  double table_threshold = 0.5;
  /// Weight of NLQ-mention evidence relative to name-to-name similarity.
  double mention_weight = 0.35;
  /// When true, only references absent from the schema are re-linked
  /// (Transformer); when false every reference is re-scored (RGVisNet's
  /// revision stage).
  bool only_missing = true;
};

/// Re-links the schema references of `query` in place against
/// `db_schema`, using surface evidence only (names + NLQ mentions; no
/// synonym knowledge). Join ON keys are repaired from the schema's
/// foreign keys (RepairJoinKeys), not by mention evidence. Recurses into
/// scalar subqueries.
void RelinkSchemaLexically(dvq::Query* query,
                           const schema::Database& db_schema,
                           const std::vector<std::string>& nlq_tokens,
                           const RelinkOptions& options);

/// Rewrites each join's ON keys to the declared foreign key between the
/// joined tables when either side fails to resolve in `db_schema`.
/// Joins whose tables have no declared edge are left untouched.
void RepairJoinKeys(dvq::Query* query, const schema::Database& db_schema);

/// Adds a JOIN for every column the query references that resolves in
/// none of its tables but does resolve in a table one foreign-key hop
/// away from the FROM table (classic schema linking: "job title" over
/// `employees` pulls in `jobs`). No-op when no FK edge exists.
void SynthesizeJoins(dvq::Query* query, const schema::Database& db_schema);

}  // namespace gred::models

#endif  // GREDVIS_MODELS_LINKING_H_
