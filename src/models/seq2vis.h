#ifndef GREDVIS_MODELS_SEQ2VIS_H_
#define GREDVIS_MODELS_SEQ2VIS_H_

#include <memory>
#include <set>
#include <string>

#include "embed/vector_store.h"
#include "models/model.h"
#include "models/retrieval.h"

namespace gred::models {

/// Seq2Vis baseline (Luo et al., 2021): an LSTM encoder-decoder trained
/// on nvBench.
///
/// Statistical analogue: the model memorizes the training distribution
/// and decodes the query whose source sentence it recognizes best —
/// implemented as nearest-neighbour decoding over a word-level NLQ
/// encoding with standard seq2seq preprocessing: out-of-vocabulary words
/// collapse to <unk> and digit tokens are delexicalized to <num> (an
/// LSTM cannot anchor on literal values it has never embedded). The copy
/// mechanism is limited to literal values (numbers and proper names
/// copied from the source). No schema linking of any kind: when the
/// input drifts from the memorized surface (paraphrases, renamed
/// schemas) the decoder keeps emitting training-set tokens, reproducing
/// the paper's Seq2Vis failures (e.g. generating "FROM dogs" for an
/// employees question, Table 5).
class Seq2Vis : public TextToVisModel {
 public:
  explicit Seq2Vis(const TrainingCorpus& corpus);

  std::string name() const override { return "Seq2Vis"; }

  Result<dvq::DVQ> Translate(const std::string& nlq,
                             const storage::DatabaseData& db) const override;

 private:
  /// Word-level encoding used for both the memory and the query:
  /// stemmed in-vocabulary tokens, <unk> for OOV, <num> for digits.
  std::string Encode(const std::string& nlq) const;

  std::unique_ptr<embed::TextEmbedder> embedder_;
  const std::vector<dataset::Example>* train_ = nullptr;
  embed::VectorStore store_;
  std::set<std::string> vocabulary_;  // stemmed training tokens
};

}  // namespace gred::models

#endif  // GREDVIS_MODELS_SEQ2VIS_H_
