#include "models/transformer.h"

#include "models/keywords.h"
#include "models/linking.h"
#include "models/revision.h"
#include "nl/text.h"

namespace gred::models {

namespace {

/// Structural compatibility between the detected intent and a memorized
/// pattern: each agreeing head adds one point.
double StructureCompatibility(const std::string& nlq,
                              const dataset::Example& example) {
  constexpr DetectorProfile kProfile = DetectorProfile::kCorpusTrained;
  double score = 0.0;
  const dvq::Query& q = example.dvq.query;
  std::optional<dvq::ChartType> chart = DetectChart(nlq, kProfile);
  if (chart.has_value() && *chart == example.dvq.chart) score += 1.0;
  bool wants_order = DetectOrder(nlq, kProfile).has_value();
  if (wants_order == q.order_by.has_value()) score += 1.0;
  std::optional<dvq::AggFunc> agg = DetectAgg(nlq, kProfile);
  bool has_agg = false;
  for (const dvq::SelectExpr& e : q.select) {
    if (e.agg != dvq::AggFunc::kNone) has_agg = true;
  }
  if (agg.has_value() == has_agg) score += 1.0;
  if (agg.has_value() && has_agg && q.select.size() >= 2 &&
      q.select[1].agg == *agg) {
    score += 1.0;
  }
  bool wants_bin = DetectBinUnit(nlq, kProfile).has_value();
  if (wants_bin == q.bin.has_value()) score += 1.0;
  bool wants_filter = nlq.find("whose") != std::string::npos ||
                      nlq.find("where") != std::string::npos;
  if (wants_filter == q.where.has_value()) score += 1.0;
  return score;
}

}  // namespace

TransformerModel::TransformerModel(const TrainingCorpus& corpus) {
  // Subword (BPE-like) features give a little robustness to unseen word
  // forms, but far less than full word-level semantics.
  embed::EmbedderOptions options;
  options.trigram_weight = 0.05;
  embedder_ = std::make_unique<embed::LexicalHashEmbedder>(options);
  index_ = std::make_unique<ExampleIndex>(corpus.train, embedder_.get());
}

Result<dvq::DVQ> TransformerModel::Translate(
    const std::string& nlq, const storage::DatabaseData& db) const {
  std::vector<ExampleIndex::Hit> hits = index_->TopK(nlq, 5);
  if (hits.empty()) {
    return Status::NotFound("Transformer: empty training memory");
  }
  const dataset::Example* best = hits[0].example;
  double best_score = -1.0;
  for (const ExampleIndex::Hit& hit : hits) {
    double score =
        hit.score + 0.08 * StructureCompatibility(nlq, *hit.example);
    if (score > best_score) {
      best_score = score;
      best = hit.example;
    }
  }

  dvq::DVQ out = best->dvq;
  AdaptLiterals(&out.query, ExtractSurfaceValues(nlq));

  // Keyword heads trained on the clean register. When the input sits
  // far from the training distribution (low retrieval similarity) the
  // decoder leans on its prior — the memorized pattern — instead of
  // pruning clauses it cannot ground in the question.
  CorpusIntentOptions intent;
  intent.agg_target_extraction = false;
  intent.series_recovery = false;
  intent.prune_unevidenced = hits[0].score >= 0.72;
  ApplyCorpusIntent(&out, nlq, db.db_schema(), intent);

  // Lexical copy mechanism for schema tokens the memory got wrong.
  RelinkOptions relink;
  relink.only_missing = true;
  relink.column_threshold = 0.72;
  relink.mention_weight = 0.2;
  RelinkSchemaLexically(&out.query, db.db_schema(), nl::Tokenize(nlq),
                        relink);
  return out;
}

}  // namespace gred::models
