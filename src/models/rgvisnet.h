#ifndef GREDVIS_MODELS_RGVISNET_H_
#define GREDVIS_MODELS_RGVISNET_H_

#include <memory>
#include <string>
#include <vector>

#include "models/model.h"
#include "models/retrieval.h"

namespace gred::models {

/// RGVisNet baseline (Song et al., KDD 2022): the paper's previous SOTA.
/// A hybrid retrieval-generation framework — retrieve the best DVQ
/// prototype from a codebase, then revise it with a schema-aware network.
///
/// Statistical analogue: prototypes are the skeletons (structure with
/// schema tokens masked) of the training DVQs; retrieval scores combine
/// NLQ similarity with a skeleton vote over the top hits. Revision
/// re-links every schema token against the *target* database by surface
/// similarity and NLQ mention evidence. The linker normalizes case,
/// underscores and stems — but knows no synonyms, so when nvBench-Rob
/// renames "ACC_Percent" to "percentage_of_ACC"-style equivalents with
/// fresh words it keeps the prototype's training-set column names, the
/// exact behaviour Section 3 reports.
class RGVisNet : public TextToVisModel {
 public:
  explicit RGVisNet(const TrainingCorpus& corpus);

  std::string name() const override { return "RGVisNet"; }

  Result<dvq::DVQ> Translate(const std::string& nlq,
                             const storage::DatabaseData& db) const override;

 private:
  std::unique_ptr<embed::TextEmbedder> embedder_;
  std::unique_ptr<ExampleIndex> index_;
};

}  // namespace gred::models

#endif  // GREDVIS_MODELS_RGVISNET_H_
