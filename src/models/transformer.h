#ifndef GREDVIS_MODELS_TRANSFORMER_H_
#define GREDVIS_MODELS_TRANSFORMER_H_

#include <memory>
#include <string>

#include "models/model.h"
#include "models/retrieval.h"

namespace gred::models {

/// Transformer baseline (Vaswani et al., 2017) trained on nvBench.
///
/// Statistical analogue: compared to Seq2Vis it adds (a) attention-style
/// reranking of memorized patterns by structural compatibility with the
/// input, (b) keyword heads for chart type, sorting, limits (trained on
/// the clean register only), and (c) a lexical copy mechanism that can
/// substitute a schema token when the input or target schema mentions it
/// near-verbatim (case/underscore/stem normalization — but no synonym
/// knowledge, which is what the paper shows these models lack).
class TransformerModel : public TextToVisModel {
 public:
  explicit TransformerModel(const TrainingCorpus& corpus);

  std::string name() const override { return "Transformer"; }

  Result<dvq::DVQ> Translate(const std::string& nlq,
                             const storage::DatabaseData& db) const override;

 private:
  std::unique_ptr<embed::TextEmbedder> embedder_;
  std::unique_ptr<ExampleIndex> index_;
};

}  // namespace gred::models

#endif  // GREDVIS_MODELS_TRANSFORMER_H_
