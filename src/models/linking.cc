#include "models/linking.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "nl/text.h"
#include "util/strings.h"

namespace gred::models {

namespace {

double WindowOverlap(const std::vector<std::string>& window,
                     const std::vector<std::string>& words, bool stemmed) {
  if (window.size() != words.size() || words.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::string a = window[i];
    std::string b = words[i];
    if (stemmed) {
      a = nl::Stem(a);
      b = nl::Stem(b);
    }
    if (a == b) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(words.size());
}

}  // namespace

double MentionScore(const std::vector<std::string>& nlq_tokens,
                    const std::string& column_name) {
  std::vector<std::string> words =
      strings::SplitIdentifierWords(column_name);
  if (words.empty()) return 0.0;
  // Verbatim token: "hire_date" tokenizes to "hire","date" in NLQ text,
  // so check consecutive windows.
  double best = 0.0;
  if (nlq_tokens.size() >= words.size()) {
    for (std::size_t start = 0; start + words.size() <= nlq_tokens.size();
         ++start) {
      std::vector<std::string> window(
          nlq_tokens.begin() + static_cast<long>(start),
          nlq_tokens.begin() + static_cast<long>(start + words.size()));
      double exact = WindowOverlap(window, words, /*stemmed=*/false);
      double stem = WindowOverlap(window, words, /*stemmed=*/true);
      best = std::max({best, exact, 0.95 * stem});
      if (best >= 1.0) return 1.0;
    }
  }
  // Unordered partial credit: fraction of identifier words present
  // anywhere in the NLQ (stemmed).
  std::set<std::string> stems;
  for (const std::string& t : nlq_tokens) stems.insert(nl::Stem(t));
  std::size_t hits = 0;
  for (const std::string& w : words) hits += stems.count(nl::Stem(w));
  double loose = 0.8 * static_cast<double>(hits) /
                 static_cast<double>(words.size());
  return std::max(best, loose);
}

std::optional<LinkCandidate> LexicalLinkColumn(
    const std::string& mention, const schema::Database& db_schema,
    double threshold) {
  LinkCandidate best;
  for (const schema::TableDef& table : db_schema.tables()) {
    for (const schema::Column& col : table.columns()) {
      double score;
      if (strings::EqualsIgnoreCase(col.name, mention)) {
        score = 1.0;
      } else {
        double overlap = strings::IdentifierWordOverlap(col.name, mention);
        double edit = strings::EditSimilarity(strings::ToLower(col.name),
                                              strings::ToLower(mention));
        score = std::max(overlap, 0.9 * edit);
      }
      if (score > best.score) {
        best.table = table.name();
        best.column = col.name;
        best.score = score;
      }
    }
  }
  if (best.score < threshold) return std::nullopt;
  return best;
}

std::optional<std::string> LexicalLinkTable(
    const std::string& mention, const schema::Database& db_schema,
    double threshold) {
  std::string best_table;
  double best_score = 0.0;
  for (const schema::TableDef& table : db_schema.tables()) {
    double score;
    if (strings::EqualsIgnoreCase(table.name(), mention)) {
      score = 1.0;
    } else {
      double overlap =
          strings::IdentifierWordOverlap(table.name(), mention);
      double edit = strings::EditSimilarity(strings::ToLower(table.name()),
                                            strings::ToLower(mention));
      score = std::max(overlap, 0.9 * edit);
    }
    if (score > best_score) {
      best_score = score;
      best_table = table.name();
    }
  }
  if (best_score < threshold) return std::nullopt;
  return best_table;
}

SurfaceValues ExtractSurfaceValues(const std::string& nlq) {
  SurfaceValues out;
  // Numbers straight from the character stream (keeps decimals intact).
  std::size_t i = 0;
  while (i < nlq.size()) {
    char c = nlq[i];
    bool neg = c == '-' && i + 1 < nlq.size() &&
               std::isdigit(static_cast<unsigned char>(nlq[i + 1])) != 0;
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || neg) {
      std::size_t start = i;
      if (neg) ++i;
      bool dot = false;
      while (i < nlq.size() &&
             (std::isdigit(static_cast<unsigned char>(nlq[i])) != 0 ||
              (nlq[i] == '.' && !dot && i + 1 < nlq.size() &&
               std::isdigit(static_cast<unsigned char>(nlq[i + 1])) != 0))) {
        if (nlq[i] == '.') dot = true;
        ++i;
      }
      std::string text = nlq.substr(start, i - start);
      if (dot) {
        out.numbers.push_back(dvq::Literal::Real(std::stod(text)));
      } else {
        out.numbers.push_back(dvq::Literal::Int(std::stoll(text)));
      }
      continue;
    }
    ++i;
  }
  // Proper words: capitalized tokens that do not open a sentence, plus
  // date-looking tokens (YYYY-MM-DD survives tokenization as numbers, so
  // re-scan the raw text).
  bool sentence_start = true;
  std::string word;
  auto flush = [&]() {
    if (word.size() > 1 && std::isupper(static_cast<unsigned char>(word[0])) &&
        !sentence_start) {
      out.proper_words.push_back(word);
    }
    if (!word.empty()) sentence_start = false;
    word.clear();
  };
  for (char c : nlq) {
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      word.push_back(c);
      continue;
    }
    flush();
    if (c == '.' || c == '?' || c == '!') sentence_start = true;
  }
  flush();
  // ISO dates.
  for (std::size_t p = 0; p + 10 <= nlq.size(); ++p) {
    bool is_date = true;
    for (std::size_t k = 0; k < 10; ++k) {
      char c = nlq[p + k];
      if (k == 4 || k == 7) {
        if (c != '-') is_date = false;
      } else if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        is_date = false;
      }
      if (!is_date) break;
    }
    if (is_date) out.proper_words.push_back(nlq.substr(p, 10));
  }
  return out;
}

void AdaptLiterals(dvq::Query* query, const SurfaceValues& values) {
  std::size_t num_cursor = 0;
  std::size_t word_cursor = 0;
  auto adapt = [&](dvq::Literal* lit) {
    switch (lit->kind) {
      case dvq::Literal::Kind::kInt:
      case dvq::Literal::Kind::kReal:
        if (num_cursor < values.numbers.size()) {
          *lit = values.numbers[num_cursor++];
        }
        break;
      case dvq::Literal::Kind::kString: {
        bool is_like = !lit->string_value.empty() &&
                       (lit->string_value.front() == '%' ||
                        lit->string_value.back() == '%');
        if (word_cursor < values.proper_words.size()) {
          std::string v = values.proper_words[word_cursor++];
          lit->string_value = is_like ? "%" + v + "%" : v;
        }
        break;
      }
    }
  };
  std::function<void(dvq::Query*)> walk = [&](dvq::Query* q) {
    if (!q->where.has_value()) return;
    for (dvq::Predicate& p : q->where->predicates) {
      if (p.literal.has_value()) adapt(&*p.literal);
      for (dvq::Literal& l : p.in_list) adapt(&l);
      if (p.subquery != nullptr) {
        dvq::Query inner = *p.subquery;
        walk(&inner);
        p.subquery = std::make_shared<const dvq::Query>(std::move(inner));
      }
    }
  };
  walk(query);
  // LIMIT values also ride on the surface numbers ("top 5").
  if (query->limit.has_value() && num_cursor < values.numbers.size() &&
      values.numbers[num_cursor].kind == dvq::Literal::Kind::kInt) {
    query->limit = values.numbers[num_cursor].int_value;
  }
}

void RepairJoinKeys(dvq::Query* query, const schema::Database& db_schema) {
  for (dvq::JoinClause& join : query->joins) {
    const schema::TableDef* left_table = db_schema.FindTable(query->from_table);
    const schema::TableDef* right_table = db_schema.FindTable(join.table);
    if (left_table == nullptr || right_table == nullptr) continue;
    auto resolves = [&](const dvq::ColumnRef& ref) {
      if (!ref.table.empty()) {
        const schema::TableDef* t = db_schema.FindTable(ref.table);
        return t != nullptr && t->FindColumn(ref.column) != nullptr;
      }
      return left_table->FindColumn(ref.column) != nullptr ||
             right_table->FindColumn(ref.column) != nullptr;
    };
    if (resolves(join.left) && resolves(join.right)) continue;
    for (const schema::ForeignKey& fk : db_schema.foreign_keys()) {
      bool forward =
          strings::EqualsIgnoreCase(fk.from_table, query->from_table) &&
          strings::EqualsIgnoreCase(fk.to_table, join.table);
      bool backward =
          strings::EqualsIgnoreCase(fk.to_table, query->from_table) &&
          strings::EqualsIgnoreCase(fk.from_table, join.table);
      if (!forward && !backward) continue;
      join.left.table = fk.from_table;
      join.left.column = fk.from_column;
      join.right.table = fk.to_table;
      join.right.column = fk.to_column;
      break;
    }
  }
}

void SynthesizeJoins(dvq::Query* query, const schema::Database& db_schema) {
  auto in_query_tables = [&](const dvq::ColumnRef& ref) {
    if (ref.column == "*") return true;
    std::vector<std::string> tables;
    tables.push_back(query->from_table);
    for (const dvq::JoinClause& j : query->joins) tables.push_back(j.table);
    for (const std::string& name : tables) {
      const schema::TableDef* def = db_schema.FindTable(name);
      if (def != nullptr && def->FindColumn(ref.column) != nullptr) {
        return true;
      }
    }
    return false;
  };
  std::vector<dvq::ColumnRef> refs = dvq::CollectColumnRefs(*query);
  for (const dvq::ColumnRef& ref : refs) {
    if (in_query_tables(ref)) continue;
    auto [owner, col] = db_schema.FindColumnAnywhere(ref.column);
    if (owner == nullptr || col == nullptr) continue;
    for (const schema::ForeignKey& fk : db_schema.foreign_keys()) {
      bool forward =
          strings::EqualsIgnoreCase(fk.from_table, query->from_table) &&
          strings::EqualsIgnoreCase(fk.to_table, owner->name());
      bool backward =
          strings::EqualsIgnoreCase(fk.to_table, query->from_table) &&
          strings::EqualsIgnoreCase(fk.from_table, owner->name());
      if (!forward && !backward) continue;
      dvq::JoinClause join;
      join.table = owner->name();
      join.left.table = fk.from_table;
      join.left.column = fk.from_column;
      join.right.table = fk.to_table;
      join.right.column = fk.to_column;
      query->joins.push_back(std::move(join));
      break;
    }
  }
}

void RelinkSchemaLexically(dvq::Query* query,
                           const schema::Database& db_schema,
                           const std::vector<std::string>& nlq_tokens,
                           const RelinkOptions& options) {
  // Tables first: FROM / JOIN targets absent from the schema are mapped
  // to their closest surface match.
  std::function<void(dvq::Query*)> relink_tables = [&](dvq::Query* q) {
    auto fix_table = [&](std::string* table) {
      if (db_schema.FindTable(*table) != nullptr) return;
      std::optional<std::string> linked =
          LexicalLinkTable(*table, db_schema, options.table_threshold);
      if (linked.has_value()) *table = *linked;
    };
    fix_table(&q->from_table);
    for (dvq::JoinClause& j : q->joins) fix_table(&j.table);
    if (q->where.has_value()) {
      for (dvq::Predicate& p : q->where->predicates) {
        if (p.subquery != nullptr) {
          dvq::Query inner = *p.subquery;
          relink_tables(&inner);
          p.subquery = std::make_shared<const dvq::Query>(std::move(inner));
        }
      }
    }
  };
  relink_tables(query);
  RepairJoinKeys(query, db_schema);

  // Foreign-key columns threaded through scalar subqueries are resolved
  // structurally, not by mention evidence; protect them when they exist.
  std::set<std::string> protected_cols;
  std::function<void(const dvq::Query&)> collect_protected =
      [&](const dvq::Query& q) {
        if (!q.where.has_value()) return;
        for (const dvq::Predicate& p : q.where->predicates) {
          if (p.subquery == nullptr) continue;
          if (db_schema.HasColumn(p.col.column)) {
            protected_cols.insert(strings::ToLower(p.col.column));
          }
          if (p.subquery->select.size() == 1 &&
              db_schema.HasColumn(p.subquery->select[0].col.column)) {
            protected_cols.insert(
                strings::ToLower(p.subquery->select[0].col.column));
          }
          collect_protected(*p.subquery);
        }
      };
  collect_protected(*query);

  auto relink_ref = [&](dvq::ColumnRef* ref) {
    if (ref->column == "*") return;
    const bool present = db_schema.HasColumn(ref->column);
    if (present && options.only_missing) return;
    // A resolved reference the question names verbatim is already right;
    // re-scoring it can only do harm.
    if (present && MentionScore(nlq_tokens, ref->column) >= 0.95) return;
    if (present && protected_cols.count(strings::ToLower(ref->column)) > 0) {
      return;
    }
    LinkCandidate best;
    for (const schema::TableDef& table : db_schema.tables()) {
      for (const schema::Column& col : table.columns()) {
        double name_sim;
        if (strings::EqualsIgnoreCase(col.name, ref->column)) {
          name_sim = 1.0;
        } else {
          double overlap =
              strings::IdentifierWordOverlap(col.name, ref->column);
          double edit = strings::EditSimilarity(
              strings::ToLower(col.name), strings::ToLower(ref->column));
          name_sim = std::max(overlap, 0.9 * edit);
        }
        double mention = MentionScore(nlq_tokens, col.name);
        double score = (1.0 - options.mention_weight) * name_sim +
                       options.mention_weight * mention;
        if (score > best.score) {
          best.table = table.name();
          best.column = col.name;
          best.score = score;
        }
      }
    }
    if (best.score < options.column_threshold) return;
    if (strings::EqualsIgnoreCase(best.column, ref->column)) {
      // Only the spelling may differ (case conventions); adopt schema's.
      ref->column = best.column;
      return;
    }
    ref->column = best.column;
    if (!ref->table.empty()) ref->table = best.table;
  };
  dvq::TransformNonJoinColumnRefs(query, relink_ref);
}

}  // namespace gred::models
