#include "models/retrieval.h"

namespace gred::models {

ExampleIndex::ExampleIndex(const std::vector<dataset::Example>* train,
                           const embed::TextEmbedder* embedder)
    : train_(train), embedder_(embedder) {
  for (const dataset::Example& ex : *train_) {
    store_.Add(embedder_->Embed(ex.nlq));
  }
}

std::vector<ExampleIndex::Hit> ExampleIndex::TopK(const std::string& nlq,
                                                  std::size_t k) const {
  std::vector<Hit> out;
  embed::Vector query = embedder_->Embed(nlq);
  for (const embed::VectorStore::Hit& hit : store_.TopK(query, k)) {
    out.push_back(Hit{&(*train_)[hit.index], hit.score, hit.index});
  }
  return out;
}

DvqIndex::DvqIndex(const std::vector<dataset::Example>* train,
                   const embed::TextEmbedder* embedder)
    : train_(train), embedder_(embedder) {
  for (const dataset::Example& ex : *train_) {
    store_.Add(embedder_->Embed(ex.DvqText()));
  }
}

std::vector<DvqIndex::Hit> DvqIndex::TopK(const std::string& dvq_text,
                                          std::size_t k) const {
  std::vector<Hit> out;
  embed::Vector query = embedder_->Embed(dvq_text);
  for (const embed::VectorStore::Hit& hit : store_.TopK(query, k)) {
    out.push_back(Hit{&(*train_)[hit.index], hit.score, hit.index});
  }
  return out;
}

}  // namespace gred::models
