#include "models/retrieval.h"

namespace gred::models {

ExampleIndex::ExampleIndex(const std::vector<dataset::Example>* train,
                           const embed::TextEmbedder* embedder,
                           embed::RetrievalConfig config)
    : train_(train), embedder_(embedder), index_(config) {
  for (const dataset::Example& ex : *train_) {
    index_.Add(embedder_->Embed(ex.nlq));
  }
  index_.Seal();
}

std::vector<ExampleIndex::Hit> ExampleIndex::TopK(const std::string& nlq,
                                                  std::size_t k) const {
  std::vector<Hit> out;
  embed::Vector query = embedder_->Embed(nlq);
  for (const embed::VectorStore::Hit& hit : index_.TopK(query, k)) {
    out.push_back(Hit{&(*train_)[hit.index], hit.score, hit.index});
  }
  return out;
}

DvqIndex::DvqIndex(const std::vector<dataset::Example>* train,
                   const embed::TextEmbedder* embedder,
                   embed::RetrievalConfig config)
    : train_(train), embedder_(embedder), index_(config) {
  for (const dataset::Example& ex : *train_) {
    index_.Add(embedder_->Embed(ex.DvqText()));
  }
  index_.Seal();
}

std::vector<DvqIndex::Hit> DvqIndex::TopK(const std::string& dvq_text,
                                          std::size_t k) const {
  std::vector<Hit> out;
  embed::Vector query = embedder_->Embed(dvq_text);
  for (const embed::VectorStore::Hit& hit : index_.TopK(query, k)) {
    out.push_back(Hit{&(*train_)[hit.index], hit.score, hit.index});
  }
  return out;
}

}  // namespace gred::models
