#ifndef GREDVIS_MODELS_MODEL_H_
#define GREDVIS_MODELS_MODEL_H_

#include <string>
#include <vector>

#include "dataset/benchmark.h"
#include "dvq/ast.h"
#include "storage/table.h"
#include "util/status.h"

namespace gred::models {

/// The training corpus visible to baseline models: nvBench's clean
/// training split and the clean database corpus. Baselines "train" by
/// building retrieval indexes and alignment statistics over this data;
/// they never see the robustness perturbations or the lexicon.
struct TrainingCorpus {
  const std::vector<dataset::Example>* train = nullptr;
  const std::vector<dataset::GeneratedDatabase>* databases = nullptr;
};

/// Interface implemented by every text-to-vis system in this repository
/// (the three baselines and GRED).
class TextToVisModel {
 public:
  virtual ~TextToVisModel() = default;

  /// Display name ("Seq2Vis", "Transformer", "RGVisNet", "GRED").
  virtual std::string name() const = 0;

  /// Translates `nlq` into a DVQ against `db`'s schema. The database the
  /// model sees is the (possibly perturbed) evaluation database; models
  /// must not assume its names match the training corpus.
  ///
  /// Thread-safety contract: the eval harness (eval::Evaluate) invokes
  /// Translate concurrently from a thread pool, so implementations must
  /// be safe for concurrent calls on one instance — treat `const` as
  /// "no unsynchronized mutation": any cache or trace written from a
  /// const method needs a mutex or atomics (see core::Gred's annotation
  /// cache).
  virtual Result<dvq::DVQ> Translate(const std::string& nlq,
                                     const storage::DatabaseData& db) const = 0;
};

}  // namespace gred::models

#endif  // GREDVIS_MODELS_MODEL_H_
