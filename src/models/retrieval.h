#ifndef GREDVIS_MODELS_RETRIEVAL_H_
#define GREDVIS_MODELS_RETRIEVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "dataset/example.h"
#include "embed/embedder.h"
#include "embed/retrieval_index.h"

namespace gred::models {

/// A retrieval index over training examples keyed by NLQ embedding.
///
/// Baselines build it with a lexical embedder (their "memory" of the
/// training distribution); GRED builds it with the semantic embedder
/// (Section 4.1's embedding vector library).
///
/// Search runs through embed::RetrievalIndex, so the backend (exact
/// scan, int8 quantized scan, or IVF multi-probe) is chosen by the
/// `config` argument — by default, the GRED_RETRIEVAL_* environment
/// knobs. The default backend is exact, which is byte-identical to the
/// historical brute-force behaviour.
class ExampleIndex {
 public:
  struct Hit {
    const dataset::Example* example = nullptr;
    double score = 0.0;
    std::size_t index = 0;  // position of `example` in the training split
  };

  /// Indexes `train` (not owned; must outlive the index) using
  /// `embedder` (not owned).
  ExampleIndex(const std::vector<dataset::Example>* train,
               const embed::TextEmbedder* embedder,
               embed::RetrievalConfig config = embed::RetrievalConfig::FromEnv());

  /// Top-k most similar training examples for `nlq`, best first.
  std::vector<Hit> TopK(const std::string& nlq, std::size_t k) const;

  std::size_t size() const { return index_.size(); }

 private:
  const std::vector<dataset::Example>* train_;
  const embed::TextEmbedder* embedder_;
  embed::RetrievalIndex index_;
};

/// A retrieval index over DVQ strings (GRED's DVQ embedding library used
/// by the Retuner; also RGVisNet's prototype codebase). Backend selection
/// mirrors ExampleIndex.
class DvqIndex {
 public:
  struct Hit {
    const dataset::Example* example = nullptr;
    double score = 0.0;
    std::size_t index = 0;  // position of `example` in the training split
  };

  DvqIndex(const std::vector<dataset::Example>* train,
           const embed::TextEmbedder* embedder,
           embed::RetrievalConfig config = embed::RetrievalConfig::FromEnv());

  /// Top-k training examples whose DVQ text is most similar to `dvq_text`.
  std::vector<Hit> TopK(const std::string& dvq_text, std::size_t k) const;

 private:
  const std::vector<dataset::Example>* train_;
  const embed::TextEmbedder* embedder_;
  embed::RetrievalIndex index_;
};

}  // namespace gred::models

#endif  // GREDVIS_MODELS_RETRIEVAL_H_
