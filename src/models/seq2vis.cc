#include "models/seq2vis.h"

#include <cctype>

#include "models/linking.h"
#include "nl/text.h"
#include "util/strings.h"

namespace gred::models {

namespace {

bool IsNumberToken(const std::string& token) {
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.') {
      return false;
    }
  }
  return !token.empty();
}

}  // namespace

Seq2Vis::Seq2Vis(const TrainingCorpus& corpus) : train_(corpus.train) {
  // Word-level recognition only: an LSTM over word embeddings has no
  // subword units, so out-of-vocabulary paraphrases derail it. (The
  // Transformer baseline keeps character-trigram features, its BPE
  // analogue.)
  embed::EmbedderOptions options;
  options.trigram_weight = 0.0;
  embedder_ = std::make_unique<embed::LexicalHashEmbedder>(options);
  for (const dataset::Example& ex : *corpus.train) {
    for (const std::string& token : nl::Tokenize(ex.nlq)) {
      if (!IsNumberToken(token)) vocabulary_.insert(nl::Stem(token));
    }
  }
  // The memory is encoded exactly like the query will be.
  for (const dataset::Example& ex : *corpus.train) {
    store_.Add(embedder_->Embed(Encode(ex.nlq)));
  }
}

std::string Seq2Vis::Encode(const std::string& nlq) const {
  std::vector<std::string> tokens = nl::Tokenize(nlq);
  std::string encoded;
  for (const std::string& token : tokens) {
    if (IsNumberToken(token)) {
      encoded += "numnumnum";  // delexicalized number
    } else if (vocabulary_.count(nl::Stem(token)) > 0) {
      encoded += token;
    } else {
      encoded += "unkunkunk";  // shared OOV embedding
    }
    encoded += ' ';
  }
  return encoded;
}

Result<dvq::DVQ> Seq2Vis::Translate(const std::string& nlq,
                                    const storage::DatabaseData& db) const {
  (void)db;  // Seq2Vis decodes from memory; the schema plays no role.
  std::vector<embed::VectorStore::Hit> hits =
      store_.TopK(embedder_->Embed(Encode(nlq)), 1);
  if (hits.empty()) {
    return Status::NotFound("Seq2Vis: empty training memory");
  }
  dvq::DVQ out = (*train_)[hits[0].index].dvq;
  AdaptLiterals(&out.query, ExtractSurfaceValues(nlq));
  return out;
}

}  // namespace gred::models
