#include "models/revision.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "dataset/nlq_render.h"
#include "models/keywords.h"
#include "models/linking.h"
#include "nl/text.h"
#include "util/strings.h"

namespace gred::models {

std::string LinkTargetAfterPhrase(
    const std::vector<std::string>& tokens,
    const schema::Database& db_schema,
    const std::function<bool(const std::string&, const std::string&)>&
        match) {
  for (std::size_t start = 0; start < tokens.size(); ++start) {
    std::string best_col;
    std::size_t best_len = 0;
    for (const schema::TableDef& t : db_schema.tables()) {
      for (const schema::Column& c : t.columns()) {
        std::vector<std::string> words =
            strings::SplitIdentifierWords(c.name);
        if (words.empty() || start + words.size() > tokens.size()) continue;
        bool all = true;
        for (std::size_t i = 0; i < words.size(); ++i) {
          if (!match(tokens[start + i], words[i])) {
            all = false;
            break;
          }
        }
        if (all && words.size() > best_len) {
          best_len = words.size();
          best_col = c.name;
        }
      }
    }
    if (!best_col.empty()) return best_col;
  }
  return std::string();
}

std::optional<dvq::Literal> LiteralAfterPhrase(const std::string& nlq,
                                               std::size_t pos) {
  std::size_t i = pos;
  auto is_space_or_quote = [](char c) {
    return c == ' ' || c == '\t' || c == '"' || c == '\'' || c == ':';
  };
  while (i < nlq.size() && is_space_or_quote(nlq[i])) ++i;
  if (i >= nlq.size()) return std::nullopt;
  char c = nlq[i];
  if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
      (c == '-' && i + 1 < nlq.size() &&
       std::isdigit(static_cast<unsigned char>(nlq[i + 1])) != 0)) {
    std::size_t start = i;
    if (c == '-') ++i;
    bool dot = false;
    while (i < nlq.size() &&
           (std::isdigit(static_cast<unsigned char>(nlq[i])) != 0 ||
            (nlq[i] == '.' && !dot && i + 1 < nlq.size() &&
             std::isdigit(static_cast<unsigned char>(nlq[i + 1])) != 0) ||
            nlq[i] == '-')) {  // dates ride along; treated as text below
      if (nlq[i] == '.') dot = true;
      ++i;
    }
    std::string text = nlq.substr(start, i - start);
    if (text.find('-', 1) != std::string::npos) {
      return dvq::Literal::Str(text);  // ISO date
    }
    if (dot) return dvq::Literal::Real(std::stod(text));
    return dvq::Literal::Int(std::stoll(text));
  }
  auto read_word = [&](std::size_t* cursor) {
    std::size_t start = *cursor;
    while (*cursor < nlq.size() &&
           (std::isalnum(static_cast<unsigned char>(nlq[*cursor])) != 0 ||
            nlq[*cursor] == '_')) {
      ++*cursor;
    }
    return nlq.substr(start, *cursor - start);
  };
  std::string value = read_word(&i);
  if (value.empty()) return std::nullopt;
  // Absorb capitalized continuations ("Harbor Point").
  while (i + 1 < nlq.size() && nlq[i] == ' ' &&
         std::isupper(static_cast<unsigned char>(nlq[i + 1])) != 0) {
    std::size_t j = i + 1;
    std::string next = read_word(&j);
    value += " " + next;
    i = j;
  }
  return dvq::Literal::Str(value);
}

std::optional<dvq::Predicate> TryBuildCorpusFilter(
    const std::string& nlq, const schema::Database& db_schema) {
  const std::string lower = strings::ToLower(nlq);
  // Locate the earliest explicit operator phrase.
  static const dvq::CompareOp kOps[] = {
      dvq::CompareOp::kGe, dvq::CompareOp::kLe,  dvq::CompareOp::kGt,
      dvq::CompareOp::kLt, dvq::CompareOp::kNe,  dvq::CompareOp::kLike,
      dvq::CompareOp::kEq,
  };
  dvq::CompareOp op = dvq::CompareOp::kEq;
  std::size_t op_pos = std::string::npos;
  std::size_t op_len = 0;
  std::size_t best_raw = std::string::npos;
  for (dvq::CompareOp candidate : kOps) {
    for (const std::string& phrase :
         dataset::ExplicitOpPhrases(candidate)) {
      std::size_t pos = lower.find(" " + phrase + " ");
      if (pos == std::string::npos) continue;
      // Strictly earlier wins; ties keep the first (more specific) op.
      if (best_raw == std::string::npos || pos < best_raw) {
        best_raw = pos;
        op = candidate;
        op_pos = pos + 1;
        op_len = phrase.size();
      }
    }
  }
  if (best_raw == std::string::npos) return std::nullopt;

  // The filtered column: nearest column words ending right before the
  // phrase — scan backwards over reversed tokens, matching each column's
  // words in reverse order.
  std::vector<std::string> before =
      nl::ContentTokens(lower.substr(0, op_pos));
  std::reverse(before.begin(), before.end());
  if (before.size() > 4) before.resize(4);
  std::string column;
  for (std::size_t start = 0; start < before.size() && column.empty();
       ++start) {
    std::size_t best_len = 0;
    for (const schema::TableDef& t : db_schema.tables()) {
      for (const schema::Column& c : t.columns()) {
        std::vector<std::string> words =
            strings::SplitIdentifierWords(c.name);
        if (words.empty() || start + words.size() > before.size()) continue;
        bool all = true;
        for (std::size_t i = 0; i < words.size(); ++i) {
          const std::string& token = before[start + i];
          const std::string& word = words[words.size() - 1 - i];
          if (token != word && nl::Stem(token) != nl::Stem(word)) {
            all = false;
            break;
          }
        }
        if (all && words.size() > best_len) {
          best_len = words.size();
          column = c.name;
        }
      }
    }
  }
  if (column.empty()) return std::nullopt;

  // The literal: the value right after the phrase.
  std::optional<dvq::Literal> literal =
      LiteralAfterPhrase(nlq, op_pos + op_len);
  if (!literal.has_value()) return std::nullopt;
  dvq::Predicate pred;
  pred.col.column = column;
  pred.op = op;
  if (op == dvq::CompareOp::kLike &&
      literal->kind == dvq::Literal::Kind::kString) {
    literal->string_value = "%" + literal->string_value + "%";
  }
  pred.literal = std::move(*literal);
  return pred;
}

void ApplyCorpusIntent(dvq::DVQ* out, const std::string& nlq,
                       const schema::Database& db_schema,
                       const CorpusIntentOptions& options) {
  constexpr DetectorProfile kProfile = DetectorProfile::kCorpusTrained;
  const std::string lower = strings::ToLower(nlq);

  // Chart head.
  if (std::optional<dvq::ChartType> chart = DetectChart(nlq, kProfile)) {
    out->chart = *chart;
  }

  // Select-arity normalization: only the grouped chart family carries a
  // third (series) encoding.
  const bool grouped_chart = out->chart == dvq::ChartType::kStackedBar ||
                             out->chart == dvq::ChartType::kGroupingLine ||
                             out->chart == dvq::ChartType::kGroupingScatter;
  if (!grouped_chart && out->query.select.size() > 2) {
    out->query.select.resize(2);
  }
  if (options.series_recovery && grouped_chart &&
      out->query.select.size() == 2) {
    // Series recovery: the last grouping phrase names the series column.
    std::size_t pos = lower.rfind("group by ");
    if (pos != std::string::npos) {
      std::vector<std::string> after =
          nl::ContentTokens(lower.substr(pos + 9));
      if (after.size() > 3) after.resize(3);
      std::string col = LinkTargetAfterPhrase(
          after, db_schema,
          [](const std::string& token, const std::string& word) {
            return token == word || nl::Stem(token) == nl::Stem(word);
          });
      if (!col.empty() &&
          !strings::EqualsIgnoreCase(col,
                                     out->query.select[0].col.column)) {
        dvq::SelectExpr series;
        series.col.column = col;
        out->query.select.push_back(series);
      }
    }
  }

  // Aggregation head.
  std::optional<AggHit> agg_hit = FindAggPhrase(nlq, kProfile);
  bool base_has_agg = out->query.select.size() >= 2 &&
                      out->query.select[1].agg != dvq::AggFunc::kNone;
  if (!agg_hit.has_value()) {
    if (base_has_agg && options.prune_unevidenced) {
      out->query.select[1].agg = dvq::AggFunc::kNone;
      out->query.select[1].distinct = false;
      if (out->query.select[1].col.column == "*") {
        out->query.select[1].col = out->query.select[0].col;
      }
      out->query.group_by.clear();
    }
  } else if (out->query.select.size() >= 2) {
    out->query.select[1].agg = agg_hit->func;
    if (agg_hit->func == dvq::AggFunc::kCount) {
      out->query.select[1].col = out->query.select[0].col;
    } else if (options.agg_target_extraction) {
      // The aggregation target follows the phrase; link it lexically
      // (verbatim / case / stem — no synonyms). Proximity wins: the
      // column whose words appear earliest after the phrase.
      std::vector<std::string> after =
          nl::ContentTokens(lower.substr(agg_hit->end_pos));
      if (after.size() > 4) after.resize(4);
      std::string best_col = LinkTargetAfterPhrase(
          after, db_schema, [](const std::string& token,
                               const std::string& word) {
            return token == word || nl::Stem(token) == nl::Stem(word);
          });
      if (!best_col.empty()) {
        out->query.select[1].col.table.clear();
        out->query.select[1].col.column = best_col;
      }
    }
  }

  // Bin head: adjust the unit, or prune the clause when the question
  // carries no binning vocabulary at all.
  if (out->query.bin.has_value()) {
    if (std::optional<dvq::BinUnit> unit = DetectBinUnit(nlq, kProfile)) {
      out->query.bin->unit = *unit;
    } else if (options.prune_unevidenced &&
               lower.find("bin") == std::string::npos &&
               lower.find("interval") == std::string::npos) {
      out->query.bin.reset();
    }
  }

  // Grouping: rebuild to the corpus convention — aggregated queries group
  // by the x axis (series first for grouped charts) unless a BIN clause
  // provides the implicit grouping; non-aggregated queries don't group.
  const bool has_agg_now = out->query.select.size() >= 2 &&
                           out->query.select[1].agg != dvq::AggFunc::kNone;
  out->query.group_by.clear();
  if (has_agg_now && !out->query.bin.has_value()) {
    if (grouped_chart && out->query.select.size() >= 3) {
      out->query.group_by.push_back(out->query.select[2].col);
    }
    out->query.group_by.push_back(out->query.select[0].col);
  }

  // Sorting head.
  if (std::optional<OrderIntent> order = DetectOrder(nlq, kProfile)) {
    dvq::OrderByClause clause;
    if (out->query.order_by.has_value()) clause = *out->query.order_by;
    if (order->axis == 0) {
      clause.expr = out->query.select[0];
    } else if (order->axis == 1 && out->query.select.size() >= 2) {
      clause.expr = out->query.select[1];
    } else if (!out->query.order_by.has_value()) {
      clause.expr = out->query.select.size() >= 2 ? out->query.select[1]
                                                  : out->query.select[0];
    }
    clause.descending = order->descending;
    out->query.order_by = clause;
  } else if (options.prune_unevidenced && out->query.order_by.has_value() &&
             lower.find("sort") == std::string::npos &&
             lower.find("order") == std::string::npos &&
             lower.find("rank") == std::string::npos) {
    out->query.order_by.reset();
  }

  // Limit head.
  if (std::optional<std::int64_t> limit = DetectLimit(nlq)) {
    out->query.limit = *limit;
  } else if (options.prune_unevidenced && out->query.limit.has_value() &&
             lower.find("top") == std::string::npos &&
             lower.find("first") == std::string::npos) {
    out->query.limit.reset();
  }

  // Filter pruning.
  const bool filter_evidence = lower.find("whose") != std::string::npos ||
                               lower.find("where") != std::string::npos;
  if (options.prune_unevidenced && !filter_evidence) {
    out->query.where.reset();
  }
}

}  // namespace gred::models
