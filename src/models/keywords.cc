#include "models/keywords.h"

#include <cctype>
#include <vector>

#include "util/strings.h"

namespace gred::models {

namespace {

bool Has(const std::string& lower, const char* phrase) {
  return lower.find(phrase) != std::string::npos;
}

bool HasAny(const std::string& lower,
            const std::vector<const char*>& phrases) {
  for (const char* p : phrases) {
    if (Has(lower, p)) return true;
  }
  return false;
}

}  // namespace

std::optional<dvq::ChartType> DetectChart(const std::string& nlq,
                                          DetectorProfile profile) {
  std::string lower = strings::ToLower(nlq);
  const bool general = profile == DetectorProfile::kGeneral;
  if (Has(lower, "stacked")) return dvq::ChartType::kStackedBar;
  if (Has(lower, "grouping line") || Has(lower, "grouped line")) {
    return dvq::ChartType::kGroupingLine;
  }
  if (Has(lower, "grouping scatter") || Has(lower, "grouped scatter")) {
    return dvq::ChartType::kGroupingScatter;
  }
  if (Has(lower, "pie")) return dvq::ChartType::kPie;
  if (Has(lower, "scatter") || (general && Has(lower, "dot plot"))) {
    return dvq::ChartType::kScatter;
  }
  if (Has(lower, "line chart") || Has(lower, "line graph") ||
      (general && Has(lower, "line-based")) ||
      (general && Has(lower, "trend"))) {
    return dvq::ChartType::kLine;
  }
  if (Has(lower, "bar") || Has(lower, "histogram")) {
    return dvq::ChartType::kBar;
  }
  return std::nullopt;
}

std::optional<OrderIntent> DetectOrder(const std::string& nlq,
                                       DetectorProfile profile) {
  std::string lower = strings::ToLower(nlq);
  const bool general = profile == DetectorProfile::kGeneral;
  bool desc = HasAny(lower, {"descending", "desc order", "high to low"});
  bool asc = HasAny(lower, {"ascending", "asc order", "low to high"});
  if (general) {
    desc = desc || HasAny(lower, {"largest to smallest", "downward",
                                  "decreasing"});
    asc = asc || HasAny(lower, {"smallest to largest", "upward",
                                "increasing"});
  }
  if (!desc && !asc) {
    // A bare "sort"/"order"/"rank" without a direction defaults ascending.
    if (HasAny(lower, {"sort the", "order the", "rank in", "sorted"}) ||
        (general && HasAny(lower, {"arranging the", "laid out",
                                   "organized in"}))) {
      asc = true;
    } else {
      return std::nullopt;
    }
  }
  OrderIntent intent;
  intent.descending = desc;
  if (Has(lower, "y-axis") || Has(lower, "y axis")) {
    intent.axis = 1;
  } else if (Has(lower, "x-axis") || Has(lower, "x axis")) {
    intent.axis = 0;
  }
  return intent;
}

std::optional<dvq::AggFunc> DetectAgg(const std::string& nlq,
                                      DetectorProfile profile) {
  std::optional<AggHit> hit = FindAggPhrase(nlq, profile);
  if (!hit.has_value()) return std::nullopt;
  return hit->func;
}

std::optional<AggHit> FindAggPhrase(const std::string& nlq,
                                    DetectorProfile profile) {
  std::string lower = strings::ToLower(nlq);
  const bool general = profile == DetectorProfile::kGeneral;
  struct Entry {
    dvq::AggFunc func;
    const char* phrase;
    bool general_only;
  };
  static const Entry kEntries[] = {
      {dvq::AggFunc::kCount, "number of", false},
      {dvq::AggFunc::kCount, "count of", false},
      {dvq::AggFunc::kCount, "how many", false},
      {dvq::AggFunc::kCount, "tally of", true},
      {dvq::AggFunc::kCount, "frequency of", true},
      {dvq::AggFunc::kCount, "entries of", true},
      {dvq::AggFunc::kSum, "sum of", false},
      {dvq::AggFunc::kSum, "the total", false},
      {dvq::AggFunc::kSum, "the combined", true},
      {dvq::AggFunc::kSum, "the overall", true},
      {dvq::AggFunc::kAvg, "average of", false},
      {dvq::AggFunc::kAvg, "the average", false},
      {dvq::AggFunc::kAvg, "the mean", true},
      {dvq::AggFunc::kAvg, "the typical", true},
      {dvq::AggFunc::kMin, "the minimum", false},
      {dvq::AggFunc::kMin, "the lowest", false},
      {dvq::AggFunc::kMin, "the smallest", true},
      {dvq::AggFunc::kMin, "the least", true},
      {dvq::AggFunc::kMax, "the maximum", false},
      {dvq::AggFunc::kMax, "the highest", false},
      {dvq::AggFunc::kMax, "the largest", true},
      {dvq::AggFunc::kMax, "the peak", true},
  };
  std::optional<AggHit> best;
  for (const Entry& entry : kEntries) {
    if (entry.general_only && !general) continue;
    std::size_t pos = lower.find(entry.phrase);
    if (pos == std::string::npos) continue;
    std::size_t end = pos + std::string(entry.phrase).size();
    if (!best.has_value() || end < best->end_pos) {
      best = AggHit{entry.func, end};
    }
  }
  return best;
}

std::optional<dvq::BinUnit> DetectBinUnit(const std::string& nlq,
                                          DetectorProfile profile) {
  std::string lower = strings::ToLower(nlq);
  const bool general = profile == DetectorProfile::kGeneral;
  bool bin_marker = Has(lower, "bin ") || Has(lower, " bin") ||
                    Has(lower, "interval");
  if (bin_marker || general) {
    if (Has(lower, "weekday") ||
        (general && Has(lower, "day of the week"))) {
      return dvq::BinUnit::kWeekday;
    }
    if (Has(lower, "by month") || (general && (Has(lower, "monthly") ||
                                               Has(lower, "per month")))) {
      return dvq::BinUnit::kMonth;
    }
    if (Has(lower, "by year") || (general && (Has(lower, "yearly") ||
                                              Has(lower, "per year")))) {
      return dvq::BinUnit::kYear;
    }
    if (Has(lower, "by day") ||
        (general && (Has(lower, "daily") || Has(lower, "per day")))) {
      return dvq::BinUnit::kDay;
    }
  }
  return std::nullopt;
}

bool DetectGroup(const std::string& nlq, DetectorProfile profile) {
  std::string lower = strings::ToLower(nlq);
  if (HasAny(lower, {"group by", "for each"})) return true;
  if (profile == DetectorProfile::kGeneral &&
      HasAny(lower, {"per ", "for every", "broken down by", "split by",
                     "across"})) {
    return true;
  }
  return false;
}

std::optional<std::int64_t> DetectLimit(const std::string& nlq) {
  std::string lower = strings::ToLower(nlq);
  static const std::vector<const char*> kMarkers = {
      "top ", "first ", "leading ", "no more than "};
  for (const char* marker : kMarkers) {
    std::size_t pos = lower.find(marker);
    if (pos == std::string::npos) continue;
    std::size_t start = pos + std::string(marker).size();
    std::size_t end = start;
    while (end < lower.size() &&
           std::isdigit(static_cast<unsigned char>(lower[end])) != 0) {
      ++end;
    }
    if (end > start) {
      return std::stoll(lower.substr(start, end - start));
    }
  }
  return std::nullopt;
}

}  // namespace gred::models
