#include "models/rgvisnet.h"

#include <map>

#include "models/keywords.h"
#include "models/revision.h"
#include "models/linking.h"
#include "nl/text.h"
#include "util/strings.h"

namespace gred::models {

namespace {

/// Masks schema tokens and literal values, leaving the structural
/// skeleton: chart type, clause shape, aggregates, operators.
std::string SkeletonKey(const dvq::DVQ& query) {
  dvq::DVQ masked = query;
  dvq::TransformColumnRefs(&masked.query, [](dvq::ColumnRef* ref) {
    if (ref->column != "*") ref->column = "C";
    ref->table.clear();
  });
  std::function<void(dvq::Query*)> mask = [&](dvq::Query* q) {
    q->from_table = "T";
    q->from_alias.clear();
    for (dvq::JoinClause& j : q->joins) {
      j.table = "T";
      j.alias.clear();
    }
    if (q->limit.has_value()) q->limit = 0;
    if (q->where.has_value()) {
      for (dvq::Predicate& p : q->where->predicates) {
        if (p.literal.has_value()) {
          p.literal = p.literal->kind == dvq::Literal::Kind::kString
                          ? dvq::Literal::Str("V")
                          : dvq::Literal::Int(0);
        }
        for (dvq::Literal& l : p.in_list) {
          l = l.kind == dvq::Literal::Kind::kString ? dvq::Literal::Str("V")
                                                    : dvq::Literal::Int(0);
        }
        if (p.subquery != nullptr) {
          dvq::Query inner = *p.subquery;
          mask(&inner);
          p.subquery = std::make_shared<const dvq::Query>(std::move(inner));
        }
      }
    }
  };
  mask(&masked.query);
  return masked.Canonical();
}

}  // namespace

RGVisNet::RGVisNet(const TrainingCorpus& corpus) {
  // Retrieval is RGVisNet's core strength (a dedicated retrieval network
  // over the DVQ codebase): heavier subword features than the
  // Transformer's encoder give it the best out-of-register recall among
  // the baselines.
  embed::EmbedderOptions options;
  options.trigram_weight = 0.1;
  embedder_ = std::make_unique<embed::LexicalHashEmbedder>(options);
  index_ = std::make_unique<ExampleIndex>(corpus.train, embedder_.get());
}

Result<dvq::DVQ> RGVisNet::Translate(const std::string& nlq,
                                     const storage::DatabaseData& db) const {
  std::vector<ExampleIndex::Hit> hits = index_->TopK(nlq, 10);
  if (hits.empty()) {
    return Status::NotFound("RGVisNet: empty prototype codebase");
  }

  // Skeleton vote: the structure supported by the most similar
  // neighbourhood wins; its best instance becomes the prototype.
  std::map<std::string, double> votes;
  for (const ExampleIndex::Hit& hit : hits) {
    // Only the near-top neighbourhood votes, and votes sharpen steeply
    // with similarity, so one near-duplicate outweighs many mediocre
    // neighbours.
    if (hit.score < hits[0].score - 0.04) continue;
    double w = hit.score * hit.score;
    w = w * w;
    w = w * w;  // score^8
    votes[SkeletonKey(hit.example->dvq)] += w;
  }
  const dataset::Example* prototype = hits[0].example;
  if (hits[0].score >= 0.72) {
    double best_vote = -1.0;
    for (const ExampleIndex::Hit& hit : hits) {
      if (hit.score < hits[0].score - 0.04) continue;
      double vote = votes[SkeletonKey(hit.example->dvq)];
      // Within a skeleton, the highest-similarity instance wins (hits
      // are ordered by similarity, so the first with the best vote is
      // taken).
      if (vote > best_vote) {
        best_vote = vote;
        prototype = hit.example;
      }
    }
  }

  // The retrieval net's confidence gates how aggressively the revision
  // network trusts the question over the prototype.
  const bool in_distribution = hits[0].score >= 0.72;

  dvq::DVQ out = prototype->dvq;
  AdaptLiterals(&out.query, ExtractSurfaceValues(nlq));

  // Revision heads (clean-register keyword knowledge).
  // In-distribution inputs are decoded literally (clauses without
  // question evidence are pruned); out-of-distribution inputs fall back
  // to the retrieval-first prior and keep the prototype's structure.
  CorpusIntentOptions intent;
  intent.prune_unevidenced = in_distribution;
  ApplyCorpusIntent(&out, nlq, db.db_schema(), intent);

  // FROM revision: when the question names another table of the target
  // database verbatim and never names the prototype's table, follow the
  // question (single-table queries only; join synthesis is beyond the
  // revision network).
  std::vector<std::string> nlq_tokens = nl::Tokenize(nlq);
  if (out.query.joins.empty()) {
    double current_mention =
        MentionScore(nlq_tokens, out.query.from_table);
    if (current_mention < 1.0) {
      for (const schema::TableDef& t : db.db_schema().tables()) {
        if (MentionScore(nlq_tokens, t.name()) >= 1.0) {
          out.query.from_table = t.name();
          break;
        }
      }
    }
  }

  // Filter decoding: the revision network rebuilds the predicate from
  // the clean-register surface (column words, operator phrase, literal),
  // replacing whatever the prototype carried; without any surface
  // evidence the clause was already pruned by ApplyCorpusIntent.
  const std::string lower_nlq = strings::ToLower(nlq);
  const bool filter_evidence =
      lower_nlq.find("whose") != std::string::npos ||
      lower_nlq.find("where") != std::string::npos;
  if (filter_evidence && in_distribution) {
    bool prototype_has_subquery = false;
    if (out.query.where.has_value()) {
      for (const dvq::Predicate& p : out.query.where->predicates) {
        if (p.subquery != nullptr) prototype_has_subquery = true;
      }
    }
    if (!prototype_has_subquery) {
      if (std::optional<dvq::Predicate> pred =
              TryBuildCorpusFilter(nlq, db.db_schema())) {
        dvq::Condition cond;
        cond.predicates.push_back(std::move(*pred));
        out.query.where = std::move(cond);
      }
    }
  }

  // Full schema revision: every reference re-scored against the target
  // database (surface evidence only).
  RelinkOptions relink;
  relink.only_missing = !in_distribution;  // conservative when OOD
  relink.column_threshold = 0.5;
  relink.mention_weight = 0.55;
  relink.table_threshold = 0.45;
  RelinkSchemaLexically(&out.query, db.db_schema(), nlq_tokens, relink);

  // Join synthesis: pull in the foreign-key neighbour when a linked
  // column lives outside the query's tables.
  SynthesizeJoins(&out.query, db.db_schema());
  return out;
}

}  // namespace gred::models
