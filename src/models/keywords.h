#ifndef GREDVIS_MODELS_KEYWORDS_H_
#define GREDVIS_MODELS_KEYWORDS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "dvq/ast.h"

namespace gred::models {

/// Which phrase inventory a detector understands.
///
/// kCorpusTrained models a system whose keyword knowledge comes from the
/// clean nvBench training register only (the baselines). kGeneral models
/// broad natural-language understanding (the simulated LLM): it covers
/// the paraphrased register of nvBench-Rob as well.
enum class DetectorProfile { kCorpusTrained, kGeneral };

/// Chart-type intent; nullopt when no chart vocabulary is present.
std::optional<dvq::ChartType> DetectChart(const std::string& nlq,
                                          DetectorProfile profile);

/// Sorting intent.
struct OrderIntent {
  bool descending = false;
  /// Which axis the sort names: 0 = x, 1 = y, -1 = unspecified.
  int axis = -1;
};
std::optional<OrderIntent> DetectOrder(const std::string& nlq,
                                       DetectorProfile profile);

/// Aggregation intent for the y axis.
std::optional<dvq::AggFunc> DetectAgg(const std::string& nlq,
                                      DetectorProfile profile);

/// Temporal binning intent.
std::optional<dvq::BinUnit> DetectBinUnit(const std::string& nlq,
                                          DetectorProfile profile);

/// Grouping intent ("group by", "for each", ...).
bool DetectGroup(const std::string& nlq, DetectorProfile profile);

/// Aggregation intent plus where its phrase ends in the (lower-cased)
/// question — callers read the tokens after `end_pos` to locate the
/// aggregation target column ("the sum of price ..." -> "price").
struct AggHit {
  dvq::AggFunc func = dvq::AggFunc::kNone;
  std::size_t end_pos = 0;
};
std::optional<AggHit> FindAggPhrase(const std::string& nlq,
                                    DetectorProfile profile);

/// Row-limit intent ("top 5"); profile-independent.
std::optional<std::int64_t> DetectLimit(const std::string& nlq);

}  // namespace gred::models

#endif  // GREDVIS_MODELS_KEYWORDS_H_
