#ifndef GREDVIS_MODELS_REVISION_H_
#define GREDVIS_MODELS_REVISION_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dvq/ast.h"
#include "schema/schema.h"

namespace gred::models {

/// Applies the clean-register keyword "heads" that an nvBench-trained
/// decoder exhibits to a decoded/retrieved DVQ:
///
///  * chart type from chart vocabulary,
///  * aggregation function from aggregation phrases, with the target
///    column located lexically after the phrase ("the sum of price"),
///    and aggregates stripped when the question carries no aggregation
///    evidence,
///  * sort direction/axis, pruned without sort evidence,
///  * LIMIT from "top N",
///  * bin unit from "bin ... by month",
///  * WHERE pruned when the question carries no filter evidence
///    ("whose"/"where" in the clean register).
///
/// All detection uses DetectorProfile::kCorpusTrained: the paraphrased
/// register of nvBench-Rob largely escapes these heads, which is the
/// baseline behaviour the paper documents.
///
/// `options` scales the head set to the model's capacity: the
/// Transformer baseline lacks the pointer-style heads (aggregation
/// target extraction, series recovery) that RGVisNet's revision network
/// provides.
struct CorpusIntentOptions {
  bool agg_target_extraction = true;
  bool series_recovery = true;
  /// When true, clauses with no clean-register evidence in the question
  /// are removed (a literal decoder). RGVisNet's retrieval-first design
  /// preserves the prototype instead.
  bool prune_unevidenced = true;
};
void ApplyCorpusIntent(dvq::DVQ* out, const std::string& nlq,
                       const schema::Database& db_schema,
                       const CorpusIntentOptions& options = {});

/// Finds the schema column whose identifier words match a token window
/// of `tokens` starting at the earliest position (proximity beats global
/// similarity: in "the sum of found_year by country", `found_year` is the
/// aggregation target even though `country` also appears). `match`
/// decides token-vs-word equivalence (lexical stem matching for the
/// baselines, lexicon-aware matching for the simulated LLM). Returns an
/// empty string when nothing matches fully.
/// Reads the literal value that follows a comparison phrase at byte
/// offset `pos` in `nlq`: a number, or a word sequence (capitalized
/// continuations are absorbed, so "Harbor Point" survives). Returns
/// nullopt at end of input.
std::optional<dvq::Literal> LiteralAfterPhrase(const std::string& nlq,
                                               std::size_t pos);

/// Builds a WHERE predicate from clean-register surface evidence: the
/// first explicit operator phrase, the column words right before it
/// (lexical link, no synonyms) and the literal right after. Returns
/// nullopt when any ingredient is missing. This is the filter decoder of
/// a corpus-trained revision network (RGVisNet's generation head).
std::optional<dvq::Predicate> TryBuildCorpusFilter(
    const std::string& nlq, const schema::Database& db_schema);

std::string LinkTargetAfterPhrase(
    const std::vector<std::string>& tokens,
    const schema::Database& db_schema,
    const std::function<bool(const std::string&, const std::string&)>&
        match);

}  // namespace gred::models

#endif  // GREDVIS_MODELS_REVISION_H_
