#ifndef GREDVIS_DATASET_QUERY_GENERATOR_H_
#define GREDVIS_DATASET_QUERY_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "dataset/example.h"
#include "dataset/nlq_render.h"
#include "dataset/plan.h"
#include "nl/lexicon.h"
#include "util/rng.h"

namespace gred::dataset {

/// Options steering the (NLQ, DVQ) pair generator. The default weights
/// match the chart-type and hardness distributions of nvBench-Rob's
/// development split (Figure 2 of the paper).
struct QueryGeneratorOptions {
  std::uint64_t seed = 7711;
  /// Weights over {bar, pie, line, scatter, stacked, grouping line,
  /// grouping scatter}.
  /// Line-family weights are boosted above Figure 2's shares because
  /// plans for them fail more often (they need date columns) and are
  /// resampled; the realized distribution matches the paper's.
  std::vector<double> chart_weights = {0.70, 0.074, 0.09, 0.041,
                                       0.051, 0.022, 0.028};
  /// Weights over {easy, medium, hard, extra hard}.
  std::vector<double> hardness_weights = {0.242, 0.402, 0.239, 0.117};
  /// NLQ surface variants rendered per sampled plan. nvBench pairs each
  /// visualization with several differently-phrased questions; the
  /// redundancy is what lets memorization-heavy models look strong on
  /// the clean split (Section 3's analysis).
  std::size_t variants_per_plan = 3;
};

/// Generates benchmark pairs over a database corpus. Each Example carries
/// both the explicit-style NLQ (nvBench register) and a paraphrased NLQ
/// (nvBench-Rob register) rendered from the same plan.
class QueryGenerator {
 public:
  QueryGenerator(const std::vector<GeneratedDatabase>* databases,
                 const nl::Lexicon* lexicon,
                 QueryGeneratorOptions options = {});

  /// Generates `count` examples with ids "<prefix><n>". Round-robins over
  /// databases so every database contributes.
  std::vector<Example> Generate(std::size_t count, const std::string& prefix);

  /// Samples one plan for the given database, or nullopt when the
  /// database lacks the column roles the sampled chart needs.
  std::optional<QueryPlan> SamplePlan(const GeneratedDatabase& db, Rng* rng);

 private:
  const std::vector<GeneratedDatabase>* databases_;  // not owned
  const nl::Lexicon* lexicon_;                        // not owned
  QueryGeneratorOptions options_;
};

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_QUERY_GENERATOR_H_
