#ifndef GREDVIS_DATASET_ENTITY_BANK_H_
#define GREDVIS_DATASET_ENTITY_BANK_H_

#include <string>
#include <vector>

#include "schema/schema.h"

namespace gred::dataset {

/// Semantic role of a column, driving both value generation and
/// NLQ/DVQ template selection.
enum class ColumnRole {
  kId,        // primary key / foreign key
  kName,      // human-readable entity name (text)
  kCategory,  // low-cardinality categorical text
  kNumeric,   // measure
  kDate,      // ISO date
};

/// Blueprint of one column within an entity template.
///
/// `words` are canonical lexicon concept words; the database generator
/// joins them into a concrete column name ("hire","date" -> "hire_date")
/// and the schema perturbation engine later substitutes synonyms for the
/// same words ("employment_day").
struct ColumnSpec {
  std::vector<std::string> words;
  schema::ColumnType type = schema::ColumnType::kText;
  ColumnRole role = ColumnRole::kNumeric;
  double min_value = 0;       // numeric range (inclusive)
  double max_value = 100;
  bool integral = true;       // false -> real-valued
  std::string pool;           // value-pool id for kName/kCategory columns
  std::string fk_entity;      // non-empty: references that entity's id
};

/// Blueprint of one table.
struct EntitySpec {
  std::string id;                        // "employee"
  std::vector<std::string> table_words;  // words forming the table name
  std::vector<ColumnSpec> columns;       // first column is the id column
  std::size_t min_rows = 25;
  std::size_t max_rows = 90;
};

/// A coherent group of entities with foreign-key links; one domain seeds
/// several generated databases.
struct DomainSpec {
  std::string id;                      // "hr"
  std::vector<std::string> entities;   // entity ids, parents first
};

/// The built-in bank of entity templates, domains and value pools from
/// which the benchmark's databases are generated.
class EntityBank {
 public:
  /// The curated default bank (35 entities across 16 domains).
  static const EntityBank& Default();

  const std::vector<EntitySpec>& entities() const { return entities_; }
  const std::vector<DomainSpec>& domains() const { return domains_; }

  const EntitySpec* FindEntity(const std::string& id) const;

  /// Value pool lookup ("first_names", "cities", ...); empty when unknown.
  const std::vector<std::string>& Pool(const std::string& id) const;

  void AddEntity(EntitySpec entity) { entities_.push_back(std::move(entity)); }
  void AddDomain(DomainSpec domain) { domains_.push_back(std::move(domain)); }
  void AddPool(const std::string& id, std::vector<std::string> values);

 private:
  std::vector<EntitySpec> entities_;
  std::vector<DomainSpec> domains_;
  std::vector<std::pair<std::string, std::vector<std::string>>> pools_;
};

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_ENTITY_BANK_H_
