#include "dataset/library_growth.h"

#include <optional>

#include "dataset/nlq_render.h"
#include "dataset/plan.h"
#include "dataset/query_generator.h"
#include "util/rng.h"

namespace gred::dataset {

std::vector<std::string> GrowNlqLibrary(
    const std::vector<GeneratedDatabase>& databases,
    const nl::Lexicon& lexicon, std::size_t count,
    const LibraryGrowthOptions& options) {
  std::vector<std::string> out;
  out.reserve(count);
  if (databases.empty() || count == 0) return out;

  QueryGenerator generator(&databases, &lexicon);
  Rng rng(options.seed);
  std::size_t db_cursor = 0;
  while (out.size() < count) {
    const GeneratedDatabase& db = databases[db_cursor % databases.size()];
    ++db_cursor;
    std::optional<QueryPlan> plan;
    for (int tries = 0; tries < 12 && !plan.has_value(); ++tries) {
      plan = generator.SamplePlan(db, &rng);
    }
    if (!plan.has_value()) continue;
    for (std::size_t variant = 0;
         variant < options.variants_per_plan && out.size() < count;
         ++variant) {
      const NlqStyle style =
          variant % 2 == 0 ? NlqStyle::kExplicit : NlqStyle::kParaphrased;
      Rng nlq_rng = rng.Fork();
      out.push_back(RenderNlq(*plan, style, &nlq_rng, lexicon));
    }
  }
  return out;
}

}  // namespace gred::dataset
