#include "dataset/benchmark.h"

#include <set>

#include "dataset/query_generator.h"
#include "nl/lexicon.h"
#include "util/rng.h"
#include "util/strings.h"

namespace gred::dataset {

const GeneratedDatabase* BenchmarkSuite::FindCleanDb(
    const std::string& name) const {
  for (const GeneratedDatabase& db : databases) {
    if (strings::EqualsIgnoreCase(db.data.name(), name)) return &db;
  }
  return nullptr;
}

const GeneratedDatabase* BenchmarkSuite::FindRobDb(
    const std::string& name) const {
  for (const GeneratedDatabase& db : databases_rob) {
    if (strings::EqualsIgnoreCase(db.data.name(), name)) return &db;
  }
  return nullptr;
}

BenchmarkSuite BuildBenchmarkSuite(const BenchmarkOptions& options) {
  BenchmarkSuite suite;
  const nl::Lexicon& lexicon = nl::Lexicon::Default();

  DbGeneratorOptions db_options;
  db_options.num_databases = options.num_databases;
  db_options.seed = options.seed;
  suite.databases = GenerateDatabases(EntityBank::Default(), db_options);

  // Schema-perturbed corpus + rename maps.
  Rng perturb_rng(options.seed ^ 0xa5a5a5a5ULL);
  PerturbOptions perturb_options;
  for (const GeneratedDatabase& db : suite.databases) {
    SchemaRename renames;
    Rng db_rng = perturb_rng.Fork();
    suite.databases_rob.push_back(
        PerturbSchema(db, lexicon, perturb_options, &db_rng, &renames));
    suite.renames[db.data.name()] = std::move(renames);
  }

  // Example generation: one shared pool, split into train/test by a
  // deterministic shuffle. Because several NLQ variants share each plan,
  // most test visualizations also appear in training with a different
  // question — nvBench's no-cross-domain regime (Section 3).
  QueryGeneratorOptions qg_options;
  qg_options.seed = options.seed ^ 0x5c5c5c5cULL;
  QueryGenerator generator(&suite.databases, &lexicon, qg_options);
  std::vector<Example> pool =
      generator.Generate(options.train_size + options.test_size, "ex-");
  Rng split_rng(options.seed ^ 0x3d3d3d3dULL);
  split_rng.Shuffle(&pool);
  if (options.cross_domain) {
    // Hold out every fifth database: its examples are test-only, the
    // rest are train-only. Both sides are capped at the requested sizes.
    std::set<std::string> holdout;
    for (std::size_t i = 0; i < suite.databases.size(); i += 5) {
      holdout.insert(strings::ToLower(suite.databases[i].data.name()));
    }
    for (Example& ex : pool) {
      const bool held = holdout.count(strings::ToLower(ex.db_name)) > 0;
      if (held && suite.test_clean.size() < options.test_size) {
        suite.test_clean.push_back(std::move(ex));
      } else if (!held && suite.train.size() < options.train_size) {
        suite.train.push_back(std::move(ex));
      }
    }
  } else {
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (i < options.test_size) {
        suite.test_clean.push_back(pool[i]);
      } else {
        suite.train.push_back(pool[i]);
      }
    }
  }

  // Derived robustness test sets.
  suite.test_nlq = suite.test_clean;
  for (Example& ex : suite.test_nlq) ex.nlq = ex.nlq_rob;

  suite.test_schema = suite.test_clean;
  for (Example& ex : suite.test_schema) {
    const GeneratedDatabase* clean = suite.FindCleanDb(ex.db_name);
    ex.dvq = RewriteDvq(ex.dvq, *clean, suite.renames.at(ex.db_name));
  }

  suite.test_both = suite.test_schema;
  for (Example& ex : suite.test_both) ex.nlq = ex.nlq_rob;

  return suite;
}

DatasetStats ComputeStats(const std::vector<Example>& examples,
                          const std::vector<GeneratedDatabase>& databases) {
  DatasetStats stats;
  std::set<std::string> used_dbs;
  for (const Example& ex : examples) {
    ++stats.total;
    ++stats.by_chart[dvq::ChartTypeName(ex.dvq.chart)];
    ++stats.by_hardness[HardnessName(ex.hardness)];
    used_dbs.insert(strings::ToLower(ex.db_name));
  }
  stats.num_databases = 0;
  for (const GeneratedDatabase& db : databases) {
    if (used_dbs.count(strings::ToLower(db.data.name())) == 0) continue;
    ++stats.num_databases;
    stats.num_tables += db.data.tables().size();
    stats.num_columns += db.data.db_schema().total_columns();
  }
  if (stats.num_databases > 0) {
    stats.avg_tables_per_db = static_cast<double>(stats.num_tables) /
                              static_cast<double>(stats.num_databases);
  }
  if (stats.num_tables > 0) {
    stats.avg_columns_per_table = static_cast<double>(stats.num_columns) /
                                  static_cast<double>(stats.num_tables);
  }
  return stats;
}

}  // namespace gred::dataset
