#ifndef GREDVIS_DATASET_DB_GENERATOR_H_
#define GREDVIS_DATASET_DB_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/entity_bank.h"
#include "storage/table.h"
#include "util/rng.h"

namespace gred::dataset {

/// Generation-time metadata for one column (semantic role + concept
/// words). Ground truth for the query generator; never exposed to models.
struct GeneratedColumn {
  std::string name;
  ColumnSpec spec;
};

/// Generation-time metadata for one table.
struct GeneratedTable {
  std::string name;
  std::string entity_id;
  std::vector<GeneratedColumn> columns;
};

/// A populated database plus its generation metadata.
struct GeneratedDatabase {
  storage::DatabaseData data;
  std::string domain;
  std::vector<GeneratedTable> tables;

  GeneratedDatabase() : data(schema::Database()) {}

  const GeneratedTable* FindTable(const std::string& name) const;
};

/// Configuration for the database generator.
struct DbGeneratorOptions {
  std::size_t num_databases = 104;   // matches Figure 2
  std::size_t min_tables = 3;
  std::size_t max_tables = 8;
  std::uint64_t seed = 20240501;
};

/// Generates the benchmark's database corpus: each database starts from a
/// domain's entity group (preserving foreign keys) and is padded with
/// unrelated entities up to the target table count, then populated with
/// deterministic synthetic rows (foreign keys reference real parent ids).
std::vector<GeneratedDatabase> GenerateDatabases(
    const EntityBank& bank, const DbGeneratorOptions& options);

/// Builds the plural table name for an entity ("employee" -> "employees",
/// "match" -> "matches").
std::string PluralTableName(const std::vector<std::string>& words);

/// Joins concept words into the canonical snake_case column name.
std::string CanonicalColumnName(const std::vector<std::string>& words);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_DB_GENERATOR_H_
