#ifndef GREDVIS_DATASET_PERTURB_H_
#define GREDVIS_DATASET_PERTURB_H_

#include <map>
#include <string>
#include <utility>

#include "dataset/db_generator.h"
#include "dvq/ast.h"
#include "nl/lexicon.h"
#include "util/rng.h"

namespace gred::dataset {

/// Record of the schema renames applied to one database. Keys are
/// lower-cased original names; values are the new spellings. Used to
/// rewrite target DVQs consistently — models never see this map.
struct SchemaRename {
  std::map<std::string, std::string> tables;
  /// (lower old table, lower old column) -> new column name.
  std::map<std::pair<std::string, std::string>, std::string> columns;

  /// New table name for `old_table`, or the original when unrenamed.
  std::string TableName(const std::string& old_table) const;
  /// New column name, or the original when unrenamed.
  std::string ColumnName(const std::string& old_table,
                         const std::string& old_column) const;
};

/// Naming-convention styles applied to renamed identifiers. The mix
/// mirrors Section 2.2's "diverse database naming habits": synonym
/// substitution plus case-convention churn and abbreviation.
enum class NamingStyle {
  kSnakeLower,   // employment_day
  kSnakeUpper,   // EMPLOYMENT_DAY
  kSnakeCapital, // Employment_Day
  kCamel,        // EmploymentDay
  kAbbrevPrefix, // first words initialed: E_day (the paper's "HH_ID" case)
};

/// Options for the schema perturbation engine.
struct PerturbOptions {
  double table_rename_probability = 0.35;
  double column_rename_probability = 0.5;
  /// Per word, when alternates exist. A synonym destroys lexical
  /// recoverability; the remaining renames (reorder/case/abbreviation)
  /// keep the original words, which is what lets schema-matching models
  /// like RGVisNet retain partial accuracy on nvBench-Rob_schema.
  double synonym_probability = 0.55;
  double style_change_probability = 0.5;
  /// Word-order churn ("acc_percent" -> "percent_of_acc").
  double reorder_probability = 0.35;
};

/// Produces a schema-perturbed deep copy of `db` (same database name,
/// renamed tables/columns, identical row data) and records the rename
/// map. Deterministic given the Rng state. Renames never collide within
/// a table (collisions fall back to the original name).
GeneratedDatabase PerturbSchema(const GeneratedDatabase& db,
                                const nl::Lexicon& lexicon,
                                const PerturbOptions& options, Rng* rng,
                                SchemaRename* renames);

/// Rewrites a target DVQ onto the renamed schema. `clean_db` supplies the
/// original schema for resolving unqualified column owners.
dvq::DVQ RewriteDvq(const dvq::DVQ& dvq, const GeneratedDatabase& clean_db,
                    const SchemaRename& renames);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_PERTURB_H_
