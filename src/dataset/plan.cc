#include "dataset/plan.h"

namespace gred::dataset {

const char* HardnessName(Hardness h) {
  switch (h) {
    case Hardness::kEasy:
      return "Easy";
    case Hardness::kMedium:
      return "Medium";
    case Hardness::kHard:
      return "Hard";
    case Hardness::kExtraHard:
      return "Extra Hard";
  }
  return "Easy";
}

dvq::DVQ PlanToDvq(const QueryPlan& plan) {
  dvq::DVQ out;
  out.chart = plan.chart;
  dvq::Query& q = out.query;

  // SELECT list: x, y, [series].
  dvq::SelectExpr x;
  x.col.column = plan.x.column;
  q.select.push_back(x);
  dvq::SelectExpr y;
  y.agg = plan.y_agg;
  y.col.column = plan.count_of_x ? plan.x.column : plan.y.column;
  q.select.push_back(y);
  if (plan.series.has_value()) {
    dvq::SelectExpr s;
    s.col.column = plan.series->column;
    q.select.push_back(s);
  }

  q.from_table = plan.main_table;
  if (plan.join.has_value()) {
    dvq::JoinClause join;
    join.table = plan.join->parent_table;
    join.left.table = plan.main_table;
    join.left.column = plan.join->fk_column;
    join.right.table = plan.join->parent_table;
    join.right.column = plan.join->parent_key;
    q.joins.push_back(std::move(join));
  }

  if (plan.filter.has_value()) {
    const FilterPick& f = *plan.filter;
    dvq::Condition cond;
    dvq::Predicate pred;
    if (f.via_subquery) {
      pred.col.column = f.sub_fk;
      pred.op = dvq::CompareOp::kEq;
      dvq::Query sub;
      dvq::SelectExpr key;
      key.col.column = f.sub_key;
      sub.select.push_back(key);
      sub.from_table = f.sub_table;
      dvq::Condition sub_cond;
      dvq::Predicate sub_pred;
      sub_pred.col.column = f.sub_attr.column;
      sub_pred.op = f.op;
      sub_pred.literal = f.literal;
      sub_cond.predicates.push_back(std::move(sub_pred));
      sub.where = std::move(sub_cond);
      pred.subquery = std::make_shared<const dvq::Query>(std::move(sub));
    } else {
      pred.col.column = f.col.column;
      pred.op = f.op;
      pred.literal = f.literal;
    }
    cond.predicates.push_back(std::move(pred));
    q.where = std::move(cond);
  }

  if (plan.group) {
    if (plan.series.has_value()) {
      dvq::ColumnRef s;
      s.column = plan.series->column;
      q.group_by.push_back(std::move(s));
    }
    dvq::ColumnRef g;
    g.column = plan.x.column;
    q.group_by.push_back(std::move(g));
  }

  if (plan.order.has_value()) {
    dvq::OrderByClause order;
    if (plan.order->on_y) {
      order.expr = q.select[1];
    } else {
      order.expr = q.select[0];
    }
    order.descending = plan.order->descending;
    q.order_by = std::move(order);
  }

  q.limit = plan.limit;

  if (plan.bin.has_value()) {
    dvq::BinClause bin;
    bin.col.column = plan.bin->col.column;
    bin.unit = plan.bin->unit;
    q.bin = std::move(bin);
  }
  return out;
}

}  // namespace gred::dataset
