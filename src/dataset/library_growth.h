#ifndef GREDVIS_DATASET_LIBRARY_GROWTH_H_
#define GREDVIS_DATASET_LIBRARY_GROWTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "nl/lexicon.h"

namespace gred::dataset {

/// Options for growing a retrieval-scale NLQ library.
struct LibraryGrowthOptions {
  std::uint64_t seed = 90210;
  /// NLQ surface variants rendered per sampled plan, alternating between
  /// the explicit (nvBench) and paraphrased (nvBench-Rob) registers so
  /// the library covers both phrasing distributions.
  std::size_t variants_per_plan = 4;
};

/// Procedurally grows an NLQ library to `count` entries for
/// retrieval-at-scale benchmarks and tests (10^5-10^6 entries).
///
/// This is the benchmark generator's sampling machinery with everything
/// but the NLQ surface stripped out: plans are sampled round-robin over
/// `databases` exactly like QueryGenerator::Generate, but no DVQ, no
/// Example, and no id string is materialized — only the rendered
/// question. At a million entries that is the difference between a
/// multi-second corpus build and one dominated by embedding anyway.
///
/// Deterministic given (databases, seed): the same call always yields the
/// same library, so recall measured against it is reproducible.
std::vector<std::string> GrowNlqLibrary(
    const std::vector<GeneratedDatabase>& databases,
    const nl::Lexicon& lexicon, std::size_t count,
    const LibraryGrowthOptions& options = {});

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_LIBRARY_GROWTH_H_
