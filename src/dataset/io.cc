#include "dataset/io.h"

#include <fstream>
#include <sstream>

#include "dvq/parser.h"
#include "util/strings.h"

namespace gred::dataset {

namespace {

using storage::Value;

const char* TypeName(schema::ColumnType type) {
  switch (type) {
    case schema::ColumnType::kInt:
      return "int";
    case schema::ColumnType::kReal:
      return "real";
    case schema::ColumnType::kText:
      return "text";
    case schema::ColumnType::kDate:
      return "date";
    case schema::ColumnType::kBool:
      return "bool";
  }
  return "text";
}

Result<schema::ColumnType> TypeFromName(const std::string& name) {
  if (name == "int") return schema::ColumnType::kInt;
  if (name == "real") return schema::ColumnType::kReal;
  if (name == "text") return schema::ColumnType::kText;
  if (name == "date") return schema::ColumnType::kDate;
  if (name == "bool") return schema::ColumnType::kBool;
  return Status::ParseError("unknown column type '" + name + "'");
}

const char* RoleName(ColumnRole role) {
  switch (role) {
    case ColumnRole::kId:
      return "id";
    case ColumnRole::kName:
      return "name";
    case ColumnRole::kCategory:
      return "category";
    case ColumnRole::kNumeric:
      return "numeric";
    case ColumnRole::kDate:
      return "date";
  }
  return "numeric";
}

Result<ColumnRole> RoleFromName(const std::string& name) {
  if (name == "id") return ColumnRole::kId;
  if (name == "name") return ColumnRole::kName;
  if (name == "category") return ColumnRole::kCategory;
  if (name == "numeric") return ColumnRole::kNumeric;
  if (name == "date") return ColumnRole::kDate;
  return Status::ParseError("unknown column role '" + name + "'");
}

json::Value CellToJson(const Value& v) {
  if (v.is_null()) return json::Value::Null();
  if (v.is_int()) return json::Value::Int(v.int_value());
  if (v.is_real()) return json::Value::Number(v.real_value());
  return json::Value::Str(v.text_value());
}

Value CellFromJson(const json::Value& v, schema::ColumnType type) {
  switch (v.kind()) {
    case json::Value::Kind::kNull:
      return Value::Null();
    case json::Value::Kind::kNumber:
      if (type == schema::ColumnType::kReal) {
        return Value::Real(v.number_value());
      }
      return Value::Int(static_cast<std::int64_t>(v.number_value()));
    case json::Value::Kind::kString:
      return Value::Text(v.string_value());
    case json::Value::Kind::kBool:
      return Value::Bool(v.bool_value());
    default:
      return Value::Null();
  }
}

const json::Value* Require(const json::Value& obj, const std::string& key,
                           Status* status) {
  const json::Value* found = obj.Find(key);
  if (found == nullptr && status->ok()) {
    *status = Status::ParseError("missing key '" + key + "'");
  }
  return found;
}

}  // namespace

json::Value DatabaseToJson(const GeneratedDatabase& db) {
  json::Value out = json::Value::Object();
  out.Set("name", json::Value::Str(db.data.name()));
  out.Set("domain", json::Value::Str(db.domain));
  json::Value tables = json::Value::Array();
  for (std::size_t t = 0; t < db.tables.size(); ++t) {
    const GeneratedTable& meta = db.tables[t];
    const storage::DataTable& data = db.data.tables()[t];
    json::Value table = json::Value::Object();
    table.Set("name", json::Value::Str(meta.name));
    table.Set("entity", json::Value::Str(meta.entity_id));
    json::Value columns = json::Value::Array();
    for (std::size_t c = 0; c < meta.columns.size(); ++c) {
      const GeneratedColumn& col = meta.columns[c];
      json::Value column = json::Value::Object();
      column.Set("name", json::Value::Str(col.name));
      column.Set("type",
                 json::Value::Str(TypeName(col.spec.type)));
      column.Set("role", json::Value::Str(RoleName(col.spec.role)));
      column.Set("primary_key",
                 json::Value::Bool(data.def().columns()[c].primary_key));
      columns.Append(std::move(column));
    }
    table.Set("columns", std::move(columns));
    json::Value rows = json::Value::Array();
    for (std::size_t r = 0; r < data.num_rows(); ++r) {
      json::Value row = json::Value::Array();
      for (std::size_t c = 0; c < data.num_columns(); ++c) {
        row.Append(CellToJson(data.at(r, c)));
      }
      rows.Append(std::move(row));
    }
    table.Set("rows", std::move(rows));
    tables.Append(std::move(table));
  }
  out.Set("tables", std::move(tables));
  json::Value fks = json::Value::Array();
  for (const schema::ForeignKey& fk : db.data.db_schema().foreign_keys()) {
    json::Value edge = json::Value::Object();
    edge.Set("from_table", json::Value::Str(fk.from_table));
    edge.Set("from_column", json::Value::Str(fk.from_column));
    edge.Set("to_table", json::Value::Str(fk.to_table));
    edge.Set("to_column", json::Value::Str(fk.to_column));
    fks.Append(std::move(edge));
  }
  out.Set("foreign_keys", std::move(fks));
  return out;
}

Result<GeneratedDatabase> DatabaseFromJson(const json::Value& value) {
  Status status;
  const json::Value* name = Require(value, "name", &status);
  const json::Value* tables = Require(value, "tables", &status);
  GRED_RETURN_IF_ERROR(status);

  schema::Database db_schema(name->string_value());
  std::vector<GeneratedTable> metas;
  for (std::size_t t = 0; t < tables->size(); ++t) {
    const json::Value& table = tables->at(t);
    const json::Value* table_name = Require(table, "name", &status);
    const json::Value* columns = Require(table, "columns", &status);
    GRED_RETURN_IF_ERROR(status);
    GeneratedTable meta;
    meta.name = table_name->string_value();
    if (const json::Value* entity = table.Find("entity")) {
      meta.entity_id = entity->string_value();
    }
    schema::TableDef def(meta.name, {});
    for (std::size_t c = 0; c < columns->size(); ++c) {
      const json::Value& column = columns->at(c);
      const json::Value* col_name = Require(column, "name", &status);
      const json::Value* type = Require(column, "type", &status);
      const json::Value* role = Require(column, "role", &status);
      GRED_RETURN_IF_ERROR(status);
      GeneratedColumn gc;
      gc.name = col_name->string_value();
      GRED_ASSIGN_OR_RETURN(gc.spec.type,
                            TypeFromName(type->string_value()));
      GRED_ASSIGN_OR_RETURN(gc.spec.role,
                            RoleFromName(role->string_value()));
      gc.spec.words = strings::SplitIdentifierWords(gc.name);
      schema::Column sc;
      sc.name = gc.name;
      sc.type = gc.spec.type;
      const json::Value* pk = column.Find("primary_key");
      sc.primary_key = pk != nullptr && pk->bool_value();
      def.AddColumn(std::move(sc));
      meta.columns.push_back(std::move(gc));
    }
    db_schema.AddTable(std::move(def));
    metas.push_back(std::move(meta));
  }
  if (const json::Value* fks = value.Find("foreign_keys")) {
    for (std::size_t i = 0; i < fks->size(); ++i) {
      const json::Value& edge = fks->at(i);
      schema::ForeignKey fk;
      fk.from_table = edge.Find("from_table")->string_value();
      fk.from_column = edge.Find("from_column")->string_value();
      fk.to_table = edge.Find("to_table")->string_value();
      fk.to_column = edge.Find("to_column")->string_value();
      db_schema.AddForeignKey(std::move(fk));
    }
  }
  GRED_RETURN_IF_ERROR(db_schema.Validate());

  GeneratedDatabase out;
  out.data = storage::DatabaseData(std::move(db_schema));
  out.tables = std::move(metas);
  if (const json::Value* domain = value.Find("domain")) {
    out.domain = domain->string_value();
  }
  for (std::size_t t = 0; t < tables->size(); ++t) {
    const json::Value& table = tables->at(t);
    const json::Value* rows = table.Find("rows");
    if (rows == nullptr) continue;
    storage::DataTable* data = out.data.FindTable(out.tables[t].name);
    for (std::size_t r = 0; r < rows->size(); ++r) {
      const json::Value& row = rows->at(r);
      std::vector<Value> cells;
      cells.reserve(row.size());
      for (std::size_t c = 0; c < row.size(); ++c) {
        cells.push_back(
            CellFromJson(row.at(c), out.tables[t].columns[c].spec.type));
      }
      GRED_RETURN_IF_ERROR(data->AppendRow(std::move(cells)));
    }
  }
  return out;
}

json::Value ExampleToJson(const Example& example) {
  json::Value out = json::Value::Object();
  out.Set("id", json::Value::Str(example.id));
  out.Set("db", json::Value::Str(example.db_name));
  out.Set("nlq", json::Value::Str(example.nlq));
  out.Set("nlq_rob", json::Value::Str(example.nlq_rob));
  out.Set("dvq", json::Value::Str(example.DvqText()));
  out.Set("hardness", json::Value::Str(HardnessName(example.hardness)));
  return out;
}

Result<Example> ExampleFromJson(const json::Value& value) {
  Status status;
  const json::Value* id = Require(value, "id", &status);
  const json::Value* db = Require(value, "db", &status);
  const json::Value* nlq = Require(value, "nlq", &status);
  const json::Value* dvq = Require(value, "dvq", &status);
  GRED_RETURN_IF_ERROR(status);
  Example out;
  out.id = id->string_value();
  out.db_name = db->string_value();
  out.nlq = nlq->string_value();
  if (const json::Value* rob = value.Find("nlq_rob")) {
    out.nlq_rob = rob->string_value();
  }
  GRED_ASSIGN_OR_RETURN(out.dvq, dvq::Parse(dvq->string_value()));
  if (const json::Value* hardness = value.Find("hardness")) {
    const std::string& h = hardness->string_value();
    if (h == "Easy") {
      out.hardness = Hardness::kEasy;
    } else if (h == "Medium") {
      out.hardness = Hardness::kMedium;
    } else if (h == "Hard") {
      out.hardness = Hardness::kHard;
    } else {
      out.hardness = Hardness::kExtraHard;
    }
  }
  return out;
}

json::Value ExamplesToJson(const std::vector<Example>& examples) {
  json::Value arr = json::Value::Array();
  for (const Example& ex : examples) arr.Append(ExampleToJson(ex));
  return arr;
}

Result<std::vector<Example>> ExamplesFromJson(const json::Value& value) {
  std::vector<Example> out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    GRED_ASSIGN_OR_RETURN(Example ex, ExampleFromJson(value.at(i)));
    out.push_back(std::move(ex));
  }
  return out;
}

Status WriteJsonFile(const std::string& path, const json::Value& value) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out << value.Dump(2) << "\n";
  return out.good() ? Status::OK()
                    : Status::Internal("write to '" + path + "' failed");
}

Result<json::Value> ReadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  json::ParseResult parsed = json::Parse(buffer.str());
  if (!parsed.ok()) {
    return Status::ParseError(path + ": " + parsed.error());
  }
  return parsed.value();
}

}  // namespace gred::dataset
