#include "dataset/nlq_render.h"

#include "util/strings.h"

namespace gred::dataset {

namespace {

using dvq::AggFunc;
using dvq::ChartType;
using dvq::CompareOp;

std::string PickPhrase(const std::vector<std::string>& options, Rng* rng) {
  return options[rng->NextIndex(options.size())];
}

/// ChatGPT's reconstruction does not rewrite every clause: a fraction of
/// clauses keep their original (explicit) phrasing. This per-clause
/// "leak" is what leaves the baselines partial accuracy on the
/// robustness sets, as in the paper's Tables 1-3.
constexpr double kExplicitLeak = 0.3;

NlqStyle EffectiveStyle(NlqStyle style, Rng* rng) {
  if (style == NlqStyle::kParaphrased && rng->NextBool(kExplicitLeak)) {
    return NlqStyle::kExplicit;
  }
  return style;
}

std::string LiteralPhrase(const dvq::Literal& lit) {
  if (lit.kind == dvq::Literal::Kind::kString) {
    // LIKE patterns read as the bare fragment ("%Spr%" -> "Spr").
    std::string v = lit.string_value;
    std::erase(v, '%');
    return v;
  }
  return lit.ToString();
}

std::string UnitWord(dvq::BinUnit unit) {
  switch (unit) {
    case dvq::BinUnit::kYear:
      return "year";
    case dvq::BinUnit::kMonth:
      return "month";
    case dvq::BinUnit::kDay:
      return "day";
    case dvq::BinUnit::kWeekday:
      return "weekday";
  }
  return "year";
}

}  // namespace

const std::vector<std::string>& ExplicitOpPhrases(CompareOp op) {
  static const std::vector<std::string> kEq = {"is", "equals", "="};
  static const std::vector<std::string> kNe = {"is not", "!="};
  static const std::vector<std::string> kLt = {"is less than", "is below",
                                               "<"};
  static const std::vector<std::string> kLe = {"is at most",
                                               "is not more than"};
  static const std::vector<std::string> kGt = {"is greater than",
                                               "is more than", "is above"};
  static const std::vector<std::string> kGe = {"is at least",
                                               "is not less than"};
  static const std::vector<std::string> kLike = {"contains", "includes"};
  static const std::vector<std::string> kEmpty = {};
  switch (op) {
    case CompareOp::kEq:
      return kEq;
    case CompareOp::kNe:
      return kNe;
    case CompareOp::kLt:
      return kLt;
    case CompareOp::kLe:
      return kLe;
    case CompareOp::kGt:
      return kGt;
    case CompareOp::kGe:
      return kGe;
    case CompareOp::kLike:
      return kLike;
    default:
      return kEmpty;
  }
}

const std::vector<std::string>& ParaphrasedOpPhrases(CompareOp op) {
  static const std::vector<std::string> kEq = {"matches", "amounts to",
                                               "sits at"};
  static const std::vector<std::string> kNe = {"differs from",
                                               "is anything but"};
  static const std::vector<std::string> kLt = {"stays below", "falls under",
                                               "comes in under"};
  static const std::vector<std::string> kLe = {"does not exceed",
                                               "tops out at"};
  static const std::vector<std::string> kGt = {"exceeds", "goes beyond",
                                               "surpasses"};
  static const std::vector<std::string> kGe = {"reaches at minimum",
                                               "is no lower than"};
  static const std::vector<std::string> kLike = {"mentions", "features"};
  static const std::vector<std::string> kEmpty = {};
  switch (op) {
    case CompareOp::kEq:
      return kEq;
    case CompareOp::kNe:
      return kNe;
    case CompareOp::kLt:
      return kLt;
    case CompareOp::kLe:
      return kLe;
    case CompareOp::kGt:
      return kGt;
    case CompareOp::kGe:
      return kGe;
    case CompareOp::kLike:
      return kLike;
    default:
      return kEmpty;
  }
}

const std::vector<std::string>& ChartPhrases(ChartType chart, NlqStyle style) {
  static const std::vector<std::string> kBarE = {"bar chart", "bar graph",
                                                 "histogram"};
  static const std::vector<std::string> kBarP = {"bar graph", "histogram",
                                                 "bar-style figure"};
  static const std::vector<std::string> kPieE = {"pie chart", "pie graph"};
  static const std::vector<std::string> kPieP = {"pie graph",
                                                 "pie-style breakdown"};
  static const std::vector<std::string> kLineE = {"line chart", "line graph"};
  static const std::vector<std::string> kLineP = {"line graph",
                                                  "line-based trend view"};
  static const std::vector<std::string> kScatE = {"scatter chart",
                                                  "scatter plot"};
  static const std::vector<std::string> kScatP = {"scatter plot",
                                                  "scatter diagram"};
  static const std::vector<std::string> kStackE = {"stacked bar chart"};
  static const std::vector<std::string> kStackP = {"stacked bar graph",
                                                   "stacked histogram"};
  static const std::vector<std::string> kGLineE = {"grouping line chart"};
  static const std::vector<std::string> kGLineP = {"grouped line graph"};
  static const std::vector<std::string> kGScatE = {"grouping scatter chart"};
  static const std::vector<std::string> kGScatP = {"grouped scatter plot"};
  const bool explicit_style = style == NlqStyle::kExplicit;
  switch (chart) {
    case ChartType::kBar:
      return explicit_style ? kBarE : kBarP;
    case ChartType::kPie:
      return explicit_style ? kPieE : kPieP;
    case ChartType::kLine:
      return explicit_style ? kLineE : kLineP;
    case ChartType::kScatter:
      return explicit_style ? kScatE : kScatP;
    case ChartType::kStackedBar:
      return explicit_style ? kStackE : kStackP;
    case ChartType::kGroupingLine:
      return explicit_style ? kGLineE : kGLineP;
    case ChartType::kGroupingScatter:
      return explicit_style ? kGScatE : kGScatP;
  }
  return kBarE;
}

std::string ColumnPhrase(const AxisPick& col, NlqStyle style, Rng* rng,
                         const nl::Lexicon& lexicon) {
  if (style == NlqStyle::kExplicit) {
    // Quote the column name verbatim or as its exact word sequence.
    if (rng->NextBool(0.6)) return col.column;
    return strings::Join(col.words, " ");
  }
  // Paraphrased: substitute a synonym for every known word.
  std::vector<std::string> words;
  words.reserve(col.words.size());
  for (const std::string& word : col.words) {
    std::vector<std::string> alternates = lexicon.AlternateForms(word);
    if (!alternates.empty() && rng->NextBool(0.6)) {
      words.push_back(alternates[rng->NextIndex(alternates.size())]);
    } else {
      words.push_back(word);
    }
  }
  return strings::Join(words, " ");
}

namespace {

std::string YPhrase(const QueryPlan& plan, NlqStyle style, Rng* rng,
                    const nl::Lexicon& lexicon) {
  const bool ex = style == NlqStyle::kExplicit;
  std::string x_phrase = ColumnPhrase(plan.x, style, rng, lexicon);
  std::string y_col = plan.count_of_x
                          ? x_phrase
                          : ColumnPhrase(plan.y, style, rng, lexicon);
  switch (plan.y_agg) {
    case AggFunc::kNone:
      return y_col;
    case AggFunc::kCount:
      return ex ? PickPhrase({"the number of " + y_col,
                              "the count of " + y_col,
                              "how many " + y_col},
                             rng)
                : PickPhrase({"how many entries of " + y_col,
                              "the tally of " + y_col,
                              "the frequency of " + y_col},
                             rng);
    case AggFunc::kSum:
      return ex ? PickPhrase({"the sum of " + y_col, "the total " + y_col},
                             rng)
                : PickPhrase({"the combined " + y_col,
                              "the overall " + y_col},
                             rng);
    case AggFunc::kAvg:
      return ex ? PickPhrase({"the average of " + y_col,
                              "the average " + y_col},
                             rng)
                : PickPhrase({"the mean " + y_col, "the typical " + y_col},
                             rng);
    case AggFunc::kMin:
      return ex ? PickPhrase({"the minimum " + y_col,
                              "the lowest " + y_col},
                             rng)
                : PickPhrase({"the smallest " + y_col,
                              "the least " + y_col},
                             rng);
    case AggFunc::kMax:
      return ex ? PickPhrase({"the maximum " + y_col,
                              "the highest " + y_col},
                             rng)
                : PickPhrase({"the largest " + y_col, "the peak " + y_col},
                             rng);
  }
  return y_col;
}

std::string FilterClause(const QueryPlan& plan, NlqStyle style, Rng* rng,
                         const nl::Lexicon& lexicon) {
  const FilterPick& f = *plan.filter;
  const bool ex = style == NlqStyle::kExplicit;
  const AxisPick& col = f.via_subquery ? f.sub_attr : f.col;
  std::string col_phrase = ColumnPhrase(col, style, rng, lexicon);
  const auto& ops = ex ? ExplicitOpPhrases(f.op) : ParaphrasedOpPhrases(f.op);
  std::string op_phrase = PickPhrase(ops, rng);
  std::string value = LiteralPhrase(f.literal);
  std::string core = col_phrase + " " + op_phrase + " " + value;
  if (f.via_subquery) {
    // The attribute lives on the parent entity; phrase it through the
    // relationship ("... for the department whose name is Finance").
    std::string parent = f.sub_table;
    if (ex) {
      return PickPhrase({" for the " + parent + " whose " + core,
                         " restricted to the " + parent + " where " + core},
                        rng);
    }
    return PickPhrase({" limited to the " + parent + " in which " + core,
                       " only for the " + parent + " whose " + core},
                      rng);
  }
  if (ex) {
    return PickPhrase(
        {" whose " + core, " where " + core, " for rows where " + core},
        rng);
  }
  return PickPhrase({" considering only records whose " + core,
                     " but keep just rows where " + core,
                     " filtered so that " + core},
                    rng);
}

std::string GroupClause(const QueryPlan& plan, NlqStyle style, Rng* rng,
                        const nl::Lexicon& lexicon) {
  const bool ex = style == NlqStyle::kExplicit;
  std::string x_phrase = ColumnPhrase(plan.x, style, rng, lexicon);
  std::string out;
  if (ex) {
    out = PickPhrase({", group by " + x_phrase, " for each " + x_phrase},
                     rng);
  } else {
    out = PickPhrase({" per " + x_phrase, " for every " + x_phrase,
                      " broken down by " + x_phrase},
                     rng);
  }
  if (plan.series.has_value()) {
    std::string s_phrase = ColumnPhrase(*plan.series, style, rng, lexicon);
    out += ex ? ", and group by " + s_phrase
              : ", split by " + s_phrase;
  }
  return out;
}

std::string OrderClause(const QueryPlan& plan, NlqStyle style, Rng* rng) {
  const OrderPick& o = *plan.order;
  const bool ex = style == NlqStyle::kExplicit;
  std::string axis = o.on_y ? "Y-axis" : "X-axis";
  if (ex) {
    std::string dir = o.descending ? "descending" : "ascending";
    std::string dir2 = o.descending ? "from high to low" : "from low to high";
    return PickPhrase({", sort the " + axis + " in " + dir + " order",
                       ", order the " + axis + " " + dir2,
                       ", and rank in " + dir + " order of the " + axis},
                      rng);
  }
  std::string dir = o.descending ? "descending" : "ascending";
  std::string dir3 =
      o.descending ? "from largest to smallest" : "from smallest to largest";
  return PickPhrase(
      {", with the " + axis + " organized in " + dir + " order",
       ", arranging the " + axis + " " + dir3,
       ", laid out " + dir3 + " along the " + axis},
      rng);
}

std::string LimitClause(const QueryPlan& plan, NlqStyle style, Rng* rng) {
  std::string k = strings::Format("%lld", static_cast<long long>(*plan.limit));
  if (style == NlqStyle::kExplicit) {
    return PickPhrase({", show only the top " + k,
                       ", and list just the first " + k},
                      rng);
  }
  return PickPhrase({", keeping no more than " + k + " of them",
                     ", restricted to the leading " + k},
                    rng);
}

std::string BinClauseText(const QueryPlan& plan, NlqStyle style, Rng* rng,
                          const nl::Lexicon& lexicon) {
  const BinPick& b = *plan.bin;
  std::string unit = UnitWord(b.unit);
  const bool ex = style == NlqStyle::kExplicit;
  std::string col_phrase = ColumnPhrase(b.col, style, rng, lexicon);
  if (ex) {
    return PickPhrase({", bin " + col_phrase + " by " + unit,
                       ", and bin the " + col_phrase + " into " + unit +
                           " intervals"},
                      rng);
  }
  if (b.unit == dvq::BinUnit::kMonth || b.unit == dvq::BinUnit::kYear ||
      b.unit == dvq::BinUnit::kDay) {
    std::string adverb = unit + "ly";
    if (unit == "day") adverb = "daily";
    return PickPhrase({" on a " + adverb + " basis",
                       ", aggregated per " + unit,
                       ", rolled up " + adverb},
                      rng);
  }
  return PickPhrase({", summarized per " + unit,
                     ", aggregated by day of the week"},
                    rng);
}

}  // namespace

std::string RenderNlq(const QueryPlan& plan, NlqStyle style, Rng* rng,
                      const nl::Lexicon& lexicon) {
  const bool ex = style == NlqStyle::kExplicit;
  std::string chart = PickPhrase(ChartPhrases(plan.chart, style), rng);
  std::string x_phrase =
      ColumnPhrase(plan.x, EffectiveStyle(style, rng), rng, lexicon);
  std::string y_phrase = YPhrase(plan, EffectiveStyle(style, rng), rng,
                                 lexicon);
  std::string table = plan.main_table;

  std::string main;
  if (ex) {
    switch (rng->NextIndex(4)) {
      case 0:
        main = "Show a " + chart + " of " + x_phrase + " and " + y_phrase +
               " from " + table;
        break;
      case 1:
        main = "Draw a " + chart + " about " + y_phrase + " by " + x_phrase +
               " in " + table;
        break;
      case 2:
        main = "Visualize " + x_phrase + " versus " + y_phrase +
               " from the table " + table + " with a " + chart;
        break;
      default:
        main = "What are " + x_phrase + " and " + y_phrase + " in " + table +
               "? Plot a " + chart;
        break;
    }
  } else {
    switch (rng->NextIndex(4)) {
      case 0:
        main = "Present " + y_phrase + " across " + x_phrase + " as a " +
               chart;
        break;
      case 1:
        main = "I'd like to see " + y_phrase + " set against " + x_phrase +
               ", rendered as a " + chart;
        break;
      case 2:
        main = "Could you put together a " + chart + " relating " + x_phrase +
               " with " + y_phrase + "?";
        break;
      default:
        main = "Give me a " + chart + " that lays out " + y_phrase +
               " over " + x_phrase;
        break;
    }
  }

  std::string out = main;
  if (plan.filter.has_value()) {
    out += FilterClause(plan, EffectiveStyle(style, rng), rng, lexicon);
  }
  if (plan.group && plan.y_agg != dvq::AggFunc::kNone) {
    out += GroupClause(plan, EffectiveStyle(style, rng), rng, lexicon);
  }
  if (plan.bin.has_value()) {
    out += BinClauseText(plan, EffectiveStyle(style, rng), rng, lexicon);
  }
  if (plan.order.has_value()) {
    out += OrderClause(plan, EffectiveStyle(style, rng), rng);
  }
  if (plan.limit.has_value()) {
    out += LimitClause(plan, EffectiveStyle(style, rng), rng);
  }
  if (out.back() != '?' && out.back() != '.') out += ".";
  return out;
}

}  // namespace gred::dataset
