#include "dataset/db_generator.h"

#include <cmath>
#include <map>
#include <set>

#include "util/strings.h"

namespace gred::dataset {

namespace {

using storage::Value;

std::string Pluralize(const std::string& word) {
  if (strings::EndsWith(word, "s") || strings::EndsWith(word, "x") ||
      strings::EndsWith(word, "ch") || strings::EndsWith(word, "sh")) {
    return word + "es";
  }
  if (strings::EndsWith(word, "y") && word.size() > 1) {
    char before = word[word.size() - 2];
    if (before != 'a' && before != 'e' && before != 'o' && before != 'u') {
      return word.substr(0, word.size() - 1) + "ies";
    }
  }
  return word + "s";
}

Value MakeDate(Rng* rng, int year_lo, int year_hi) {
  int year = static_cast<int>(rng->NextInt(year_lo, year_hi));
  int month = static_cast<int>(rng->NextInt(1, 12));
  int day = static_cast<int>(rng->NextInt(1, 28));
  return Value::Text(strings::Format("%04d-%02d-%02d", year, month, day));
}

Value MakeValue(const ColumnSpec& spec, const EntityBank& bank, Rng* rng,
                std::int64_t row_id,
                const std::map<std::string, std::int64_t>& parent_counts) {
  switch (spec.role) {
    case ColumnRole::kId: {
      if (!spec.fk_entity.empty()) {
        auto it = parent_counts.find(spec.fk_entity);
        if (it != parent_counts.end() && it->second > 0) {
          return Value::Int(rng->NextInt(1, it->second));
        }
        // Parent absent from this database: dangling numeric id.
        return Value::Int(rng->NextInt(1, 50));
      }
      return Value::Int(row_id);
    }
    case ColumnRole::kName:
    case ColumnRole::kCategory: {
      const std::vector<std::string>& pool = bank.Pool(spec.pool);
      if (pool.empty()) return Value::Text("item");
      return Value::Text(rng->Pick(pool));
    }
    case ColumnRole::kNumeric: {
      if (spec.integral) {
        return Value::Int(rng->NextInt(static_cast<std::int64_t>(spec.min_value),
                                       static_cast<std::int64_t>(spec.max_value)));
      }
      double span = spec.max_value - spec.min_value;
      double v = spec.min_value + rng->NextDouble() * span;
      return Value::Real(std::round(v * 100.0) / 100.0);
    }
    case ColumnRole::kDate:
      return MakeDate(rng, static_cast<int>(spec.min_value),
                      static_cast<int>(spec.max_value));
  }
  return Value::Null();
}

}  // namespace

const GeneratedTable* GeneratedDatabase::FindTable(
    const std::string& name) const {
  for (const GeneratedTable& t : tables) {
    if (strings::EqualsIgnoreCase(t.name, name)) return &t;
  }
  return nullptr;
}

std::string PluralTableName(const std::vector<std::string>& words) {
  std::vector<std::string> out = words;
  if (!out.empty()) out.back() = Pluralize(out.back());
  return strings::Join(out, "_");
}

std::string CanonicalColumnName(const std::vector<std::string>& words) {
  return strings::Join(words, "_");
}

std::vector<GeneratedDatabase> GenerateDatabases(
    const EntityBank& bank, const DbGeneratorOptions& options) {
  std::vector<GeneratedDatabase> out;
  Rng master(options.seed);
  const std::vector<DomainSpec>& domains = bank.domains();
  for (std::size_t i = 0; i < options.num_databases; ++i) {
    Rng rng = master.Fork();
    const DomainSpec& domain = domains[i % domains.size()];
    std::size_t variant = i / domains.size();

    // Entity selection: the full domain group plus unrelated padding
    // entities up to a per-database table budget.
    std::vector<std::string> entity_ids = domain.entities;
    std::set<std::string> used(entity_ids.begin(), entity_ids.end());
    std::size_t budget = options.min_tables +
                         rng.NextIndex(options.max_tables - options.min_tables + 1);
    if (budget < entity_ids.size()) budget = entity_ids.size();
    std::vector<std::string> padding;
    for (const EntitySpec& e : bank.entities()) {
      if (used.count(e.id) == 0) padding.push_back(e.id);
    }
    rng.Shuffle(&padding);
    for (const std::string& id : padding) {
      if (entity_ids.size() >= budget) break;
      entity_ids.push_back(id);
      used.insert(id);
    }

    // Build the schema.
    GeneratedDatabase gdb;
    schema::Database db_schema(
        strings::Format("%s_%zu", domain.id.c_str(), variant + 1));
    std::map<std::string, std::string> entity_to_table;
    for (const std::string& entity_id : entity_ids) {
      const EntitySpec* entity = bank.FindEntity(entity_id);
      if (entity == nullptr) continue;
      GeneratedTable gt;
      gt.entity_id = entity_id;
      gt.name = PluralTableName(entity->table_words);
      schema::TableDef table(gt.name, {});
      for (const ColumnSpec& spec : entity->columns) {
        schema::Column col;
        col.name = CanonicalColumnName(spec.words);
        col.type = spec.type;
        col.primary_key =
            spec.role == ColumnRole::kId && spec.fk_entity.empty();
        table.AddColumn(col);
        gt.columns.push_back(GeneratedColumn{col.name, spec});
      }
      db_schema.AddTable(std::move(table));
      entity_to_table[entity_id] = gt.name;
      gdb.tables.push_back(std::move(gt));
    }
    // Foreign keys for parents present in this database.
    for (const std::string& entity_id : entity_ids) {
      const EntitySpec* entity = bank.FindEntity(entity_id);
      if (entity == nullptr) continue;
      for (const ColumnSpec& spec : entity->columns) {
        if (spec.fk_entity.empty()) continue;
        auto parent_it = entity_to_table.find(spec.fk_entity);
        if (parent_it == entity_to_table.end()) continue;
        const EntitySpec* parent = bank.FindEntity(spec.fk_entity);
        schema::ForeignKey fk;
        fk.from_table = entity_to_table[entity_id];
        fk.from_column = CanonicalColumnName(spec.words);
        fk.to_table = parent_it->second;
        fk.to_column = CanonicalColumnName(parent->columns[0].words);
        db_schema.AddForeignKey(std::move(fk));
      }
    }

    // Populate rows. Parents first (domain lists parents before children,
    // and padding entities have no satisfied FK links anyway).
    gdb.data = storage::DatabaseData(db_schema);
    gdb.domain = domain.id;
    std::map<std::string, std::int64_t> entity_rows;
    for (const std::string& entity_id : entity_ids) {
      const EntitySpec* entity = bank.FindEntity(entity_id);
      if (entity == nullptr) continue;
      std::int64_t rows = static_cast<std::int64_t>(
          entity->min_rows +
          rng.NextIndex(entity->max_rows - entity->min_rows + 1));
      entity_rows[entity_id] = rows;
      storage::DataTable* table =
          gdb.data.FindTable(entity_to_table[entity_id]);
      for (std::int64_t r = 1; r <= rows; ++r) {
        std::vector<Value> row;
        row.reserve(entity->columns.size());
        for (const ColumnSpec& spec : entity->columns) {
          row.push_back(MakeValue(spec, bank, &rng, r, entity_rows));
        }
        Status s = table->AppendRow(std::move(row));
        (void)s;  // arity is correct by construction
      }
    }
    out.push_back(std::move(gdb));
  }
  return out;
}

}  // namespace gred::dataset
