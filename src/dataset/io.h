#ifndef GREDVIS_DATASET_IO_H_
#define GREDVIS_DATASET_IO_H_

#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "dataset/example.h"
#include "util/json.h"
#include "util/status.h"

namespace gred::dataset {

/// JSON (de)serialization of the benchmark's artifacts, so a generated
/// suite can be exported, versioned and reloaded byte-identically by
/// other tools (and by the tests, which round-trip everything here).

/// Serializes a populated database: schema (tables, columns with types
/// and roles, foreign keys) plus every data row.
json::Value DatabaseToJson(const GeneratedDatabase& db);

/// Reconstructs a database (schema, metadata and rows) from
/// DatabaseToJson output.
Result<GeneratedDatabase> DatabaseFromJson(const json::Value& value);

/// Serializes one benchmark pair.
json::Value ExampleToJson(const Example& example);

/// Reconstructs a pair; the DVQ text is re-parsed.
Result<Example> ExampleFromJson(const json::Value& value);

/// Serializes a whole example list.
json::Value ExamplesToJson(const std::vector<Example>& examples);
Result<std::vector<Example>> ExamplesFromJson(const json::Value& value);

/// File helpers (whole-document read/write).
Status WriteJsonFile(const std::string& path, const json::Value& value);
Result<json::Value> ReadJsonFile(const std::string& path);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_IO_H_
