#include "dataset/entity_bank.h"

namespace gred::dataset {

namespace {

using schema::ColumnType;

ColumnSpec Id(const std::string& entity_word) {
  ColumnSpec c;
  c.words = {entity_word, "id"};
  c.type = ColumnType::kInt;
  c.role = ColumnRole::kId;
  return c;
}

ColumnSpec Fk(const std::string& parent_word, const std::string& parent_id) {
  ColumnSpec c;
  c.words = {parent_word, "id"};
  c.type = ColumnType::kInt;
  c.role = ColumnRole::kId;
  c.fk_entity = parent_id;
  return c;
}

ColumnSpec NameCol(std::vector<std::string> words, const std::string& pool) {
  ColumnSpec c;
  c.words = std::move(words);
  c.type = ColumnType::kText;
  c.role = ColumnRole::kName;
  c.pool = pool;
  return c;
}

ColumnSpec Cat(std::vector<std::string> words, const std::string& pool) {
  ColumnSpec c;
  c.words = std::move(words);
  c.type = ColumnType::kText;
  c.role = ColumnRole::kCategory;
  c.pool = pool;
  return c;
}

ColumnSpec Num(std::vector<std::string> words, double lo, double hi,
               bool integral = true) {
  ColumnSpec c;
  c.words = std::move(words);
  c.type = integral ? ColumnType::kInt : ColumnType::kReal;
  c.role = ColumnRole::kNumeric;
  c.min_value = lo;
  c.max_value = hi;
  c.integral = integral;
  return c;
}

ColumnSpec DateCol(std::vector<std::string> words, double year_lo,
                   double year_hi) {
  ColumnSpec c;
  c.words = std::move(words);
  c.type = ColumnType::kDate;
  c.role = ColumnRole::kDate;
  c.min_value = year_lo;
  c.max_value = year_hi;
  return c;
}

EntitySpec Entity(std::string id, std::vector<std::string> table_words,
                  std::vector<ColumnSpec> columns) {
  EntitySpec e;
  e.id = std::move(id);
  e.table_words = std::move(table_words);
  e.columns = std::move(columns);
  return e;
}

EntityBank* BuildDefaultBank() {
  auto* bank = new EntityBank();

  bank->AddPool("first_names",
                {"Alice", "Bruno", "Carla", "Daniel", "Elena", "Felix",
                 "Grace", "Hugo", "Irene", "Jonas", "Karen", "Liam", "Mona",
                 "Nadia", "Oscar", "Paula", "Quinn", "Ramon", "Sofia", "Theo",
                 "Uma", "Victor", "Wanda", "Xavier", "Yara", "Zane"});
  bank->AddPool("last_names",
                {"Adams", "Baker", "Chen", "Diaz", "Evans", "Fischer",
                 "Garcia", "Huang", "Ivanov", "Jones", "Kim", "Lopez",
                 "Meyer", "Nakamura", "Olsen", "Patel", "Quirke", "Rossi",
                 "Silva", "Tanaka", "Ueda", "Vargas", "Weber", "Xu", "Young",
                 "Zhang"});
  bank->AddPool("cities",
                {"Springfield", "Riverton", "Lakeside", "Fairview",
                 "Greenville", "Mapleton", "Brookfield", "Ashland",
                 "Clayton", "Dover", "Easton", "Franklin", "Georgetown",
                 "Hamilton", "Irvine", "Jackson"});
  bank->AddPool("countries",
                {"Aurelia", "Borland", "Cestova", "Dalmora", "Elvania",
                 "Fandor", "Grenor", "Halvia", "Istra", "Jolvia"});
  bank->AddPool("majors",
                {"Biology", "Chemistry", "Economics", "History",
                 "Mathematics", "Physics", "Psychology", "Sociology",
                 "Philosophy", "Engineering"});
  bank->AddPool("pet_types", {"dog", "cat", "bird", "rabbit", "hamster",
                              "turtle", "lizard", "ferret"});
  bank->AddPool("product_categories",
                {"electronics", "furniture", "clothing", "toys", "grocery",
                 "sports", "garden", "books"});
  bank->AddPool("statuses", {"pending", "shipped", "delivered", "cancelled",
                             "returned"});
  bank->AddPool("job_titles",
                {"Engineer", "Analyst", "Clerk", "Director", "Technician",
                 "Designer", "Accountant", "Consultant", "Coordinator",
                 "Specialist"});
  bank->AddPool("dept_names",
                {"Finance", "Marketing", "Operations", "Research", "Sales",
                 "Support", "Logistics", "Legal", "Procurement",
                 "Quality"});
  bank->AddPool("specialties",
                {"Cardiology", "Neurology", "Oncology", "Pediatrics",
                 "Radiology", "Dermatology", "Orthopedics", "Psychiatry"});
  bank->AddPool("diagnoses",
                {"influenza", "fracture", "migraine", "asthma", "allergy",
                 "anemia", "bronchitis", "arthritis"});
  bank->AddPool("instruments",
                {"violin", "cello", "flute", "oboe", "trumpet", "piano",
                 "harp", "clarinet"});
  bank->AddPool("genres", {"drama", "comedy", "action", "thriller",
                           "documentary", "romance", "horror", "fantasy"});
  bank->AddPool("semesters", {"Spring", "Summer", "Fall", "Winter"});
  bank->AddPool("airlines_names",
                {"SkyBridge", "AeroNova", "BlueHorizon", "CloudLink",
                 "StarJet", "PolarAir", "SunRoute", "WestWind"});
  bank->AddPool("team_names",
                {"Falcons", "Tigers", "Sharks", "Wolves", "Eagles",
                 "Panthers", "Bulls", "Hawks", "Lions", "Bears"});
  bank->AddPool("venue_names",
                {"Grand Hall", "Riverside Arena", "Summit Center",
                 "Harbor Stage", "Union Theater", "Crystal Pavilion"});
  bank->AddPool("course_titles",
                {"Algebra", "Databases", "Genetics", "Rhetoric", "Optics",
                 "Statistics", "Algorithms", "Thermodynamics", "Drawing",
                 "Macroeconomics"});
  bank->AddPool("book_titles",
                {"Silent Rivers", "The Glass Orchard", "Northern Lights",
                 "Paper Cities", "The Last Cartographer", "Ember and Ash",
                 "Hollow Mountain", "Salt and Stone"});
  bank->AddPool("film_titles",
                {"Crimson Tide Rising", "The Quiet Harbor", "Midnight Express",
                 "Garden of Echoes", "Steel Horizon", "The Velvet Mask",
                 "Winter's Crown", "Falling Skyward"});
  bank->AddPool("song_titles",
                {"Golden Hour", "Neon Rain", "Quiet Storm", "Paper Planes",
                 "Silver Lining", "Echo Park", "Morning Glass",
                 "Violet Sky"});
  bank->AddPool("brands", {"Nordica", "Veltron", "Apexia", "Lumina",
                           "Cascade", "Orbita"});
  bank->AddPool("colors", {"red", "blue", "green", "black", "white",
                           "silver", "yellow"});
  bank->AddPool("languages", {"English", "Spanish", "Mandarin", "French",
                              "German", "Arabic", "Hindi"});
  bank->AddPool("building_names",
                {"Aspen Tower", "Cedar Court", "Birch House", "Elm Plaza",
                 "Willow Block", "Oak Residence"});
  bank->AddPool("restaurant_names",
                {"Golden Fork", "Sea Breeze", "Casa Verde", "The Old Mill",
                 "Lotus Garden", "Ember Grill", "Blue Door", "Maple Table"});
  bank->AddPool("dish_names",
                {"Seared Salmon", "Truffle Pasta", "Garden Risotto",
                 "Spiced Lentils", "Citrus Duck", "Stone Soup",
                 "Harvest Bowl", "Smoked Brisket"});
  bank->AddPool("cuisines",
                {"italian", "japanese", "mexican", "indian", "french",
                 "thai", "greek", "korean"});
  bank->AddPool("subjects",
                {"Algebra", "Literature", "Chemistry", "Geography",
                 "Music", "Physics", "History", "Biology"});
  bank->AddPool("plant_names",
                {"North Ridge Plant", "Delta Works", "Harbor Station",
                 "Sunfield Array", "Westgate Facility", "Quarry Point"});
  bank->AddPool("station_names",
                {"North Gate", "Central Cross", "Harbor Point", "East Ridge",
                 "South Meadow", "West Fork"});

  // --- HR domain ---------------------------------------------------------
  bank->AddEntity(Entity(
      "department", {"department"},
      {Id("department"), NameCol({"department", "name"}, "dept_names"),
       Num({"budget"}, 50000, 900000), Cat({"location"}, "cities"),
       Num({"manager", "id"}, 1, 40)}));
  bank->AddEntity(Entity(
      "job", {"job"},
      {Id("job"), Cat({"job", "title"}, "job_titles"),
       Num({"minimum", "salary"}, 20000, 60000),
       Num({"maximum", "salary"}, 60000, 180000)}));
  bank->AddEntity(Entity(
      "employee", {"employee"},
      {Id("employee"), NameCol({"first", "name"}, "first_names"),
       NameCol({"last", "name"}, "last_names"),
       Num({"salary"}, 25000, 150000), DateCol({"hire", "date"}, 1998, 2022),
       Num({"age"}, 21, 64), Cat({"city"}, "cities"),
       Fk("department", "department"), Fk("job", "job")}));

  // --- College domain ----------------------------------------------------
  bank->AddEntity(Entity(
      "student", {"student"},
      {Id("student"), NameCol({"first", "name"}, "first_names"),
       NameCol({"last", "name"}, "last_names"), Num({"age"}, 17, 30),
       Cat({"major"}, "majors"), Num({"grade"}, 1, 4, false),
       Cat({"city"}, "cities"), Fk("advisor", "advisor")}));
  bank->AddEntity(Entity(
      "advisor", {"advisor"},
      {Id("advisor"), NameCol({"advisor", "name"}, "last_names"),
       Num({"experience", "year"}, 1, 35), Cat({"department", "name"},
                                               "dept_names")}));
  bank->AddEntity(Entity(
      "course", {"course"},
      {Id("course"), NameCol({"course", "title"}, "course_titles"),
       Num({"credit"}, 1, 6), Cat({"semester"}, "semesters"),
       Num({"enrollment", "count"}, 5, 200)}));
  bank->AddEntity(Entity(
      "pet", {"pet"},
      {Id("pet"), Cat({"pet", "type"}, "pet_types"), Num({"pet", "age"}, 1, 15),
       Num({"weight"}, 1, 60, false), Fk("student", "student")}));

  // --- Commerce domain ---------------------------------------------------
  bank->AddEntity(Entity(
      "customer", {"customer"},
      {Id("customer"), NameCol({"customer", "name"}, "last_names"),
       Cat({"city"}, "cities"), DateCol({"join", "date"}, 2010, 2023),
       Num({"credit", "amount"}, 500, 20000)}));
  bank->AddEntity(Entity(
      "product", {"product"},
      {Id("product"), NameCol({"product", "name"}, "brands"),
       Cat({"category"}, "product_categories"),
       Num({"price"}, 5, 2500, false), Num({"stock", "count"}, 0, 500),
       Num({"weight"}, 1, 40, false)}));
  bank->AddEntity(Entity(
      "order", {"order"},
      {Id("order"), Fk("customer", "customer"), Fk("product", "product"),
       DateCol({"order", "date"}, 2018, 2024),
       Num({"total", "amount"}, 10, 5000, false),
       Cat({"status"}, "statuses")}));

  // --- Aviation domain ---------------------------------------------------
  bank->AddEntity(Entity(
      "airline", {"airline"},
      {Id("airline"), NameCol({"airline", "name"}, "airlines_names"),
       Cat({"country"}, "countries"), Num({"fleet", "count"}, 5, 320)}));
  bank->AddEntity(Entity(
      "flight", {"flight"},
      {Id("flight"), Cat({"origin"}, "cities"),
       Cat({"destination"}, "cities"),
       DateCol({"departure", "date"}, 2019, 2024),
       Num({"price"}, 60, 2200, false), Num({"duration"}, 40, 900),
       Fk("airline", "airline")}));

  // --- Cinema domain -----------------------------------------------------
  bank->AddEntity(Entity(
      "cinema", {"cinema"},
      {Id("cinema"), NameCol({"cinema", "name"}, "venue_names"),
       Num({"capacity"}, 80, 900), Num({"open", "year"}, 1950, 2020),
       Cat({"location"}, "cities")}));
  bank->AddEntity(Entity(
      "film", {"film"},
      {Id("film"), NameCol({"film", "title"}, "film_titles"),
       Num({"release", "year"}, 1970, 2024), Cat({"genre"}, "genres"),
       Num({"rating"}, 1, 10, false), Num({"duration"}, 70, 210),
       Fk("cinema", "cinema")}));

  // --- Sports domain -----------------------------------------------------
  bank->AddEntity(Entity(
      "team", {"team"},
      {Id("team"), NameCol({"team", "name"}, "team_names"),
       Cat({"city"}, "cities"), Num({"found", "year"}, 1900, 2010),
       Num({"win", "count"}, 0, 90), Num({"loss", "count"}, 0, 90)}));
  bank->AddEntity(Entity(
      "match", {"match"},
      {Id("match"), DateCol({"match", "date"}, 2015, 2024),
       Num({"home", "score"}, 0, 9), Num({"away", "score"}, 0, 9),
       Num({"attendance"}, 500, 80000), Fk("team", "team")}));

  // --- Hospital domain ---------------------------------------------------
  bank->AddEntity(Entity(
      "doctor", {"doctor"},
      {Id("doctor"), NameCol({"doctor", "name"}, "last_names"),
       Cat({"specialty"}, "specialties"),
       Num({"experience", "year"}, 1, 40), Num({"salary"}, 60000, 300000)}));
  bank->AddEntity(Entity(
      "patient", {"patient"},
      {Id("patient"), NameCol({"patient", "name"}, "last_names"),
       Num({"age"}, 1, 95), DateCol({"admission", "date"}, 2016, 2024),
       Cat({"diagnosis"}, "diagnoses"), Fk("doctor", "doctor")}));

  // --- Real-estate domain ------------------------------------------------
  bank->AddEntity(Entity(
      "building", {"building"},
      {Id("building"), NameCol({"building", "name"}, "building_names"),
       Num({"floor", "count"}, 2, 60), Num({"built", "year"}, 1930, 2022),
       Cat({"city"}, "cities")}));
  bank->AddEntity(Entity(
      "apartment", {"apartment"},
      {Id("apartment"), Fk("building", "building"),
       Num({"bedroom", "count"}, 0, 6), Num({"bathroom", "count"}, 1, 4),
       Num({"area"}, 25, 280, false), Num({"rent"}, 400, 6000)}));

  // --- Library domain ----------------------------------------------------
  bank->AddEntity(Entity(
      "author", {"author"},
      {Id("author"), NameCol({"author", "name"}, "last_names"),
       Cat({"country"}, "countries"), Num({"birth", "year"}, 1900, 1995)}));
  bank->AddEntity(Entity(
      "book", {"book"},
      {Id("book"), NameCol({"book", "title"}, "book_titles"),
       Fk("author", "author"), Num({"page", "count"}, 60, 1200),
       Num({"publish", "year"}, 1950, 2024), Num({"price"}, 5, 120, false)}));

  // --- Music domain ------------------------------------------------------
  bank->AddEntity(Entity(
      "band", {"band"},
      {Id("band"), NameCol({"band", "name"}, "team_names"),
       Num({"found", "year"}, 1960, 2020), Cat({"country"}, "countries")}));
  bank->AddEntity(Entity(
      "musician", {"musician"},
      {Id("musician"), NameCol({"musician", "name"}, "last_names"),
       Num({"age"}, 16, 75), Cat({"instrument"}, "instruments"),
       Fk("band", "band")}));
  bank->AddEntity(Entity(
      "concert", {"concert"},
      {Id("concert"), NameCol({"concert", "name"}, "venue_names"),
       Num({"concert", "year"}, 2000, 2024), Num({"attendance"}, 100, 60000),
       Fk("band", "band")}));

  // --- Weather domain ----------------------------------------------------
  bank->AddEntity(Entity(
      "station", {"station"},
      {Id("station"), NameCol({"station", "name"}, "station_names"),
       Cat({"city"}, "cities"), Num({"open", "year"}, 1950, 2015)}));
  bank->AddEntity(Entity(
      "weather", {"weather", "record"},
      {Id("record"), DateCol({"record", "date"}, 2020, 2024),
       Num({"temperature"}, -20, 42, false), Num({"humidity"}, 10, 100),
       Num({"wind", "speed"}, 0, 120, false), Fk("station", "station")}));

  // --- Automotive domain -------------------------------------------------
  bank->AddEntity(Entity(
      "maker", {"brand"},
      {Id("brand"), NameCol({"brand", "name"}, "brands"),
       Cat({"country"}, "countries"), Num({"found", "year"}, 1900, 2000)}));
  bank->AddEntity(Entity(
      "car", {"car", "model"},
      {Id("model"), NameCol({"model", "name"}, "brands"),
       Num({"horsepower"}, 60, 700), Num({"price"}, 9000, 220000),
       Num({"model", "year"}, 1995, 2024), Cat({"color"}, "colors"),
       Fk("maker", "maker")}));

  // --- Restaurant domain -------------------------------------------------
  bank->AddEntity(Entity(
      "restaurant", {"restaurant"},
      {Id("restaurant"), NameCol({"restaurant", "name"}, "restaurant_names"),
       Cat({"cuisine"}, "cuisines"), Cat({"city"}, "cities"),
       Num({"open", "year"}, 1970, 2022), Num({"rating"}, 1, 5, false)}));
  bank->AddEntity(Entity(
      "dish", {"dish"},
      {Id("dish"), NameCol({"dish", "name"}, "dish_names"),
       Num({"price"}, 4, 80, false), Num({"calorie", "count"}, 150, 1400),
       Fk("restaurant", "restaurant")}));

  // --- School domain -------------------------------------------------------
  bank->AddEntity(Entity(
      "teacher", {"teacher"},
      {Id("teacher"), NameCol({"teacher", "name"}, "last_names"),
       Cat({"subject"}, "subjects"), Num({"experience", "year"}, 1, 40),
       Num({"salary"}, 30000, 90000)}));
  bank->AddEntity(Entity(
      "school_class", {"class"},
      {Id("class"), Cat({"class", "title"}, "subjects"),
       Num({"capacity"}, 10, 40), Cat({"semester"}, "semesters"),
       Fk("teacher", "teacher")}));

  // --- Energy domain -------------------------------------------------------
  bank->AddEntity(Entity(
      "plant", {"plant"},
      {Id("plant"), NameCol({"plant", "name"}, "plant_names"),
       Cat({"city"}, "cities"), Num({"capacity"}, 50, 2000),
       Num({"open", "year"}, 1960, 2020)}));
  bank->AddEntity(Entity(
      "energy_reading", {"energy", "reading"},
      {Id("reading"), DateCol({"reading", "date"}, 2019, 2024),
       Num({"output"}, 10, 1800, false),
       Num({"efficiency"}, 40, 99, false), Fk("plant", "plant")}));

  // Domains (parents listed before children so FK population works).
  bank->AddDomain({"hr", {"department", "job", "employee"}});
  bank->AddDomain({"college", {"advisor", "student", "course", "pet"}});
  bank->AddDomain({"commerce", {"customer", "product", "order"}});
  bank->AddDomain({"aviation", {"airline", "flight"}});
  bank->AddDomain({"cinema", {"cinema", "film"}});
  bank->AddDomain({"sports", {"team", "match"}});
  bank->AddDomain({"hospital", {"doctor", "patient"}});
  bank->AddDomain({"realestate", {"building", "apartment"}});
  bank->AddDomain({"library", {"author", "book"}});
  bank->AddDomain({"music", {"band", "musician", "concert"}});
  bank->AddDomain({"weather", {"station", "weather"}});
  bank->AddDomain({"auto", {"maker", "car"}});
  bank->AddDomain({"campus_pets", {"advisor", "student", "pet"}});
  bank->AddDomain({"restaurant", {"restaurant", "dish"}});
  bank->AddDomain({"school", {"teacher", "school_class"}});
  bank->AddDomain({"energy", {"plant", "energy_reading"}});
  return bank;
}

}  // namespace

const EntityBank& EntityBank::Default() {
  static const EntityBank* const kBank = BuildDefaultBank();
  return *kBank;
}

const EntitySpec* EntityBank::FindEntity(const std::string& id) const {
  for (const EntitySpec& e : entities_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

const std::vector<std::string>& EntityBank::Pool(const std::string& id) const {
  static const std::vector<std::string> kEmpty;
  for (const auto& [pool_id, values] : pools_) {
    if (pool_id == id) return values;
  }
  return kEmpty;
}

void EntityBank::AddPool(const std::string& id,
                         std::vector<std::string> values) {
  pools_.emplace_back(id, std::move(values));
}

}  // namespace gred::dataset
