#ifndef GREDVIS_DATASET_PLAN_H_
#define GREDVIS_DATASET_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "dataset/example.h"
#include "dvq/ast.h"

namespace gred::dataset {

/// A column chosen for a query role, with its generation metadata.
struct AxisPick {
  std::string table;                // owning table name
  std::string column;               // concrete column name
  std::vector<std::string> words;   // concept words of the column
  ColumnRole role = ColumnRole::kNumeric;
};

/// A WHERE predicate in plan form.
struct FilterPick {
  AxisPick col;
  dvq::CompareOp op = dvq::CompareOp::kEq;
  dvq::Literal literal;
  /// Extra-hard variant: filter on a parent attribute through a scalar
  /// subquery `fk = (SELECT parent_id FROM parent WHERE attr = v)`.
  bool via_subquery = false;
  std::string sub_table;        // parent table
  std::string sub_key;          // parent id column (subquery select)
  std::string sub_fk;           // child fk column (outer predicate column)
  AxisPick sub_attr;            // parent attribute filtered inside
};

/// Sorting in plan form.
struct OrderPick {
  bool on_y = false;      // sort key: y (true) or x (false)
  bool descending = false;
};

/// Binning in plan form.
struct BinPick {
  AxisPick col;
  dvq::BinUnit unit = dvq::BinUnit::kMonth;
};

/// A fully-determined visualization intent, from which both the target
/// DVQ and the NLQ surface forms are rendered. The plan is the ground
/// truth the benchmark generator works with.
struct QueryPlan {
  std::string db_name;
  dvq::ChartType chart = dvq::ChartType::kBar;
  Hardness hardness = Hardness::kEasy;

  std::string main_table;

  /// Present when the query joins a parent table.
  struct JoinPick {
    std::string parent_table;
    std::string fk_column;      // on main table
    std::string parent_key;     // on parent table
  };
  std::optional<JoinPick> join;

  AxisPick x;
  dvq::AggFunc y_agg = dvq::AggFunc::kNone;
  AxisPick y;                         // ignored column when y_agg==COUNT(x)
  bool count_of_x = false;            // y is COUNT(x-column)
  std::optional<AxisPick> series;     // grouped charts only

  std::optional<FilterPick> filter;
  bool group = false;                 // GROUP BY x (and series)
  std::optional<OrderPick> order;
  std::optional<std::int64_t> limit;
  std::optional<BinPick> bin;
};

/// Renders the target DVQ for a plan (clean schema names, corpus style:
/// unqualified columns except join keys).
dvq::DVQ PlanToDvq(const QueryPlan& plan);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_PLAN_H_
