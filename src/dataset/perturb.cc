#include "dataset/perturb.h"

#include <cctype>
#include <functional>
#include <set>

#include "util/strings.h"

namespace gred::dataset {

namespace {

std::string ApplyStyle(const std::vector<std::string>& words,
                       NamingStyle style) {
  switch (style) {
    case NamingStyle::kSnakeLower:
      return strings::ToSnakeCase(words);
    case NamingStyle::kSnakeUpper:
      return strings::ToUpper(strings::ToSnakeCase(words));
    case NamingStyle::kSnakeCapital: {
      std::vector<std::string> caps;
      caps.reserve(words.size());
      for (const std::string& w : words) {
        std::string c = w;
        if (!c.empty() && c[0] >= 'a' && c[0] <= 'z') {
          c[0] = static_cast<char>(c[0] - 'a' + 'A');
        }
        caps.push_back(c);
      }
      return strings::Join(caps, "_");
    }
    case NamingStyle::kCamel:
      return strings::ToCamelCase(words);
    case NamingStyle::kAbbrevPrefix: {
      // All words but the last collapse to their initials:
      // {"employment","day"} -> "E_day"; single words keep their spelling.
      if (words.size() < 2) return strings::ToSnakeCase(words);
      std::string prefix;
      for (std::size_t i = 0; i + 1 < words.size(); ++i) {
        if (!words[i].empty()) {
          prefix.push_back(
              static_cast<char>(std::toupper(
                  static_cast<unsigned char>(words[i][0]))));
        }
      }
      return prefix + "_" + words.back();
    }
  }
  return strings::ToSnakeCase(words);
}

/// Substitutes synonyms into the word sequence (per-word, when the
/// lexicon offers alternates).
std::vector<std::string> SubstituteSynonyms(
    const std::vector<std::string>& words, const nl::Lexicon& lexicon,
    const PerturbOptions& options, Rng* rng) {
  std::vector<std::string> replaced;
  replaced.reserve(words.size());
  for (const std::string& word : words) {
    std::vector<std::string> alternates = lexicon.AlternateForms(word);
    if (!alternates.empty() && rng->NextBool(options.synonym_probability)) {
      replaced.push_back(
          strings::ToLower(alternates[rng->NextIndex(alternates.size())]));
    } else {
      replaced.push_back(strings::ToLower(word));
    }
  }
  return replaced;
}

NamingStyle PickStyle(const PerturbOptions& options, Rng* rng) {
  if (!rng->NextBool(options.style_change_probability)) {
    return NamingStyle::kSnakeLower;
  }
  static const NamingStyle kStyles[] = {
      NamingStyle::kSnakeUpper, NamingStyle::kSnakeCapital,
      NamingStyle::kCamel, NamingStyle::kAbbrevPrefix};
  return kStyles[rng->NextIndex(4)];
}

/// Renames a table: synonyms, then pluralization of the last word, then
/// a naming style over the whole sequence.
std::string RenameTableIdentifier(const std::vector<std::string>& words,
                                  const nl::Lexicon& lexicon,
                                  const PerturbOptions& options, Rng* rng) {
  std::vector<std::string> replaced =
      SubstituteSynonyms(words, lexicon, options, rng);
  if (!replaced.empty()) {
    replaced.back() =
        strings::SplitIdentifierWords(PluralTableName({replaced.back()}))[0];
  }
  return ApplyStyle(replaced, PickStyle(options, rng));
}

/// Substitutes synonyms into the word sequence, optionally restructures
/// the word order (the paper's "ACC_Percent" -> "percentage_of_ACC"
/// pattern), then applies a naming style. Returns the new identifier.
std::string RenameIdentifier(const std::vector<std::string>& words,
                             const nl::Lexicon& lexicon,
                             const PerturbOptions& options, Rng* rng) {
  std::vector<std::string> replaced =
      SubstituteSynonyms(words, lexicon, options, rng);
  // Structural churn: reversed word order joined with a connector keeps
  // the words (lexically recoverable) while breaking exact matching.
  if (replaced.size() >= 2 &&
      rng->NextBool(options.reorder_probability)) {
    std::vector<std::string> reordered;
    for (std::size_t i = replaced.size(); i-- > 0;) {
      reordered.push_back(replaced[i]);
      if (i > 0 && reordered.size() == 1) reordered.push_back("of");
    }
    replaced = std::move(reordered);
  }
  return ApplyStyle(replaced, PickStyle(options, rng));
}

}  // namespace

std::string SchemaRename::TableName(const std::string& old_table) const {
  auto it = tables.find(strings::ToLower(old_table));
  return it == tables.end() ? old_table : it->second;
}

std::string SchemaRename::ColumnName(const std::string& old_table,
                                     const std::string& old_column) const {
  auto it = columns.find(
      {strings::ToLower(old_table), strings::ToLower(old_column)});
  return it == columns.end() ? old_column : it->second;
}

GeneratedDatabase PerturbSchema(const GeneratedDatabase& db,
                                const nl::Lexicon& lexicon,
                                const PerturbOptions& options, Rng* rng,
                                SchemaRename* renames) {
  GeneratedDatabase out = db;
  for (GeneratedTable& table : out.tables) {
    const std::string old_table = table.name;
    std::string current_table = old_table;
    if (rng->NextBool(options.table_rename_probability)) {
      const EntityBank& bank = EntityBank::Default();
      const EntitySpec* entity = bank.FindEntity(table.entity_id);
      std::vector<std::string> words =
          entity != nullptr ? entity->table_words
                            : strings::SplitIdentifierWords(old_table);
      std::string renamed =
          RenameTableIdentifier(words, lexicon, options, rng);
      if (!strings::EqualsIgnoreCase(renamed, old_table) &&
          out.data.db_schema().FindTable(renamed) == nullptr) {
        Status s = out.data.RenameTable(old_table, renamed);
        if (s.ok()) {
          renames->tables[strings::ToLower(old_table)] = renamed;
          table.name = renamed;
          current_table = renamed;
        }
      }
    }
    std::set<std::string> used;
    for (const schema::Column& c :
         out.data.db_schema().FindTable(current_table)->columns()) {
      used.insert(strings::ToLower(c.name));
    }
    for (GeneratedColumn& column : table.columns) {
      if (!rng->NextBool(options.column_rename_probability)) continue;
      std::string renamed =
          RenameIdentifier(column.spec.words, lexicon, options, rng);
      std::string lower_new = strings::ToLower(renamed);
      std::string lower_old = strings::ToLower(column.name);
      if (lower_new == lower_old || used.count(lower_new) > 0) continue;
      Status s = out.data.RenameColumn(current_table, column.name, renamed);
      if (!s.ok()) continue;
      used.erase(lower_old);
      used.insert(lower_new);
      renames->columns[{strings::ToLower(old_table), lower_old}] = renamed;
      column.name = renamed;
    }
  }
  return out;
}

namespace {

/// Renames column references and table names of one query level. The
/// owner of an unqualified column is resolved against the level's own
/// tables first (subquery scope shadows the outer scope), then the outer
/// scope, then the whole schema.
void RewriteQueryRefs(dvq::Query* q, const schema::Database& clean_schema,
                      const SchemaRename& renames,
                      const std::vector<std::string>& outer_tables) {
  std::vector<std::string> scope;
  scope.push_back(q->from_table);
  for (const dvq::JoinClause& j : q->joins) scope.push_back(j.table);
  scope.insert(scope.end(), outer_tables.begin(), outer_tables.end());

  auto owner_of = [&](const dvq::ColumnRef& ref) -> std::string {
    if (!ref.table.empty()) return ref.table;
    for (const std::string& t : scope) {
      const schema::TableDef* def = clean_schema.FindTable(t);
      if (def != nullptr && def->FindColumn(ref.column) != nullptr) return t;
    }
    auto [table, col] = clean_schema.FindColumnAnywhere(ref.column);
    (void)col;
    return table != nullptr ? table->name() : std::string();
  };
  auto rewrite_ref = [&](dvq::ColumnRef* ref) {
    if (ref->column == "*") return;
    std::string owner = owner_of(*ref);
    if (owner.empty()) return;
    ref->column = renames.ColumnName(owner, ref->column);
    if (!ref->table.empty()) ref->table = renames.TableName(ref->table);
  };

  for (dvq::SelectExpr& e : q->select) rewrite_ref(&e.col);
  for (dvq::JoinClause& j : q->joins) {
    rewrite_ref(&j.left);
    rewrite_ref(&j.right);
  }
  if (q->where.has_value()) {
    for (dvq::Predicate& p : q->where->predicates) {
      rewrite_ref(&p.col);
      if (p.subquery != nullptr) {
        dvq::Query inner = *p.subquery;
        RewriteQueryRefs(&inner, clean_schema, renames, scope);
        p.subquery = std::make_shared<const dvq::Query>(std::move(inner));
      }
    }
  }
  for (dvq::ColumnRef& g : q->group_by) rewrite_ref(&g);
  if (q->order_by.has_value()) rewrite_ref(&q->order_by->expr.col);
  if (q->bin.has_value()) rewrite_ref(&q->bin->col);

  // Table names last (owner resolution above used the clean names).
  q->from_table = renames.TableName(q->from_table);
  for (dvq::JoinClause& j : q->joins) j.table = renames.TableName(j.table);
}

}  // namespace

dvq::DVQ RewriteDvq(const dvq::DVQ& query, const GeneratedDatabase& clean_db,
                    const SchemaRename& renames) {
  dvq::DVQ out = query;
  RewriteQueryRefs(&out.query, clean_db.data.db_schema(), renames, {});
  return out;
}

}  // namespace gred::dataset
