#ifndef GREDVIS_DATASET_BENCHMARK_H_
#define GREDVIS_DATASET_BENCHMARK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/db_generator.h"
#include "dataset/example.h"
#include "dataset/perturb.h"

namespace gred::dataset {

/// Options for assembling the full benchmark suite.
struct BenchmarkOptions {
  std::uint64_t seed = 20240501;
  std::size_t num_databases = 104;   // Figure 2
  std::size_t train_size = 6000;     // nvBench 80% register (scaled)
  std::size_t test_size = 1182;      // development split of Figure 2
  /// Split regime. The paper evaluates the no-cross-domain split (test
  /// databases also appear in training — nvBench's development split);
  /// setting this holds out every fifth database entirely, so test
  /// questions target schemas never seen in training.
  bool cross_domain = false;
};

/// The complete nvBench / nvBench-Rob reproduction suite.
///
/// `databases` is the clean corpus; `databases_rob` is the schema-
/// perturbed corpus (same database names, renamed tables/columns,
/// identical rows). Four test sets share the same underlying plans:
///   test_clean            nvBench           (clean NLQ, clean schema)
///   test_nlq              nvBench-Rob_nlq   (paraphrased NLQ, clean schema)
///   test_schema           nvBench-Rob_schema(clean NLQ, renamed schema)
///   test_both             nvBench-Rob_(nlq,schema)
/// Target DVQs of the schema variants are rewritten onto the renamed
/// schema via the recorded rename maps.
struct BenchmarkSuite {
  std::vector<GeneratedDatabase> databases;
  std::vector<GeneratedDatabase> databases_rob;
  std::map<std::string, SchemaRename> renames;  // by database name

  std::vector<Example> train;
  std::vector<Example> test_clean;
  std::vector<Example> test_nlq;
  std::vector<Example> test_schema;
  std::vector<Example> test_both;

  const GeneratedDatabase* FindCleanDb(const std::string& name) const;
  const GeneratedDatabase* FindRobDb(const std::string& name) const;
};

/// Builds the whole suite deterministically from `options.seed`.
BenchmarkSuite BuildBenchmarkSuite(const BenchmarkOptions& options);

/// Aggregate statistics of an example set (Figure 2's panels).
struct DatasetStats {
  std::map<std::string, std::size_t> by_chart;     // chart name -> count
  std::map<std::string, std::size_t> by_hardness;  // hardness -> count
  std::size_t total = 0;
  std::size_t num_databases = 0;
  std::size_t num_tables = 0;
  std::size_t num_columns = 0;
  double avg_tables_per_db = 0.0;
  double avg_columns_per_table = 0.0;
};

DatasetStats ComputeStats(const std::vector<Example>& examples,
                          const std::vector<GeneratedDatabase>& databases);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_BENCHMARK_H_
