#ifndef GREDVIS_DATASET_EXAMPLE_H_
#define GREDVIS_DATASET_EXAMPLE_H_

#include <string>

#include "dvq/ast.h"

namespace gred::dataset {

/// DVQ hardness tiers, following nvBench's four levels (Figure 2).
enum class Hardness { kEasy, kMedium, kHard, kExtraHard };

/// Returns "Easy" / "Medium" / "Hard" / "Extra Hard".
const char* HardnessName(Hardness h);

/// One (NLQ, DVQ) benchmark pair.
struct Example {
  std::string id;        // stable example id, e.g. "hr_1@0042"
  std::string db_name;   // database the DVQ runs against
  std::string nlq;       // natural-language question (clean, nvBench style)
  std::string nlq_rob;   // paraphrased NLQ (nvBench-Rob style)
  dvq::DVQ dvq;          // target query (clean schema names)
  Hardness hardness = Hardness::kEasy;

  /// Canonical target DVQ text.
  std::string DvqText() const { return dvq.ToString(); }
};

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_EXAMPLE_H_
