#include "dataset/query_generator.h"

#include <algorithm>

#include "util/strings.h"

namespace gred::dataset {

namespace {

using dvq::AggFunc;
using dvq::ChartType;
using dvq::CompareOp;

constexpr ChartType kChartOrder[] = {
    ChartType::kBar,        ChartType::kPie,
    ChartType::kLine,       ChartType::kScatter,
    ChartType::kStackedBar, ChartType::kGroupingLine,
    ChartType::kGroupingScatter,
};

constexpr Hardness kHardnessOrder[] = {Hardness::kEasy, Hardness::kMedium,
                                       Hardness::kHard, Hardness::kExtraHard};

AxisPick ToAxis(const GeneratedTable& table, const GeneratedColumn& col) {
  AxisPick pick;
  pick.table = table.name;
  pick.column = col.name;
  pick.words = col.spec.words;
  pick.role = col.spec.role;
  return pick;
}

/// Column candidates of a table by role family.
struct RoleIndex {
  std::vector<const GeneratedColumn*> categorical;  // kCategory | kName
  std::vector<const GeneratedColumn*> numeric;      // kNumeric
  std::vector<const GeneratedColumn*> dates;        // kDate
};

RoleIndex IndexRoles(const GeneratedTable& table) {
  RoleIndex idx;
  for (const GeneratedColumn& col : table.columns) {
    switch (col.spec.role) {
      case ColumnRole::kCategory:
      case ColumnRole::kName:
        idx.categorical.push_back(&col);
        break;
      case ColumnRole::kNumeric:
        idx.numeric.push_back(&col);
        break;
      case ColumnRole::kDate:
        idx.dates.push_back(&col);
        break;
      case ColumnRole::kId:
        break;
    }
  }
  return idx;
}

/// True when the requested chart/hardness combination is expressible.
bool Compatible(ChartType chart, Hardness hardness) {
  switch (chart) {
    case ChartType::kPie:
    case ChartType::kStackedBar:
    case ChartType::kGroupingLine:
    case ChartType::kGroupingScatter:
      return hardness != Hardness::kEasy;
    default:
      return true;
  }
}

}  // namespace

QueryGenerator::QueryGenerator(
    const std::vector<GeneratedDatabase>* databases,
    const nl::Lexicon* lexicon, QueryGeneratorOptions options)
    : databases_(databases), lexicon_(lexicon), options_(std::move(options)) {}

std::optional<QueryPlan> QueryGenerator::SamplePlan(
    const GeneratedDatabase& db, Rng* rng) {
  ChartType chart = kChartOrder[rng->PickWeighted(options_.chart_weights)];
  Hardness hardness =
      kHardnessOrder[rng->PickWeighted(options_.hardness_weights)];
  for (int tries = 0; !Compatible(chart, hardness) && tries < 8; ++tries) {
    hardness = kHardnessOrder[rng->PickWeighted(options_.hardness_weights)];
  }
  if (!Compatible(chart, hardness)) hardness = Hardness::kMedium;

  const bool wants_join = hardness == Hardness::kExtraHard;

  // Choose the main table (and parent, when joining).
  const GeneratedTable* main = nullptr;
  const GeneratedTable* parent = nullptr;
  const schema::ForeignKey* fk = nullptr;
  if (wants_join) {
    std::vector<const schema::ForeignKey*> fks;
    for (const schema::ForeignKey& candidate :
         db.data.db_schema().foreign_keys()) {
      fks.push_back(&candidate);
    }
    if (fks.empty()) return std::nullopt;
    fk = fks[rng->NextIndex(fks.size())];
    main = db.FindTable(fk->from_table);
    parent = db.FindTable(fk->to_table);
    if (main == nullptr || parent == nullptr) return std::nullopt;
  } else {
    if (db.tables.empty()) return std::nullopt;
    main = &db.tables[rng->NextIndex(db.tables.size())];
  }

  RoleIndex main_roles = IndexRoles(*main);
  RoleIndex parent_roles = parent != nullptr ? IndexRoles(*parent)
                                             : RoleIndex{};

  QueryPlan plan;
  plan.db_name = db.data.name();
  plan.chart = chart;
  plan.hardness = hardness;
  plan.main_table = main->name;
  // Line/scatter families draw both axes from the main table, so a JOIN
  // would not contribute any selected column; extra-hard plans for those
  // charts filter through a scalar subquery instead.
  const bool join_motivated =
      chart == ChartType::kBar || chart == ChartType::kPie ||
      chart == ChartType::kStackedBar;
  if (fk != nullptr && join_motivated) {
    QueryPlan::JoinPick join;
    join.parent_table = parent->name;
    join.fk_column = fk->from_column;
    join.parent_key = fk->to_column;
    plan.join = join;
  }

  auto pick = [&](const std::vector<const GeneratedColumn*>& candidates,
                  const GeneratedTable& table) -> std::optional<AxisPick> {
    if (candidates.empty()) return std::nullopt;
    return ToAxis(table, *candidates[rng->NextIndex(candidates.size())]);
  };

  // --- X axis and series -------------------------------------------------
  const bool is_grouped = chart == ChartType::kStackedBar ||
                          chart == ChartType::kGroupingLine ||
                          chart == ChartType::kGroupingScatter;
  const GeneratedTable& x_table =
      (fk != nullptr && chart != ChartType::kScatter &&
       chart != ChartType::kGroupingScatter)
          ? *parent
          : *main;
  RoleIndex& x_roles = (&x_table == main) ? main_roles : parent_roles;

  if (chart == ChartType::kLine || chart == ChartType::kGroupingLine) {
    std::optional<AxisPick> x = pick(main_roles.dates, *main);
    if (!x.has_value()) return std::nullopt;
    plan.x = *x;
  } else if (chart == ChartType::kScatter ||
             chart == ChartType::kGroupingScatter) {
    std::optional<AxisPick> x = pick(main_roles.numeric, *main);
    if (!x.has_value()) return std::nullopt;
    plan.x = *x;
  } else {
    std::optional<AxisPick> x = pick(x_roles.categorical, x_table);
    if (!x.has_value()) return std::nullopt;
    plan.x = *x;
  }
  if (is_grouped) {
    // Series: a categorical column distinct from x, from the main table.
    std::vector<const GeneratedColumn*> series_candidates;
    for (const GeneratedColumn* c : main_roles.categorical) {
      if (c->name != plan.x.column) series_candidates.push_back(c);
    }
    std::optional<AxisPick> series = pick(series_candidates, *main);
    if (!series.has_value()) return std::nullopt;
    plan.series = *series;
  }

  // --- Y axis --------------------------------------------------------------
  auto pick_numeric_y = [&]() -> std::optional<AxisPick> {
    std::vector<const GeneratedColumn*> candidates;
    for (const GeneratedColumn* c : main_roles.numeric) {
      if (c->name != plan.x.column) candidates.push_back(c);
    }
    return pick(candidates, *main);
  };
  auto use_count = [&]() {
    plan.y_agg = AggFunc::kCount;
    plan.count_of_x = true;
    plan.group = true;
  };
  auto use_agg = [&](AggFunc agg) -> bool {
    std::optional<AxisPick> y = pick_numeric_y();
    if (!y.has_value()) return false;
    plan.y_agg = agg;
    plan.y = *y;
    plan.group = true;
    return true;
  };
  auto random_agg = [&]() -> AggFunc {
    static const AggFunc kAggs[] = {AggFunc::kSum, AggFunc::kAvg,
                                    AggFunc::kMin, AggFunc::kMax};
    return kAggs[rng->NextIndex(4)];
  };

  switch (chart) {
    case ChartType::kScatter:
    case ChartType::kGroupingScatter: {
      std::optional<AxisPick> y = pick_numeric_y();
      if (!y.has_value()) return std::nullopt;
      plan.y = *y;
      plan.group = false;
      break;
    }
    case ChartType::kLine:
    case ChartType::kGroupingLine: {
      if (hardness == Hardness::kEasy) {
        std::optional<AxisPick> y = pick_numeric_y();
        if (!y.has_value()) return std::nullopt;
        plan.y = *y;
      } else {
        // Binned time series: count or aggregate per interval.
        if (rng->NextBool(0.5)) {
          use_count();
          plan.group = false;  // BIN provides the implicit grouping
        } else {
          if (!use_agg(random_agg())) return std::nullopt;
          plan.group = false;
        }
        BinPick bin;
        bin.col = plan.x;
        bin.unit = rng->NextBool(0.6) ? dvq::BinUnit::kMonth
                                      : (rng->NextBool(0.5)
                                             ? dvq::BinUnit::kYear
                                             : dvq::BinUnit::kWeekday);
        plan.bin = bin;
      }
      break;
    }
    case ChartType::kPie: {
      if (rng->NextBool(0.7)) {
        use_count();
      } else if (!use_agg(AggFunc::kSum)) {
        use_count();
      }
      break;
    }
    default: {  // bar, stacked bar
      if (hardness == Hardness::kEasy) {
        std::optional<AxisPick> y = pick_numeric_y();
        if (!y.has_value()) return std::nullopt;
        plan.y = *y;
      } else {
        if (rng->NextBool(0.45)) {
          use_count();
        } else if (!use_agg(random_agg())) {
          use_count();
        }
      }
      break;
    }
  }

  // --- Filter ----------------------------------------------------------
  auto make_filter = [&]() -> std::optional<FilterPick> {
    // Filter on a main-table column with a value drawn from real data so
    // the predicate is satisfiable.
    std::vector<const GeneratedColumn*> candidates;
    for (const GeneratedColumn* c : main_roles.numeric) {
      candidates.push_back(c);
    }
    for (const GeneratedColumn* c : main_roles.categorical) {
      candidates.push_back(c);
    }
    if (candidates.empty()) return std::nullopt;
    const GeneratedColumn* col = candidates[rng->NextIndex(candidates.size())];
    const storage::DataTable* data = db.data.FindTable(main->name);
    if (data == nullptr || data->num_rows() == 0) return std::nullopt;
    auto col_index = data->def().ColumnIndex(col->name);
    if (!col_index.has_value()) return std::nullopt;
    const storage::Value& sample =
        data->at(rng->NextIndex(data->num_rows()), *col_index);
    if (sample.is_null()) return std::nullopt;
    FilterPick f;
    f.col = ToAxis(*main, *col);
    if (sample.is_text()) {
      static const CompareOp kTextOps[] = {CompareOp::kEq, CompareOp::kNe,
                                           CompareOp::kLike};
      f.op = kTextOps[rng->NextIndex(3)];
      if (f.op == CompareOp::kLike) {
        const std::string& text = sample.text_value();
        std::size_t n = std::min<std::size_t>(3, text.size());
        f.literal = dvq::Literal::Str("%" + text.substr(0, n) + "%");
      } else {
        f.literal = dvq::Literal::Str(sample.text_value());
      }
    } else {
      static const CompareOp kNumOps[] = {CompareOp::kGt, CompareOp::kLt,
                                          CompareOp::kGe, CompareOp::kLe,
                                          CompareOp::kNe};
      f.op = kNumOps[rng->NextIndex(5)];
      if (sample.is_int()) {
        f.literal = dvq::Literal::Int(sample.int_value());
      } else {
        f.literal = dvq::Literal::Real(sample.real_value());
      }
    }
    return f;
  };

  auto make_subquery_filter = [&]() -> std::optional<FilterPick> {
    if (fk == nullptr || parent == nullptr) return std::nullopt;
    std::vector<const GeneratedColumn*> attrs;
    for (const GeneratedColumn* c : parent_roles.categorical) {
      attrs.push_back(c);
    }
    if (attrs.empty()) return std::nullopt;
    const GeneratedColumn* attr = attrs[rng->NextIndex(attrs.size())];
    const storage::DataTable* data = db.data.FindTable(parent->name);
    if (data == nullptr || data->num_rows() == 0) return std::nullopt;
    auto idx = data->def().ColumnIndex(attr->name);
    if (!idx.has_value()) return std::nullopt;
    const storage::Value& sample =
        data->at(rng->NextIndex(data->num_rows()), *idx);
    if (!sample.is_text()) return std::nullopt;
    FilterPick f;
    f.via_subquery = true;
    f.op = CompareOp::kEq;
    f.literal = dvq::Literal::Str(sample.text_value());
    f.sub_table = parent->name;
    f.sub_key = fk->to_column;
    f.sub_fk = fk->from_column;
    f.sub_attr = ToAxis(*parent, *attr);
    return f;
  };

  switch (hardness) {
    case Hardness::kEasy:
      break;
    case Hardness::kMedium:
      if (plan.y_agg == AggFunc::kNone && !plan.bin.has_value()) {
        plan.filter = make_filter();
        if (!plan.filter.has_value()) return std::nullopt;
      } else if (rng->NextBool(0.25)) {
        plan.filter = make_filter();
      }
      break;
    case Hardness::kHard:
      plan.filter = make_filter();
      if (!plan.filter.has_value()) return std::nullopt;
      break;
    case Hardness::kExtraHard: {
      // With no motivated JOIN the subquery is the extra-hard feature.
      const double subquery_p = plan.join.has_value() ? 0.35 : 1.0;
      if (rng->NextBool(subquery_p)) {
        std::optional<FilterPick> sub = make_subquery_filter();
        if (sub.has_value()) {
          plan.filter = sub;
        } else if (!plan.join.has_value()) {
          return std::nullopt;  // nothing makes this plan extra-hard
        } else if (rng->NextBool(0.7)) {
          plan.filter = make_filter();
        }
      } else if (rng->NextBool(0.6)) {
        plan.filter = make_filter();
      }
      break;
    }
  }

  // --- Order / limit -----------------------------------------------------
  const bool orderable = chart != ChartType::kPie;
  double order_p;
  switch (hardness) {
    case Hardness::kEasy:
      order_p = 0.55;
      break;
    case Hardness::kMedium:
      order_p = 0.45;
      break;
    default:
      order_p = 0.65;
      break;
  }
  if (orderable && rng->NextBool(order_p)) {
    OrderPick order;
    if (chart == ChartType::kLine || chart == ChartType::kGroupingLine) {
      order.on_y = false;  // time series sort on the x axis
      order.descending = rng->NextBool(0.25);
    } else {
      order.on_y = plan.y_agg != AggFunc::kNone ? rng->NextBool(0.75)
                                                : rng->NextBool(0.5);
      order.descending = rng->NextBool(0.5);
    }
    plan.order = order;
    if (hardness == Hardness::kHard && rng->NextBool(0.25)) {
      plan.limit = static_cast<std::int64_t>(rng->NextInt(3, 10));
    }
  }
  return plan;
}

std::vector<Example> QueryGenerator::Generate(std::size_t count,
                                              const std::string& prefix) {
  std::vector<Example> out;
  out.reserve(count);
  Rng rng(options_.seed ^ Fnv1a64(prefix));
  std::size_t db_cursor = 0;
  std::size_t plan_index = 0;
  while (out.size() < count) {
    const GeneratedDatabase& db =
        (*databases_)[db_cursor % databases_->size()];
    ++db_cursor;
    std::optional<QueryPlan> plan;
    for (int tries = 0; tries < 12 && !plan.has_value(); ++tries) {
      plan = SamplePlan(db, &rng);
    }
    if (!plan.has_value()) continue;
    // Several NLQ surface variants share the same plan (and target DVQ),
    // mirroring nvBench's multiple questions per visualization.
    for (std::size_t variant = 0;
         variant < options_.variants_per_plan && out.size() < count;
         ++variant) {
      Example ex;
      ex.id = strings::Format("%s%05zu-v%zu", prefix.c_str(), plan_index,
                              variant);
      ex.db_name = plan->db_name;
      ex.dvq = PlanToDvq(*plan);
      ex.hardness = plan->hardness;
      Rng nlq_rng = rng.Fork();
      ex.nlq = RenderNlq(*plan, NlqStyle::kExplicit, &nlq_rng, *lexicon_);
      Rng rob_rng = rng.Fork();
      ex.nlq_rob =
          RenderNlq(*plan, NlqStyle::kParaphrased, &rob_rng, *lexicon_);
      out.push_back(std::move(ex));
    }
    ++plan_index;
  }
  return out;
}

}  // namespace gred::dataset
