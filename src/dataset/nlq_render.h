#ifndef GREDVIS_DATASET_NLQ_RENDER_H_
#define GREDVIS_DATASET_NLQ_RENDER_H_

#include <string>
#include <vector>

#include "dataset/plan.h"
#include "nl/lexicon.h"
#include "util/rng.h"

namespace gred::dataset {

/// Surface style of a rendered NLQ.
///
/// kExplicit is the original nvBench register: column names appear
/// verbatim (or as their exact word sequence) and DVQ keywords leak into
/// the sentence ("group by", "bin ... by month", "sort in descending
/// order"). kParaphrased is the nvBench-Rob register produced by the
/// paper's ChatGPT+human reconstruction: nouns are replaced by synonyms,
/// schema is never quoted verbatim, and DVQ keywords are expressed
/// through everyday phrasing.
enum class NlqStyle { kExplicit, kParaphrased };

/// Renders a natural-language question for `plan` in the given style.
/// Deterministic given the Rng state.
std::string RenderNlq(const QueryPlan& plan, NlqStyle style, Rng* rng,
                      const nl::Lexicon& lexicon);

/// The operator surface phrases of each style. Exposed so that baseline
/// models can "learn" (hard-wire) the explicit ones while the simulated
/// LLM understands both registers.
const std::vector<std::string>& ExplicitOpPhrases(dvq::CompareOp op);
const std::vector<std::string>& ParaphrasedOpPhrases(dvq::CompareOp op);

/// Chart-type surface phrases per style. The type word itself (bar, pie,
/// line, scatter, stacked, grouped) stays recognizable in both styles:
/// this mirrors nvBench-Rob, where even perturbed NLQs keep the chart
/// family identifiable (the paper's Vis Accuracy stays >90% throughout).
const std::vector<std::string>& ChartPhrases(dvq::ChartType chart,
                                             NlqStyle style);

/// Renders a column's spoken phrase. Explicit style quotes the column
/// name (or its exact words); paraphrased style substitutes synonyms for
/// every word the lexicon knows.
std::string ColumnPhrase(const AxisPick& col, NlqStyle style, Rng* rng,
                         const nl::Lexicon& lexicon);

}  // namespace gred::dataset

#endif  // GREDVIS_DATASET_NLQ_RENDER_H_
