#ifndef GREDVIS_EXEC_VECTOR_OPS_H_
#define GREDVIS_EXEC_VECTOR_OPS_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dvq/ast.h"
#include "exec/chunk.h"
#include "storage/value.h"

namespace gred::exec {

/// Optional 64-bit value-hash override. Production code passes nullptr
/// (= storage::Value::Hash); tests inject degenerate hashes (e.g. a
/// constant) to prove hash joins and group-by never trust a hash match
/// without re-checking actual key values.
using ValueHashFn = std::uint64_t (*)(const storage::Value&);

inline std::uint64_t HashValueWith(ValueHashFn fn,
                                   const storage::Value& v) {
  return fn != nullptr ? fn(v) : v.Hash();
}

/// Multi-column group-key hashing, split into seed/combine so callers
/// can fold cell hashes without materializing key tuples. Must stay in
/// lockstep between the two executor engines.
inline constexpr std::uint64_t kGroupHashSeed = 0x51ed270b8d5f1fd1ULL;

inline std::uint64_t CombineKeyHash(std::uint64_t h,
                                    std::uint64_t cell_hash) {
  return h ^ (cell_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// One WHERE predicate, resolved and constant-folded for vectorized
/// evaluation: the column slot is bound, the literal / scalar-subquery
/// right-hand side is a Value, and IN-list literals are converted once
/// (the row engine re-converts per row).
struct PreparedPredicate {
  std::size_t slot = 0;
  dvq::CompareOp op = dvq::CompareOp::kEq;
  storage::Value rhs;                    // comparison RHS (may be NULL)
  std::vector<storage::Value> in_values; // IN / NOT IN
  std::string pattern;                   // LIKE / NOT LIKE
  /// Comparison against an int RHS over a NULL-free all-int column:
  /// the kernel runs a branch-light int loop instead of Value::Compare.
  bool dense_int_fast = false;
};

/// Evaluates `pred` over rows [begin, end) of `col`, writing 0/1 into
/// out[0 .. end-begin). Semantics mirror the row engine exactly
/// (SQL-ish three-valued logic for comparisons: NULL on either side is
/// false; LIKE matches against Value::ToString; IN compares NULL as
/// never-found so NOT IN includes NULL rows).
void EvalPredicateRange(const ColumnView& col,
                        const PreparedPredicate& pred, std::size_t begin,
                        std::size_t end, std::uint8_t* out);

/// acc[i] &= x[i] / acc[i] |= x[i] over `n` bytes.
void AndInto(std::uint8_t* acc, const std::uint8_t* x, std::size_t n);
void OrInto(std::uint8_t* acc, const std::uint8_t* x, std::size_t n);

/// Chained hash table for equi-join build sides. Build rows with NULL
/// keys are skipped (SQL equi-join semantics). Probing re-checks actual
/// key equality after the hash matches — a 64-bit collision must never
/// join unrelated rows — and reports matches in ascending build-row
/// order, so join output order is deterministic across platforms and
/// standard libraries.
class JoinHashTable {
 public:
  JoinHashTable(const std::vector<storage::Value>& keys, ValueHashFn hash);

  /// Appends matching build-row ids for `key` to `out` (ascending).
  void Probe(const storage::Value& key, std::uint64_t key_hash,
             std::vector<std::uint32_t>* out) const;

 private:
  const std::vector<storage::Value>& keys_;
  std::vector<std::uint64_t> hashes_;  // per build row
  std::vector<std::int32_t> heads_;    // per bucket, -1 = empty
  std::vector<std::int32_t> next_;     // per build row, -1 = end
  std::uint64_t mask_ = 0;
};

/// Open-addressing map from group-key hash to dense group id, with full
/// key re-check delegated to the caller (`eq` compares the candidate
/// row's key against an existing group's key). Group ids are assigned
/// in first-seen order, matching the row engine's group output order.
class GroupIndex {
 public:
  GroupIndex();

  std::size_t size() const { return groups_; }

  /// Returns {group id, inserted}. `eq(gid)` must return true iff the
  /// caller's candidate key equals group `gid`'s key.
  template <typename EqFn>
  std::pair<std::uint32_t, bool> FindOrInsert(std::uint64_t hash,
                                              EqFn&& eq) {
    if ((groups_ + 1) * 10 >= slot_gid_.size() * 7) Grow();
    std::size_t i = hash & mask_;
    while (true) {
      const std::int64_t gid = slot_gid_[i];
      if (gid < 0) {
        slot_gid_[i] = static_cast<std::int64_t>(groups_);
        slot_hash_[i] = hash;
        const auto id = static_cast<std::uint32_t>(groups_++);
        return {id, true};
      }
      if (slot_hash_[i] == hash &&
          eq(static_cast<std::uint32_t>(gid))) {
        return {static_cast<std::uint32_t>(gid), false};
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  void Grow();

  std::vector<std::int64_t> slot_gid_;   // -1 = empty
  std::vector<std::uint64_t> slot_hash_;
  std::uint64_t mask_;
  std::size_t groups_ = 0;
};

/// Stable permutation of [0, n) ordering rows by the key column. Ties
/// keep their input order (std::stable_sort), so the permutation — and
/// therefore ORDER BY output — is deterministic across standard
/// libraries. Matches the row engine's comparator bit for bit.
std::vector<std::uint32_t> StableSortPermutation(std::size_t n,
                                                 const ColumnView& keys,
                                                 bool descending);

/// Accumulates one aggregate over a group. Shared verbatim by both
/// executor engines so SUM/AVG float accumulation order — and thus the
/// exact double bits — is identical between them.
class AggAccumulator {
 public:
  explicit AggAccumulator(const dvq::SelectExpr& expr) : expr_(expr) {}

  void Add(const storage::Value& v) {
    if (expr_.agg == dvq::AggFunc::kCount && expr_.col.column == "*") {
      ++count_;
      return;
    }
    if (v.is_null()) return;
    if (expr_.distinct) {
      // Distinct tracking via canonical string; adequate for the value
      // domains in play.
      if (!seen_.insert(v.ToString()).second) return;
    }
    ++count_;
    sum_ += v.AsDouble();
    if (!has_extreme_ || v < min_) min_ = v;
    if (!has_extreme_ || max_ < v) max_ = v;
    has_extreme_ = true;
  }

  storage::Value Finish() const {
    switch (expr_.agg) {
      case dvq::AggFunc::kCount:
        return storage::Value::Int(static_cast<std::int64_t>(count_));
      case dvq::AggFunc::kSum:
        return count_ == 0 ? storage::Value::Null()
                           : storage::Value::Real(sum_);
      case dvq::AggFunc::kAvg:
        return count_ == 0
                   ? storage::Value::Null()
                   : storage::Value::Real(sum_ /
                                          static_cast<double>(count_));
      case dvq::AggFunc::kMin:
        return has_extreme_ ? min_ : storage::Value::Null();
      case dvq::AggFunc::kMax:
        return has_extreme_ ? max_ : storage::Value::Null();
      case dvq::AggFunc::kNone:
        break;
    }
    return storage::Value::Null();
  }

 private:
  dvq::SelectExpr expr_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  storage::Value min_;
  storage::Value max_;
  bool has_extreme_ = false;
  std::set<std::string> seen_;
};

}  // namespace gred::exec

#endif  // GREDVIS_EXEC_VECTOR_OPS_H_
