#include "exec/scalar.h"

#include <cctype>
#include <cstdio>

namespace gred::exec {

namespace {

char Lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool LikeMatchImpl(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || Lower(pattern[p]) == Lower(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

bool LikeMatch(std::string_view pattern, std::string_view text) {
  return LikeMatchImpl(pattern, text);
}

int Date::Weekday() const {
  static const int kTable[] = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  int y = year;
  if (month < 3) y -= 1;
  return (y + y / 4 - y / 100 + y / 400 + kTable[month - 1] + day) % 7;
}

bool ParseDate(std::string_view text, Date* out) {
  auto digits = [&](std::size_t start, std::size_t len, int* value) {
    if (start + len > text.size()) return false;
    int v = 0;
    for (std::size_t i = start; i < start + len; ++i) {
      if (std::isdigit(static_cast<unsigned char>(text[i])) == 0) return false;
      v = v * 10 + (text[i] - '0');
    }
    *value = v;
    return true;
  };
  Date d;
  if (text.size() == 4) {
    if (!digits(0, 4, &d.year)) return false;
    *out = d;
    return true;
  }
  // Only bare years ("2020") and full dates ("2020-01-02") are dates;
  // trailing garbage ("2020-01-02xyz") must not parse.
  if (text.size() != 10) return false;
  if (!digits(0, 4, &d.year) || text[4] != '-' || !digits(5, 2, &d.month) ||
      text[7] != '-' || !digits(8, 2, &d.day)) {
    return false;
  }
  if (d.month < 1 || d.month > 12 || d.day < 1 || d.day > 31) return false;
  *out = d;
  return true;
}

const char* WeekdayName(int w) {
  static const char* kNames[] = {"Sunday",   "Monday", "Tuesday", "Wednesday",
                                 "Thursday", "Friday", "Saturday"};
  return kNames[((w % 7) + 7) % 7];
}

storage::Value BinValue(const storage::Value& value, dvq::BinUnit unit) {
  if (value.is_null()) return value;
  if (value.is_text()) {
    Date d;
    if (ParseDate(value.text_value(), &d)) {
      char buf[16];
      switch (unit) {
        case dvq::BinUnit::kYear:
          std::snprintf(buf, sizeof(buf), "%04d", d.year);
          return storage::Value::Text(buf);
        case dvq::BinUnit::kMonth:
          std::snprintf(buf, sizeof(buf), "%04d-%02d", d.year, d.month);
          return storage::Value::Text(buf);
        case dvq::BinUnit::kDay:
          std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month,
                        d.day);
          return storage::Value::Text(buf);
        case dvq::BinUnit::kWeekday:
          return storage::Value::Text(WeekdayName(d.Weekday()));
      }
    }
    return value;
  }
  if (value.is_int() && unit == dvq::BinUnit::kYear) {
    // Years stored as plain integers bin to themselves.
    return value;
  }
  return value;
}

}  // namespace gred::exec
