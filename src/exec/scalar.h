#ifndef GREDVIS_EXEC_SCALAR_H_
#define GREDVIS_EXEC_SCALAR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "dvq/ast.h"
#include "storage/value.h"

namespace gred::exec {

/// SQL LIKE pattern matching: `%` matches any run, `_` one character.
/// Comparison is case-insensitive (SQLite default for ASCII).
bool LikeMatch(std::string_view pattern, std::string_view text);

/// A parsed ISO-8601 calendar date.
struct Date {
  int year = 0;
  int month = 1;  // 1-12
  int day = 1;    // 1-31

  /// Day of week, 0=Sunday ... 6=Saturday (Sakamoto's method).
  int Weekday() const;
};

/// Parses "YYYY-MM-DD" (also accepts bare "YYYY"). Returns false on
/// malformed input.
bool ParseDate(std::string_view text, Date* out);

/// Computes the bin label for `value` under `unit`:
///   kYear -> "2020", kMonth -> "2020-03", kDay -> "2020-03-15",
///   kWeekday -> "Monday".
/// Non-date text and numbers fall back to: kYear keeps an integer as-is
/// (years stored numerically), anything else returns the value's string.
storage::Value BinValue(const storage::Value& value, dvq::BinUnit unit);

/// Name of weekday `w` in 0=Sunday..6=Saturday convention.
const char* WeekdayName(int w);

}  // namespace gred::exec

#endif  // GREDVIS_EXEC_SCALAR_H_
