#ifndef GREDVIS_EXEC_CHUNK_H_
#define GREDVIS_EXEC_CHUNK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dvq/ast.h"
#include "storage/table.h"
#include "util/status.h"

namespace gred::exec {

/// Rows processed per guard charge in the vectorized engine. Charges are
/// batched at this granularity (DESIGN.md executor section); totals per
/// operator are identical to the row-at-a-time engine's per-row charges,
/// so a query exhausts the same budgets in both engines.
inline constexpr std::size_t kExecChunkRows = 1024;

/// Maps column references to slot indices in the joined working set.
/// Shared by both executor engines so name resolution (and therefore
/// which physical column a reference binds to) is identical.
class SlotBinding {
 public:
  void AddTable(const storage::DataTable& table) {
    for (const schema::Column& c : table.def().columns()) {
      slots_.emplace_back(table.name(), c.name);
    }
  }

  std::size_t size() const { return slots_.size(); }

  Result<std::size_t> Resolve(const dvq::ColumnRef& ref) const;

 private:
  std::vector<std::pair<std::string, std::string>> slots_;
};

/// A borrowed, loop-friendly view of one working-set column. `values`
/// points either at a storage column (indexed through `rowids`) or at a
/// dense owned column (`rowids == nullptr`). Invalidated by any mutation
/// of the owning ColumnBatch (Filter / ApplyJoin / ReplaceWithOwned).
struct ColumnView {
  const storage::Value* values = nullptr;
  const std::uint32_t* rowids = nullptr;

  const storage::Value& at(std::size_t i) const {
    return rowids == nullptr ? values[i] : values[rowids[i]];
  }
};

/// The vectorized engine's working set: a set of column slots over the
/// joined tables, materialized lazily. Borrowed slots reference storage
/// columns through per-table row-id vectors, so filters and joins only
/// shuffle 32-bit indices; owned slots (bin labels) are dense vectors.
/// Cell values are never copied until the final ResultSet is built.
class ColumnBatch {
 public:
  std::size_t num_rows() const { return length_; }
  std::size_t num_slots() const { return slots_.size(); }

  /// Appends `table`'s columns as borrowed slots. The first table scans
  /// all rows (identity row ids); joined tables are appended via
  /// ApplyJoin instead.
  void AddScanTable(const storage::DataTable& table);

  /// Applies an equi-join result: existing columns are gathered through
  /// `left_index` (one entry per output row, indexing current rows) and
  /// `right`'s columns are appended with `right_rows` as their row ids.
  void ApplyJoin(const std::vector<std::uint32_t>& left_index,
                 const storage::DataTable& right,
                 std::vector<std::uint32_t> right_rows);

  /// Keeps exactly the rows whose `keep` byte is nonzero.
  void Filter(const std::vector<std::uint8_t>& keep);

  /// Replaces `slot` with an owned dense column (length must equal
  /// num_rows()). Used by BIN, which rewrites values in place.
  void ReplaceWithOwned(std::size_t slot,
                        std::vector<storage::Value> values);

  /// View of `slot` for tight loops; re-acquire after any mutation.
  ColumnView View(std::size_t slot) const;

  /// True when `slot` borrows a storage column whose non-NULL cells are
  /// all ints and which contains no NULLs (enables typed predicate
  /// kernels). Scans the storage column once per call.
  bool SlotIsDenseInt(std::size_t slot) const;

 private:
  struct Source {
    const storage::DataTable* table = nullptr;
    std::vector<std::uint32_t> rowids;
    bool identity = false;  // rowids == [0, n): Views skip the gather
  };
  struct Slot {
    int source = -1;  // -1: owned
    std::size_t column = 0;
    std::vector<storage::Value> owned;
  };

  std::vector<Source> sources_;
  std::vector<Slot> slots_;
  std::size_t length_ = 0;
};

}  // namespace gred::exec

#endif  // GREDVIS_EXEC_CHUNK_H_
