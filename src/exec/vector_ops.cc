#include "exec/vector_ops.h"

#include <algorithm>

#include "exec/scalar.h"

namespace gred::exec {

namespace {

using storage::Value;

std::uint64_t NextPow2(std::uint64_t n) {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Row-engine comparison semantics: NULL on either side is not-true.
bool CompareTruth(const Value& lhs, const Value& rhs, dvq::CompareOp op) {
  if (lhs.is_null() || rhs.is_null()) return false;
  const int cmp = lhs.Compare(rhs);
  switch (op) {
    case dvq::CompareOp::kEq:
      return cmp == 0;
    case dvq::CompareOp::kNe:
      return cmp != 0;
    case dvq::CompareOp::kLt:
      return cmp < 0;
    case dvq::CompareOp::kLe:
      return cmp <= 0;
    case dvq::CompareOp::kGt:
      return cmp > 0;
    case dvq::CompareOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

}  // namespace

void EvalPredicateRange(const ColumnView& col,
                        const PreparedPredicate& pred, std::size_t begin,
                        std::size_t end, std::uint8_t* out) {
  const std::size_t n = end - begin;
  switch (pred.op) {
    case dvq::CompareOp::kIsNull:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = col.at(begin + i).is_null() ? 1 : 0;
      }
      return;
    case dvq::CompareOp::kIsNotNull:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = col.at(begin + i).is_null() ? 0 : 1;
      }
      return;
    case dvq::CompareOp::kLike:
    case dvq::CompareOp::kNotLike: {
      const bool want = pred.op == dvq::CompareOp::kLike;
      for (std::size_t i = 0; i < n; ++i) {
        const bool match =
            LikeMatch(pred.pattern, col.at(begin + i).ToString());
        out[i] = match == want ? 1 : 0;
      }
      return;
    }
    case dvq::CompareOp::kIn:
    case dvq::CompareOp::kNotIn: {
      const bool want = pred.op == dvq::CompareOp::kIn;
      for (std::size_t i = 0; i < n; ++i) {
        const Value& lhs = col.at(begin + i);
        bool found = false;
        for (const Value& v : pred.in_values) {
          if (lhs == v) {
            found = true;
            break;
          }
        }
        out[i] = found == want ? 1 : 0;
      }
      return;
    }
    default:
      break;
  }
  if (pred.dense_int_fast && col.rowids == nullptr) {
    // NULL-free all-int column vs int literal: compare machine ints in
    // a loop the compiler can unroll/vectorize.
    const Value* vals = col.values + begin;
    const std::int64_t k = pred.rhs.int_value();
    switch (pred.op) {
      case dvq::CompareOp::kEq:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() == k ? 1 : 0;
        }
        return;
      case dvq::CompareOp::kNe:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() != k ? 1 : 0;
        }
        return;
      case dvq::CompareOp::kLt:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() < k ? 1 : 0;
        }
        return;
      case dvq::CompareOp::kLe:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() <= k ? 1 : 0;
        }
        return;
      case dvq::CompareOp::kGt:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() > k ? 1 : 0;
        }
        return;
      case dvq::CompareOp::kGe:
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = vals[i].int_value() >= k ? 1 : 0;
        }
        return;
      default:
        break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = CompareTruth(col.at(begin + i), pred.rhs, pred.op) ? 1 : 0;
  }
}

void AndInto(std::uint8_t* acc, const std::uint8_t* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] &= x[i];
}

void OrInto(std::uint8_t* acc, const std::uint8_t* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] |= x[i];
}

JoinHashTable::JoinHashTable(const std::vector<Value>& keys,
                             ValueHashFn hash)
    : keys_(keys), hashes_(keys.size(), 0),
      next_(keys.size(), -1) {
  const std::uint64_t buckets =
      NextPow2(keys.size() < 4 ? 4 : keys.size() * 2);
  heads_.assign(buckets, -1);
  mask_ = buckets - 1;
  // Prepending while walking rows in reverse yields chains — and
  // therefore probe matches — in ascending build-row order.
  for (std::size_t r = keys.size(); r-- > 0;) {
    if (keys_[r].is_null()) continue;
    const std::uint64_t h = HashValueWith(hash, keys_[r]);
    hashes_[r] = h;
    const std::size_t bucket = h & mask_;
    next_[r] = heads_[bucket];
    heads_[bucket] = static_cast<std::int32_t>(r);
  }
}

void JoinHashTable::Probe(const Value& key, std::uint64_t key_hash,
                          std::vector<std::uint32_t>* out) const {
  std::int32_t r = heads_[key_hash & mask_];
  while (r >= 0) {
    const auto row = static_cast<std::size_t>(r);
    r = next_[row];
    if (hashes_[row] != key_hash) continue;
    // Full key re-check: a 64-bit hash collision (or a bucket
    // collision) must never join unrelated rows.
    if (keys_[row].Compare(key) != 0) continue;
    out->push_back(static_cast<std::uint32_t>(row));
  }
}

GroupIndex::GroupIndex()
    : slot_gid_(64, -1), slot_hash_(64, 0), mask_(63) {}

void GroupIndex::Grow() {
  const std::size_t new_size = slot_gid_.size() * 2;
  std::vector<std::int64_t> gid(new_size, -1);
  std::vector<std::uint64_t> hash(new_size, 0);
  const std::uint64_t mask = new_size - 1;
  for (std::size_t i = 0; i < slot_gid_.size(); ++i) {
    if (slot_gid_[i] < 0) continue;
    std::size_t j = slot_hash_[i] & mask;
    while (gid[j] >= 0) j = (j + 1) & mask;
    gid[j] = slot_gid_[i];
    hash[j] = slot_hash_[i];
  }
  slot_gid_ = std::move(gid);
  slot_hash_ = std::move(hash);
  mask_ = mask;
}

std::vector<std::uint32_t> StableSortPermutation(std::size_t n,
                                                 const ColumnView& keys,
                                                 bool descending) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(perm.begin(), perm.end(),
                   [&keys, descending](std::uint32_t a, std::uint32_t b) {
                     const int cmp = keys.at(a).Compare(keys.at(b));
                     return descending ? cmp > 0 : cmp < 0;
                   });
  return perm;
}

}  // namespace gred::exec
