#ifndef GREDVIS_EXEC_EXECUTOR_H_
#define GREDVIS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dvq/ast.h"
#include "storage/table.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace gred::exec {

/// A materialized query result: named columns plus row-major cells.
struct ResultSet {
  std::vector<std::string> column_names;
  std::vector<std::vector<storage::Value>> rows;

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_columns() const { return column_names.size(); }

  /// Renders a small fixed-width preview (used by examples and the case
  /// study bench).
  std::string ToString(std::size_t max_rows = 20) const;
};

/// Join algorithm selection, exposed for benchmarking; results are
/// identical (verified by property tests).
enum class JoinStrategy { kHashJoin, kNestedLoop };

/// Executor engine selection. `kColumnar` is the vectorized engine:
/// scans borrow storage columns, filters evaluate predicates into
/// selection bitmaps, joins shuffle 32-bit row ids, and cells are copied
/// only into the final ResultSet. `kRowAtATime` is the original
/// executor, kept as the executable reference semantics. The two produce
/// bit-identical ResultSets (asserted by the differential suite in
/// tests/exec_reference_test.cc); see DESIGN.md's executor section.
enum class Engine { kColumnar, kRowAtATime };

/// Process-wide default engine: `GRED_EXEC_ENGINE=row` selects the
/// reference engine, anything else (including unset) the columnar one.
/// Read once per process, so the whole pipeline — eval, serve, bench —
/// can be flipped without plumbing.
Engine DefaultEngine();

/// Execution options.
struct ExecOptions {
  JoinStrategy join_strategy = JoinStrategy::kHashJoin;
  Engine engine = DefaultEngine();
  /// Test-only 64-bit value-hash override used by hash joins and
  /// group-by in both engines (nullptr = storage::Value::Hash, the
  /// production path). Injecting a degenerate hash — e.g. a constant —
  /// forces every row pair to hash-collide, proving the engines re-check
  /// actual key values after a hash match instead of trusting the hash.
  std::uint64_t (*value_hash)(const storage::Value&) = nullptr;
  /// Optional resource guard (not owned; nullptr = unguarded, the
  /// default — bit-identical to the pre-guard executor). When set, every
  /// operator loop charges the context deterministically: one tick per
  /// row visited, one row + its cells per row materialized, one join row
  /// per join output row. The first charge over a limit aborts the query
  /// with StatusCode::kResourceExhausted (or kCancelled after
  /// ExecContext::RequestCancel()); no partial ResultSet escapes and
  /// storage is never touched. Scalar subqueries share the same context,
  /// so their work counts against the parent query's budgets.
  ExecContext* context = nullptr;
};

/// Evaluates the relational core of a DVQ against a database instance.
///
/// Semantics follow nvBench's SQLite substrate with Vega-Zero extensions:
///  * Aliases are resolved before binding.
///  * Unknown tables/columns yield ExecutionError (this is precisely how a
///    DVQ with hallucinated schema "produces no chart" in the paper).
///  * `BIN c BY unit` rewrites c's values to bin labels and, when combined
///    with aggregates, participates in grouping.
///  * Aggregates without GROUP BY implicitly group by the non-aggregated
///    select columns (Vega-Zero's x-axis grouping).
///  * Scalar subqueries evaluate to their first cell (NULL when empty).
Result<ResultSet> Execute(const dvq::Query& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options = {});

/// Executes the full DVQ (chart type does not affect row computation).
Result<ResultSet> Execute(const dvq::DVQ& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options = {});

}  // namespace gred::exec

#endif  // GREDVIS_EXEC_EXECUTOR_H_
