#include "exec/chunk.h"

#include "util/strings.h"

namespace gred::exec {

using storage::Value;

Result<std::size_t> SlotBinding::Resolve(const dvq::ColumnRef& ref) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!strings::EqualsIgnoreCase(slots_[i].second, ref.column)) continue;
    if (!ref.table.empty() &&
        !strings::EqualsIgnoreCase(slots_[i].first, ref.table)) {
      continue;
    }
    return i;
  }
  return Status::ExecutionError("unknown column '" + ref.ToString() + "'");
}

void ColumnBatch::AddScanTable(const storage::DataTable& table) {
  Source source;
  source.table = &table;
  source.identity = true;
  const int source_index = static_cast<int>(sources_.size());
  sources_.push_back(std::move(source));
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    Slot slot;
    slot.source = source_index;
    slot.column = c;
    slots_.push_back(std::move(slot));
  }
  length_ = table.num_rows();
}

void ColumnBatch::ApplyJoin(const std::vector<std::uint32_t>& left_index,
                            const storage::DataTable& right,
                            std::vector<std::uint32_t> right_rows) {
  const std::size_t n = left_index.size();
  for (Source& source : sources_) {
    std::vector<std::uint32_t> gathered(n);
    if (source.identity) {
      gathered = left_index;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        gathered[i] = source.rowids[left_index[i]];
      }
    }
    source.rowids = std::move(gathered);
    source.identity = false;
  }
  for (Slot& slot : slots_) {
    if (slot.source >= 0) continue;
    std::vector<Value> gathered(n);
    for (std::size_t i = 0; i < n; ++i) {
      gathered[i] = slot.owned[left_index[i]];
    }
    slot.owned = std::move(gathered);
  }
  Source source;
  source.table = &right;
  source.rowids = std::move(right_rows);
  const int source_index = static_cast<int>(sources_.size());
  sources_.push_back(std::move(source));
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    Slot slot;
    slot.source = source_index;
    slot.column = c;
    slots_.push_back(std::move(slot));
  }
  length_ = n;
}

void ColumnBatch::Filter(const std::vector<std::uint8_t>& keep) {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < length_; ++i) {
    if (keep[i] != 0) ++kept;
  }
  for (Source& source : sources_) {
    std::vector<std::uint32_t> compact;
    compact.reserve(kept);
    for (std::size_t i = 0; i < length_; ++i) {
      if (keep[i] == 0) continue;
      compact.push_back(source.identity ? static_cast<std::uint32_t>(i)
                                        : source.rowids[i]);
    }
    source.rowids = std::move(compact);
    source.identity = false;
  }
  for (Slot& slot : slots_) {
    if (slot.source >= 0) continue;
    std::vector<Value> compact;
    compact.reserve(kept);
    for (std::size_t i = 0; i < length_; ++i) {
      if (keep[i] != 0) compact.push_back(std::move(slot.owned[i]));
    }
    slot.owned = std::move(compact);
  }
  length_ = kept;
}

void ColumnBatch::ReplaceWithOwned(std::size_t slot,
                                   std::vector<Value> values) {
  slots_[slot].source = -1;
  slots_[slot].column = 0;
  slots_[slot].owned = std::move(values);
}

ColumnView ColumnBatch::View(std::size_t slot) const {
  const Slot& s = slots_[slot];
  ColumnView view;
  if (s.source < 0) {
    view.values = s.owned.data();
    return view;
  }
  const Source& source = sources_[static_cast<std::size_t>(s.source)];
  view.values = source.table->column(s.column).data();
  if (!source.identity) view.rowids = source.rowids.data();
  return view;
}

bool ColumnBatch::SlotIsDenseInt(std::size_t slot) const {
  const Slot& s = slots_[slot];
  if (s.source < 0) return false;
  const Source& source = sources_[static_cast<std::size_t>(s.source)];
  storage::DataTable::ColumnStats stats =
      source.table->ScanColumn(s.column);
  return !stats.has_null && stats.all_int;
}

}  // namespace gred::exec
