#include "exec/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "dvq/normalize.h"
#include "exec/scalar.h"
#include "util/strings.h"

namespace gred::exec {

namespace {

using storage::Value;

/// Charges the guard (when present) and propagates a tripped budget out
/// of the enclosing function. Unguarded execution (null context) is a
/// branch per use and nothing else, keeping the default path identical
/// to the pre-guard executor.
#define GRED_CHARGE(ctx, call)                             \
  do {                                                     \
    if ((ctx) != nullptr) GRED_RETURN_IF_ERROR((ctx)->call); \
  } while (false)

/// Maps column references to slot indices in the joined working row.
class Binding {
 public:
  void AddTable(const storage::DataTable& table) {
    for (const schema::Column& c : table.def().columns()) {
      slots_.emplace_back(table.name(), c.name);
    }
  }

  std::size_t size() const { return slots_.size(); }

  Result<std::size_t> Resolve(const dvq::ColumnRef& ref) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!strings::EqualsIgnoreCase(slots_[i].second, ref.column)) continue;
      if (!ref.table.empty() &&
          !strings::EqualsIgnoreCase(slots_[i].first, ref.table)) {
        continue;
      }
      return i;
    }
    return Status::ExecutionError("unknown column '" + ref.ToString() + "'");
  }

 private:
  std::vector<std::pair<std::string, std::string>> slots_;
};

Value LiteralToValue(const dvq::Literal& lit) {
  switch (lit.kind) {
    case dvq::Literal::Kind::kInt:
      return Value::Int(lit.int_value);
    case dvq::Literal::Kind::kReal:
      return Value::Real(lit.real_value);
    case dvq::Literal::Kind::kString:
      return Value::Text(lit.string_value);
  }
  return Value::Null();
}

struct WorkingSet {
  Binding binding;
  std::vector<std::vector<Value>> rows;
};

Result<WorkingSet> BuildJoinedRows(const dvq::Query& q,
                                   const storage::DatabaseData& db,
                                   const ExecOptions& options) {
  WorkingSet ws;
  const storage::DataTable* from = db.FindTable(q.from_table);
  if (from == nullptr) {
    return Status::ExecutionError("unknown table '" + q.from_table + "'");
  }
  ws.binding.AddTable(*from);
  ExecContext* guard = options.context;
  ws.rows.reserve(from->num_rows());
  for (std::size_t r = 0; r < from->num_rows(); ++r) {
    GRED_CHARGE(guard, ChargeTicks(1));
    GRED_CHARGE(guard, ChargeRows(1, from->num_columns()));
    ws.rows.push_back(from->Row(r));
  }
  for (const dvq::JoinClause& join : q.joins) {
    const storage::DataTable* right = db.FindTable(join.table);
    if (right == nullptr) {
      return Status::ExecutionError("unknown table '" + join.table + "'");
    }
    // Determine which side of the ON condition binds to the existing rows
    // and which to the newly joined table.
    Binding right_binding;
    right_binding.AddTable(*right);
    auto left_in_existing = ws.binding.Resolve(join.left);
    dvq::ColumnRef probe = join.left;
    dvq::ColumnRef build = join.right;
    if (!left_in_existing.ok()) {
      std::swap(probe, build);
    }
    GRED_ASSIGN_OR_RETURN(std::size_t probe_slot, ws.binding.Resolve(probe));
    // The build key must resolve within the joined table only.
    dvq::ColumnRef build_local = build;
    GRED_ASSIGN_OR_RETURN(std::size_t build_slot,
                          right_binding.Resolve(build_local));

    const std::size_t merged_width =
        ws.binding.size() + right->num_columns();
    std::vector<std::vector<Value>> joined;
    if (options.join_strategy == JoinStrategy::kHashJoin) {
      std::unordered_multimap<std::uint64_t, std::size_t> index;
      index.reserve(right->num_rows() * 2);
      for (std::size_t r = 0; r < right->num_rows(); ++r) {
        GRED_CHARGE(guard, ChargeTicks(1));
        const Value& key = right->at(r, build_slot);
        if (key.is_null()) continue;
        index.emplace(key.Hash(), r);
      }
      for (const auto& row : ws.rows) {
        GRED_CHARGE(guard, ChargeTicks(1));
        const Value& key = row[probe_slot];
        if (key.is_null()) continue;
        auto [lo, hi] = index.equal_range(key.Hash());
        for (auto it = lo; it != hi; ++it) {
          if (right->at(it->second, build_slot) != key) continue;
          GRED_CHARGE(guard, ChargeJoinRows(1));
          GRED_CHARGE(guard, ChargeRows(1, merged_width));
          std::vector<Value> merged = row;
          std::vector<Value> rrow = right->Row(it->second);
          merged.insert(merged.end(), rrow.begin(), rrow.end());
          joined.push_back(std::move(merged));
        }
      }
    } else {
      for (const auto& row : ws.rows) {
        const Value& key = row[probe_slot];
        if (key.is_null()) continue;
        for (std::size_t r = 0; r < right->num_rows(); ++r) {
          GRED_CHARGE(guard, ChargeTicks(1));
          if (right->at(r, build_slot) != key) continue;
          GRED_CHARGE(guard, ChargeJoinRows(1));
          GRED_CHARGE(guard, ChargeRows(1, merged_width));
          std::vector<Value> merged = row;
          std::vector<Value> rrow = right->Row(r);
          merged.insert(merged.end(), rrow.begin(), rrow.end());
          joined.push_back(std::move(merged));
        }
      }
    }
    ws.binding.AddTable(*right);
    ws.rows = std::move(joined);
  }
  return ws;
}

Result<Value> EvaluateScalarSubquery(const dvq::Query& sub,
                                     const storage::DatabaseData& db,
                                     const ExecOptions& options) {
  GRED_ASSIGN_OR_RETURN(ResultSet rs, Execute(sub, db, options));
  if (rs.rows.empty() || rs.rows[0].empty()) return Value::Null();
  return rs.rows[0][0];
}

Result<bool> EvaluatePredicate(const dvq::Predicate& pred,
                               const Binding& binding,
                               const std::vector<Value>& row,
                               const storage::DatabaseData& db,
                               const ExecOptions& options) {
  GRED_ASSIGN_OR_RETURN(std::size_t slot, binding.Resolve(pred.col));
  const Value& lhs = row[slot];
  switch (pred.op) {
    case dvq::CompareOp::kIsNull:
      return lhs.is_null();
    case dvq::CompareOp::kIsNotNull:
      return !lhs.is_null();
    case dvq::CompareOp::kLike:
    case dvq::CompareOp::kNotLike: {
      if (!pred.literal.has_value()) {
        return Status::ExecutionError("LIKE without a pattern");
      }
      bool match = LikeMatch(pred.literal->string_value, lhs.ToString());
      return pred.op == dvq::CompareOp::kLike ? match : !match;
    }
    case dvq::CompareOp::kIn:
    case dvq::CompareOp::kNotIn: {
      bool found = false;
      for (const dvq::Literal& lit : pred.in_list) {
        if (lhs == LiteralToValue(lit)) {
          found = true;
          break;
        }
      }
      return pred.op == dvq::CompareOp::kIn ? found : !found;
    }
    default:
      break;
  }
  Value rhs;
  if (pred.subquery != nullptr) {
    GRED_ASSIGN_OR_RETURN(rhs,
                          EvaluateScalarSubquery(*pred.subquery, db, options));
  } else if (pred.literal.has_value()) {
    rhs = LiteralToValue(*pred.literal);
  } else {
    return Status::ExecutionError("predicate missing right-hand side");
  }
  if (lhs.is_null() || rhs.is_null()) return false;  // SQL 3VL -> not true
  int cmp = lhs.Compare(rhs);
  switch (pred.op) {
    case dvq::CompareOp::kEq:
      return cmp == 0;
    case dvq::CompareOp::kNe:
      return cmp != 0;
    case dvq::CompareOp::kLt:
      return cmp < 0;
    case dvq::CompareOp::kLe:
      return cmp <= 0;
    case dvq::CompareOp::kGt:
      return cmp > 0;
    case dvq::CompareOp::kGe:
      return cmp >= 0;
    default:
      return Status::ExecutionError("unsupported comparison");
  }
}

/// Evaluates the condition with SQL precedence (AND binds tighter than
/// OR): the chain is an OR of AND-groups.
Result<bool> EvaluateCondition(const dvq::Condition& cond,
                               const Binding& binding,
                               const std::vector<Value>& row,
                               const storage::DatabaseData& db,
                               const ExecOptions& options) {
  bool group_result = true;
  bool any_group_true = false;
  for (std::size_t i = 0; i < cond.predicates.size(); ++i) {
    GRED_ASSIGN_OR_RETURN(
        bool value,
        EvaluatePredicate(cond.predicates[i], binding, row, db, options));
    group_result = group_result && value;
    bool end_of_group = i + 1 >= cond.predicates.size() ||
                        cond.connectors[i] == dvq::LogicalOp::kOr;
    if (end_of_group) {
      any_group_true = any_group_true || group_result;
      group_result = true;
    }
  }
  return any_group_true;
}

/// Accumulates one aggregate over a group.
class AggAccumulator {
 public:
  explicit AggAccumulator(const dvq::SelectExpr& expr) : expr_(expr) {}

  void Add(const Value& v) {
    if (expr_.agg == dvq::AggFunc::kCount && expr_.col.column == "*") {
      ++count_;
      return;
    }
    if (v.is_null()) return;
    if (expr_.distinct) {
      // Distinct tracking via canonical string; adequate for the value
      // domains in play.
      if (!seen_.insert(v.ToString()).second) return;
    }
    ++count_;
    sum_ += v.AsDouble();
    if (!has_extreme_ || v < min_) min_ = v;
    if (!has_extreme_ || max_ < v) max_ = v;
    has_extreme_ = true;
  }

  Value Finish() const {
    switch (expr_.agg) {
      case dvq::AggFunc::kCount:
        return Value::Int(static_cast<std::int64_t>(count_));
      case dvq::AggFunc::kSum:
        return count_ == 0 ? Value::Null() : Value::Real(sum_);
      case dvq::AggFunc::kAvg:
        return count_ == 0 ? Value::Null()
                           : Value::Real(sum_ / static_cast<double>(count_));
      case dvq::AggFunc::kMin:
        return has_extreme_ ? min_ : Value::Null();
      case dvq::AggFunc::kMax:
        return has_extreme_ ? max_ : Value::Null();
      case dvq::AggFunc::kNone:
        break;
    }
    return Value::Null();
  }

 private:
  dvq::SelectExpr expr_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  Value min_;
  Value max_;
  bool has_extreme_ = false;
  std::set<std::string> seen_;
};

std::uint64_t HashKey(const std::vector<Value>& key) {
  std::uint64_t h = 0x51ed270b8d5f1fd1ULL;
  for (const Value& v : key) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

std::string ResultSet::ToString(std::size_t max_rows) const {
  std::string out;
  out += strings::Join(column_names, " | ") + "\n";
  for (std::size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(rows[r].size());
    for (const Value& v : rows[r]) cells.push_back(v.ToString());
    out += strings::Join(cells, " | ") + "\n";
  }
  if (rows.size() > max_rows) {
    out += strings::Format("... (%zu more rows)\n", rows.size() - max_rows);
  }
  return out;
}

Result<ResultSet> Execute(const dvq::Query& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options) {
  const dvq::Query q = dvq::ResolveAliases(query);
  ExecContext* guard = options.context;
  GRED_ASSIGN_OR_RETURN(WorkingSet ws, BuildJoinedRows(q, db, options));

  // Filter.
  if (q.where.has_value()) {
    std::vector<std::vector<Value>> kept;
    kept.reserve(ws.rows.size());
    for (auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      GRED_ASSIGN_OR_RETURN(
          bool pass, EvaluateCondition(*q.where, ws.binding, row, db, options));
      if (pass) kept.push_back(std::move(row));
    }
    ws.rows = std::move(kept);
  }

  // Binning rewrites the binned column in place.
  if (q.bin.has_value()) {
    GRED_ASSIGN_OR_RETURN(std::size_t bin_slot,
                          ws.binding.Resolve(q.bin->col));
    for (auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      row[bin_slot] = BinValue(row[bin_slot], q.bin->unit);
    }
  }

  // Resolve select expressions. The ORDER BY expression may reference an
  // aggregate (or column) not in the select list; compute it as a hidden
  // trailing column.
  std::vector<dvq::SelectExpr> computed = q.select;
  std::optional<std::size_t> order_slot;
  if (q.order_by.has_value()) {
    for (std::size_t i = 0; i < computed.size(); ++i) {
      if (computed[i].EqualsIgnoreCase(q.order_by->expr)) {
        order_slot = i;
        break;
      }
    }
    if (!order_slot.has_value()) {
      computed.push_back(q.order_by->expr);
      order_slot = computed.size() - 1;
    }
  }

  bool has_aggregate = false;
  for (const dvq::SelectExpr& e : computed) {
    if (e.agg != dvq::AggFunc::kNone) has_aggregate = true;
  }

  std::vector<std::vector<Value>> out_rows;
  if (has_aggregate || !q.group_by.empty()) {
    // Determine grouping keys: explicit GROUP BY, else all non-aggregated
    // select columns (Vega-Zero x-axis grouping).
    std::vector<dvq::ColumnRef> keys = q.group_by;
    if (keys.empty()) {
      for (const dvq::SelectExpr& e : q.select) {
        if (e.agg == dvq::AggFunc::kNone) keys.push_back(e.col);
      }
    }
    std::vector<std::size_t> key_slots;
    key_slots.reserve(keys.size());
    for (const dvq::ColumnRef& k : keys) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, ws.binding.Resolve(k));
      key_slots.push_back(slot);
    }
    std::vector<std::size_t> value_slots(computed.size(),
                                         static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < computed.size(); ++i) {
      if (computed[i].col.column == "*") continue;
      GRED_ASSIGN_OR_RETURN(std::size_t slot,
                            ws.binding.Resolve(computed[i].col));
      value_slots[i] = slot;
    }
    struct Group {
      std::vector<Value> key;
      std::vector<AggAccumulator> accs;
      std::vector<Value> first_row;
    };
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
    for (const auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      std::vector<Value> key;
      key.reserve(key_slots.size());
      for (std::size_t slot : key_slots) key.push_back(row[slot]);
      std::uint64_t h = HashKey(key);
      Group* group = nullptr;
      for (std::size_t gi : index[h]) {
        if (groups[gi].key == key) {
          group = &groups[gi];
          break;
        }
      }
      if (group == nullptr) {
        // A new group materializes its key, accumulators and first row:
        // high-cardinality group-bys are bounded by the row/memory
        // budgets, not just the tick deadline.
        GRED_CHARGE(guard, ChargeRows(1, key.size() + computed.size()));
        Group fresh;
        fresh.key = key;
        for (const dvq::SelectExpr& e : computed) {
          fresh.accs.emplace_back(e);
        }
        fresh.first_row = row;
        index[h].push_back(groups.size());
        groups.push_back(std::move(fresh));
        group = &groups.back();
      }
      for (std::size_t i = 0; i < computed.size(); ++i) {
        if (computed[i].agg == dvq::AggFunc::kNone) continue;
        const Value v = value_slots[i] == static_cast<std::size_t>(-1)
                            ? Value::Null()
                            : row[value_slots[i]];
        group->accs[i].Add(v);
      }
    }
    out_rows.reserve(groups.size());
    for (const Group& g : groups) {
      std::vector<Value> row;
      row.reserve(computed.size());
      for (std::size_t i = 0; i < computed.size(); ++i) {
        if (computed[i].agg == dvq::AggFunc::kNone) {
          row.push_back(g.first_row[value_slots[i]]);
        } else {
          row.push_back(g.accs[i].Finish());
        }
      }
      out_rows.push_back(std::move(row));
    }
  } else {
    // Pure projection.
    std::vector<std::size_t> slots;
    slots.reserve(computed.size());
    for (const dvq::SelectExpr& e : computed) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, ws.binding.Resolve(e.col));
      slots.push_back(slot);
    }
    out_rows.reserve(ws.rows.size());
    for (const auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      GRED_CHARGE(guard, ChargeRows(1, slots.size()));
      std::vector<Value> out;
      out.reserve(slots.size());
      for (std::size_t slot : slots) out.push_back(row[slot]);
      out_rows.push_back(std::move(out));
    }
  }

  // Order. The comparator cannot propagate a Status, so the sort's work
  // is charged up front (stable_sort is O(n log n); one tick per row is
  // the deterministic lower bound and the inputs were already paid for
  // row-by-row above).
  if (q.order_by.has_value()) {
    GRED_CHARGE(guard, ChargeTicks(out_rows.size()));
    const std::size_t slot = *order_slot;
    const bool desc = q.order_by->descending;
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [slot, desc](const auto& a, const auto& b) {
                       int cmp = a[slot].Compare(b[slot]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }

  // Limit, then strip hidden order column.
  if (q.limit.has_value() && *q.limit >= 0 &&
      out_rows.size() > static_cast<std::size_t>(*q.limit)) {
    out_rows.resize(static_cast<std::size_t>(*q.limit));
  }
  ResultSet rs;
  for (const dvq::SelectExpr& e : q.select) {
    rs.column_names.push_back(e.ToString());
  }
  const std::size_t visible = q.select.size();
  for (auto& row : out_rows) {
    row.resize(visible);
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

Result<ResultSet> Execute(const dvq::DVQ& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options) {
  return Execute(query.query, db, options);
}

#undef GRED_CHARGE

}  // namespace gred::exec
