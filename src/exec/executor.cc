#include "exec/executor.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dvq/normalize.h"
#include "exec/chunk.h"
#include "exec/scalar.h"
#include "exec/vector_ops.h"
#include "util/strings.h"

namespace gred::exec {

namespace {

using storage::Value;

/// Charges the guard (when present) and propagates a tripped budget out
/// of the enclosing function. Unguarded execution (null context) is a
/// branch per use and nothing else, keeping the default path identical
/// to the pre-guard executor.
#define GRED_CHARGE(ctx, call)                             \
  do {                                                     \
    if ((ctx) != nullptr) GRED_RETURN_IF_ERROR((ctx)->call); \
  } while (false)

Value LiteralToValue(const dvq::Literal& lit) {
  switch (lit.kind) {
    case dvq::Literal::Kind::kInt:
      return Value::Int(lit.int_value);
    case dvq::Literal::Kind::kReal:
      return Value::Real(lit.real_value);
    case dvq::Literal::Kind::kString:
      return Value::Text(lit.string_value);
  }
  return Value::Null();
}

// ---------------------------------------------------------------------------
// Helpers shared by both engines (identical semantics by construction).
// ---------------------------------------------------------------------------

/// True when the ORDER BY expression `order` denotes the already-selected
/// expression `sel`. Aggregate and DISTINCT must match exactly; column
/// matching follows SQL's ORDER BY resolution rules rather than surface
/// text:
///  * A bare (unqualified) ORDER BY name binds to the result column of
///    that name, whatever qualifier the select list spelled it with.
///  * A qualified ORDER BY reference matches iff it resolves to the same
///    working-set slot as the selected column, so `ORDER BY t.c` unifies
///    with `SELECT c` (and never with a same-named column of another
///    table). Unresolvable references fall back to textual comparison so
///    the unknown name still surfaces through the normal resolution
///    error path.
bool OrderMatchesSelect(const dvq::SelectExpr& sel,
                        const dvq::SelectExpr& order,
                        const SlotBinding& binding) {
  if (sel.agg != order.agg || sel.distinct != order.distinct) return false;
  if (sel.col.column == "*" || order.col.column == "*") {
    return sel.col.EqualsIgnoreCase(order.col);
  }
  if (order.col.table.empty()) {
    return strings::EqualsIgnoreCase(sel.col.column, order.col.column);
  }
  Result<std::size_t> ss = binding.Resolve(sel.col);
  Result<std::size_t> so = binding.Resolve(order.col);
  if (ss.ok() && so.ok()) return ss.value() == so.value();
  return sel.EqualsIgnoreCase(order);
}

/// Unifies ORDER BY with the select list, appending the order expression
/// as a hidden trailing computed column when it is not already selected.
/// Matching is semantic (see OrderMatchesSelect), not raw-text: the old
/// spelling comparison meant `SELECT parent.v ... ORDER BY v` failed to
/// unify and the hidden column re-resolved to the *first* same-named
/// slot, which after a join can belong to a different table entirely.
std::optional<std::size_t> UnifyOrderBy(const dvq::Query& q,
                                        const SlotBinding& binding,
                                        std::vector<dvq::SelectExpr>* computed) {
  if (!q.order_by.has_value()) return std::nullopt;
  for (std::size_t i = 0; i < computed->size(); ++i) {
    if (OrderMatchesSelect((*computed)[i], q.order_by->expr, binding)) {
      return i;
    }
  }
  computed->push_back(q.order_by->expr);
  return computed->size() - 1;
}

Result<Value> EvaluateScalarSubquery(const dvq::Query& sub,
                                     const storage::DatabaseData& db,
                                     const ExecOptions& options) {
  GRED_ASSIGN_OR_RETURN(ResultSet rs, Execute(sub, db, options));
  if (rs.rows.empty() || rs.rows[0].empty()) return Value::Null();
  return rs.rows[0][0];
}

/// Group-key hash shared by both engines: fold every key cell into the
/// seeded combiner (vector_ops.h), honoring the test-only hash override.
std::uint64_t HashKey(const std::vector<Value>& key, ValueHashFn fn) {
  std::uint64_t h = kGroupHashSeed;
  for (const Value& v : key) {
    h = CombineKeyHash(h, HashValueWith(fn, v));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Row-at-a-time engine (the executable reference semantics).
// ---------------------------------------------------------------------------

struct WorkingSet {
  SlotBinding binding;
  std::vector<std::vector<Value>> rows;
};

Result<WorkingSet> BuildJoinedRows(const dvq::Query& q,
                                   const storage::DatabaseData& db,
                                   const ExecOptions& options) {
  WorkingSet ws;
  const storage::DataTable* from = db.FindTable(q.from_table);
  if (from == nullptr) {
    return Status::ExecutionError("unknown table '" + q.from_table + "'");
  }
  ws.binding.AddTable(*from);
  ExecContext* guard = options.context;
  ws.rows.reserve(from->num_rows());
  for (std::size_t r = 0; r < from->num_rows(); ++r) {
    GRED_CHARGE(guard, ChargeTicks(1));
    GRED_CHARGE(guard, ChargeRows(1, from->num_columns()));
    ws.rows.push_back(from->Row(r));
  }
  for (const dvq::JoinClause& join : q.joins) {
    const storage::DataTable* right = db.FindTable(join.table);
    if (right == nullptr) {
      return Status::ExecutionError("unknown table '" + join.table + "'");
    }
    // Determine which side of the ON condition binds to the existing rows
    // and which to the newly joined table.
    SlotBinding right_binding;
    right_binding.AddTable(*right);
    auto left_in_existing = ws.binding.Resolve(join.left);
    dvq::ColumnRef probe = join.left;
    dvq::ColumnRef build = join.right;
    if (!left_in_existing.ok()) {
      std::swap(probe, build);
    }
    GRED_ASSIGN_OR_RETURN(std::size_t probe_slot, ws.binding.Resolve(probe));
    // The build key must resolve within the joined table only.
    dvq::ColumnRef build_local = build;
    GRED_ASSIGN_OR_RETURN(std::size_t build_slot,
                          right_binding.Resolve(build_local));

    const std::size_t merged_width =
        ws.binding.size() + right->num_columns();
    std::vector<std::vector<Value>> joined;
    if (options.join_strategy == JoinStrategy::kHashJoin) {
      // The reference engine charges per row by definition; the build
      // side's ticks are paid before the table is constructed, exactly
      // where the old inline build loop charged them.
      for (std::size_t r = 0; r < right->num_rows(); ++r) {
        GRED_CHARGE(guard, ChargeTicks(1));
      }
      JoinHashTable table(right->column(build_slot), options.value_hash);
      std::vector<std::uint32_t> matches;
      for (const auto& row : ws.rows) {
        GRED_CHARGE(guard, ChargeTicks(1));
        const Value& key = row[probe_slot];
        if (key.is_null()) continue;
        matches.clear();
        table.Probe(key, HashValueWith(options.value_hash, key), &matches);
        for (std::uint32_t m : matches) {
          GRED_CHARGE(guard, ChargeJoinRows(1));
          GRED_CHARGE(guard, ChargeRows(1, merged_width));
          std::vector<Value> merged = row;
          std::vector<Value> rrow = right->Row(m);
          merged.insert(merged.end(), rrow.begin(), rrow.end());
          joined.push_back(std::move(merged));
        }
      }
    } else {
      for (const auto& row : ws.rows) {
        const Value& key = row[probe_slot];
        if (key.is_null()) continue;
        for (std::size_t r = 0; r < right->num_rows(); ++r) {
          GRED_CHARGE(guard, ChargeTicks(1));
          if (right->at(r, build_slot) != key) continue;
          GRED_CHARGE(guard, ChargeJoinRows(1));
          GRED_CHARGE(guard, ChargeRows(1, merged_width));
          std::vector<Value> merged = row;
          std::vector<Value> rrow = right->Row(r);
          merged.insert(merged.end(), rrow.begin(), rrow.end());
          joined.push_back(std::move(merged));
        }
      }
    }
    ws.binding.AddTable(*right);
    ws.rows = std::move(joined);
  }
  return ws;
}

Result<bool> EvaluatePredicate(const dvq::Predicate& pred,
                               const SlotBinding& binding,
                               const std::vector<Value>& row,
                               const storage::DatabaseData& db,
                               const ExecOptions& options) {
  GRED_ASSIGN_OR_RETURN(std::size_t slot, binding.Resolve(pred.col));
  const Value& lhs = row[slot];
  switch (pred.op) {
    case dvq::CompareOp::kIsNull:
      return lhs.is_null();
    case dvq::CompareOp::kIsNotNull:
      return !lhs.is_null();
    case dvq::CompareOp::kLike:
    case dvq::CompareOp::kNotLike: {
      if (!pred.literal.has_value()) {
        return Status::ExecutionError("LIKE without a pattern");
      }
      bool match = LikeMatch(pred.literal->string_value, lhs.ToString());
      return pred.op == dvq::CompareOp::kLike ? match : !match;
    }
    case dvq::CompareOp::kIn:
    case dvq::CompareOp::kNotIn: {
      bool found = false;
      for (const dvq::Literal& lit : pred.in_list) {
        if (lhs == LiteralToValue(lit)) {
          found = true;
          break;
        }
      }
      return pred.op == dvq::CompareOp::kIn ? found : !found;
    }
    default:
      break;
  }
  Value rhs;
  if (pred.subquery != nullptr) {
    GRED_ASSIGN_OR_RETURN(rhs,
                          EvaluateScalarSubquery(*pred.subquery, db, options));
  } else if (pred.literal.has_value()) {
    rhs = LiteralToValue(*pred.literal);
  } else {
    return Status::ExecutionError("predicate missing right-hand side");
  }
  if (lhs.is_null() || rhs.is_null()) return false;  // SQL 3VL -> not true
  int cmp = lhs.Compare(rhs);
  switch (pred.op) {
    case dvq::CompareOp::kEq:
      return cmp == 0;
    case dvq::CompareOp::kNe:
      return cmp != 0;
    case dvq::CompareOp::kLt:
      return cmp < 0;
    case dvq::CompareOp::kLe:
      return cmp <= 0;
    case dvq::CompareOp::kGt:
      return cmp > 0;
    case dvq::CompareOp::kGe:
      return cmp >= 0;
    default:
      return Status::ExecutionError("unsupported comparison");
  }
}

/// Evaluates the condition with SQL precedence (AND binds tighter than
/// OR): the chain is an OR of AND-groups.
Result<bool> EvaluateCondition(const dvq::Condition& cond,
                               const SlotBinding& binding,
                               const std::vector<Value>& row,
                               const storage::DatabaseData& db,
                               const ExecOptions& options) {
  bool group_result = true;
  bool any_group_true = false;
  for (std::size_t i = 0; i < cond.predicates.size(); ++i) {
    GRED_ASSIGN_OR_RETURN(
        bool value,
        EvaluatePredicate(cond.predicates[i], binding, row, db, options));
    group_result = group_result && value;
    bool end_of_group = i + 1 >= cond.predicates.size() ||
                        cond.connectors[i] == dvq::LogicalOp::kOr;
    if (end_of_group) {
      any_group_true = any_group_true || group_result;
      group_result = true;
    }
  }
  return any_group_true;
}

Result<ResultSet> ExecuteRowEngine(const dvq::Query& q,
                                   const storage::DatabaseData& db,
                                   const ExecOptions& options) {
  ExecContext* guard = options.context;
  GRED_ASSIGN_OR_RETURN(WorkingSet ws, BuildJoinedRows(q, db, options));

  // Filter.
  if (q.where.has_value()) {
    std::vector<std::vector<Value>> kept;
    kept.reserve(ws.rows.size());
    for (auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      GRED_ASSIGN_OR_RETURN(
          bool pass, EvaluateCondition(*q.where, ws.binding, row, db, options));
      if (pass) kept.push_back(std::move(row));
    }
    ws.rows = std::move(kept);
  }

  // Binning rewrites the binned column in place.
  if (q.bin.has_value()) {
    GRED_ASSIGN_OR_RETURN(std::size_t bin_slot,
                          ws.binding.Resolve(q.bin->col));
    for (auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      row[bin_slot] = BinValue(row[bin_slot], q.bin->unit);
    }
  }

  // Resolve select expressions. The ORDER BY expression may reference an
  // aggregate (or column) not in the select list; compute it as a hidden
  // trailing column.
  std::vector<dvq::SelectExpr> computed = q.select;
  std::optional<std::size_t> order_slot =
      UnifyOrderBy(q, ws.binding, &computed);

  bool has_aggregate = false;
  for (const dvq::SelectExpr& e : computed) {
    if (e.agg != dvq::AggFunc::kNone) has_aggregate = true;
  }

  std::vector<std::vector<Value>> out_rows;
  if (has_aggregate || !q.group_by.empty()) {
    // Determine grouping keys: explicit GROUP BY, else all non-aggregated
    // select columns (Vega-Zero x-axis grouping).
    std::vector<dvq::ColumnRef> keys = q.group_by;
    if (keys.empty()) {
      for (const dvq::SelectExpr& e : q.select) {
        if (e.agg == dvq::AggFunc::kNone) keys.push_back(e.col);
      }
    }
    std::vector<std::size_t> key_slots;
    key_slots.reserve(keys.size());
    for (const dvq::ColumnRef& k : keys) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, ws.binding.Resolve(k));
      key_slots.push_back(slot);
    }
    std::vector<std::size_t> value_slots(computed.size(),
                                         static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < computed.size(); ++i) {
      if (computed[i].col.column == "*") continue;
      GRED_ASSIGN_OR_RETURN(std::size_t slot,
                            ws.binding.Resolve(computed[i].col));
      value_slots[i] = slot;
    }
    struct Group {
      std::vector<Value> key;
      std::vector<AggAccumulator> accs;
      std::vector<Value> first_row;
    };
    std::vector<Group> groups;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
    for (const auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      std::vector<Value> key;
      key.reserve(key_slots.size());
      for (std::size_t slot : key_slots) key.push_back(row[slot]);
      std::uint64_t h = HashKey(key, options.value_hash);
      Group* group = nullptr;
      for (std::size_t gi : index[h]) {
        if (groups[gi].key == key) {
          group = &groups[gi];
          break;
        }
      }
      if (group == nullptr) {
        // A new group materializes its key, accumulators and first row:
        // high-cardinality group-bys are bounded by the row/memory
        // budgets, not just the tick deadline.
        GRED_CHARGE(guard, ChargeRows(1, key.size() + computed.size()));
        Group fresh;
        fresh.key = key;
        for (const dvq::SelectExpr& e : computed) {
          fresh.accs.emplace_back(e);
        }
        fresh.first_row = row;
        index[h].push_back(groups.size());
        groups.push_back(std::move(fresh));
        group = &groups.back();
      }
      for (std::size_t i = 0; i < computed.size(); ++i) {
        if (computed[i].agg == dvq::AggFunc::kNone) continue;
        const Value v = value_slots[i] == static_cast<std::size_t>(-1)
                            ? Value::Null()
                            : row[value_slots[i]];
        group->accs[i].Add(v);
      }
    }
    out_rows.reserve(groups.size());
    for (const Group& g : groups) {
      std::vector<Value> row;
      row.reserve(computed.size());
      for (std::size_t i = 0; i < computed.size(); ++i) {
        if (computed[i].agg == dvq::AggFunc::kNone) {
          row.push_back(g.first_row[value_slots[i]]);
        } else {
          row.push_back(g.accs[i].Finish());
        }
      }
      out_rows.push_back(std::move(row));
    }
  } else {
    // Pure projection.
    std::vector<std::size_t> slots;
    slots.reserve(computed.size());
    for (const dvq::SelectExpr& e : computed) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, ws.binding.Resolve(e.col));
      slots.push_back(slot);
    }
    out_rows.reserve(ws.rows.size());
    for (const auto& row : ws.rows) {
      GRED_CHARGE(guard, ChargeTicks(1));
      GRED_CHARGE(guard, ChargeRows(1, slots.size()));
      std::vector<Value> out;
      out.reserve(slots.size());
      for (std::size_t slot : slots) out.push_back(row[slot]);
      out_rows.push_back(std::move(out));
    }
  }

  // Order. The comparator cannot propagate a Status, so the sort's work
  // is charged up front (stable_sort is O(n log n); one tick per row is
  // the deterministic lower bound and the inputs were already paid for
  // row-by-row above).
  if (q.order_by.has_value()) {
    GRED_CHARGE(guard, ChargeTicks(out_rows.size()));
    const std::size_t slot = *order_slot;
    const bool desc = q.order_by->descending;
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [slot, desc](const auto& a, const auto& b) {
                       int cmp = a[slot].Compare(b[slot]);
                       return desc ? cmp > 0 : cmp < 0;
                     });
  }

  // Limit, then strip hidden order column.
  if (q.limit.has_value() && *q.limit >= 0 &&
      out_rows.size() > static_cast<std::size_t>(*q.limit)) {
    out_rows.resize(static_cast<std::size_t>(*q.limit));
  }
  ResultSet rs;
  for (const dvq::SelectExpr& e : q.select) {
    rs.column_names.push_back(e.ToString());
  }
  const std::size_t visible = q.select.size();
  for (auto& row : out_rows) {
    row.resize(visible);
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

// ---------------------------------------------------------------------------
// Vectorized columnar engine.
//
// Guard parity: every operator charges the same per-operator totals as
// the reference engine, batched at kExecChunkRows granularity, so a
// query trips (or doesn't) identically in both engines. The one
// documented divergence: scalar subqueries are hoisted and evaluated
// once here but per outer row there, so with a subquery the columnar
// engine charges at most as much — if it trips, the reference engine
// trips too.
// ---------------------------------------------------------------------------

struct ColumnarWorkingSet {
  SlotBinding binding;
  ColumnBatch batch;
};

Result<ColumnarWorkingSet> BuildJoinedBatch(const dvq::Query& q,
                                            const storage::DatabaseData& db,
                                            const ExecOptions& options) {
  ColumnarWorkingSet ws;
  const storage::DataTable* from = db.FindTable(q.from_table);
  if (from == nullptr) {
    return Status::ExecutionError("unknown table '" + q.from_table + "'");
  }
  ws.binding.AddTable(*from);
  ws.batch.AddScanTable(*from);
  ExecContext* guard = options.context;
  // Scan charges: the accounting model prices the logical working set
  // (DESIGN.md §8), so the scan pays for its rows even though the
  // columnar engine only borrows them.
  for (std::size_t done = 0; done < from->num_rows();) {
    const std::size_t n =
        std::min(from->num_rows() - done, kExecChunkRows);
    GRED_CHARGE(guard, ChargeTicks(n));
    GRED_CHARGE(guard, ChargeRows(n, from->num_columns()));
    done += n;
  }
  for (const dvq::JoinClause& join : q.joins) {
    const storage::DataTable* right = db.FindTable(join.table);
    if (right == nullptr) {
      return Status::ExecutionError("unknown table '" + join.table + "'");
    }
    SlotBinding right_binding;
    right_binding.AddTable(*right);
    auto left_in_existing = ws.binding.Resolve(join.left);
    dvq::ColumnRef probe = join.left;
    dvq::ColumnRef build = join.right;
    if (!left_in_existing.ok()) {
      std::swap(probe, build);
    }
    GRED_ASSIGN_OR_RETURN(std::size_t probe_slot, ws.binding.Resolve(probe));
    GRED_ASSIGN_OR_RETURN(std::size_t build_slot,
                          right_binding.Resolve(build));

    const std::size_t merged_width =
        ws.binding.size() + right->num_columns();
    const std::size_t n_left = ws.batch.num_rows();
    const ColumnView probe_view = ws.batch.View(probe_slot);
    std::vector<std::uint32_t> left_index;
    std::vector<std::uint32_t> right_rows;
    if (options.join_strategy == JoinStrategy::kHashJoin) {
      for (std::size_t done = 0; done < right->num_rows();) {
        const std::size_t n =
            std::min(right->num_rows() - done, kExecChunkRows);
        GRED_CHARGE(guard, ChargeTicks(n));
        done += n;
      }
      JoinHashTable table(right->column(build_slot), options.value_hash);
      std::vector<std::uint32_t> matches;
      for (std::size_t begin = 0; begin < n_left; begin += kExecChunkRows) {
        const std::size_t end = std::min(n_left, begin + kExecChunkRows);
        GRED_CHARGE(guard, ChargeTicks(end - begin));
        std::size_t chunk_matches = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Value& key = probe_view.at(i);
          if (key.is_null()) continue;
          matches.clear();
          table.Probe(key, HashValueWith(options.value_hash, key),
                      &matches);
          for (std::uint32_t m : matches) {
            left_index.push_back(static_cast<std::uint32_t>(i));
            right_rows.push_back(m);
          }
          chunk_matches += matches.size();
        }
        GRED_CHARGE(guard, ChargeJoinRows(chunk_matches));
        GRED_CHARGE(guard, ChargeRows(chunk_matches, merged_width));
      }
    } else {
      const std::vector<Value>& build_col = right->column(build_slot);
      for (std::size_t begin = 0; begin < n_left; begin += kExecChunkRows) {
        const std::size_t end = std::min(n_left, begin + kExecChunkRows);
        std::size_t chunk_matches = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Value& key = probe_view.at(i);
          if (key.is_null()) continue;
          // The reference engine ticks once per build row scanned for
          // every non-NULL probe key.
          GRED_CHARGE(guard, ChargeTicks(build_col.size()));
          for (std::size_t r = 0; r < build_col.size(); ++r) {
            if (build_col[r] != key) continue;
            left_index.push_back(static_cast<std::uint32_t>(i));
            right_rows.push_back(static_cast<std::uint32_t>(r));
            ++chunk_matches;
          }
        }
        GRED_CHARGE(guard, ChargeJoinRows(chunk_matches));
        GRED_CHARGE(guard, ChargeRows(chunk_matches, merged_width));
      }
    }
    ws.batch.ApplyJoin(left_index, *right, std::move(right_rows));
    ws.binding.AddTable(*right);
  }
  return ws;
}

/// Resolves and constant-folds the WHERE predicates. Called only when
/// the working set is non-empty: the reference engine binds WHERE slots
/// and evaluates subqueries lazily per row, so on empty input it reports
/// no error — and neither do we. Scalar subqueries are evaluated once
/// here (hoisted) instead of per row.
Result<std::vector<PreparedPredicate>> PreparePredicates(
    const dvq::Condition& cond, const ColumnBatch& batch,
    const SlotBinding& binding, const storage::DatabaseData& db,
    const ExecOptions& options) {
  std::vector<PreparedPredicate> out;
  out.reserve(cond.predicates.size());
  for (const dvq::Predicate& pred : cond.predicates) {
    GRED_ASSIGN_OR_RETURN(std::size_t slot, binding.Resolve(pred.col));
    PreparedPredicate p;
    p.slot = slot;
    p.op = pred.op;
    switch (pred.op) {
      case dvq::CompareOp::kIsNull:
      case dvq::CompareOp::kIsNotNull:
        break;
      case dvq::CompareOp::kLike:
      case dvq::CompareOp::kNotLike:
        if (!pred.literal.has_value()) {
          return Status::ExecutionError("LIKE without a pattern");
        }
        p.pattern = pred.literal->string_value;
        break;
      case dvq::CompareOp::kIn:
      case dvq::CompareOp::kNotIn:
        p.in_values.reserve(pred.in_list.size());
        for (const dvq::Literal& lit : pred.in_list) {
          p.in_values.push_back(LiteralToValue(lit));
        }
        break;
      default: {
        if (pred.subquery != nullptr) {
          GRED_ASSIGN_OR_RETURN(
              p.rhs, EvaluateScalarSubquery(*pred.subquery, db, options));
        } else if (pred.literal.has_value()) {
          p.rhs = LiteralToValue(*pred.literal);
        } else {
          return Status::ExecutionError("predicate missing right-hand side");
        }
        p.dense_int_fast = p.rhs.is_int() && batch.SlotIsDenseInt(slot);
        break;
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

Result<ResultSet> ExecuteColumnar(const dvq::Query& q,
                                  const storage::DatabaseData& db,
                                  const ExecOptions& options) {
  ExecContext* guard = options.context;
  const ValueHashFn vhash = options.value_hash;
  GRED_ASSIGN_OR_RETURN(ColumnarWorkingSet ws,
                        BuildJoinedBatch(q, db, options));
  SlotBinding& binding = ws.binding;
  ColumnBatch& batch = ws.batch;

  // Filter: evaluate each predicate into a 0/1 bitmap per chunk, fold
  // the OR-of-AND-groups structure with byte-wise AND/OR, then compact
  // the batch once.
  if (q.where.has_value() && batch.num_rows() > 0) {
    GRED_ASSIGN_OR_RETURN(
        std::vector<PreparedPredicate> preds,
        PreparePredicates(*q.where, batch, binding, db, options));
    const std::size_t n = batch.num_rows();
    std::vector<ColumnView> views;
    views.reserve(preds.size());
    for (const PreparedPredicate& p : preds) views.push_back(batch.View(p.slot));
    std::vector<std::uint8_t> keep(n, 0);
    std::vector<std::uint8_t> acc_or(kExecChunkRows);
    std::vector<std::uint8_t> acc_and(kExecChunkRows);
    std::vector<std::uint8_t> tmp(kExecChunkRows);
    for (std::size_t begin = 0; begin < n; begin += kExecChunkRows) {
      const std::size_t end = std::min(n, begin + kExecChunkRows);
      const std::size_t len = end - begin;
      GRED_CHARGE(guard, ChargeTicks(len));
      std::fill_n(acc_or.begin(), len, std::uint8_t{0});
      std::fill_n(acc_and.begin(), len, std::uint8_t{1});
      for (std::size_t i = 0; i < preds.size(); ++i) {
        EvalPredicateRange(views[i], preds[i], begin, end, tmp.data());
        AndInto(acc_and.data(), tmp.data(), len);
        const bool end_of_group = i + 1 >= preds.size() ||
                                  q.where->connectors[i] == dvq::LogicalOp::kOr;
        if (end_of_group) {
          OrInto(acc_or.data(), acc_and.data(), len);
          std::fill_n(acc_and.begin(), len, std::uint8_t{1});
        }
      }
      std::copy_n(acc_or.begin(), len, keep.begin() + static_cast<std::ptrdiff_t>(begin));
    }
    batch.Filter(keep);
  }

  // Binning rewrites the binned column as an owned dense vector.
  if (q.bin.has_value()) {
    GRED_ASSIGN_OR_RETURN(std::size_t bin_slot,
                          binding.Resolve(q.bin->col));
    const std::size_t n = batch.num_rows();
    const ColumnView view = batch.View(bin_slot);
    std::vector<Value> binned(n);
    for (std::size_t begin = 0; begin < n; begin += kExecChunkRows) {
      const std::size_t end = std::min(n, begin + kExecChunkRows);
      GRED_CHARGE(guard, ChargeTicks(end - begin));
      for (std::size_t i = begin; i < end; ++i) {
        binned[i] = BinValue(view.at(i), q.bin->unit);
      }
    }
    batch.ReplaceWithOwned(bin_slot, std::move(binned));
  }

  std::vector<dvq::SelectExpr> computed = q.select;
  std::optional<std::size_t> order_slot = UnifyOrderBy(q, binding, &computed);

  bool has_aggregate = false;
  for (const dvq::SelectExpr& e : computed) {
    if (e.agg != dvq::AggFunc::kNone) has_aggregate = true;
  }

  // Computed output, column-major; cells are copied out of the batch
  // exactly once, here.
  std::vector<std::vector<Value>> out_cols(computed.size());
  std::size_t out_len = 0;
  const auto npos = static_cast<std::size_t>(-1);
  if (has_aggregate || !q.group_by.empty()) {
    std::vector<dvq::ColumnRef> keys = q.group_by;
    if (keys.empty()) {
      for (const dvq::SelectExpr& e : q.select) {
        if (e.agg == dvq::AggFunc::kNone) keys.push_back(e.col);
      }
    }
    std::vector<std::size_t> key_slots;
    key_slots.reserve(keys.size());
    for (const dvq::ColumnRef& k : keys) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, binding.Resolve(k));
      key_slots.push_back(slot);
    }
    std::vector<std::size_t> value_slots(computed.size(), npos);
    for (std::size_t i = 0; i < computed.size(); ++i) {
      if (computed[i].col.column == "*") continue;
      GRED_ASSIGN_OR_RETURN(std::size_t slot,
                            binding.Resolve(computed[i].col));
      value_slots[i] = slot;
    }
    std::vector<ColumnView> key_views;
    key_views.reserve(key_slots.size());
    for (std::size_t slot : key_slots) key_views.push_back(batch.View(slot));
    std::vector<ColumnView> value_views(computed.size());
    for (std::size_t i = 0; i < computed.size(); ++i) {
      if (value_slots[i] != npos) value_views[i] = batch.View(value_slots[i]);
    }

    const std::size_t n = batch.num_rows();
    GroupIndex index;
    std::vector<std::vector<Value>> group_keys;
    std::vector<std::vector<AggAccumulator>> group_accs;
    std::vector<std::uint32_t> group_first_row;
    for (std::size_t begin = 0; begin < n; begin += kExecChunkRows) {
      const std::size_t end = std::min(n, begin + kExecChunkRows);
      GRED_CHARGE(guard, ChargeTicks(end - begin));
      std::uint64_t new_groups = 0;
      for (std::size_t i = begin; i < end; ++i) {
        std::uint64_t h = kGroupHashSeed;
        for (const ColumnView& kv : key_views) {
          h = CombineKeyHash(h, HashValueWith(vhash, kv.at(i)));
        }
        const auto [gid, inserted] =
            index.FindOrInsert(h, [&](std::uint32_t g) {
              const std::vector<Value>& gk = group_keys[g];
              for (std::size_t k = 0; k < key_views.size(); ++k) {
                if (gk[k] != key_views[k].at(i)) return false;
              }
              return true;
            });
        if (inserted) {
          ++new_groups;
          std::vector<Value> key;
          key.reserve(key_views.size());
          for (const ColumnView& kv : key_views) key.push_back(kv.at(i));
          group_keys.push_back(std::move(key));
          std::vector<AggAccumulator> accs;
          accs.reserve(computed.size());
          for (const dvq::SelectExpr& e : computed) accs.emplace_back(e);
          group_accs.push_back(std::move(accs));
          group_first_row.push_back(static_cast<std::uint32_t>(i));
        }
        for (std::size_t c = 0; c < computed.size(); ++c) {
          if (computed[c].agg == dvq::AggFunc::kNone) continue;
          const Value v = value_slots[c] == npos ? Value::Null()
                                                 : value_views[c].at(i);
          group_accs[gid][c].Add(v);
        }
      }
      // New groups materialize their key + accumulator row, same price
      // per group as the reference engine.
      GRED_CHARGE(guard,
                  ChargeRows(new_groups, key_slots.size() + computed.size()));
    }
    out_len = group_keys.size();
    for (std::size_t c = 0; c < computed.size(); ++c) {
      out_cols[c].reserve(out_len);
      for (std::size_t g = 0; g < out_len; ++g) {
        if (computed[c].agg == dvq::AggFunc::kNone) {
          out_cols[c].push_back(value_slots[c] == npos
                                    ? Value::Null()
                                    : value_views[c].at(group_first_row[g]));
        } else {
          out_cols[c].push_back(group_accs[g][c].Finish());
        }
      }
    }
  } else {
    // Pure projection: gather only the selected (plus hidden ORDER BY)
    // columns out of the batch.
    std::vector<std::size_t> slots;
    slots.reserve(computed.size());
    for (const dvq::SelectExpr& e : computed) {
      GRED_ASSIGN_OR_RETURN(std::size_t slot, binding.Resolve(e.col));
      slots.push_back(slot);
    }
    std::vector<ColumnView> views;
    views.reserve(slots.size());
    for (std::size_t slot : slots) views.push_back(batch.View(slot));
    const std::size_t n = batch.num_rows();
    for (std::size_t c = 0; c < slots.size(); ++c) out_cols[c].reserve(n);
    for (std::size_t begin = 0; begin < n; begin += kExecChunkRows) {
      const std::size_t end = std::min(n, begin + kExecChunkRows);
      const std::size_t len = end - begin;
      GRED_CHARGE(guard, ChargeTicks(len));
      GRED_CHARGE(guard, ChargeRows(len, slots.size()));
      for (std::size_t c = 0; c < slots.size(); ++c) {
        for (std::size_t i = begin; i < end; ++i) {
          out_cols[c].push_back(views[c].at(i));
        }
      }
    }
    out_len = n;
  }

  // Order: a stable permutation over the (possibly hidden) key column;
  // rows are never physically reordered.
  std::vector<std::uint32_t> perm;
  if (q.order_by.has_value()) {
    GRED_CHARGE(guard, ChargeTicks(out_len));
    ColumnView key_view;
    key_view.values = out_cols[*order_slot].data();
    perm = StableSortPermutation(out_len, key_view, q.order_by->descending);
  }

  // Limit, then materialize the visible columns through the permutation
  // — the single point where result cells are copied row-major.
  std::size_t visible_rows = out_len;
  if (q.limit.has_value() && *q.limit >= 0 &&
      visible_rows > static_cast<std::size_t>(*q.limit)) {
    visible_rows = static_cast<std::size_t>(*q.limit);
  }
  ResultSet rs;
  for (const dvq::SelectExpr& e : q.select) {
    rs.column_names.push_back(e.ToString());
  }
  const std::size_t visible_cols = q.select.size();
  rs.rows.reserve(visible_rows);
  for (std::size_t r = 0; r < visible_rows; ++r) {
    const std::size_t src = perm.empty() ? r : perm[r];
    std::vector<Value> row;
    row.reserve(visible_cols);
    for (std::size_t c = 0; c < visible_cols; ++c) {
      row.push_back(out_cols[c][src]);
    }
    rs.rows.push_back(std::move(row));
  }
  return rs;
}

}  // namespace

std::string ResultSet::ToString(std::size_t max_rows) const {
  std::string out;
  out += strings::Join(column_names, " | ") + "\n";
  for (std::size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(rows[r].size());
    for (const Value& v : rows[r]) cells.push_back(v.ToString());
    out += strings::Join(cells, " | ") + "\n";
  }
  if (rows.size() > max_rows) {
    out += strings::Format("... (%zu more rows)\n", rows.size() - max_rows);
  }
  return out;
}

Engine DefaultEngine() {
  static const Engine engine = [] {
    const char* env = std::getenv("GRED_EXEC_ENGINE");
    if (env != nullptr && strings::EqualsIgnoreCase(env, "row")) {
      return Engine::kRowAtATime;
    }
    return Engine::kColumnar;
  }();
  return engine;
}

Result<ResultSet> Execute(const dvq::Query& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options) {
  const dvq::Query q = dvq::ResolveAliases(query);
  if (options.engine == Engine::kRowAtATime) {
    return ExecuteRowEngine(q, db, options);
  }
  return ExecuteColumnar(q, db, options);
}

Result<ResultSet> Execute(const dvq::DVQ& query,
                          const storage::DatabaseData& db,
                          const ExecOptions& options) {
  return Execute(query.query, db, options);
}

#undef GRED_CHARGE

}  // namespace gred::exec
