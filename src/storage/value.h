#ifndef GREDVIS_STORAGE_VALUE_H_
#define GREDVIS_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace gred::storage {

/// A dynamically-typed cell value. Dates are stored as ISO-8601 text with
/// date semantics provided by the executor's date functions (nvBench's
/// SQLite substrate does the same).
class Value {
 public:
  /// Constructs NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(std::int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Text(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Int(v ? 1 : 0); }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_text() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_real(); }

  std::int64_t int_value() const { return std::get<std::int64_t>(rep_); }
  double real_value() const { return std::get<double>(rep_); }
  const std::string& text_value() const { return std::get<std::string>(rep_); }

  /// Numeric view: ints widen to double; NULL and text yield 0.
  double AsDouble() const;

  /// Renders the value for display / DVQ result comparison. NULL -> "NULL",
  /// reals use a minimal representation ("3.5", "4").
  std::string ToString() const;

  /// SQL-style three-way comparison used by ORDER BY and predicates.
  /// NULL sorts before everything; numbers compare numerically across
  /// int/real; text compares case-sensitively byte-wise.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash for group-by keys.
  std::uint64_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, std::int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace gred::storage

#endif  // GREDVIS_STORAGE_VALUE_H_
