#ifndef GREDVIS_STORAGE_TABLE_H_
#define GREDVIS_STORAGE_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace gred::storage {

/// Column-major storage for one table's rows.
///
/// The layout is a vector of column vectors; every column vector has
/// exactly `num_rows()` entries. Rows are appended whole so the invariant
/// holds by construction.
class DataTable {
 public:
  explicit DataTable(schema::TableDef def);

  const schema::TableDef& def() const { return def_; }
  schema::TableDef& mutable_def() { return def_; }
  const std::string& name() const { return def_.name(); }

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Appends one row. Returns InvalidArgument when the arity mismatches.
  Status AppendRow(std::vector<Value> row);

  /// Cell accessor; both indices must be in range.
  const Value& at(std::size_t row, std::size_t col) const {
    return columns_[col][row];
  }

  /// Materializes one row (copying cells).
  std::vector<Value> Row(std::size_t row) const;

  /// Whole-column view.
  const std::vector<Value>& column(std::size_t col) const {
    return columns_[col];
  }

  /// All columns, index-aligned with `def().columns()`. The vectorized
  /// executor scans these directly instead of materializing rows.
  const std::vector<std::vector<Value>>& columns() const { return columns_; }

  /// One-pass type summary of a column, computed on demand (not cached:
  /// DataTable is shared read-only across eval threads). The vectorized
  /// executor uses it to pick typed predicate kernels.
  struct ColumnStats {
    bool has_null = false;
    bool all_int = true;      // every non-NULL cell is an int
    bool all_real = true;     // every non-NULL cell is a real
    bool all_text = true;     // every non-NULL cell is text
    bool all_numeric() const { return all_int || all_real; }
  };
  ColumnStats ScanColumn(std::size_t col) const;

  /// Per-column value statistics for the static cost estimator
  /// (DESIGN.md §17). NULL counts as one distinct value and contributes
  /// to max_count, keeping both fields conservative for join-match and
  /// group-count bounds.
  struct ColumnValueStats {
    std::size_t distinct = 0;   // distinct values (NULL counts as one)
    std::size_t max_count = 0;  // occurrences of the most frequent value
  };
  /// Whole-table statistics, index-aligned with `def().columns()`.
  /// Computed on demand (not cached: DataTable is shared read-only
  /// across eval threads); callers that need them repeatedly cache at
  /// their layer (CostEstimator does).
  struct TableStats {
    std::size_t rows = 0;
    std::vector<ColumnValueStats> columns;
  };
  TableStats Stats() const;

 private:
  schema::TableDef def_;
  std::vector<std::vector<Value>> columns_;
  std::size_t num_rows_ = 0;
};

/// A database instance: schema plus one DataTable per schema table, kept
/// index-aligned with `schema().tables()`.
class DatabaseData {
 public:
  explicit DatabaseData(schema::Database db_schema);

  const schema::Database& db_schema() const { return schema_; }
  schema::Database& mutable_schema() { return schema_; }
  const std::string& name() const { return schema_.name(); }

  const std::vector<DataTable>& tables() const { return tables_; }
  std::vector<DataTable>& mutable_tables() { return tables_; }

  /// Case-insensitive lookup; nullptr when absent.
  const DataTable* FindTable(const std::string& name) const;
  DataTable* FindTable(const std::string& name);

  /// Renames schema objects in both the schema and the aligned tables.
  /// Used by the schema-perturbation engine. Fails with NotFound when the
  /// old name does not exist.
  Status RenameTable(const std::string& old_name, const std::string& new_name);
  Status RenameColumn(const std::string& table, const std::string& old_name,
                      const std::string& new_name);

 private:
  schema::Database schema_;
  std::vector<DataTable> tables_;
};

}  // namespace gred::storage

#endif  // GREDVIS_STORAGE_TABLE_H_
