#include "storage/value.h"

#include <cmath>
#include <cstdio>

#include "util/rng.h"

namespace gred::storage {

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_real()) return real_value();
  return 0.0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(int_value()));
    return buf;
  }
  if (is_real()) {
    double d = real_value();
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
      return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", d);
    return buf;
  }
  return text_value();
}

int Value::Compare(const Value& other) const {
  // NULL < numbers < text, matching SQLite's type ordering.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;
  if (ra == 1) {
    if (is_int() && other.is_int()) {
      std::int64_t a = int_value();
      std::int64_t b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int cmp = text_value().compare(other.text_value());
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

std::uint64_t Value::Hash() const {
  if (is_null()) return 0x9ae16a3b2f90404fULL;
  if (is_int()) {
    std::int64_t v = int_value();
    return Fnv1a64(&v, sizeof(v));
  }
  if (is_real()) {
    double d = real_value();
    // Hash integral reals identically to the matching int so that
    // group keys 4 and 4.0 coincide (mirrors Compare()).
    if (d == std::floor(d) && std::fabs(d) < 9.2e18) {
      std::int64_t v = static_cast<std::int64_t>(d);
      return Fnv1a64(&v, sizeof(v));
    }
    return Fnv1a64(&d, sizeof(d));
  }
  return Fnv1a64(text_value());
}

}  // namespace gred::storage
