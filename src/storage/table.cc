#include "storage/table.h"

#include <unordered_map>

#include "util/strings.h"

namespace gred::storage {

DataTable::DataTable(schema::TableDef def) : def_(std::move(def)) {
  columns_.resize(def_.columns().size());
}

Status DataTable::AppendRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        strings::Format("row arity %zu does not match table '%s' arity %zu",
                        row.size(), def_.name().c_str(), columns_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(std::move(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

DataTable::ColumnStats DataTable::ScanColumn(std::size_t col) const {
  ColumnStats stats;
  for (const Value& v : columns_[col]) {
    if (v.is_null()) {
      stats.has_null = true;
      continue;
    }
    if (!v.is_int()) stats.all_int = false;
    if (!v.is_real()) stats.all_real = false;
    if (!v.is_text()) stats.all_text = false;
  }
  return stats;
}

DataTable::TableStats DataTable::Stats() const {
  TableStats stats;
  stats.rows = num_rows_;
  stats.columns.reserve(columns_.size());
  struct ValueHash {
    std::size_t operator()(const Value& v) const {
      return static_cast<std::size_t>(v.Hash());
    }
  };
  for (const auto& column : columns_) {
    std::unordered_map<Value, std::size_t, ValueHash> counts;
    counts.reserve(column.size());
    for (const Value& v : column) ++counts[v];
    ColumnValueStats c;
    c.distinct = counts.size();
    for (const auto& [value, count] : counts) {
      if (count > c.max_count) c.max_count = count;
    }
    stats.columns.push_back(c);
  }
  return stats;
}

std::vector<Value> DataTable::Row(std::size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

DatabaseData::DatabaseData(schema::Database db_schema)
    : schema_(std::move(db_schema)) {
  for (const schema::TableDef& t : schema_.tables()) {
    tables_.emplace_back(t);
  }
}

const DataTable* DatabaseData::FindTable(const std::string& name) const {
  for (const DataTable& t : tables_) {
    if (strings::EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

DataTable* DatabaseData::FindTable(const std::string& name) {
  for (DataTable& t : tables_) {
    if (strings::EqualsIgnoreCase(t.name(), name)) return &t;
  }
  return nullptr;
}

Status DatabaseData::RenameTable(const std::string& old_name,
                                 const std::string& new_name) {
  schema::TableDef* def = schema_.FindTable(old_name);
  DataTable* data = FindTable(old_name);
  if (def == nullptr || data == nullptr) {
    return Status::NotFound("table '" + old_name + "' not found");
  }
  def->set_name(new_name);
  data->mutable_def().set_name(new_name);
  for (auto& fk :
       schema_.mutable_foreign_keys()) {
    if (strings::EqualsIgnoreCase(fk.from_table, old_name)) {
      fk.from_table = new_name;
    }
    if (strings::EqualsIgnoreCase(fk.to_table, old_name)) {
      fk.to_table = new_name;
    }
  }
  return Status::OK();
}

Status DatabaseData::RenameColumn(const std::string& table,
                                  const std::string& old_name,
                                  const std::string& new_name) {
  schema::TableDef* def = schema_.FindTable(table);
  DataTable* data = FindTable(table);
  if (def == nullptr || data == nullptr) {
    return Status::NotFound("table '" + table + "' not found");
  }
  bool renamed = false;
  for (schema::Column& c : def->mutable_columns()) {
    if (strings::EqualsIgnoreCase(c.name, old_name)) {
      c.name = new_name;
      renamed = true;
      break;
    }
  }
  if (!renamed) {
    return Status::NotFound("column '" + old_name + "' not found in '" +
                            table + "'");
  }
  for (schema::Column& c : data->mutable_def().mutable_columns()) {
    if (strings::EqualsIgnoreCase(c.name, old_name)) {
      c.name = new_name;
      break;
    }
  }
  for (auto& fk :
       schema_.mutable_foreign_keys()) {
    if (strings::EqualsIgnoreCase(fk.from_table, table) &&
        strings::EqualsIgnoreCase(fk.from_column, old_name)) {
      fk.from_column = new_name;
    }
    if (strings::EqualsIgnoreCase(fk.to_table, table) &&
        strings::EqualsIgnoreCase(fk.to_column, old_name)) {
      fk.to_column = new_name;
    }
  }
  return Status::OK();
}

}  // namespace gred::storage
