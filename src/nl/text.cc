#include "nl/text.h"

#include <cctype>
#include <set>

#include "util/strings.h"

namespace gred::nl {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) != 0) {
      current.push_back(
          static_cast<char>(std::tolower(c)));
      continue;
    }
    if (raw == '\'') continue;  // drop apostrophes within words
    flush();
  }
  flush();
  return tokens;
}

std::string Stem(const std::string& word) {
  std::string out;
  StemInto(word, &out);
  return out;
}

void StemInto(const std::string& word, std::string* out) {
  std::string& w = *out;
  w = word;
  auto ends = [&](const char* suffix) {
    return strings::EndsWith(w, suffix);
  };
  auto chop = [&](std::size_t n) { w.resize(w.size() - n); };
  if (w.size() > 4 && ends("ies")) {
    chop(3);
    w += "y";
  } else if (w.size() > 4 && (ends("sses") || ends("ches") ||
                              ends("shes") || ends("xes") || ends("zes"))) {
    chop(2);  // "matches" -> "match", "boxes" -> "box"
  } else if (w.size() > 3 && ends("es") && !ends("oes")) {
    chop(1);  // "courses" -> "course"
  } else if (w.size() > 3 && ends("s") && !ends("ss") && !ends("us") &&
             !ends("is")) {
    chop(1);
  }
  if (w.size() > 5 && strings::EndsWith(w, "ing")) {
    chop(3);
    if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2]) chop(1);
  } else if (w.size() > 4 && strings::EndsWith(w, "ed")) {
    chop(2);
    if (w.size() >= 2 && w[w.size() - 1] == w[w.size() - 2]) chop(1);
  }
  if (w.size() > 6 && strings::EndsWith(w, "ation")) {
    chop(5);
    w += "e";
  } else if (w.size() > 5 && (strings::EndsWith(w, "tion") ||
                              strings::EndsWith(w, "sion"))) {
    chop(3);
  }
  if (w.size() < 3) w = word;
}

std::vector<std::string> StemmedTokens(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  for (std::string& t : tokens) t = Stem(t);
  return tokens;
}

bool IsStopword(const std::string& word) {
  static const std::set<std::string> kStopwords = {
      "a",     "an",    "the",   "of",   "for",  "and",  "or",    "in",
      "on",    "by",    "to",    "with", "all",  "each", "every", "me",
      "show",  "draw",  "plot",  "give", "list", "find", "what",  "which",
      "how",   "many",  "is",    "are",  "was",  "were", "please", "chart",
      "graph", "using", "about", "from", "that", "their", "them",  "those",
      "i",     "want",  "would", "like", "you",  "can",  "could", "display",
      "also",  "as",    "at",    "be",   "its",  "it",
  };
  return kStopwords.count(word) > 0;
}

std::vector<std::string> ContentTokens(std::string_view text) {
  std::vector<std::string> tokens = Tokenize(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& t : tokens) {
    if (!IsStopword(t)) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace gred::nl
