#include "nl/lexicon.h"

#include "nl/text.h"

namespace gred::nl {

void Lexicon::AddConcept(const std::string& id,
                         std::vector<std::string> forms) {
  int index = static_cast<int>(concepts_.size());
  Concept entry;
  entry.id = id;
  for (std::string& form : forms) {
    std::string stem = Stem(form);
    auto [it, inserted] = stem_to_concept_.emplace(stem, index);
    (void)it;
    if (inserted) entry.forms.push_back(std::move(form));
  }
  if (!entry.forms.empty()) concepts_.push_back(std::move(entry));
}

int Lexicon::ConceptIndexOf(const std::string& word) const {
  return ConceptIndexOfStem(Stem(word));
}

int Lexicon::ConceptIndexOfStem(const std::string& stem) const {
  auto it = stem_to_concept_.find(stem);
  return it == stem_to_concept_.end() ? -1 : it->second;
}

std::string Lexicon::ConceptIdOf(const std::string& word) const {
  int idx = ConceptIndexOf(word);
  return idx < 0 ? std::string() : concepts_[static_cast<std::size_t>(idx)].id;
}

bool Lexicon::SameConcept(const std::string& a, const std::string& b) const {
  int ia = ConceptIndexOf(a);
  return ia >= 0 && ia == ConceptIndexOf(b);
}

double Lexicon::WordSimilarity(const std::string& a,
                               const std::string& b) const {
  if (Stem(a) == Stem(b)) return 1.0;
  if (SameConcept(a, b)) return 0.85;
  return 0.0;
}

std::vector<std::string> Lexicon::AlternateForms(
    const std::string& word) const {
  std::vector<std::string> out;
  int idx = ConceptIndexOf(word);
  if (idx < 0) return out;
  std::string stem = Stem(word);
  for (const std::string& form :
       concepts_[static_cast<std::size_t>(idx)].forms) {
    if (Stem(form) != stem) out.push_back(form);
  }
  return out;
}

namespace {

Lexicon* BuildDefaultLexicon() {
  auto* lex = new Lexicon();
  // People and organizations.
  lex->AddConcept("employee", {"employee", "worker", "staffer"});
  lex->AddConcept("department", {"department", "dept", "division", "bureau"});
  lex->AddConcept("manager", {"manager", "mgr", "supervisor", "boss"});
  lex->AddConcept("job", {"job", "position", "role", "occupation"});
  lex->AddConcept("student", {"student", "pupil", "learner"});
  lex->AddConcept("teacher", {"teacher", "instructor", "professor"});
  lex->AddConcept("advisor", {"advisor", "mentor", "counselor"});
  lex->AddConcept("customer", {"customer", "client", "patron", "buyer"});
  lex->AddConcept("owner", {"owner", "keeper", "holder"});
  lex->AddConcept("doctor", {"doctor", "physician", "medic"});
  lex->AddConcept("patient", {"patient", "inpatient"});
  lex->AddConcept("author", {"author", "writer", "novelist"});
  lex->AddConcept("musician", {"musician", "artist", "instrumentalist"});
  lex->AddConcept("team", {"team", "squad", "club"});
  lex->AddConcept("airline", {"airline", "carrier", "airway"});
  lex->AddConcept("member", {"member", "participant"});
  lex->AddConcept("person", {"person", "individual", "people"});

  // Naming and identity.
  lex->AddConcept("identifier", {"id", "identifier", "key"});
  lex->AddConcept("code", {"code", "abbreviation", "shorthand"});
  lex->AddConcept("name", {"name", "label", "designation"});
  lex->AddConcept("title", {"title", "heading", "caption"});
  lex->AddConcept("first", {"first", "given", "fname", "forename"});
  lex->AddConcept("last", {"last", "family", "lname", "surname"});
  lex->AddConcept("email", {"email", "mail", "inbox"});
  lex->AddConcept("phone", {"phone", "telephone", "cellphone"});
  lex->AddConcept("address", {"address", "addr", "residence"});
  lex->AddConcept("description", {"description", "detail", "summary"});
  lex->AddConcept("status", {"status", "state", "condition"});

  // Money and quantity.
  lex->AddConcept("salary", {"salary", "wage", "pay", "compensation",
                             "earnings"});
  lex->AddConcept("budget", {"budget", "funds", "allocation"});
  lex->AddConcept("price", {"price", "cost", "fare", "charge"});
  lex->AddConcept("rent", {"rent", "rental"});
  lex->AddConcept("revenue", {"revenue", "income", "proceeds"});
  lex->AddConcept("amount", {"amount", "quantity", "qty", "volume"});
  lex->AddConcept("total", {"total", "sum", "overall", "combined"});
  lex->AddConcept("count", {"count", "number", "num", "tally"});
  lex->AddConcept("average", {"average", "avg", "mean"});
  lex->AddConcept("maximum",
                  {"maximum", "max", "highest", "largest", "greatest"});
  lex->AddConcept("minimum", {"minimum", "min", "lowest", "smallest"});
  lex->AddConcept("percentage", {"percentage", "percent", "proportion",
                                 "share"});
  lex->AddConcept("credit", {"credit", "credits"});
  lex->AddConcept("stock", {"stock", "inventory", "supply"});
  lex->AddConcept("capacity", {"capacity", "seating", "headroom"});
  lex->AddConcept("balance", {"balance", "remainder"});

  // Time.
  lex->AddConcept("date", {"date", "day", "calendar"});
  lex->AddConcept("year", {"year", "yr", "annum"});
  lex->AddConcept("month", {"month"});
  lex->AddConcept("week", {"week", "weekday"});
  lex->AddConcept("time", {"time", "moment", "instant"});
  lex->AddConcept("hire", {"hire", "hiring", "employment", "recruitment"});
  lex->AddConcept("start", {"start", "begin", "commencement", "onset"});
  lex->AddConcept("end", {"end", "finish", "conclusion"});
  lex->AddConcept("birth", {"birth", "born", "natal"});
  lex->AddConcept("join", {"join", "signup", "registration", "enrollment"});
  lex->AddConcept("departure", {"departure", "takeoff", "leaving"});
  lex->AddConcept("arrival", {"arrival", "landing"});
  lex->AddConcept("admission", {"admission", "intake", "hospitalization"});
  lex->AddConcept("release", {"release", "debut", "premiere"});
  lex->AddConcept("publish", {"publish", "issue", "print"});
  lex->AddConcept("open", {"opening", "inauguration", "launch"});
  lex->AddConcept("found", {"founded", "established", "formed", "creation"});
  lex->AddConcept("built", {"built", "constructed", "erected"});
  lex->AddConcept("duration", {"duration", "length", "runtime"});
  lex->AddConcept("experience", {"experience", "tenure", "seniority"});
  lex->AddConcept("semester", {"semester", "term"});
  lex->AddConcept("age", {"age", "oldness"});

  // Places.
  lex->AddConcept("city", {"city", "town", "municipality"});
  lex->AddConcept("country", {"country", "nation", "homeland"});
  lex->AddConcept("location", {"location", "place", "site", "venue"});
  lex->AddConcept("region", {"region", "area", "zone", "district"});
  lex->AddConcept("origin", {"origin", "source"});
  lex->AddConcept("destination", {"destination", "target"});
  lex->AddConcept("building", {"building", "structure", "edifice", "tower"});
  lex->AddConcept("apartment", {"apartment", "flat", "suite"});
  lex->AddConcept("station", {"station", "outpost", "post"});
  lex->AddConcept("floor", {"floor", "storey", "level"});
  lex->AddConcept("room", {"room", "chamber"});

  // Domain objects.
  lex->AddConcept("course", {"course", "module", "subject"});
  lex->AddConcept("class", {"class", "session", "lecture"});
  lex->AddConcept("major", {"major", "specialization", "discipline"});
  lex->AddConcept("grade", {"grade", "gpa", "mark"});
  lex->AddConcept("score", {"score", "points", "result"});
  lex->AddConcept("rating", {"rating", "stars", "evaluation"});
  lex->AddConcept("pet", {"pet", "animal", "creature"});
  lex->AddConcept("type", {"type", "kind", "category", "variety"});
  lex->AddConcept("genre", {"genre", "style"});
  lex->AddConcept("weight", {"weight", "mass", "heaviness"});
  lex->AddConcept("height", {"height", "tallness", "stature"});
  lex->AddConcept("flight", {"flight", "voyage"});
  lex->AddConcept("order", {"order", "purchase", "transaction"});
  lex->AddConcept("product", {"product", "item", "merchandise", "goods"});
  lex->AddConcept("film", {"film", "movie", "picture"});
  lex->AddConcept("cinema", {"cinema", "theater", "multiplex"});
  lex->AddConcept("book", {"book", "publication", "tome"});
  lex->AddConcept("page", {"page", "pages", "folio"});
  lex->AddConcept("match", {"match", "game", "fixture", "contest"});
  lex->AddConcept("win", {"win", "victory", "triumph"});
  lex->AddConcept("loss", {"loss", "defeat"});
  lex->AddConcept("attendance", {"attendance", "turnout", "audience",
                                 "crowd"});
  lex->AddConcept("concert", {"concert", "performance", "gig"});
  lex->AddConcept("band", {"band", "ensemble"});
  lex->AddConcept("instrument", {"instrument"});
  lex->AddConcept("song", {"song", "track", "tune"});
  lex->AddConcept("album", {"album", "record"});
  lex->AddConcept("diagnosis", {"diagnosis", "ailment", "illness"});
  lex->AddConcept("specialty", {"specialty", "expertise", "specialism"});
  lex->AddConcept("bedroom", {"bedroom", "bed"});
  lex->AddConcept("bathroom", {"bathroom", "bath", "washroom"});
  lex->AddConcept("temperature", {"temperature", "temp", "warmth"});
  lex->AddConcept("humidity", {"humidity", "moisture", "dampness"});
  lex->AddConcept("wind", {"wind", "breeze", "gust"});
  lex->AddConcept("speed", {"speed", "velocity", "pace"});
  lex->AddConcept("fleet", {"fleet", "aircraft"});
  lex->AddConcept("seat", {"seat", "chair"});
  lex->AddConcept("branch", {"branch", "outlet", "chapter"});
  lex->AddConcept("account", {"account", "profile"});
  lex->AddConcept("document", {"document", "file", "paper"});
  lex->AddConcept("project", {"project", "initiative", "undertaking"});
  lex->AddConcept("budget_type", {"expense", "expenditure", "outlay"});
  lex->AddConcept("bonus", {"bonus", "premium", "incentive"});
  lex->AddConcept("tax", {"tax", "levy", "duty"});
  lex->AddConcept("distance", {"distance", "mileage", "span"});
  lex->AddConcept("population", {"population", "inhabitants", "residents"});
  lex->AddConcept("ranking", {"ranking", "rank", "standing"});
  lex->AddConcept("size", {"size", "dimension", "extent"});
  lex->AddConcept("gender", {"gender", "sex"});
  lex->AddConcept("nationality", {"nationality", "citizenship"});
  lex->AddConcept("language", {"language", "tongue"});
  lex->AddConcept("color", {"color", "colour", "hue", "shade"});
  lex->AddConcept("brand", {"brand", "make", "marque"});
  lex->AddConcept("model", {"model", "variant", "version"});
  lex->AddConcept("engine", {"engine", "motor"});
  lex->AddConcept("fuel", {"fuel", "gasoline", "petrol"});
  lex->AddConcept("horsepower", {"horsepower", "hp"});
  lex->AddConcept("restaurant", {"restaurant", "eatery", "bistro"});
  lex->AddConcept("dish", {"dish", "meal", "plate"});
  lex->AddConcept("cuisine", {"cuisine", "cookery"});
  lex->AddConcept("calorie", {"calorie", "kcal"});
  lex->AddConcept("teacher_subject", {"subject"});
  lex->AddConcept("plant", {"plant", "facility", "installation"});
  lex->AddConcept("energy", {"energy", "power", "electricity"});
  lex->AddConcept("output", {"output", "production", "yield"});
  lex->AddConcept("efficiency", {"efficiency", "effectiveness"});
  lex->AddConcept("reading", {"reading", "measurement", "sample"});

  // Chart/DVQ intent vocabulary (used by NLQ templates and reconstruction).
  lex->AddConcept("ascending", {"ascending", "asc", "increasing", "upward"});
  lex->AddConcept("descending",
                  {"descending", "desc", "decreasing", "downward"});
  lex->AddConcept("group", {"group", "bucket", "cluster"});
  lex->AddConcept("bin", {"bin", "interval"});
  lex->AddConcept("sort", {"sort", "arrange", "rank"});
  lex->AddConcept("compare", {"compare", "contrast"});
  lex->AddConcept("trend", {"trend", "evolution", "change"});
  lex->AddConcept("distribution", {"distribution", "breakdown", "spread"});
  return lex;
}

}  // namespace

const Lexicon& Lexicon::Default() {
  static const Lexicon* const kLexicon = BuildDefaultLexicon();
  return *kLexicon;
}

}  // namespace gred::nl
