#ifndef GREDVIS_NL_TEXT_H_
#define GREDVIS_NL_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

namespace gred::nl {

/// Lower-cases and splits natural-language text into word/number tokens.
/// Punctuation separates tokens; apostrophes are dropped ("what's" ->
/// "whats"); underscores split identifiers mentioned inline.
std::vector<std::string> Tokenize(std::string_view text);

/// Light suffix stemmer (Porter step-1 flavour): plural -s/-es/-ies,
/// -ing, -ed, -er, -est, -tion/-sion collapse. Never shortens a word
/// below three characters.
std::string Stem(const std::string& word);

/// Stems `word` into `*out` (same result as Stem). Reusing one scratch
/// string across calls makes the embedder's token loop allocation-free
/// once the scratch capacity has warmed up.
void StemInto(const std::string& word, std::string* out);

/// Tokenize + Stem in one pass.
std::vector<std::string> StemmedTokens(std::string_view text);

/// True for high-frequency function words that carry no retrieval signal.
bool IsStopword(const std::string& word);

/// Tokens with stopwords removed (not stemmed).
std::vector<std::string> ContentTokens(std::string_view text);

}  // namespace gred::nl

#endif  // GREDVIS_NL_TEXT_H_
