#ifndef GREDVIS_NL_LEXICON_H_
#define GREDVIS_NL_LEXICON_H_

#include <map>
#include <string>
#include <vector>

namespace gred::nl {

/// A synonym/concept bank.
///
/// Concepts group surface forms ("salary", "wage", "pay", ...) under a
/// stable concept id ("salary"). The lexicon is the repository's stand-in
/// for the distributional knowledge a pretrained embedding model or LLM
/// carries: components that the paper powers with OpenAI models (the
/// embedder, the in-context synthesizer, the annotation-based debugger)
/// consult the lexicon, while the nvBench-trained baselines must rely on
/// the lexical alignments they saw in training — exactly the asymmetry
/// the paper studies.
///
/// Invariants (checked by tests): every surface form maps to exactly one
/// concept, lookup is by stem, and the first form of each concept is its
/// canonical form.
class Lexicon {
 public:
  struct Concept {
    std::string id;                  // canonical identifier
    std::vector<std::string> forms;  // forms[0] == canonical surface form
  };

  /// The built-in curated bank covering the benchmark's domain
  /// vocabulary (~150 concepts). Thread-safe, constructed on first use.
  static const Lexicon& Default();

  /// Builds an empty lexicon (tests compose their own).
  Lexicon() = default;

  /// Registers a concept. First form is canonical. Duplicate surface
  /// forms are ignored (first concept wins), preserving the invariant.
  void AddConcept(const std::string& id, std::vector<std::string> forms);

  const std::vector<Concept>& concepts() const { return concepts_; }

  /// Concept index for `word` (stem-matched); -1 when unknown.
  int ConceptIndexOf(const std::string& word) const;

  /// Concept index for an already-stemmed word; -1 when unknown. Lets
  /// callers that already hold the stem (the embedder's token loop) skip
  /// re-stemming and avoid the ConceptIdOf string copy.
  int ConceptIndexOfStem(const std::string& stem) const;

  /// Concept id for `word`; empty when unknown.
  std::string ConceptIdOf(const std::string& word) const;

  /// True if both words are known and share a concept.
  bool SameConcept(const std::string& a, const std::string& b) const;

  /// Word-level semantic similarity:
  ///   1.0  same stem,
  ///   0.85 different stems, same concept,
  ///   0.0  otherwise.
  double WordSimilarity(const std::string& a, const std::string& b) const;

  /// All other forms of `word`'s concept (excluding forms that stem the
  /// same as `word`). Empty when the word is unknown.
  std::vector<std::string> AlternateForms(const std::string& word) const;

  std::size_t size() const { return concepts_.size(); }

 private:
  std::vector<Concept> concepts_;
  std::map<std::string, int> stem_to_concept_;
};

}  // namespace gred::nl

#endif  // GREDVIS_NL_LEXICON_H_
