#ifndef GREDVIS_ANALYSIS_REPAIRER_H_
#define GREDVIS_ANALYSIS_REPAIRER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "dvq/ast.h"
#include "schema/schema.h"

namespace gred::analysis {

/// One accepted repair step.
struct RepairAction {
  Code code = Code::kUnknownTable;
  Location location;
  /// Human-readable description of the edit, e.g.
  /// "replaced table 'employes' with 'employees'".
  std::string description;

  /// "DVQ001 from[0]: replaced table 'employes' with 'employees'".
  std::string ToString() const;
};

/// Options for DvqRepairer.
struct RepairOptions {
  /// Maximum number of accepted repair steps per DVQ. The loop also
  /// terminates on its own (every rejected step retires one diagnostic
  /// key, every mutation must produce a never-seen canonical form), so
  /// the budget only bounds how much a badly broken DVQ may be rewritten.
  std::size_t max_repairs = 8;
  /// Analyzer used for re-analysis between steps.
  AnalyzerOptions analyzer;
};

/// Outcome of one repair run.
struct RepairResult {
  /// True when the returned DVQ has no error-level diagnostics.
  bool success = false;
  /// True when at least one repair step was accepted (implies success:
  /// on failure the original DVQ is returned untouched).
  bool changed = false;
  /// The repaired DVQ on success (alias-resolved), the ORIGINAL input
  /// on failure — repair never worsens a candidate.
  dvq::DVQ dvq;
  /// Accepted steps, in application order (kept on failure for
  /// observability even though their effects are discarded).
  std::vector<RepairAction> log;
  /// Diagnostics of the returned DVQ (warnings may remain on success).
  std::vector<Diagnostic> remaining;
};

/// Deterministic fix-it applier over DvqAnalyzer diagnostics
/// (DESIGN.md §17): takes a parsed DVQ, applies machine-applicable
/// repairs (nearest-name substitutions, SUM(*)→COUNT(*), aggregate
/// retargeting, GROUP BY completion, BIN retarget/removal, chart-axis
/// swap, ORDER BY retargeting, duplicate-select removal) and re-analyzes
/// to a fixpoint under a bounded budget.
///
/// A step is accepted only when it parses into a never-seen canonical
/// form AND its targeted diagnostic disappears on re-analysis; rejected
/// steps are rolled back and their diagnostic retired, so the loop
/// always terminates. Pure and thread-safe, like the analyzer.
class DvqRepairer {
 public:
  /// `db` is not owned and must outlive the repairer.
  explicit DvqRepairer(const schema::Database* db, RepairOptions options = {});

  RepairResult Repair(const dvq::DVQ& dvq) const;

  const DvqAnalyzer& analyzer() const { return analyzer_; }

 private:
  bool ApplyFix(const Diagnostic& d, dvq::DVQ* dvq,
                std::string* description) const;

  const schema::Database* db_;
  DvqAnalyzer analyzer_;
  RepairOptions options_;
};

}  // namespace gred::analysis

#endif  // GREDVIS_ANALYSIS_REPAIRER_H_
