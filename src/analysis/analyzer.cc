#include "analysis/analyzer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "dvq/normalize.h"
#include "nl/text.h"
#include "util/strings.h"

namespace gred::analysis {

namespace {

using dvq::AggFunc;
using dvq::ChartType;
using dvq::ColumnRef;
using dvq::CompareOp;
using dvq::Literal;
using dvq::Predicate;
using dvq::Query;
using dvq::SelectExpr;
using schema::Column;
using schema::ColumnType;
using schema::TableDef;

/// Coarse type classes the checks reason in. Int and real are one
/// numeric class (the executor compares them by value).
enum class TypeClass { kNumeric, kText, kTemporal, kBool };

TypeClass ClassOf(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
    case ColumnType::kReal:
      return TypeClass::kNumeric;
    case ColumnType::kText:
      return TypeClass::kText;
    case ColumnType::kDate:
      return TypeClass::kTemporal;
    case ColumnType::kBool:
      return TypeClass::kBool;
  }
  return TypeClass::kText;
}

const char* TypeClassName(TypeClass c) {
  switch (c) {
    case TypeClass::kNumeric:
      return "numeric";
    case TypeClass::kText:
      return "text";
    case TypeClass::kTemporal:
      return "temporal";
    case TypeClass::kBool:
      return "boolean";
  }
  return "text";
}

/// True when the string literal would coerce to a number (the executor
/// compares such values numerically, so they are not a type mismatch).
bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] == '.' && !dot) {
      dot = true;
      continue;
    }
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

double NumericValue(const Literal& lit) {
  return lit.kind == Literal::Kind::kInt
             ? static_cast<double>(lit.int_value)
             : lit.real_value;
}

/// A column reference resolved against the query's scope. `column` stays
/// null for the star target and for unresolved references.
struct Resolved {
  const TableDef* table = nullptr;
  const Column* column = nullptr;
};

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "note";
}

const char* CodeName(Code code) {
  switch (code) {
    case Code::kUnknownTable:
      return "DVQ001";
    case Code::kUnknownColumn:
      return "DVQ002";
    case Code::kAggTypeMismatch:
      return "DVQ003";
    case Code::kAggStarMisuse:
      return "DVQ004";
    case Code::kGroupByInconsistency:
      return "DVQ005";
    case Code::kBinNonTemporal:
      return "DVQ006";
    case Code::kChartAxisMismatch:
      return "DVQ007";
    case Code::kJoinNotForeignKey:
      return "DVQ008";
    case Code::kJoinTypeMismatch:
      return "DVQ009";
    case Code::kAlwaysFalsePredicate:
      return "DVQ010";
    case Code::kComparisonTypeMismatch:
      return "DVQ011";
    case Code::kOrderByNotProjected:
      return "DVQ012";
    case Code::kDuplicateSelectItem:
      return "DVQ013";
  }
  return "DVQ000";
}

std::vector<Code> AllCodes() {
  return {Code::kUnknownTable,           Code::kUnknownColumn,
          Code::kAggTypeMismatch,        Code::kAggStarMisuse,
          Code::kGroupByInconsistency,   Code::kBinNonTemporal,
          Code::kChartAxisMismatch,      Code::kJoinNotForeignKey,
          Code::kJoinTypeMismatch,       Code::kAlwaysFalsePredicate,
          Code::kComparisonTypeMismatch, Code::kOrderByNotProjected,
          Code::kDuplicateSelectItem};
}

std::string Location::ToString() const {
  const char* name = "chart";
  switch (clause) {
    case Clause::kChart:
      name = "chart";
      break;
    case Clause::kSelect:
      name = "select";
      break;
    case Clause::kFrom:
      name = "from";
      break;
    case Clause::kJoin:
      name = "join";
      break;
    case Clause::kWhere:
      name = "where";
      break;
    case Clause::kGroupBy:
      name = "group_by";
      break;
    case Clause::kOrderBy:
      name = "order_by";
      break;
    case Clause::kBin:
      name = "bin";
      break;
  }
  std::string out;
  if (!path.empty()) {
    // One prefix segment per nesting level, naming the WHERE-predicate
    // index whose scalar subquery we descended into — sibling subqueries
    // of the same query render distinct locations.
    for (std::size_t pred : path) {
      out += strings::Format("subquery(%zu).", pred);
    }
  } else if (depth > 0) {
    // Legacy depth-only rendering for hand-built Locations without a
    // path (ambiguous for sibling subqueries; the analyzer never emits
    // this form).
    out += strings::Format("subquery(%zu).", depth);
  }
  out += strings::Format("%s[%zu]", name, index);
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out = strings::Format("%s: [%s] at %s: ", SeverityName(severity),
                                    CodeName(code),
                                    location.ToString().c_str());
  out += message;
  if (!fixit.empty()) out += " (fix-it: " + fixit + ")";
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::kError;
                     });
}

void CountByCode(const std::vector<Diagnostic>& diagnostics,
                 std::map<std::string, std::size_t>* out) {
  for (const Diagnostic& d : diagnostics) ++(*out)[CodeName(d.code)];
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

double NameSimilarity(const std::string& a, const std::string& b,
                      const nl::Lexicon& lexicon) {
  const double edit =
      strings::EditSimilarity(strings::ToLower(a), strings::ToLower(b));
  // Concept-aware overlap: identifier words map to their lexicon concept
  // (fallback: their stem), so "wage" and "salary" coincide even though
  // their spellings share nothing.
  auto concepts = [&lexicon](const std::string& ident) {
    std::set<std::string> ids;
    for (const std::string& word : strings::SplitIdentifierWords(ident)) {
      std::string id = lexicon.ConceptIdOf(word);
      ids.insert(id.empty() ? nl::Stem(word) : std::move(id));
    }
    return ids;
  };
  std::set<std::string> ca = concepts(a);
  std::set<std::string> cb = concepts(b);
  std::size_t shared = 0;
  for (const std::string& id : ca) shared += cb.count(id);
  const std::size_t unioned = ca.size() + cb.size() - shared;
  const double jaccard =
      unioned == 0 ? 0.0
                   : static_cast<double>(shared) /
                         static_cast<double>(unioned);
  return std::max(edit, jaccard);
}

std::string SuggestName(const std::string& name,
                        const std::vector<std::string>& candidates,
                        const nl::Lexicon& lexicon, double threshold) {
  std::string best;
  double best_score = threshold;
  for (const std::string& candidate : candidates) {
    if (strings::EqualsIgnoreCase(candidate, name)) continue;
    const double score = NameSimilarity(name, candidate, lexicon);
    if (score > best_score) {
      best_score = score;
      best = candidate;
    }
  }
  return best;
}

namespace {

/// The FROM/JOIN tables a query's column references resolve against.
struct QueryScope {
  std::vector<const TableDef*> tables;
  /// True when some FROM/JOIN table failed to resolve; unknown-column
  /// cascades are suppressed in that case.
  bool incomplete = false;

  const TableDef* Find(const std::string& name) const {
    for (const TableDef* t : tables) {
      if (strings::EqualsIgnoreCase(t->name(), name)) return t;
    }
    return nullptr;
  }
};

/// Per-column predicate constraints accumulated over one AND-group.
struct ColumnConstraints {
  std::vector<Literal> eq;
  std::vector<Literal> ne;
  std::vector<std::vector<Literal>> in_lists;
  std::vector<std::vector<Literal>> not_in_lists;
  bool has_lower = false, lower_strict = false;
  bool has_upper = false, upper_strict = false;
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
  bool is_null = false;
  bool is_not_null = false;
  std::size_t first_index = 0;  // predicate index of the first constraint
};

bool WithinBounds(const ColumnConstraints& c, double v) {
  if (c.has_lower && (v < c.lower || (c.lower_strict && v == c.lower))) {
    return false;
  }
  if (c.has_upper && (v > c.upper || (c.upper_strict && v == c.upper))) {
    return false;
  }
  return true;
}

bool Contains(const std::vector<Literal>& list, const Literal& value) {
  return std::any_of(list.begin(), list.end(), [&value](const Literal& l) {
    return l.Equals(value);
  });
}

/// True when the accumulated constraints cannot all hold at once.
bool Contradictory(const ColumnConstraints& c) {
  if (c.is_null &&
      (c.is_not_null || !c.eq.empty() || !c.in_lists.empty() || c.has_lower ||
       c.has_upper)) {
    return true;
  }
  for (std::size_t i = 1; i < c.eq.size(); ++i) {
    if (!c.eq[i].Equals(c.eq[0])) return true;
  }
  for (const Literal& e : c.eq) {
    if (Contains(c.ne, e)) return true;
    if (e.kind != Literal::Kind::kString && !WithinBounds(c, NumericValue(e))) {
      return true;
    }
    for (const std::vector<Literal>& list : c.in_lists) {
      if (!Contains(list, e)) return true;
    }
    for (const std::vector<Literal>& list : c.not_in_lists) {
      if (Contains(list, e)) return true;
    }
  }
  if (c.has_lower && c.has_upper &&
      (c.lower > c.upper ||
       (c.lower == c.upper && (c.lower_strict || c.upper_strict)))) {
    return true;
  }
  // IN-lists whose every member misses the numeric bounds.
  for (const std::vector<Literal>& list : c.in_lists) {
    if (list.empty()) continue;
    bool any_viable = false;
    for (const Literal& l : list) {
      if (l.kind == Literal::Kind::kString || WithinBounds(c, NumericValue(l))) {
        any_viable = true;
        break;
      }
    }
    if (!any_viable) return true;
  }
  return false;
}

}  // namespace

DvqAnalyzer::DvqAnalyzer(const schema::Database* db, AnalyzerOptions options)
    : db_(db),
      lexicon_(options.lexicon != nullptr ? options.lexicon
                                          : &nl::Lexicon::Default()),
      options_(options) {}

std::vector<Diagnostic> DvqAnalyzer::Analyze(const dvq::DVQ& dvq) const {
  std::vector<Diagnostic> out;
  // Aliases resolve first so every diagnostic names real tables — and so
  // fix-it hints stay valid on the normalized form the debugger reprints.
  AnalyzeQuery(dvq::ResolveAliases(dvq.query), dvq.chart, {}, &out);
  return out;
}

void DvqAnalyzer::AnalyzeQuery(const Query& q, ChartType chart,
                               const std::vector<std::size_t>& path,
                               std::vector<Diagnostic>* out) const {
  const std::size_t depth = path.size();
  auto emit = [out, &path](Code code, Severity severity, Location location,
                           std::string message, std::string fixit = "") {
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.location = location;
    d.location.path = path;
    d.message = std::move(message);
    d.fixit = std::move(fixit);
    out->push_back(std::move(d));
  };

  // --- Table resolution (DVQ001) -----------------------------------------
  QueryScope scope;
  std::vector<std::string> table_names;
  table_names.reserve(db_->tables().size());
  for (const TableDef& t : db_->tables()) table_names.push_back(t.name());
  auto resolve_table = [&](const std::string& name, Location location) {
    const TableDef* table = db_->FindTable(name);
    if (table != nullptr) {
      scope.tables.push_back(table);
      return;
    }
    scope.incomplete = true;
    std::string suggestion = SuggestName(name, table_names, *lexicon_,
                                         options_.suggestion_threshold);
    std::string message = "unknown table '" + name + "'";
    if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
    emit(Code::kUnknownTable, Severity::kError, location, std::move(message),
         suggestion);
  };
  resolve_table(q.from_table, {Clause::kFrom, 0, depth});
  for (std::size_t i = 0; i < q.joins.size(); ++i) {
    resolve_table(q.joins[i].table, {Clause::kJoin, i, depth});
  }

  // --- Column resolution (DVQ002) ----------------------------------------
  std::vector<std::string> scope_columns;
  for (const TableDef* t : scope.tables) {
    for (const Column& c : t->columns()) scope_columns.push_back(c.name);
  }
  auto resolve_column = [&](const ColumnRef& ref,
                            Location location) -> Resolved {
    Resolved r;
    if (ref.column == "*") return r;  // the star target has no type
    if (!ref.table.empty()) {
      r.table = scope.Find(ref.table);
      if (r.table == nullptr) {
        if (scope.incomplete) return r;  // suppress the cascade
        emit(Code::kUnknownColumn, Severity::kError, location,
             "'" + ref.ToString() + "' is qualified by '" + ref.table +
                 "', which is not a FROM/JOIN table of this query");
        return r;
      }
      r.column = r.table->FindColumn(ref.column);
      if (r.column == nullptr) {
        std::vector<std::string> candidates;
        for (const Column& c : r.table->columns()) {
          candidates.push_back(c.name);
        }
        std::string suggestion = SuggestName(
            ref.column, candidates, *lexicon_, options_.suggestion_threshold);
        std::string message = "table '" + r.table->name() +
                              "' has no column '" + ref.column + "'";
        if (!suggestion.empty()) {
          message += "; did you mean '" + suggestion + "'?";
        }
        r.table = nullptr;
        emit(Code::kUnknownColumn, Severity::kError, location,
             std::move(message), suggestion);
      }
      return r;
    }
    for (const TableDef* t : scope.tables) {
      const Column* c = t->FindColumn(ref.column);
      if (c != nullptr) {
        r.table = t;
        r.column = c;
        return r;
      }
    }
    auto [other_table, other_column] = db_->FindColumnAnywhere(ref.column);
    if (scope.incomplete && other_column != nullptr) return r;
    if (other_column != nullptr) {
      emit(Code::kUnknownColumn, Severity::kError, location,
           "column '" + ref.column + "' is not available from the FROM/JOIN "
           "tables; table '" + other_table->name() + "' has it — is a JOIN "
           "missing?");
      return r;
    }
    const std::vector<std::string> candidates =
        scope.incomplete || scope_columns.empty() ? db_->AllColumnNames()
                                                  : scope_columns;
    std::string suggestion = SuggestName(ref.column, candidates, *lexicon_,
                                         options_.suggestion_threshold);
    std::string message = "unknown column '" + ref.column + "'";
    if (!suggestion.empty()) message += "; did you mean '" + suggestion + "'?";
    emit(Code::kUnknownColumn, Severity::kError, location, std::move(message),
         suggestion);
    return r;
  };

  // --- SELECT list: aggregates and types (DVQ003/DVQ004) -----------------
  std::vector<Resolved> select_cols;
  select_cols.reserve(q.select.size());
  auto check_select_expr = [&](const SelectExpr& e,
                               Location location) -> Resolved {
    if (e.col.column == "*") {
      if (e.agg != AggFunc::kCount) {
        std::string agg = dvq::AggFuncName(e.agg);
        emit(Code::kAggStarMisuse, Severity::kError, location,
             (e.agg == AggFunc::kNone
                  ? std::string("the star target needs an aggregate")
                  : agg + " cannot aggregate the star target"),
             "COUNT(*)");
      }
      return Resolved{};
    }
    Resolved r = resolve_column(e.col, location);
    if (r.column != nullptr &&
        (e.agg == AggFunc::kSum || e.agg == AggFunc::kAvg)) {
      TypeClass cls = ClassOf(r.column->type);
      if (cls != TypeClass::kNumeric) {
        emit(Code::kAggTypeMismatch, Severity::kError, location,
             dvq::AggFuncName(e.agg) + " over " + TypeClassName(cls) +
                 " column '" + r.column->name + "'");
      }
    }
    return r;
  };
  for (std::size_t i = 0; i < q.select.size(); ++i) {
    select_cols.push_back(
        check_select_expr(q.select[i], {Clause::kSelect, i, depth}));
  }
  if (q.order_by.has_value()) {
    check_select_expr(q.order_by->expr, {Clause::kOrderBy, 0, depth});
  }

  // --- Duplicate select items (DVQ013) ------------------------------------
  // The same expression twice renders two identical axes/columns; almost
  // always a generation echo. Anchored at the later duplicate so the
  // fix-it (drop it) keeps the first occurrence.
  for (std::size_t j = 1; j < q.select.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (q.select[i].EqualsIgnoreCase(q.select[j])) {
        emit(Code::kDuplicateSelectItem, Severity::kWarning,
             {Clause::kSelect, j, depth},
             "select item '" + q.select[j].ToString() + "' duplicates select[" +
                 std::to_string(i) + "]",
             strings::Format("remove select[%zu]", j));
        break;
      }
    }
  }

  // --- ORDER BY not projected (DVQ012) ------------------------------------
  // When the sort expression matches neither a select item nor (for bare
  // columns) a GROUP BY key, the executor materializes it as a hidden
  // extra column per output row — legal, but usually a near-miss for one
  // of the projected columns.
  if (q.order_by.has_value() && !q.select.empty()) {
    const SelectExpr& o = q.order_by->expr;
    const bool in_select = std::any_of(
        q.select.begin(), q.select.end(), [&o](const SelectExpr& s) {
          return s.agg == o.agg && s.distinct == o.distinct &&
                 strings::EqualsIgnoreCase(s.col.column, o.col.column);
        });
    const bool in_group_by =
        o.agg == AggFunc::kNone &&
        std::any_of(q.group_by.begin(), q.group_by.end(),
                    [&o](const ColumnRef& g) {
                      return strings::EqualsIgnoreCase(g.column, o.col.column);
                    });
    if (!in_select && !in_group_by) {
      std::size_t best = 0;
      double best_sim = -1.0;
      for (std::size_t i = 0; i < q.select.size(); ++i) {
        double sim =
            NameSimilarity(o.col.column, q.select[i].col.column, *lexicon_);
        if (sim > best_sim) {
          best_sim = sim;
          best = i;
        }
      }
      emit(Code::kOrderByNotProjected, Severity::kWarning,
           {Clause::kOrderBy, 0, depth},
           "ORDER BY '" + o.ToString() +
               "' matches no select item" +
               (o.agg == AggFunc::kNone ? " or GROUP BY column" : "") +
               "; the sort key becomes a hidden extra column",
           q.select[best].ToString());
    }
  }

  // --- GROUP BY / projection consistency (DVQ005) ------------------------
  // The executor groups implicitly by the non-aggregated select columns
  // when GROUP BY is absent (Vega-Zero's x-axis grouping), so only an
  // explicit GROUP BY that misses a bare select column is inconsistent:
  // that column surfaces an arbitrary per-group row.
  if (!q.group_by.empty()) {
    bool any_aggregate = std::any_of(
        q.select.begin(), q.select.end(),
        [](const SelectExpr& e) { return e.agg != AggFunc::kNone; });
    for (std::size_t i = 0; i < q.select.size(); ++i) {
      const SelectExpr& e = q.select[i];
      if (e.agg != AggFunc::kNone || e.col.column == "*") continue;
      bool grouped = std::any_of(
          q.group_by.begin(), q.group_by.end(), [&e](const ColumnRef& g) {
            return strings::EqualsIgnoreCase(g.column, e.col.column);
          });
      if (!grouped && any_aggregate) {
        emit(Code::kGroupByInconsistency, Severity::kError,
             {Clause::kSelect, i, depth},
             "column '" + e.col.ToString() +
                 "' is neither aggregated nor in GROUP BY; its value is an "
                 "arbitrary row of each group",
             e.col.ToString());
      }
    }
    for (std::size_t i = 0; i < q.group_by.size(); ++i) {
      resolve_column(q.group_by[i], {Clause::kGroupBy, i, depth});
    }
  }

  // --- BIN over non-temporal columns (DVQ006) ----------------------------
  if (q.bin.has_value()) {
    Resolved r = resolve_column(q.bin->col, {Clause::kBin, 0, depth});
    if (r.column != nullptr && ClassOf(r.column->type) != TypeClass::kTemporal) {
      emit(Code::kBinNonTemporal, Severity::kError, {Clause::kBin, 0, depth},
           "BIN " + q.bin->col.ToString() + " BY " +
               dvq::BinUnitName(q.bin->unit) + " needs a temporal column; '" +
               r.column->name + "' is " + TypeClassName(ClassOf(r.column->type)));
    }
  }

  // --- Chart type vs axis types (DVQ007, top level only) ------------------
  if (depth == 0 && q.select.size() >= 2) {
    auto axis_class = [&](std::size_t i) -> std::optional<TypeClass> {
      const SelectExpr& e = q.select[i];
      if (e.agg == AggFunc::kCount || e.agg == AggFunc::kSum ||
          e.agg == AggFunc::kAvg) {
        return TypeClass::kNumeric;
      }
      if (select_cols[i].column == nullptr) return std::nullopt;
      TypeClass cls = ClassOf(select_cols[i].column->type);
      // A binned temporal column renders as ordered buckets either way.
      if (q.bin.has_value() &&
          strings::EqualsIgnoreCase(q.bin->col.column, e.col.column)) {
        return TypeClass::kTemporal;
      }
      return cls;
    };
    std::optional<TypeClass> x = axis_class(0);
    std::optional<TypeClass> y = axis_class(1);
    const bool line = chart == ChartType::kLine ||
                      chart == ChartType::kGroupingLine;
    const bool scatter = chart == ChartType::kScatter ||
                         chart == ChartType::kGroupingScatter;
    auto categorical = [](std::optional<TypeClass> c) {
      return c.has_value() &&
             (*c == TypeClass::kText || *c == TypeClass::kBool);
    };
    if (line && categorical(x)) {
      emit(Code::kChartAxisMismatch, Severity::kWarning,
           {Clause::kChart, 0, depth},
           dvq::ChartTypeName(chart) + std::string(" draws a continuous "
           "x-axis, but '") + q.select[0].col.ToString() +
               "' is an unordered categorical");
    }
    if (scatter && (categorical(x) || categorical(y))) {
      emit(Code::kChartAxisMismatch, Severity::kWarning,
           {Clause::kChart, 0, depth},
           dvq::ChartTypeName(chart) +
               std::string(" needs quantitative axes; ") +
               (categorical(x) ? "x" : "y") + " ('" +
               q.select[categorical(x) ? 0 : 1].col.ToString() +
               "') is categorical");
    }
    if (!line && !scatter && categorical(y)) {
      emit(Code::kChartAxisMismatch, Severity::kWarning,
           {Clause::kChart, 0, depth},
           dvq::ChartTypeName(chart) +
               std::string(" needs a numeric measure, but y ('") +
               q.select[1].col.ToString() + "') is categorical");
    }
  }

  // --- Join predicates: types and FK edges (DVQ008/DVQ009) ----------------
  for (std::size_t i = 0; i < q.joins.size(); ++i) {
    const dvq::JoinClause& join = q.joins[i];
    Location location{Clause::kJoin, i, depth};
    Resolved left = resolve_column(join.left, location);
    Resolved right = resolve_column(join.right, location);
    if (left.column == nullptr || right.column == nullptr) continue;
    TypeClass lc = ClassOf(left.column->type);
    TypeClass rc = ClassOf(right.column->type);
    if (lc != rc) {
      emit(Code::kJoinTypeMismatch, Severity::kError, location,
           "join compares " + std::string(TypeClassName(lc)) + " '" +
               join.left.ToString() + "' with " + TypeClassName(rc) + " '" +
               join.right.ToString() + "'");
      continue;
    }
    auto matches_fk = [&](const schema::ForeignKey& fk) {
      auto ends = [&](const TableDef* t, const Column* c,
                      const std::string& ft, const std::string& fc) {
        return strings::EqualsIgnoreCase(t->name(), ft) &&
               strings::EqualsIgnoreCase(c->name, fc);
      };
      return (ends(left.table, left.column, fk.from_table, fk.from_column) &&
              ends(right.table, right.column, fk.to_table, fk.to_column)) ||
             (ends(right.table, right.column, fk.from_table, fk.from_column) &&
              ends(left.table, left.column, fk.to_table, fk.to_column));
    };
    bool is_fk = std::any_of(db_->foreign_keys().begin(),
                             db_->foreign_keys().end(), matches_fk);
    if (!is_fk) {
      // Offer the FK that actually connects the two tables, if any.
      std::string fixit;
      for (const schema::ForeignKey& fk : db_->foreign_keys()) {
        bool connects =
            (strings::EqualsIgnoreCase(fk.from_table, left.table->name()) &&
             strings::EqualsIgnoreCase(fk.to_table, right.table->name())) ||
            (strings::EqualsIgnoreCase(fk.from_table, right.table->name()) &&
             strings::EqualsIgnoreCase(fk.to_table, left.table->name()));
        if (connects) {
          fixit = fk.from_table + "." + fk.from_column + " = " + fk.to_table +
                  "." + fk.to_column;
          break;
        }
      }
      emit(Code::kJoinNotForeignKey, Severity::kWarning, location,
           "join predicate '" + join.left.ToString() + " = " +
               join.right.ToString() +
               "' follows no declared foreign key; the join may explode "
               "or be empty",
           fixit);
    }
  }

  // --- WHERE: literal types and contradictions (DVQ010/DVQ011) ------------
  if (q.where.has_value()) {
    const dvq::Condition& where = *q.where;
    std::vector<Resolved> pred_cols(where.predicates.size());
    for (std::size_t i = 0; i < where.predicates.size(); ++i) {
      const Predicate& p = where.predicates[i];
      Location location{Clause::kWhere, i, depth};
      pred_cols[i] = resolve_column(p.col, location);
      const Column* col = pred_cols[i].column;
      if (col == nullptr) continue;
      TypeClass cls = ClassOf(col->type);
      auto literal_mismatch = [&](const Literal& lit) {
        if (lit.kind == Literal::Kind::kString) {
          return cls == TypeClass::kNumeric && !LooksNumeric(lit.string_value);
        }
        return cls == TypeClass::kText || cls == TypeClass::kTemporal;
      };
      if ((p.op == CompareOp::kLike || p.op == CompareOp::kNotLike) &&
          cls != TypeClass::kText) {
        emit(Code::kComparisonTypeMismatch, Severity::kWarning, location,
             std::string("LIKE pattern-matches text, but '") + col->name +
                 "' is " + TypeClassName(cls));
        continue;
      }
      if (p.literal.has_value() && p.subquery == nullptr &&
          literal_mismatch(*p.literal)) {
        emit(Code::kComparisonTypeMismatch, Severity::kWarning, location,
             "comparing " + std::string(TypeClassName(cls)) + " column '" +
                 col->name + "' with " + p.literal->ToString());
      }
      for (const Literal& lit : p.in_list) {
        if (literal_mismatch(lit)) {
          emit(Code::kComparisonTypeMismatch, Severity::kWarning, location,
               "IN list mixes " + std::string(TypeClassName(cls)) +
                   " column '" + col->name + "' with " +
                   lit.ToString());
          break;
        }
      }
    }

    // Contradiction detection per AND-group (the executor evaluates the
    // chain as an OR of AND-groups). A contradictory group never
    // matches; when every group is contradictory the WHERE is always
    // false — error level, the chart can only be empty.
    struct GroupFinding {
      bool contradictory = false;
      std::size_t first_index = 0;
    };
    std::vector<GroupFinding> groups;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= where.predicates.size(); ++i) {
      const bool group_ends =
          i == where.predicates.size() ||
          (i > 0 && where.connectors[i - 1] == dvq::LogicalOp::kOr);
      if (!group_ends) continue;
      if (i == start) break;
      std::map<std::string, ColumnConstraints> by_column;
      for (std::size_t j = start; j < i; ++j) {
        const Predicate& p = where.predicates[j];
        if (p.subquery != nullptr || p.col.column == "*") continue;
        std::string key = strings::ToLower(p.col.table) + "." +
                          strings::ToLower(p.col.column);
        auto [it, inserted] = by_column.try_emplace(key);
        ColumnConstraints& c = it->second;
        if (inserted) c.first_index = j;
        const bool numeric_lit =
            p.literal.has_value() &&
            p.literal->kind != Literal::Kind::kString;
        switch (p.op) {
          case CompareOp::kEq:
            if (p.literal.has_value()) c.eq.push_back(*p.literal);
            break;
          case CompareOp::kNe:
            if (p.literal.has_value()) c.ne.push_back(*p.literal);
            break;
          case CompareOp::kGt:
          case CompareOp::kGe:
            if (numeric_lit) {
              double v = NumericValue(*p.literal);
              bool strict = p.op == CompareOp::kGt;
              if (!c.has_lower || v > c.lower ||
                  (v == c.lower && strict)) {
                c.lower = v;
                c.lower_strict = strict;
              }
              c.has_lower = true;
            }
            break;
          case CompareOp::kLt:
          case CompareOp::kLe:
            if (numeric_lit) {
              double v = NumericValue(*p.literal);
              bool strict = p.op == CompareOp::kLt;
              if (!c.has_upper || v < c.upper ||
                  (v == c.upper && strict)) {
                c.upper = v;
                c.upper_strict = strict;
              }
              c.has_upper = true;
            }
            break;
          case CompareOp::kIn:
            c.in_lists.push_back(p.in_list);
            break;
          case CompareOp::kNotIn:
            c.not_in_lists.push_back(p.in_list);
            break;
          case CompareOp::kIsNull:
            c.is_null = true;
            break;
          case CompareOp::kIsNotNull:
            c.is_not_null = true;
            break;
          case CompareOp::kLike:
          case CompareOp::kNotLike:
            break;
        }
      }
      GroupFinding finding;
      finding.first_index = start;
      for (const auto& [key, constraints] : by_column) {
        if (Contradictory(constraints)) {
          finding.contradictory = true;
          finding.first_index = constraints.first_index;
          break;
        }
      }
      groups.push_back(finding);
      start = i;
    }
    const bool all_contradictory =
        !groups.empty() &&
        std::all_of(groups.begin(), groups.end(),
                    [](const GroupFinding& g) { return g.contradictory; });
    for (const GroupFinding& g : groups) {
      if (!g.contradictory) continue;
      emit(Code::kAlwaysFalsePredicate,
           all_contradictory ? Severity::kError : Severity::kWarning,
           {Clause::kWhere, g.first_index, depth},
           all_contradictory
               ? "WHERE is always false: its conditions contradict each other"
               : "this OR-branch is always false: its conditions contradict "
                 "each other");
    }

    // Scalar subqueries get their own scope, one nesting level down; the
    // extended path keeps sibling subqueries' locations distinct.
    for (std::size_t i = 0; i < where.predicates.size(); ++i) {
      const Predicate& p = where.predicates[i];
      if (p.subquery != nullptr) {
        std::vector<std::size_t> child_path = path;
        child_path.push_back(i);
        AnalyzeQuery(*p.subquery, chart, child_path, out);
      }
    }
  }
}

}  // namespace gred::analysis
