#ifndef GREDVIS_ANALYSIS_ANALYZER_H_
#define GREDVIS_ANALYSIS_ANALYZER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dvq/ast.h"
#include "nl/lexicon.h"
#include "schema/schema.h"

namespace gred::analysis {

/// Severity of a diagnostic. kError marks a DVQ that is semantically
/// broken against the schema (executing it can only fail or produce
/// garbage); kWarning marks a construction that executes but is almost
/// certainly not what the question asked for; kNote is advisory.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity severity);  // "note" / "warning" / "error"

/// Stable diagnostic codes. Append-only: codes are part of the public
/// surface (MetricCounts, dvqlint output, DESIGN.md §12) and must never
/// be renumbered.
enum class Code {
  kUnknownTable,            // DVQ001
  kUnknownColumn,           // DVQ002
  kAggTypeMismatch,         // DVQ003
  kAggStarMisuse,           // DVQ004
  kGroupByInconsistency,    // DVQ005
  kBinNonTemporal,          // DVQ006
  kChartAxisMismatch,       // DVQ007
  kJoinNotForeignKey,       // DVQ008
  kJoinTypeMismatch,        // DVQ009
  kAlwaysFalsePredicate,    // DVQ010
  kComparisonTypeMismatch,  // DVQ011
  kOrderByNotProjected,     // DVQ012
  kDuplicateSelectItem,     // DVQ013
};

/// "DVQ001" ... "DVQ013".
const char* CodeName(Code code);

/// Number of distinct diagnostic codes (for exhaustiveness tests).
inline constexpr std::size_t kNumCodes = 13;

/// Enumerates every code, in numeric order.
std::vector<Code> AllCodes();

/// Clause of the DVQ AST a diagnostic anchors to. The AST carries no
/// source offsets, so locations are structural: clause + index.
enum class Clause {
  kChart,
  kSelect,
  kFrom,
  kJoin,
  kWhere,
  kGroupBy,
  kOrderBy,
  kBin,
};

/// Structural AST location: `clause` plus the index of the entry within
/// it (select item, join clause or predicate; 0 for singleton clauses).
struct Location {
  Clause clause = Clause::kChart;
  std::size_t index = 0;
  /// Nesting depth: 0 = top-level query, 1 = scalar subquery, ...
  std::size_t depth = 0;
  /// Subquery path: path[i] is the WHERE-predicate index (at nesting
  /// level i) whose scalar subquery encloses this location, so sibling
  /// subqueries of one query render distinct locations ("subquery(0)."
  /// vs "subquery(2)."). Empty for top-level locations. The analyzer
  /// always fills it; hand-built Locations may leave it empty, in which
  /// case ToString falls back to the legacy depth-only rendering.
  std::vector<std::size_t> path{};

  /// "select[1]", "where[0]", "subquery(0).from[0]",
  /// "subquery(2).subquery(0).select[0]".
  std::string ToString() const;

  friend bool operator==(const Location& a, const Location& b) = default;
};

/// One typed finding of the static analyzer.
struct Diagnostic {
  Code code = Code::kUnknownTable;
  Severity severity = Severity::kError;
  Location location;
  std::string message;
  /// Machine-applicable replacement hint, empty when none is derivable.
  /// For name diagnostics this is the suggested identifier spelling.
  std::string fixit;

  /// "error: [DVQ002] unknown column 'wage' ... (fix-it: salary)".
  std::string ToString() const;
};

/// Options for DvqAnalyzer.
struct AnalyzerOptions {
  /// Lexicon used for nearest-name suggestions (concept-aware synonym
  /// matching on top of edit distance). Null = nl::Lexicon::Default().
  const nl::Lexicon* lexicon = nullptr;
  /// Minimum similarity in (0,1] a candidate must reach before it is
  /// offered as a fix-it suggestion.
  double suggestion_threshold = 0.5;
};

/// Schema-aware static analyzer over parsed DVQs (DESIGN.md §12).
///
/// Walks a dvq::DVQ against a schema::Database and emits typed
/// diagnostics: unknown table/column references (with nearest-name
/// fix-its resolved through the NL lexicon), aggregate/type mismatches,
/// group-by/projection inconsistency, BIN over non-temporal columns,
/// chart-type vs axis-type compatibility, join-predicate FK validity and
/// always-false predicate chains. Pure and thread-safe: the analyzer
/// holds only const references and Analyze does not mutate state, so one
/// instance may serve concurrent Translate threads.
class DvqAnalyzer {
 public:
  /// `db` is not owned and must outlive the analyzer.
  explicit DvqAnalyzer(const schema::Database* db,
                       AnalyzerOptions options = {});

  /// Analyzes `dvq`, returning diagnostics ordered by clause position.
  /// Aliases are resolved first, so `T1.x` diagnostics name real tables.
  std::vector<Diagnostic> Analyze(const dvq::DVQ& dvq) const;

  const schema::Database& db() const { return *db_; }

 private:
  /// `path` is the subquery-predicate index chain from the top-level
  /// query to `q` (empty at depth 0); every emitted diagnostic carries
  /// it so sibling subqueries get distinct locations.
  void AnalyzeQuery(const dvq::Query& q, dvq::ChartType chart,
                    const std::vector<std::size_t>& path,
                    std::vector<Diagnostic>* out) const;

  const schema::Database* db_;
  const nl::Lexicon* lexicon_;
  AnalyzerOptions options_;
};

/// True when any diagnostic is error-level.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics per code name ("DVQ002" -> 3), merging into `out`.
void CountByCode(const std::vector<Diagnostic>& diagnostics,
                 std::map<std::string, std::size_t>* out);

/// Renders diagnostics one per line (ToString form); empty string for an
/// empty list. Used by the debugger prompt and the dvqlint CLI.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics);

/// Nearest-name suggestion shared by the analyzer's unknown-table and
/// unknown-column checks: the candidate most similar to `name` under the
/// combined edit-distance + lexicon-concept similarity, or empty when no
/// candidate reaches `threshold`. Deterministic: ties break toward the
/// earlier candidate.
std::string SuggestName(const std::string& name,
                        const std::vector<std::string>& candidates,
                        const nl::Lexicon& lexicon, double threshold);

/// The similarity SuggestName ranks by, exposed for tests: the maximum
/// of byte-level edit similarity and concept-aware identifier-word
/// overlap (words map through the lexicon, so "wage" ~ "salary").
double NameSimilarity(const std::string& a, const std::string& b,
                      const nl::Lexicon& lexicon);

}  // namespace gred::analysis

#endif  // GREDVIS_ANALYSIS_ANALYZER_H_
