#ifndef GREDVIS_ANALYSIS_COST_ESTIMATOR_H_
#define GREDVIS_ANALYSIS_COST_ESTIMATOR_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dvq/ast.h"
#include "storage/table.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace gred::analysis {

/// Predicted worst-case resource usage of one DVQ, in the exact charge
/// units of ExecContext (DESIGN.md §17): accounted ticks, materialized
/// rows, accounted bytes (kAccountedBytesPerCell per cell), and join
/// matches. Every field is a proven upper bound on what either executor
/// engine (row or columnar, hash or nested-loop join) will charge for
/// the same query over the same data.
struct CostEstimate {
  std::uint64_t ticks = 0;
  std::uint64_t rows = 0;
  std::uint64_t bytes = 0;
  std::uint64_t join_rows = 0;

  /// True when any non-zero budget in `limits` would trip if the
  /// estimate were charged (the guard trips on `used > limit`).
  bool Exceeds(const GuardLimits& limits) const;

  /// Name of the first budget the estimate exceeds, for typed
  /// rejections: "deadline", "rows", "memory" or "joins"; empty when
  /// the estimate fits within `limits`.
  std::string ExceededBudget(const GuardLimits& limits) const;

  /// "ticks=120 rows=40 bytes=1920 join_rows=0".
  std::string ToString() const;
};

/// Abstract interpreter over DVQ ASTs that prices a query against a
/// database instance before execution (DESIGN.md §17).
///
/// Walks the query in executor-operator order (scan, joins, filter,
/// bin, group/project, order) and accumulates saturating upper bounds
/// on every ExecContext charge, using per-table statistics (row counts,
/// per-column distinct counts and maximum value frequency) from
/// storage::DataTable::Stats(). Statistics are computed lazily per
/// table and cached for the estimator's lifetime, so one instance can
/// price many requests against the same snapshot cheaply. Thread-safe.
class CostEstimator {
 public:
  /// `db` is not owned and must outlive the estimator.
  explicit CostEstimator(const storage::DatabaseData* db);

  /// Prices `dvq` (aliases are resolved first, mirroring Execute).
  /// Fails with NotFound when a referenced table does not exist or a
  /// join key cannot be attributed to the joined table — callers that
  /// gate admission should fail open on error and let the executor's
  /// own guards catch the overrun.
  Result<CostEstimate> Estimate(const dvq::DVQ& dvq) const;

  const storage::DatabaseData& db() const { return *db_; }

 private:
  Result<CostEstimate> EstimateQuery(const dvq::Query& q) const;
  const storage::DataTable::TableStats& StatsFor(std::size_t table_index) const;

  const storage::DatabaseData* db_;
  mutable std::mutex mu_;
  mutable std::vector<std::optional<storage::DataTable::TableStats>> cache_;
};

}  // namespace gred::analysis

#endif  // GREDVIS_ANALYSIS_COST_ESTIMATOR_H_
